//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `Throughput`, `criterion_group!`/`criterion_main!`) with plain
//! `Instant`-based timing and stdout reporting — no statistics, plots, or
//! CLI. When invoked with `--test` (as `cargo test` does for bench
//! targets), each routine runs once so benches stay fast in test runs.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work-per-iteration declarations, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let test_mode = self.test_mode;
        self.benchmark_group("ungrouped").run(id.into(), None, test_mode, 10, f);
        self
    }
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    // Tie the group to the Criterion borrow like upstream does.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

// Manual constructor shim: keep the struct literal above simple.
#[allow(clippy::needless_lifetimes)]
impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark routine.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (tp, tm, samples) = (self.throughput, self.test_mode, self.samples);
        let full = format!("{}/{}", self.name, id.into());
        run_bench(full, tp, tm, samples, f);
        self
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(self) {}

    fn run(
        &mut self,
        id: String,
        tp: Option<Throughput>,
        test_mode: bool,
        samples: usize,
        f: impl FnMut(&mut Bencher),
    ) {
        run_bench(format!("{}/{}", self.name, id), tp, test_mode, samples, f);
    }
}

fn run_bench(
    id: String,
    throughput: Option<Throughput>,
    test_mode: bool,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        // Keep full runs bounded: a handful of samples, one iter each.
        iters: if test_mode { 1 } else { samples.clamp(1, 20) as u64 },
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!(", {:.3e} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(", {:.3e} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!(
        "bench {id:50} {:>12.3} us/iter ({} iters{rate})",
        per_iter * 1e6,
        bencher.iters
    );
}

/// Times closures; handed to each benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declare a bench group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut total = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1usize, 2, 3],
                |v| total += v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(total >= 3);
    }
}

//! Offline stand-in for `crossbeam::scope`, implemented over
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from upstream that matter to callers:
//! * upstream returns `Err` when a child thread panics; `std::thread::scope`
//!   resumes the panic in the parent instead. Every caller in this
//!   workspace immediately `.expect()`s the result, so a child panic still
//!   aborts the calling test/launch either way.

use std::thread;

/// The error type of [`scope`]; never actually constructed (see module
/// docs), but kept so `scope(...).expect(...)` call sites compile
/// unchanged.
pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle mirroring `crossbeam::thread::Scope`: `spawn` hands the
/// closure a scope reference so spawned threads can spawn further threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; the closure receives the scope (commonly
    /// ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope in which borrowed data may be shared with spawned
/// threads; all threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn threads_share_borrowed_state_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 41 + 1).unwrap();
        assert_eq!(v, 42);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build without registry access, so the handful of
//! `rand` APIs the code uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`) are reimplemented here over a
//! xoshiro256** generator. The stream differs from upstream `rand`'s
//! ChaCha-based `StdRng`, but every consumer in this repository only
//! requires *determinism in the seed*, which this stub provides: the same
//! seed always yields the same sequence, on every platform.

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "natural" range
/// (subset of the `Standard` distribution).
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// The raw 64-bit source every higher-level method draws from.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from its natural uniform distribution:
    /// `f64`/`f32` in `[0, 1)`, `bool` fair, integers over their full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range. Panics if the range is
    /// empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a word.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<f64>) -> f64 {
        let u = unit_f64(rng.next_u64());
        // Clamp guards the open upper bound against rounding in the fma.
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<f32>) -> f32 {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via splitmix64 exactly
    /// like the reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let n = rng.gen_range(5usize..9);
            assert!((5..9).contains(&n));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

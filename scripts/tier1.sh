#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green (see ROADMAP.md).
#
#   scripts/tier1.sh
#
# Runs the release build, the full workspace test suite, the subsystem
# suites called out below, and clippy with warnings denied, from the
# repository root. CRATES is the explicit list of workspace members this
# gate knows about; the completeness check fails the gate if a crate
# exists under crates/ that the list forgot, so a new crate cannot land
# without tier-1 acknowledging it.
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(
  scd-sparse
  scd-perf-model
  scd-events
  scd-sched
  gpu-sim
  scd-wire
  scd-core
  scd-datasets
  scd-store
  scd-distributed
  scd-serve
  scd-bench
  scd-cli
)

echo "==> crate list completeness"
for manifest in crates/*/Cargo.toml; do
  name=$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -n1)
  found=no
  for c in "${CRATES[@]}"; do
    [[ "$c" == "$name" ]] && found=yes
  done
  if [[ "$found" == no ]]; then
    echo "tier1.sh: crate '$name' ($manifest) is missing from CRATES" >&2
    exit 1
  fi
done

# --workspace matters: the root manifest carries the tpa-scd facade
# package, so a bare `cargo build` covers only it and its deps — leaving
# ./target/release/scd and the bench binaries stale for the smoke steps
# below.
echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p scd-wire"
cargo test -q -p scd-wire

echo "==> cargo test -q -p scd-events"
cargo test -q -p scd-events

echo "==> cargo test -q -p scd-sched"
cargo test -q -p scd-sched

echo "==> cargo test -q -p scd-store"
cargo test -q -p scd-store

echo "==> cargo test -q -p scd-serve"
cargo test -q -p scd-serve

echo "==> shard round-trip smoke"
# Generate a small sharded dataset and the same rows as LIBSVM text, train
# both ways, and require the bit-identical `final gap` line: the storage
# invariant (shards == memory) checked end-to-end through the binary.
SHARD_DIR=$(mktemp -d)/shards
SHARD_SVM=$(mktemp)
./target/release/scd shard gen --out "$SHARD_DIR" --kind criteo --rows 120 \
  --fields 4 --cardinality 16 --seed 5 --chunk-rows 32 > /dev/null
./target/release/scd shard inspect --data "$SHARD_DIR" --verify yes > /dev/null
./target/release/scd generate --kind criteo --rows 120 --fields 4 \
  --cardinality 16 --seed 5 --output "$SHARD_SVM" > /dev/null
gap_store=$(./target/release/scd train --data "$SHARD_DIR" --form dual \
  --workers 2 --epochs 1 --eval-every 1 | grep '^final gap')
gap_mem=$(./target/release/scd train --data "$SHARD_SVM" --features 64 \
  --form dual --workers 2 --partition contiguous --epochs 1 --eval-every 1 \
  | grep '^final gap')
if [[ "$gap_store" != "$gap_mem" ]]; then
  echo "tier1.sh: shard training diverged from in-memory:" >&2
  echo "  store:  $gap_store" >&2
  echo "  memory: $gap_mem" >&2
  exit 1
fi
rm -rf "$(dirname "$SHARD_DIR")" "$SHARD_SVM"

echo "==> bench_store --smoke"
BENCH_OUT=$(mktemp) ./target/release/bench_store --smoke

echo "==> bench_cpu --smoke"
# Smoke-run the CPU-backend benchmark so a perf-harness regression cannot
# land silently; BENCH_OUT keeps it from clobbering the committed record.
BENCH_OUT=$(mktemp) ./target/release/bench_cpu --smoke

echo "==> bench_serve --smoke"
BENCH_OUT=$(mktemp) ./target/release/bench_serve --smoke

echo "==> bench_alloc --smoke (alloc-count)"
# Build the allocation-audit binary with the counting allocator and
# smoke-run it, then assert the steady-state zero-allocation contracts.
# The counters are process-global, so the test binary runs single-threaded.
cargo build -q --release -p scd-bench --features alloc-count --bin bench_alloc
BENCH_OUT=$(mktemp) ./target/release/bench_alloc --smoke
cargo test -q --release -p scd-bench --features alloc-count \
  --test alloc_steady_state -- --test-threads=1

echo "==> serve smoke"
# Train one epoch, batch-score five rows, and answer one JSON-lines serve
# request: the whole serving surface exercised end-to-end through the
# binary, with every output line required to be parseable JSON.
SERVE_DATA=$(mktemp)
SERVE_MODEL=$(mktemp)
./target/release/scd generate --kind webspam --rows 80 --cols 40 \
  --nnz-per-row 5 --scale 0.3 --output "$SERVE_DATA" > /dev/null
./target/release/scd train --data "$SERVE_DATA" --features 40 --epochs 1 \
  --eval-every 1 --save-model "$SERVE_MODEL" > /dev/null
score_out=$(./target/release/scd score --model "$SERVE_MODEL" \
  --data "$SERVE_DATA" --limit 5)
if [[ $(echo "$score_out" | wc -l) -ne 6 ]]; then
  echo "tier1.sh: scd score --limit 5 must print 5 rows + summary:" >&2
  echo "$score_out" >&2
  exit 1
fi
echo "$score_out" | python3 -c 'import json,sys
for line in sys.stdin: json.loads(line)' || {
  echo "tier1.sh: scd score output is not JSON-lines" >&2; exit 1; }
serve_out=$(printf '{"op":"info"}\n' | \
  ./target/release/scd serve --model "$SERVE_MODEL" 2> /dev/null)
echo "$serve_out" | python3 -c 'import json,sys
resp = json.loads(sys.stdin.readline())
assert resp["ok"] and resp["model_seq"] == 1, resp' || {
  echo "tier1.sh: scd serve info round-trip failed: $serve_out" >&2; exit 1; }
rm -f "$SERVE_DATA" "$SERVE_MODEL"

echo "==> objective smoke matrix"
# One epoch of every objective on every engine class: catches an
# objective x backend pairing that compiles but panics at dispatch.
OBJ_DATA=$(mktemp)
./target/release/scd generate --kind criteo --rows 120 --fields 4 \
  --cardinality 16 --output "$OBJ_DATA" > /dev/null
for obj in ridge logistic svm lasso; do
  for backend in seq syscd tpa-m4000; do
    echo "    scd train --objective $obj --backend $backend"
    ./target/release/scd train --data "$OBJ_DATA" --features 64 \
      --objective "$obj" --backend "$backend" --epochs 1 --eval-every 1 \
      > /dev/null
  done
done
rm -f "$OBJ_DATA"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1 green"

#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green (see ROADMAP.md).
#
#   scripts/tier1.sh
#
# Runs the release build, the full test suite, and clippy with warnings
# denied, from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p scd-wire"
cargo test -q -p scd-wire

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1 green"

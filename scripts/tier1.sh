#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green (see ROADMAP.md).
#
#   scripts/tier1.sh
#
# Runs the release build, the full workspace test suite, the subsystem
# suites called out below, and clippy with warnings denied, from the
# repository root. CRATES is the explicit list of workspace members this
# gate knows about; the completeness check fails the gate if a crate
# exists under crates/ that the list forgot, so a new crate cannot land
# without tier-1 acknowledging it.
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(
  scd-sparse
  scd-perf-model
  scd-events
  scd-sched
  gpu-sim
  scd-wire
  scd-core
  scd-datasets
  scd-distributed
  scd-bench
  scd-cli
)

echo "==> crate list completeness"
for manifest in crates/*/Cargo.toml; do
  name=$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -n1)
  found=no
  for c in "${CRATES[@]}"; do
    [[ "$c" == "$name" ]] && found=yes
  done
  if [[ "$found" == no ]]; then
    echo "tier1.sh: crate '$name' ($manifest) is missing from CRATES" >&2
    exit 1
  fi
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p scd-wire"
cargo test -q -p scd-wire

echo "==> cargo test -q -p scd-events"
cargo test -q -p scd-events

echo "==> cargo test -q -p scd-sched"
cargo test -q -p scd-sched

echo "==> bench_cpu --smoke"
# Smoke-run the CPU-backend benchmark so a perf-harness regression cannot
# land silently; BENCH_OUT keeps it from clobbering the committed record.
BENCH_OUT=$(mktemp) ./target/release/bench_cpu --smoke

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1 green"

//! Timing ablations of the design choices DESIGN.md calls out: block size
//! (lanes per coordinate), atomic vs wild write-back on the device,
//! staleness window of the asynchronous engine, and partition strategy.
//! (Convergence-side ablations are produced by the `ablation` binary.)

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Gpu, GpuProfile, MemSemantics};
use scd_bench::figdata::webspam_fig_small;
use scd_core::{AsyncSimScd, Form, Solver, TpaScd};
use scd_distributed::{DistributedConfig, DistributedScd, PartitionStrategy};
use std::hint::black_box;
use std::sync::Arc;

fn ablation_block_size(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("ablation_block_size");
    group.sample_size(10);
    for lanes in [16usize, 64, 256] {
        group.bench_function(format!("tpa_epoch_{lanes}_lanes"), |b| {
            let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
            let mut s = TpaScd::new(&problem, Form::Primal, gpu, 1)
                .unwrap()
                .with_lanes(lanes);
            b.iter(|| black_box(s.epoch(&problem)))
        });
    }
    group.finish();
}

fn ablation_write_semantics(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("ablation_atomics");
    group.sample_size(10);
    for (name, sem) in [
        ("atomic", MemSemantics::Atomic),
        ("wild", MemSemantics::Wild),
    ] {
        group.bench_function(format!("tpa_epoch_{name}"), |b| {
            let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
            let mut s = TpaScd::new(&problem, Form::Primal, gpu, 1)
                .unwrap()
                .with_semantics(sem);
            b.iter(|| black_box(s.epoch(&problem)))
        });
    }
    group.finish();
}

fn ablation_staleness(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("ablation_staleness");
    group.sample_size(10);
    for window in [0usize, 4, 15, 63] {
        group.bench_function(format!("async_epoch_window_{window}"), |b| {
            let mut s = AsyncSimScd::a_scd(&problem, Form::Primal, 1).with_staleness(window);
            b.iter(|| black_box(s.epoch(&problem)))
        });
    }
    group.finish();
}

fn ablation_partitioning(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("ablation_partitioning");
    group.sample_size(10);
    for (name, strategy) in [
        ("contiguous", PartitionStrategy::Contiguous),
        ("random", PartitionStrategy::Random(7)),
    ] {
        group.bench_function(format!("distributed_epoch_{name}"), |b| {
            let config = DistributedConfig::new(4, Form::Primal).with_strategy(strategy);
            let mut dist = DistributedScd::new(&problem, &config).unwrap();
            b.iter(|| black_box(dist.epoch(&problem)))
        });
    }
    group.finish();
}

fn ablation_layout(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("ablation_layout");
    group.sample_size(10);
    group.bench_function("tpa_dual_epoch_csr", |b| {
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut s = TpaScd::new(&problem, Form::Dual, gpu, 1).unwrap();
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.bench_function("tpa_dual_epoch_ell", |b| {
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut s = TpaScd::new(&problem, Form::Dual, gpu, 1)
            .unwrap()
            .with_ell_layout(&problem)
            .unwrap();
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_block_size,
    ablation_write_semantics,
    ablation_staleness,
    ablation_partitioning,
    ablation_layout
);
criterion_main!(benches);

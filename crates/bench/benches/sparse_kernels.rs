//! Microbenchmarks of the sparse linear-algebra substrate: the kernels
//! underneath every coordinate update and every duality-gap evaluation
//! (real wall-clock of this implementation, unlike the figures' simulated
//! hardware clocks).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scd_bench::figdata::webspam_fig_small;
use std::hint::black_box;

fn bench_matvec(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let nnz = problem.csr().nnz() as u64;
    let beta = vec![0.1f32; problem.m()];
    let alpha = vec![0.1f32; problem.n()];

    let mut group = c.benchmark_group("matvec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(nnz));
    group.bench_function("csr_matvec", |b| {
        b.iter(|| black_box(problem.csr().matvec(black_box(&beta)).unwrap()))
    });
    group.bench_function("csc_matvec", |b| {
        b.iter(|| black_box(problem.csc().matvec(black_box(&beta)).unwrap()))
    });
    group.bench_function("csr_matvec_t", |b| {
        b.iter(|| black_box(problem.csr().matvec_t(black_box(&alpha)).unwrap()))
    });
    group.bench_function("csc_matvec_t", |b| {
        b.iter(|| black_box(problem.csc().matvec_t(black_box(&alpha)).unwrap()))
    });
    group.finish();
}

fn bench_coordinate_primitives(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let w = vec![0.5f32; problem.n()];
    let mut group = c.benchmark_group("coordinate_primitives");
    group.sample_size(30);
    // The two passes of one primal coordinate update.
    group.bench_function("column_dot_dense", |b| {
        let col = problem.csc().col(0);
        b.iter(|| black_box(col.dot_dense(black_box(&w))))
    });
    group.bench_function("column_axpy", |b| {
        let col = problem.csc().col(0);
        b.iter_batched(
            || w.clone(),
            |mut out| {
                col.axpy_into(0.01, &mut out);
                black_box(out)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("col_squared_norms_all", |b| {
        b.iter(|| black_box(problem.csc().col_squared_norms()))
    });
    group.finish();
}

fn bench_conversions(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("format_conversions");
    group.sample_size(10);
    group.bench_function("csr_to_csc", |b| {
        b.iter(|| black_box(problem.csr().to_csc()))
    });
    group.bench_function("csc_to_csr", |b| {
        b.iter(|| black_box(problem.csc().to_csr()))
    });
    group.bench_function("select_half_the_rows", |b| {
        let rows: Vec<usize> = (0..problem.n()).step_by(2).collect();
        b.iter(|| black_box(problem.csr().select_rows(black_box(&rows))))
    });
    group.finish();
}

fn bench_duality_gap(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let beta = vec![0.01f32; problem.m()];
    let alpha = vec![0.01f32; problem.n()];
    let mut group = c.benchmark_group("duality_gap");
    group.sample_size(20);
    group.bench_function("primal_gap", |b| {
        b.iter(|| black_box(problem.primal_duality_gap(black_box(&beta))))
    });
    group.bench_function("dual_gap", |b| {
        b.iter(|| black_box(problem.dual_duality_gap(black_box(&alpha))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_coordinate_primitives,
    bench_conversions,
    bench_duality_gap
);
criterion_main!(benches);

//! Wall-clock cost of the distributed machinery: one synchronous round at
//! several cluster sizes, the aggregation closed form, and partitioning.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scd_bench::figdata::webspam_fig_small;
use scd_core::{optimal_gamma_primal, Form, Solver};
use scd_distributed::{
    partition_coords, partition_problem, DistributedConfig, DistributedScd, PartitionStrategy,
};
use std::hint::black_box;

fn bench_distributed_epoch(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("distributed_epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(problem.csr().nnz() as u64));
    for k in [1usize, 2, 4, 8] {
        group.bench_function(format!("k{k}_sequential_workers"), |b| {
            let config = DistributedConfig::new(k, Form::Primal);
            let mut dist = DistributedScd::new(&problem, &config).unwrap();
            b.iter(|| black_box(dist.epoch(&problem)))
        });
    }
    group.finish();
}

fn bench_aggregation_math(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let n = problem.n();
    let y = problem.labels().to_vec();
    let w = vec![0.3f32; n];
    let dw = vec![0.01f32; n];
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(50);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("optimal_gamma_primal", |b| {
        b.iter(|| {
            black_box(optimal_gamma_primal(
                black_box(&y),
                black_box(&w),
                black_box(&dw),
                0.5,
                0.25,
                problem.n_lambda(),
            ))
        })
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    for (name, strategy) in [
        ("contiguous", PartitionStrategy::Contiguous),
        ("round_robin", PartitionStrategy::RoundRobin),
        ("random", PartitionStrategy::Random(7)),
    ] {
        group.bench_function(format!("coords_{name}"), |b| {
            b.iter(|| black_box(partition_coords(black_box(100_000), 8, strategy)))
        });
        group.bench_function(format!("problem_{name}"), |b| {
            b.iter(|| {
                black_box(partition_problem(
                    black_box(&problem),
                    Form::Dual,
                    8,
                    strategy,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distributed_epoch,
    bench_aggregation_math,
    bench_partitioning
);
criterion_main!(benches);

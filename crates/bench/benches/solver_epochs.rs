//! Wall-clock cost of one epoch for every solver engine — the real
//! performance of this implementation on the host machine (the figures'
//! seconds axes use the calibrated hardware models instead).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::{Gpu, GpuProfile};
use scd_bench::figdata::webspam_fig_small;
use scd_core::{
    extensions::{ElasticNetCd, LogisticSdca, SdcaSvm},
    AsyScd, AsyncSimScd, Form, SequentialScd, Solver, TpaScd,
};
use std::hint::black_box;
use std::sync::Arc;

fn bench_single_node_epochs(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let nnz = problem.csr().nnz() as u64;
    let mut group = c.benchmark_group("epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(nnz));

    group.bench_function("sequential_primal", |b| {
        let mut s = SequentialScd::primal(&problem, 1);
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.bench_function("sequential_dual", |b| {
        let mut s = SequentialScd::dual(&problem, 1);
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.bench_function("async_sim_atomic_16t", |b| {
        let mut s = AsyncSimScd::a_scd(&problem, Form::Primal, 1);
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.bench_function("async_sim_wild_16t", |b| {
        let mut s = AsyncSimScd::wild(&problem, Form::Primal, 1);
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.bench_function("tpa_scd_m4000_primal", |b| {
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut s = TpaScd::new(&problem, Form::Primal, gpu, 1).unwrap();
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.bench_function("tpa_scd_m4000_dual", |b| {
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut s = TpaScd::new(&problem, Form::Dual, gpu, 1).unwrap();
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.finish();
}

fn bench_extension_epochs(c: &mut Criterion) {
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("extension_epoch");
    group.sample_size(10);
    group.bench_function("elastic_net_rho_0.5", |b| {
        let mut s = ElasticNetCd::new(&problem, 0.5, 1);
        b.iter(|| {
            s.epoch(&problem);
            black_box(())
        })
    });
    group.bench_function("sdca_svm", |b| {
        let mut s = SdcaSvm::new(&problem, 1);
        b.iter(|| {
            s.epoch(&problem);
            black_box(())
        })
    });
    group.bench_function("sdca_logistic", |b| {
        let mut s = LogisticSdca::new(&problem, 1);
        b.iter(|| {
            s.epoch(&problem);
            black_box(())
        })
    });
    group.finish();
}

fn bench_asyscd_epoch(c: &mut Criterion) {
    // The [15] baseline: dense O(M) per coordinate update — really is
    // slower in wall clock too, not only under the simulated model.
    let problem = webspam_fig_small();
    let mut group = c.benchmark_group("asyscd");
    group.sample_size(10);
    group.bench_function("asyscd_epoch", |b| {
        let mut s = AsyScd::new(&problem, 1.0, 1).expect("Hessian fits");
        b.iter(|| black_box(s.epoch(&problem)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_node_epochs,
    bench_extension_epochs,
    bench_asyscd_epoch
);
criterion_main!(benches);

//! Microbenchmarks of the GPU simulator substrate itself: launch overhead,
//! atomic-add throughput, the in-block tree reduction, and the block
//! scheduler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::{schedule_blocks, BlockCtx, DeviceBuffer, Gpu, GpuProfile, Kernel, MemSemantics};
use std::hint::black_box;

struct Noop;
impl Kernel for Noop {
    fn block(&self, _ctx: &mut BlockCtx) {}
}

struct AtomicStorm {
    buf: DeviceBuffer,
    adds_per_block: usize,
    sem: MemSemantics,
}
impl Kernel for AtomicStorm {
    fn block(&self, ctx: &mut BlockCtx) {
        for i in 0..self.adds_per_block {
            ctx.add(self.sem, &self.buf, i % self.buf.len(), 1.0);
        }
    }
}

fn bench_launch_overhead(c: &mut Criterion) {
    let gpu = Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1);
    let mut group = c.benchmark_group("gpu_launch");
    group.sample_size(20);
    for blocks in [64usize, 1024] {
        group.throughput(Throughput::Elements(blocks as u64));
        group.bench_function(format!("noop_{blocks}_blocks"), |b| {
            b.iter(|| black_box(gpu.launch(&Noop, blocks, 32)))
        });
    }
    group.finish();
}

fn bench_atomic_throughput(c: &mut Criterion) {
    let gpu = Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1);
    let mut group = c.benchmark_group("gpu_atomics");
    group.sample_size(15);
    let adds = 1_000usize;
    group.throughput(Throughput::Elements((adds * 64) as u64));
    for (name, sem) in [
        ("atomic_add", MemSemantics::Atomic),
        ("wild_add", MemSemantics::Wild),
    ] {
        group.bench_function(name, |b| {
            let kernel = AtomicStorm {
                buf: DeviceBuffer::zeroed(4096),
                adds_per_block: adds,
                sem,
            };
            b.iter(|| black_box(gpu.launch(&kernel, 64, 32)))
        });
    }
    group.finish();
}

fn bench_tree_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_tree_reduce");
    group.sample_size(50);
    for lanes in [32usize, 256, 1024] {
        group.bench_function(format!("{lanes}_lanes"), |b| {
            b.iter(|| {
                let mut ctx = BlockCtx::new(0, lanes, lanes);
                for u in 0..lanes {
                    ctx.shared()[u] = u as f32;
                }
                black_box(ctx.tree_reduce())
            })
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_scheduler");
    group.sample_size(30);
    let times: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 100) as f64 * 1e-7).collect();
    group.throughput(Throughput::Elements(times.len() as u64));
    for sms in [13usize, 24] {
        group.bench_function(format!("{sms}_sms_10k_blocks"), |b| {
            b.iter(|| black_box(schedule_blocks(black_box(&times), sms)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_launch_overhead,
    bench_atomic_throughput,
    bench_tree_reduce,
    bench_scheduler
);
criterion_main!(benches);

//! Terminal rendering of convergence curves: a log-y ASCII chart so the
//! figure binaries show the *shape* of each reproduced figure without
//! leaving the terminal. CSVs carry the precise numbers; this is the
//! at-a-glance view.

/// One plotted series: a label and (x, y) points; y is plotted on a log
/// scale, so non-positive y values are dropped.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

/// Per-series plot glyphs, by series index (later series draw on top).
const GLYPHS: &[char] = &['1', '2', '3', '4', '5', '6', '7', '8', '9'];

fn glyph_for(index: usize) -> char {
    GLYPHS[index % GLYPHS.len()]
}

/// Render series into an ASCII chart of the given size (columns × rows of
/// plotting area, plus axes). Returns the multi-line string.
pub fn render(series: &[Series], width: usize, height: usize, x_label: &str) -> String {
    assert!(width >= 10 && height >= 4, "chart too small to be readable");
    let finite_points = |s: &Series| {
        s.points
            .iter()
            .copied()
            .filter(|&(x, y)| x.is_finite() && y.is_finite() && y > 0.0)
            .collect::<Vec<_>>()
    };
    let all: Vec<(f64, f64)> = series.iter().flat_map(&finite_points).collect();
    if all.is_empty() {
        return "(no plottable points)\n".to_string();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y.log10());
        y_max = y_max.max(y.log10());
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (idx, s) in series.iter().enumerate() {
        let glyph = glyph_for(idx);
        for (x, y) in finite_points(s) {
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row_f = (y.log10() - y_min) / (y_max - y_min) * (height - 1) as f64;
            let row = height - 1 - row_f.round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        // Log-scale tick labels at top, middle, bottom.
        let tick = if r == 0 {
            format!("1e{:+.0} ", y_max)
        } else if r == height / 2 {
            format!("1e{:+.0} ", (y_min + y_max) / 2.0)
        } else if r == height - 1 {
            format!("1e{:+.0} ", y_min)
        } else {
            "      ".to_string()
        };
        out.push_str(&format!("{tick:>7}|"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>7}+{}\n", "", "-".repeat(width)));
    let fmt_x = |v: f64| {
        if v == 0.0 {
            "0".to_string()
        } else if v.abs() >= 100.0 {
            format!("{v:.0}")
        } else if v.abs() >= 0.1 {
            format!("{v:.2}")
        } else {
            format!("{v:.1e}")
        }
    };
    let (lo, hi) = (fmt_x(x_min), fmt_x(x_max));
    let gap = width.saturating_sub(lo.len() + hi.len()).max(1);
    out.push_str(&format!(
        "{:>8}{lo}{}{hi}  ({x_label})\n",
        "",
        " ".repeat(gap)
    ));
    for (idx, s) in series.iter().enumerate() {
        out.push_str(&format!("{:>9} = {}\n", glyph_for(idx), s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decaying(label: &str, rate: f64) -> Series {
        Series {
            label: label.to_string(),
            points: (0..50).map(|e| (e as f64, (-(e as f64) * rate).exp())).collect(),
        }
    }

    #[test]
    fn renders_grid_with_axes_and_legend() {
        let out = render(&[decaying("Alpha", 0.2), decaying("Beta", 0.5)], 40, 10, "epochs");
        assert!(out.contains('1'), "series glyphs plotted");
        assert!(out.contains('2'));
        assert!(out.contains("1 = Alpha"));
        assert!(out.contains("2 = Beta"));
        assert!(out.contains("(epochs)"));
        assert!(out.lines().count() >= 12);
        // Log ticks present.
        assert!(out.contains("1e+0") || out.contains("1e-0"));
    }

    #[test]
    fn faster_decay_sits_lower_at_the_right_edge() {
        let out = render(&[decaying("Slow", 0.05), decaying("Fast", 0.4)], 60, 16, "epochs");
        // Find the row of each glyph in the last plotted column region.
        let lines: Vec<&str> = out.lines().collect();
        let col = 8 + 59; // tick prefix + right edge
        let row_of = |glyph: char| {
            lines
                .iter()
                .position(|l| l.chars().nth(col.min(l.chars().count().saturating_sub(1))) == Some(glyph))
        };
        let (slow, fast) = (row_of('1'), row_of('2'));
        if let (Some(s), Some(f)) = (slow, fast) {
            assert!(f > s, "faster decay should plot lower: S at {s}, F at {f}");
        }
    }

    #[test]
    fn drops_non_positive_and_non_finite_points() {
        let s = Series {
            label: "X".into(),
            points: vec![(0.0, 1.0), (1.0, 0.0), (2.0, -3.0), (3.0, f64::NAN), (4.0, 0.1)],
        };
        let out = render(&[s], 20, 6, "t");
        assert!(out.contains('1'));
    }

    #[test]
    fn empty_input_is_graceful() {
        let s = Series {
            label: "E".into(),
            points: vec![(1.0, -1.0)],
        };
        assert_eq!(render(&[s], 20, 6, "t"), "(no plottable points)\n");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_charts_rejected() {
        let _ = render(&[], 5, 2, "t");
    }
}

//! A counting global allocator for the allocation-discipline harness.
//!
//! Compiled (and installed as the `#[global_allocator]`) only under the
//! `alloc-count` feature, so the ordinary benches and tests pay nothing.
//! Every `alloc`/`alloc_zeroed`/`realloc` on *any* thread bumps two
//! relaxed atomics — allocation events and requested bytes — which is
//! exactly what the steady-state claims need: the solver hot loops span
//! scheduler worker threads, so a thread-local counter would miss the
//! allocations that matter most. Frees are not counted; the claim under
//! test is "no heap traffic", not "no leak".
//!
//! Usage: [`snapshot`] before the unit of work, [`delta`] after. The
//! counters only ever increase, so concurrent readers can never observe
//! a negative delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`], counting every allocation event and its size.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the atomics never affect the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is an allocation event: the heap had to find (or
        // extend to) `new_size` bytes. Shrinks count too — they are
        // still allocator traffic a zero-alloc path must not emit.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// The process-wide (allocation events, requested bytes) counters so far.
pub fn snapshot() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

/// Counter movement since `since` (a prior [`snapshot`]).
pub fn delta(since: (u64, u64)) -> (u64, u64) {
    let now = snapshot();
    (now.0 - since.0, now.1 - since.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_a_vec_allocation() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let (allocs, bytes) = delta(before);
        assert!(allocs >= 1, "a fresh Vec must hit the allocator");
        assert!(bytes >= 8 * 1024, "requested bytes include the Vec buffer");
        drop(v);
    }

    #[test]
    fn no_allocation_means_zero_delta_on_this_thread_alone() {
        // Pure arithmetic between snapshots: only other test threads
        // could move the counters, so run the check a few times and
        // require at least one clean window.
        let mut clean = false;
        for _ in 0..16 {
            let before = snapshot();
            let x = std::hint::black_box(3u64).wrapping_mul(7);
            assert_eq!(x, 21);
            if delta(before) == (0, 0) {
                clean = true;
                break;
            }
        }
        assert!(clean, "arithmetic alone should not allocate");
    }
}

//! Regenerates Figure 3 of the paper. See
//! [`scd_bench::distributed_figs::fig3`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig3();
}

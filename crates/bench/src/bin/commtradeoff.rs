//! The computation/communication trade-off study (§IV-A, citing [23]):
//! "there exists an infrastructure-dependent trade-off between computation
//! and communication for distributed learning algorithms. By carefully
//! tuning the ratio of communication to computation, it may be possible to
//! improve the convergence behavior of the distributed algorithm further."
//!
//! We sweep H — the local coordinate updates each worker performs between
//! synchronizations, as a multiple of its partition size — from 1/8 of a
//! pass to 4 full passes, on two infrastructures (the paper-scaled 10 GbE
//! link, and the same link with 100× the latency), and report simulated
//! time to a fixed duality gap.
//!
//! Expected shape: communicating more often (small H) buys fresher shared
//! vectors (fewer coordinate updates wasted on stale state) but pays more
//! rounds of latency; the optimum H shifts *up* as the network gets slower
//! — exactly the infrastructure dependence [23] describes.

use scd_bench::csv::{fmt, save_and_announce, Table};
use scd_bench::figdata::{describe, scaled_link, webspam_fig_small};
use scd_bench::opts::wire_flag;
use scd_core::{Form, Solver};
use scd_distributed::{DistributedConfig, DistributedScd};
use scd_perf_model::LinkProfile;

fn main() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let form = Form::Primal;
    let k = 4;
    let target = 1e-4;
    let wire = wire_flag();
    println!("# wire format: {wire}");
    let coords_per_worker = problem.coords(form) / k;

    let fast = scaled_link(&LinkProfile::ethernet_10g(), &problem, form);
    // A much slower fabric: per-message latency comparable to a worker's
    // full-pass compute, the regime where frequent synchronization hurts.
    let slow = LinkProfile {
        name: "high-latency fabric",
        latency_seconds: fast.latency_seconds * 5000.0,
        bandwidth_bytes_per_s: fast.bandwidth_bytes_per_s / 10.0,
    };

    let mut table = Table::new(["network", "h_fraction", "rounds", "sim_seconds"]);
    for (net_name, link) in [("fast", fast), ("slow", slow)] {
        println!("# {net_name} network:");
        let mut best: Option<(f64, f64)> = None;
        for h_num in [1usize, 2, 4, 8, 16, 32] {
            // h = h_num / 8 full passes per round.
            let h = h_num as f64 / 8.0;
            let mut config = DistributedConfig::new(k, form)
                .with_network(link.clone())
                .with_wire(wire)
                .with_seed(0x7E0);
            if h_num < 8 {
                config = config
                    .with_local_updates_per_round((coords_per_worker * h_num / 8).max(1));
            } else {
                config = config.with_local_epochs_per_round(h_num / 8);
            }
            let mut dist = DistributedScd::new(&problem, &config).expect("cluster fits");
            let mut seconds = 0.0;
            let mut rounds = 0usize;
            let reached = loop {
                if rounds >= 20_000 {
                    break false;
                }
                seconds += dist.epoch(&problem).seconds();
                rounds += 1;
                if dist.duality_gap(&problem) <= target {
                    break true;
                }
            };
            let cell = if reached { fmt(seconds) } else { "unreached".into() };
            println!(
                "#   H = {h:>5} passes/round: {rounds:>6} rounds, {} s to gap {target:.0e}",
                cell
            );
            table.row([
                net_name.to_string(),
                format!("{h}"),
                rounds.to_string(),
                cell,
            ]);
            if reached && best.map(|(_, s)| seconds < s).unwrap_or(true) {
                best = Some((h, seconds));
            }
        }
        if let Some((h, s)) = best {
            println!("#   best H on {net_name}: {h} passes/round ({s:.4} s)");
        }
    }
    save_and_announce(&table, "commtradeoff.csv");
}

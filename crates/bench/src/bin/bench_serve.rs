//! Serving latency/throughput vs batch size, recorded to
//! `BENCH_serve.json` so the serving trajectory is tracked across PRs.
//!
//! Two measurements per batch cap B ∈ {1, 8, 64, 256}:
//!
//! * **Simulated open-loop load** — the `scd-serve` harness replays a
//!   Poisson arrival stream against the calibrated Xeon cost model on
//!   the deterministic event engine. The offered rate is fixed at 70% of
//!   the batch-64 capacity, which overloads the unbatched server (ρ > 1:
//!   its p99 is pure queueing delay) while the batched configurations
//!   stay stable — the core claim behind batching the scorer.
//! * **Wall-clock scoring** — the real [`BatchScorer`] scores the same
//!   rows in B-row batches on this host (rows/s, best of reps), so the
//!   simulated amortization claim is anchored to a measured kernel rate.
//!
//! `--smoke` shrinks everything for the tier-1 gate; `BENCH_OUT`
//! redirects the JSON.

use scd_bench::opts::flag_present;
use scd_core::ObjectiveKind;
use scd_datasets::{scale_values, webspam_like};
use scd_perf_model::CpuProfile;
use scd_serve::{batch_from_pairs, capacity_rps, simulate, BatchScorer, LoadSpec};
use std::time::Instant;

const BATCHES: [usize; 4] = [1, 8, 64, 256];

struct Config {
    requests: usize,
    features: usize,
    nnz_per_row: usize,
    rows: usize,
    reps: usize,
    seed: u64,
}

fn config(smoke: bool) -> Config {
    let env = |name: &str, default: usize| {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    if smoke {
        Config { requests: env("BENCH_REQUESTS", 500), features: 200, nnz_per_row: 12, rows: 512, reps: 1, seed: 9 }
    } else {
        Config { requests: env("BENCH_REQUESTS", 20_000), features: 2000, nnz_per_row: 30, rows: 4096, reps: 3, seed: 9 }
    }
}

fn spec(cfg: &Config, batch: usize, rate: f64) -> LoadSpec {
    LoadSpec {
        requests: cfg.requests,
        arrival_rate_hz: rate,
        batch,
        features: cfg.features,
        nnz_per_row: cfg.nnz_per_row,
        seed: cfg.seed,
    }
}

/// Wall-clock rows/s of the real scorer at batch size B (best of reps).
fn wall_rows_per_second(cfg: &Config, batch: usize, reps: usize) -> f64 {
    let data = scale_values(&webspam_like(cfg.rows, cfg.features, cfg.nnz_per_row, cfg.seed), 0.3);
    let csr = data.matrix.to_csr();
    let beta: Vec<f32> = (0..cfg.features).map(|j| (j as f32 * 0.37).sin() * 0.1).collect();
    // Pre-slice the dataset into B-row batches through the same pair
    // path the protocol uses.
    let batches: Vec<_> = (0..csr.rows())
        .step_by(batch)
        .map(|start| {
            let end = (start + batch).min(csr.rows());
            let pairs: Vec<Vec<(u32, f32)>> = (start..end)
                .map(|r| {
                    let row = csr.row(r);
                    row.indices.iter().copied().zip(row.values.iter().copied()).collect()
                })
                .collect();
            batch_from_pairs(&pairs, cfg.features).expect("dataset rows fit the model")
        })
        .collect();
    let scorer = BatchScorer::new(scd_sched::global());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // One warm pass, then the timed pass.
        for b in &batches {
            scorer.score(b, ObjectiveKind::Ridge, &beta).expect("scoring succeeds");
        }
        let start = Instant::now();
        for b in &batches {
            scorer.score(b, ObjectiveKind::Ridge, &beta).expect("scoring succeeds");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    csr.rows() as f64 / best
}

fn main() {
    let smoke = flag_present("smoke");
    let cfg = config(smoke);
    let profile = CpuProfile::xeon_e5_2640();
    // Fixed offered load: 70% of batch-64 capacity. Above batch-1
    // capacity by construction (the whole point of the sweep).
    let rate = 0.7 * capacity_rps(&profile, &spec(&cfg, 64, 1.0));
    println!(
        "# serve load sweep: {} requests at {rate:.0} req/s (0.7x batch-64 capacity), \
         {} features, {} nnz/row{}",
        cfg.requests,
        cfg.features,
        cfg.nnz_per_row,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    for batch in BATCHES {
        let report = simulate(&profile, &spec(&cfg, batch, rate));
        let wall = wall_rows_per_second(&cfg, batch, cfg.reps);
        println!(
            "# B={batch}: p50 {:.3e}s p99 {:.3e}s, {:.0} req/s sim (rho {:.2}, fill {:.1}), \
             wall {:.0} rows/s",
            report.p50_s,
            report.p99_s,
            report.throughput_rps,
            report.utilization,
            report.mean_batch_fill,
            wall,
        );
        rows.push(format!(
            "    {{\n      \"batch\": {batch},\n      \"p50_latency_s\": {:e},\n      \"p99_latency_s\": {:e},\n      \"mean_latency_s\": {:e},\n      \"max_latency_s\": {:e},\n      \"throughput_rps\": {:.3},\n      \"utilization\": {:.4},\n      \"mean_batch_fill\": {:.3},\n      \"sim_seconds\": {:e},\n      \"wall_rows_per_second\": {:.1}\n    }}",
            report.p50_s,
            report.p99_s,
            report.mean_s,
            report.max_s,
            report.throughput_rps,
            report.utilization,
            report.mean_batch_fill,
            report.sim_seconds,
            wall,
        ));
    }

    let out = format!(
        "{{\n  \"benchmark\": \"serve_batched_inference\",\n  \"profile\": \"xeon_e5_2640\",\n  \"smoke\": {smoke},\n  \"requests\": {},\n  \"features\": {},\n  \"nnz_per_row\": {},\n  \"offered_rps\": {:.3},\n  \"capacity_batch64_rps\": {:.3},\n  \"wall_clock_rows\": {},\n  \"configs\": [\n{}\n  ]\n}}\n",
        cfg.requests,
        cfg.features,
        cfg.nnz_per_row,
        rate,
        capacity_rps(&profile, &spec(&cfg, 64, 1.0)),
        cfg.rows,
        rows.join(",\n")
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
}

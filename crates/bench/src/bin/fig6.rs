//! Regenerates Figure 6 of the paper. See
//! [`scd_bench::distributed_figs::fig6`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig6();
}

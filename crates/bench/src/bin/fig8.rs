//! Regenerates Figure 8 of the paper. See
//! [`scd_bench::distributed_figs::fig8`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig8();
}

//! Wall-clock benchmark of the gpu-sim executor on TPA-SCD epochs,
//! recorded to `BENCH_gpusim.json` so the perf trajectory is tracked
//! across PRs.
//!
//! Two configurations run the *same* simulated work (identical cost
//! counters and simulated seconds — see `tests/tpa_golden.rs`):
//!
//! * `legacy`: element-wise kernels (one counted `BlockCtx::read`/`add`
//!   per element) on a device whose worker pool is torn down and re-created
//!   every launch — the shape of the original per-launch executor;
//! * `pooled`: the bulk-API kernels in `TpaScd` on one persistent device,
//!   where a launch is an enqueue plus a completion latch.
//!
//! The headline number is `speedup_pooled_over_legacy` (host wall-clock;
//! the simulated clock is identical by construction).

use gpu_sim::{BlockCtx, DeviceBuffer, Gpu, GpuProfile, Kernel, MemSemantics};
use scd_core::problem::{Form, RidgeProblem};
use scd_core::solver::Solver;
use scd_core::tpa::{TpaScd, DEFAULT_LANES};
use scd_core::updates::dual_delta;
use scd_datasets::{scale_values, webspam_like};
use scd_sparse::perm::Permutation;
use scd_sparse::CsrMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pre-port dual kernel, verbatim: per-element counted reads/adds.
struct ElementwiseDualKernel<'a> {
    csr: &'a CsrMatrix,
    y: &'a [f32],
    row_sq_norms: &'a [f64],
    perm: &'a Permutation,
    alpha: &'a DeviceBuffer,
    w_bar: &'a DeviceBuffer,
    lambda: f64,
    n_lambda: f64,
}

impl Kernel for ElementwiseDualKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let n = self.perm.apply(ctx.block_id());
        let row = self.csr.row(n);
        let nnz = row.nnz();
        let lanes = ctx.lanes();

        let mut partials = vec![0.0f32; lanes];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut dp = 0.0f32;
            let mut k = u;
            while k < nnz {
                dp += ctx.read(self.w_bar, row.indices[k] as usize) * row.values[k];
                k += lanes;
            }
            *p = dp;
        }
        ctx.charge_read_bytes(8 * nnz as u64);
        ctx.charge_lane_ops(nnz as u64);
        ctx.shared()[..lanes].copy_from_slice(&partials);
        ctx.barrier();

        let dot = ctx.tree_reduce() as f64;
        let alpha_n = ctx.read(self.alpha, n);
        let delta = dual_delta(
            dot,
            self.y[n] as f64,
            alpha_n as f64,
            self.row_sq_norms[n],
            self.lambda,
            self.n_lambda,
        ) as f32;
        ctx.write(self.alpha, n, alpha_n + delta);
        ctx.barrier();

        for k in 0..nnz {
            ctx.add(
                MemSemantics::Atomic,
                self.w_bar,
                row.indices[k] as usize,
                row.values[k] * delta,
            );
        }
        ctx.charge_read_bytes(8 * nnz as u64);
    }
}

fn problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(4000, 2000, 150, 80), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

/// The original executor, verbatim: a fresh `crossbeam::scope` of workers
/// per launch, a freshly allocated `BlockCtx` per block, and per-block
/// cost recording through a shared `Mutex<Vec<BlockCost>>`.
fn legacy_launch<K: Kernel>(profile: &GpuProfile, kernel: &K, blocks: usize, lanes: usize) {
    let costs: Mutex<Vec<gpu_sim::BlockCost>> =
        Mutex::new(vec![gpu_sim::BlockCost::default(); blocks]);
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(profile.sm_count)
        .min(blocks.max(1));
    let shared_len = kernel.shared_len(lanes);

    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                if b >= blocks {
                    break;
                }
                let mut ctx = BlockCtx::new(b, lanes, shared_len);
                kernel.block(&mut ctx);
                costs.lock().unwrap()[b] = ctx.cost();
            });
        }
    })
    .expect("kernel block panicked");

    let costs = costs.into_inner().unwrap();
    let block_seconds: Vec<f64> = costs
        .iter()
        .map(|c| profile.block_seconds(c.lane_ops, c.bytes, c.atomics))
        .collect();
    let _ = gpu_sim::schedule_blocks(&block_seconds, profile.sm_count);
}

/// Legacy shape: element-wise kernel through the per-launch executor.
fn legacy_epoch_seconds(p: &RidgeProblem, epochs: usize) -> f64 {
    let profile = GpuProfile::quadro_m4000();
    let alpha = DeviceBuffer::zeroed(p.coords(Form::Dual));
    let w_bar = DeviceBuffer::zeroed(p.shared_len(Form::Dual));
    let start = Instant::now();
    for e in 0..epochs {
        let perm = Permutation::random(p.n(), 1 ^ (e as u64).wrapping_mul(0x9E37));
        let kernel = ElementwiseDualKernel {
            csr: p.csr(),
            y: p.labels(),
            row_sq_norms: p.row_sq_norms(),
            perm: &perm,
            alpha: &alpha,
            w_bar: &w_bar,
            lambda: p.lambda(),
            n_lambda: p.n_lambda(),
        };
        legacy_launch(&profile, &kernel, p.n(), DEFAULT_LANES);
    }
    start.elapsed().as_secs_f64() / epochs as f64
}

/// New shape: bulk-API kernels on one persistent device pool.
fn pooled_epoch_seconds(p: &RidgeProblem, epochs: usize) -> f64 {
    let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()));
    let mut solver = TpaScd::new(p, Form::Dual, gpu, 1).unwrap();
    solver.epoch(p); // warm the pool before timing
    let start = Instant::now();
    for _ in 0..epochs {
        solver.epoch(p);
    }
    start.elapsed().as_secs_f64() / epochs as f64
}

fn main() {
    let p = problem();
    let epochs: usize = std::env::var("BENCH_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    println!(
        "# TPA-SCD dual epoch wall-clock, webspam-like {}x{} ({} nnz), {} epochs/config",
        p.n(),
        p.m(),
        p.csr().nnz(),
        epochs
    );
    let legacy = legacy_epoch_seconds(&p, epochs);
    println!("# legacy  (element-wise, pool-per-launch): {:.3} ms/epoch", legacy * 1e3);
    let pooled = pooled_epoch_seconds(&p, epochs);
    println!("# pooled  (bulk API, persistent pool):     {:.3} ms/epoch", pooled * 1e3);
    let speedup = legacy / pooled;
    println!("# speedup: {speedup:.2}x");

    let out = format!(
        "{{\n  \"benchmark\": \"tpa_scd_dual_epoch\",\n  \"dataset\": \"webspam_like(4000, 2000, 150, 80) scale 0.3\",\n  \"lambda\": 1e-3,\n  \"epochs_timed\": {epochs},\n  \"host_threads\": {},\n  \"legacy_seconds_per_epoch\": {legacy:.6e},\n  \"pooled_seconds_per_epoch\": {pooled:.6e},\n  \"speedup_pooled_over_legacy\": {speedup:.3}\n}}\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_gpusim.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
}

//! Shard-streamed vs in-memory training, recorded to `BENCH_store.json`.
//!
//! Measures what `scd-store` buys on a criteo-shaped dataset:
//!
//! * **Generation**: `criteo_like` materializes COO + CSR + problem in
//!   RAM; `write_criteo` streams row-at-a-time into chunk files and never
//!   holds more than one chunk buffered. Both run in a child process so
//!   each reports its own `VmHWM` (RSS high-water is per-process and
//!   monotonic — two measurements cannot share a process).
//! * **Training** at K ∈ {1, 2, 4}: epoch wall-clock and RSS of the
//!   distributed driver fed from shards (`DistributedScd::from_store`)
//!   vs from memory, plus the simulated network seconds the shard
//!   upload legs cost (real chunk bytes through the 10 GbE model).
//!   The duality gaps of the two paths are compared bit-for-bit — the
//!   storage invariant the whole subsystem rests on.
//!
//! `--smoke` shrinks everything for the tier-1 gate; `BENCH_OUT`
//! redirects the JSON.

use scd_bench::opts::{flag_present, flag_value};
use scd_core::{Form, RidgeProblem, Solver};
use scd_datasets::{criteo_like, CriteoSpec};
use scd_distributed::{DistributedConfig, DistributedScd, PartitionStrategy};
use scd_store::{rss_high_water_bytes, write_criteo, ShardedDataset};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

const K_SET: [usize; 3] = [1, 2, 4];

struct Spec {
    rows: usize,
    fields: usize,
    cardinality: usize,
    seed: u64,
    chunk_rows: usize,
    epochs: usize,
    lambda: f64,
}

fn spec(smoke: bool) -> Spec {
    let (rows, fields, cardinality, chunk_rows, epochs) = if smoke {
        (1500, 5, 20, 128, 2)
    } else {
        (40_000, 10, 100, 4096, 4)
    };
    Spec { rows, fields, cardinality, seed: 7, chunk_rows, epochs, lambda: 1e-3 }
}

fn emit(key: &str, value: impl std::fmt::Display) {
    println!("{key}={value}");
}

fn rss() -> u64 {
    rss_high_water_bytes().unwrap_or(0)
}

fn in_memory_problem(s: &Spec) -> RidgeProblem {
    let data = criteo_like(s.rows, s.fields, s.cardinality, s.seed);
    RidgeProblem::from_labelled(&data, s.lambda).expect("valid synthetic problem")
}

fn config(workers: usize) -> DistributedConfig {
    DistributedConfig::new(workers, Form::Dual)
        .with_strategy(PartitionStrategy::Contiguous)
        .with_seed(3)
}

/// Train `epochs` epochs, returning (seconds/epoch, final-gap bits).
fn run_epochs(dist: &mut DistributedScd, problem: &RidgeProblem, epochs: usize) -> (f64, u64) {
    let start = Instant::now();
    for _ in 0..epochs {
        dist.epoch(problem);
    }
    let secs = start.elapsed().as_secs_f64() / epochs as f64;
    (secs, dist.duality_gap(problem).to_bits())
}

/// Child-process entry: one measurement per process so VmHWM is honest.
fn child(mode: &str, s: &Spec) {
    match mode {
        "gen-inmem" => {
            let start = Instant::now();
            let problem = in_memory_problem(s);
            emit("seconds", start.elapsed().as_secs_f64());
            emit("nnz", problem.csr().nnz());
            emit("rss_bytes", rss());
        }
        "gen-shard" => {
            let dir = flag_value("dir").expect("--dir");
            let start = Instant::now();
            let summary = write_criteo(
                Path::new(&dir),
                &CriteoSpec::new(s.rows, s.fields, s.cardinality, s.seed),
                s.chunk_rows,
            )
            .expect("streaming generation");
            emit("seconds", start.elapsed().as_secs_f64());
            emit("nnz", summary.nnz);
            emit("disk_bytes", summary.disk_bytes);
            emit("writer_high_water_bytes", summary.buffered_high_water);
            emit("rss_bytes", rss());
        }
        "train-inmem" => {
            let workers: usize = flag_value("workers").expect("--workers").parse().unwrap();
            let problem = in_memory_problem(s);
            let mut dist = DistributedScd::new(&problem, &config(workers)).expect("cluster");
            let (secs, gap_bits) = run_epochs(&mut dist, &problem, s.epochs);
            emit("seconds_per_epoch", secs);
            emit("gap_bits", gap_bits);
            emit("rss_bytes", rss());
        }
        "train-shard" => {
            let dir = flag_value("dir").expect("--dir");
            let workers: usize = flag_value("workers").expect("--workers").parse().unwrap();
            let store = ShardedDataset::open(Path::new(&dir)).expect("shards present");
            let (csr, labels) = store.load_all().expect("shards readable");
            let problem = RidgeProblem::new(csr, labels, s.lambda).expect("valid problem");
            let mut dist =
                DistributedScd::from_store(&problem, &store, &config(workers)).expect("cluster");
            emit("setup_network_seconds", dist.setup_cost().network_seconds);
            let (secs, gap_bits) = run_epochs(&mut dist, &problem, s.epochs);
            emit("seconds_per_epoch", secs);
            emit("gap_bits", gap_bits);
            emit("rss_bytes", rss());
        }
        other => {
            eprintln!("unknown --child mode {other:?}");
            std::process::exit(2);
        }
    }
}

/// Re-exec this binary for one child measurement; parse its key=value
/// stdout.
fn measure(mode: &str, smoke: bool, extra: &[(&str, String)]) -> BTreeMap<String, String> {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--child").arg(mode);
    if smoke {
        cmd.arg("--smoke");
    }
    for (k, v) in extra {
        cmd.arg(format!("--{k}")).arg(v);
    }
    let out = cmd.output().expect("child runs");
    assert!(
        out.status.success(),
        "child {mode} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf-8 child output")
        .lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn get<T: std::str::FromStr>(m: &BTreeMap<String, String>, key: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    m.get(key).unwrap_or_else(|| panic!("child missing {key}")).parse().unwrap()
}

fn main() {
    let smoke = flag_present("smoke");
    let s = spec(smoke);
    if let Some(mode) = flag_value("child") {
        child(&mode, &s);
        return;
    }
    let dir = std::env::temp_dir().join(format!("bench_store_shards_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_string_lossy().into_owned();
    println!(
        "# store: shard-streamed vs in-memory, criteo_like({}, {}, {}, {}), chunk_rows {}, {} epochs{}",
        s.rows, s.fields, s.cardinality, s.seed, s.chunk_rows, s.epochs,
        if smoke { " (smoke)" } else { "" }
    );

    // Generation: same rows, two memory profiles.
    let inmem = measure("gen-inmem", smoke, &[]);
    let shard = measure("gen-shard", smoke, &[("dir", dir_s.clone())]);
    assert_eq!(
        get::<u64>(&inmem, "nnz"),
        get::<u64>(&shard, "nnz"),
        "generators disagree on nnz"
    );
    let gen_inmem_rss: u64 = get(&inmem, "rss_bytes");
    let gen_shard_rss: u64 = get(&shard, "rss_bytes");
    let disk_bytes: u64 = get(&shard, "disk_bytes");
    let writer_hw: u64 = get(&shard, "writer_high_water_bytes");
    println!(
        "# gen: in-memory RSS {:.1} MB vs shard-stream RSS {:.1} MB ({} B on disk, {} B buffered)",
        gen_inmem_rss as f64 / 1e6,
        gen_shard_rss as f64 / 1e6,
        disk_bytes,
        writer_hw
    );

    // Training at each cluster size, both sources.
    let mut rows = Vec::new();
    for k in K_SET {
        let kv = [("workers", k.to_string())];
        let mem = measure("train-inmem", smoke, &kv);
        let sto = measure(
            "train-shard",
            smoke,
            &[("workers", k.to_string()), ("dir", dir_s.clone())],
        );
        let mem_secs: f64 = get(&mem, "seconds_per_epoch");
        let sto_secs: f64 = get(&sto, "seconds_per_epoch");
        let identical = get::<u64>(&mem, "gap_bits") == get::<u64>(&sto, "gap_bits");
        let setup_net: f64 = get(&sto, "setup_network_seconds");
        assert!(identical, "K={k}: shard training diverged from in-memory");
        println!(
            "# K={k}: in-memory {mem_secs:.4} s/epoch, shard {sto_secs:.4} s/epoch, \
             setup net {setup_net:.3e} sim-s, gap bit-identical: {identical}"
        );
        rows.push(format!(
            "    {{\n      \"workers\": {k},\n      \"in_memory_seconds_per_epoch\": {mem_secs:.6},\n      \"shard_seconds_per_epoch\": {sto_secs:.6},\n      \"in_memory_train_rss_bytes\": {},\n      \"shard_train_rss_bytes\": {},\n      \"shard_setup_network_seconds\": {setup_net:.9},\n      \"gap_bit_identical\": {identical}\n    }}",
            get::<u64>(&mem, "rss_bytes"),
            get::<u64>(&sto, "rss_bytes"),
        ));
    }

    let out = format!(
        "{{\n  \"benchmark\": \"store_sharded_vs_in_memory\",\n  \"dataset\": \"criteo_like({}, {}, {}, {})\",\n  \"chunk_rows\": {},\n  \"smoke\": {smoke},\n  \"epochs_timed\": {},\n  \"generation\": {{\n    \"in_memory_rss_bytes\": {gen_inmem_rss},\n    \"shard_stream_rss_bytes\": {gen_shard_rss},\n    \"shard_disk_bytes\": {disk_bytes},\n    \"writer_buffer_high_water_bytes\": {writer_hw},\n    \"in_memory_seconds\": {:.6},\n    \"shard_stream_seconds\": {:.6}\n  }},\n  \"configs\": [\n{}\n  ]\n}}\n",
        s.rows,
        s.fields,
        s.cardinality,
        s.seed,
        s.chunk_rows,
        s.epochs,
        get::<f64>(&inmem, "seconds"),
        get::<f64>(&shard, "seconds"),
        rows.join(",\n")
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_store.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
    std::fs::remove_dir_all(&dir).ok();
}

//! Wall-clock benchmark of the CPU backends, recorded to `BENCH_cpu.json`
//! so the perf trajectory is tracked across PRs.
//!
//! Two engines run the same dual-form ridge problem at each thread count
//! H ∈ {1, 2, 4, 8}:
//!
//! * `ascd`: [`AsyncCpuScd`] in atomic (A-SCD) mode — H worker tasks
//!   draining one atomic cursor, every shared-vector write a CAS loop.
//! * `syscd`: [`SyscdScd`] — shuffled static bucket partitioning,
//!   per-worker replicas merged deterministically, zero shared-vector
//!   atomics in the epoch loop.
//!
//! Both run on an explicit H-thread work-stealing scheduler, so the
//! comparison isolates the algorithmic memory behaviour (atomics and
//! cache-line ping-pong vs replicas and merges), not thread-pool shape.
//! Reported per H: wall-clock epochs/second (best of `BENCH_REPS` reps,
//! the least noisy estimator on a shared host) and wall-clock
//! time-to-gap — epochs and seconds until the duality gap first drops
//! below the target. SySCD solves the σ′ = W safe subproblem, so it
//! trades per-epoch progress for atomic-free throughput; the headline
//! claim is the throughput column, the time-to-gap columns keep the
//! trade-off honest.
//!
//! `--smoke` shrinks everything (tiny dataset, one rep) for the tier-1
//! gate; `BENCH_OUT` redirects the JSON.

use scd_bench::opts::flag_present;
use scd_core::{AsyncCpuMode, AsyncCpuScd, Form, RidgeProblem, Solver, SyscdScd};
use scd_datasets::{scale_values, webspam_like};
use scd_sched::Scheduler;
use std::sync::Arc;
use std::time::Instant;

const H_SET: [usize; 4] = [1, 2, 4, 8];

struct Config {
    dataset: String,
    problem: RidgeProblem,
    epochs: usize,
    reps: usize,
    gap_target: f64,
    gap_cap: usize,
}

fn config(smoke: bool) -> Config {
    let env = |name: &str, default: usize| {
        std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let (rows, cols, nnz, seed) = if smoke { (150, 120, 10, 8) } else { (6000, 3000, 30, 7) };
    let data = scale_values(&webspam_like(rows, cols, nnz, seed), 0.3);
    Config {
        dataset: format!("webspam_like({rows}, {cols}, {nnz}, {seed}) scale 0.3"),
        problem: RidgeProblem::from_labelled(&data, 1e-3).unwrap(),
        epochs: env("BENCH_EPOCHS", if smoke { 2 } else { 8 }),
        reps: env("BENCH_REPS", if smoke { 1 } else { 3 }),
        gap_target: if smoke { 2e-1 } else { 1e-2 },
        gap_cap: if smoke { 50 } else { 2000 },
    }
}

/// A fresh solver of the given kind at H threads, on the sweep's shared
/// H-thread scheduler.
fn build(kind: &str, p: &RidgeProblem, h: usize, sched: &Arc<Scheduler>) -> Box<dyn Solver> {
    match kind {
        "syscd" => Box::new(SyscdScd::new(p, Form::Dual, h, 1).with_scheduler(Arc::clone(sched))),
        "ascd" => Box::new(
            AsyncCpuScd::new(p, Form::Dual, AsyncCpuMode::Atomic, h, 1)
                .with_scheduler(Arc::clone(sched)),
        ),
        other => unreachable!("unknown engine {other}"),
    }
}

/// Best-of-reps wall-clock seconds per epoch. Solver and scheduler are
/// built once and warmed with one epoch before any rep is timed, so the
/// reps measure the steady-state epoch loop only — construction,
/// thread-pool spawn, and first-epoch workspace growth all stay outside
/// the timer.
fn seconds_per_epoch(kind: &str, cfg: &Config, h: usize, sched: &Arc<Scheduler>) -> f64 {
    let mut solver = build(kind, &cfg.problem, h, sched);
    solver.epoch(&cfg.problem);
    let mut best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let start = Instant::now();
        for _ in 0..cfg.epochs {
            solver.epoch(&cfg.problem);
        }
        best = best.min(start.elapsed().as_secs_f64() / cfg.epochs as f64);
    }
    best
}

/// Wall-clock (epochs, seconds) until the duality gap first drops below
/// the target; `gap_cap` bounds a run that never gets there. A fresh
/// solver (cold model, shared scheduler) so convergence starts from zero.
fn time_to_gap(kind: &str, cfg: &Config, h: usize, sched: &Arc<Scheduler>) -> (usize, f64, bool) {
    let mut solver = build(kind, &cfg.problem, h, sched);
    let start = Instant::now();
    for epoch in 1..=cfg.gap_cap {
        solver.epoch(&cfg.problem);
        if solver.duality_gap(&cfg.problem) <= cfg.gap_target {
            return (epoch, start.elapsed().as_secs_f64(), true);
        }
    }
    (cfg.gap_cap, start.elapsed().as_secs_f64(), false)
}

fn main() {
    let smoke = flag_present("smoke");
    let cfg = config(smoke);
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "# CPU backends, syscd vs a-scd, dual form, {} epochs/config x {} reps, gap target {:.0e}, host cores {host}{}",
        cfg.epochs,
        cfg.reps,
        cfg.gap_target,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    for h in H_SET {
        // One scheduler per H for the whole row: pool spawn happens here,
        // not inside any measurement.
        let sched = Scheduler::new(h);
        let syscd = 1.0 / seconds_per_epoch("syscd", &cfg, h, &sched);
        let ascd = 1.0 / seconds_per_epoch("ascd", &cfg, h, &sched);
        let ratio = syscd / ascd;
        let (s_epochs, s_secs, s_hit) = time_to_gap("syscd", &cfg, h, &sched);
        let (a_epochs, a_secs, a_hit) = time_to_gap("ascd", &cfg, h, &sched);
        println!(
            "# H={h}: syscd {syscd:.2} epochs/s, a-scd {ascd:.2} epochs/s ({ratio:.2}x); \
             to gap: syscd {s_epochs} ep / {s_secs:.3}s{}, a-scd {a_epochs} ep / {a_secs:.3}s{}",
            if s_hit { "" } else { " (cap)" },
            if a_hit { "" } else { " (cap)" },
        );
        rows.push(format!(
            "    {{\n      \"threads\": {h},\n      \"syscd_epochs_per_second\": {syscd:.4},\n      \"ascd_epochs_per_second\": {ascd:.4},\n      \"syscd_over_ascd_throughput\": {ratio:.3},\n      \"syscd_epochs_to_gap\": {s_epochs},\n      \"syscd_seconds_to_gap\": {s_secs:.6},\n      \"syscd_gap_reached\": {s_hit},\n      \"ascd_epochs_to_gap\": {a_epochs},\n      \"ascd_seconds_to_gap\": {a_secs:.6},\n      \"ascd_gap_reached\": {a_hit}\n    }}"
        ));
    }

    let out = format!(
        "{{\n  \"benchmark\": \"cpu_backends_syscd_vs_ascd\",\n  \"dataset\": \"{}\",\n  \"form\": \"dual\",\n  \"smoke\": {smoke},\n  \"epochs_timed\": {},\n  \"reps\": {},\n  \"gap_target\": {:e},\n  \"host_parallelism\": {host},\n  \"configs\": [\n{}\n  ]\n}}\n",
        cfg.dataset,
        cfg.epochs,
        cfg.reps,
        cfg.gap_target,
        rows.join(",\n")
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_cpu.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
}

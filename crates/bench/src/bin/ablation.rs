//! Convergence-side ablations of the design choices DESIGN.md calls out.
//! (Timing-side ablations live in `benches/ablations.rs`.)
//!
//! 1. Wild collision rate → duality-gap plateau level.
//! 2. Asynchrony staleness window → epochs to converge / instability.
//! 3. Partition strategy → distributed epochs to converge.
//! 4. Aggregation rule → distributed epochs to converge.
//! 5. TPA lanes per block → solution equivalence and simulated epoch time.

use gpu_sim::{Gpu, GpuProfile};
use scd_bench::csv::{fmt, save_and_announce, Table};
use scd_bench::figdata::{criteo_fig, describe, webspam_fig_small};
use scd_core::{AsyScd, AsyncSimScd, Form, RidgeProblem, SequentialScd, Solver, TpaScd};
use scd_distributed::{Aggregation, DistributedConfig, DistributedScd, PartitionStrategy};
use scd_sparse::dense;
use std::sync::Arc;

fn epochs_to(solver: &mut dyn Solver, problem: &RidgeProblem, eps: f64, cap: usize) -> String {
    for e in 1..=cap {
        solver.epoch(problem);
        let gap = solver.duality_gap(problem);
        if !gap.is_finite() {
            return "diverged".into();
        }
        if gap <= eps {
            return e.to_string();
        }
    }
    format!(">{cap}")
}

fn main() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));

    // 1. Collision rate → plateau.
    println!("\n## wild collision rate -> gap plateau (100 epochs, primal)");
    let mut t1 = Table::new(["collision_rate", "best_gap"]);
    for rate in [0.0, 1e-4, 5e-4, 2e-3, 1e-2] {
        let mut s = AsyncSimScd::wild(&problem, Form::Primal, 1)
            .with_staleness(0)
            .with_collision_rate(rate);
        let mut best = f64::INFINITY;
        for _ in 0..100 {
            s.epoch(&problem);
            best = best.min(s.duality_gap(&problem));
        }
        println!("  rate {rate:>8}: best gap {best:.2e}");
        t1.row([format!("{rate}"), fmt(best)]);
    }
    save_and_announce(&t1, "ablation_collision_rate.csv");

    // 2. Staleness window → convergence.
    println!("\n## staleness window -> epochs to gap 1e-4 (atomic, primal)");
    let mut t2 = Table::new(["window", "epochs_to_1e-4"]);
    for window in [0usize, 3, 15, 63, 255, 1023] {
        let mut s = AsyncSimScd::a_scd(&problem, Form::Primal, 1).with_staleness(window);
        let result = epochs_to(&mut s, &problem, 1e-4, 400);
        println!("  window {window:>5}: {result}");
        t2.row([window.to_string(), result]);
    }
    save_and_announce(&t2, "ablation_staleness.csv");

    // 3. Partition strategy.
    println!("\n## partition strategy -> epochs to gap 1e-4 (K=4, primal, averaging)");
    let mut t3 = Table::new(["strategy", "epochs_to_1e-4"]);
    for (name, strategy) in [
        ("contiguous", PartitionStrategy::Contiguous),
        ("round_robin", PartitionStrategy::RoundRobin),
        ("random", PartitionStrategy::Random(7)),
    ] {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_strategy(strategy)
            .with_seed(0xAB);
        let mut dist = DistributedScd::new(&problem, &config).expect("cluster fits");
        let result = epochs_to(&mut dist, &problem, 1e-4, 1000);
        println!("  {name:<12}: {result}");
        t3.row([name.to_string(), result]);
    }
    save_and_announce(&t3, "ablation_partitioning.csv");

    // 4. Aggregation rule.
    println!("\n## aggregation -> epochs to gap 1e-4 (K=8, primal)");
    let mut t4 = Table::new(["aggregation", "epochs_to_1e-4"]);
    for agg in [
        Aggregation::Averaging,
        Aggregation::Adding,
        Aggregation::Adaptive,
    ] {
        let config = DistributedConfig::new(8, Form::Primal)
            .with_aggregation(agg)
            .with_seed(0xAB);
        let mut dist = DistributedScd::new(&problem, &config).expect("cluster fits");
        let result = epochs_to(&mut dist, &problem, 1e-4, 1000);
        println!("  {:<10}: {result}", agg.label());
        t4.row([agg.label().to_string(), result]);
    }
    save_and_announce(&t4, "ablation_aggregation.csv");

    // 5. Lanes per block: same optimum, different simulated speed.
    println!("\n## TPA lanes per block (primal, 30 epochs, M4000)");
    let mut reference: Option<Vec<f32>> = None;
    let mut t5 = Table::new(["lanes", "sim_seconds_per_epoch", "max_weight_diff_vs_64"]);
    // 64 first so later rows can diff against it.
    for lanes in [64usize, 16, 32, 128, 256] {
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut s = TpaScd::new(&problem, Form::Primal, gpu, 1)
            .unwrap()
            .with_lanes(lanes);
        let mut secs = 0.0;
        for _ in 0..30 {
            secs += s.epoch(&problem).breakdown.gpu;
        }
        let w = s.weights();
        if lanes == 64 {
            reference = Some(w.clone());
        }
        let diff = reference
            .as_ref()
            .map(|r| dense::max_abs_diff(&w, r))
            .unwrap_or(f32::NAN);
        println!(
            "  lanes {lanes:>4}: {:.2e} s/epoch, diff vs 64 lanes: {diff:.1e}",
            secs / 30.0
        );
        t5.row([
            lanes.to_string(),
            fmt(secs / 30.0),
            format!("{diff:.2e}"),
        ]);
    }
    save_and_announce(&t5, "ablation_lanes.csv");

    // 6. AsySCD [15] vs Algorithm 1 — §III-B's "slower than even a single
    // threaded implementation" claim, in simulated seconds to gap 1e-4.
    println!("\n## AsySCD [15] vs sequential SCD (simulated time to gap 1e-4)");
    let mut t6 = Table::new(["solver", "epochs", "sim_seconds", "state_bytes"]);
    let to_gap = |solver: &mut dyn Solver| -> (String, f64) {
        let mut secs = 0.0;
        for e in 1..=400 {
            secs += solver.epoch(&problem).seconds();
            if solver.duality_gap(&problem) <= 1e-4 {
                return (e.to_string(), secs);
            }
        }
        (">400".into(), secs)
    };
    let mut seq = SequentialScd::primal(&problem, 1);
    let (e_seq, t_seq) = to_gap(&mut seq);
    let seq_bytes = problem.csc().memory_bytes();
    println!("  SCD (1 thread): {e_seq} epochs, {t_seq:.3e} s, data {seq_bytes} B");
    t6.row(["SCD (1 thread)".to_string(), e_seq, fmt(t_seq), seq_bytes.to_string()]);
    let mut asy = AsyScd::new(&problem, 1.0, 1).expect("Hessian fits the cap");
    let (e_asy, t_asy) = to_gap(&mut asy);
    println!(
        "  AsySCD (eta=1): {e_asy} epochs, {t_asy:.3e} s, Hessian {} B ({}x slower)",
        asy.hessian_bytes(),
        (t_asy / t_seq).round()
    );
    t6.row([
        "AsySCD (eta=1)".to_string(),
        e_asy,
        fmt(t_asy),
        asy.hessian_bytes().to_string(),
    ]);
    save_and_announce(&t6, "ablation_asyscd.csv");

    // 7. GPU data layout: CSR (the paper's choice) vs ELLPACK, dual form.
    println!("\n## dual-kernel data layout: CSR vs ELLPACK (simulated GPU s/epoch, M4000)");
    let mut t7 = Table::new(["dataset", "layout", "padding_ratio", "gpu_seconds_per_epoch"]);
    let criteo = criteo_fig();
    for (name, p) in [("criteo-like (uniform rows)", &criteo), ("webspam-like (skewed rows)", &problem)] {
        for ell in [false, true] {
            let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
            let mut s = TpaScd::new(p, Form::Dual, gpu, 1).unwrap();
            if ell {
                s = s.with_ell_layout(p).expect("padded layout fits");
            }
            let mut secs = 0.0;
            for _ in 0..5 {
                secs += s.epoch(p).breakdown.gpu;
            }
            let layout = if ell { "ELLPACK" } else { "CSR" };
            println!(
                "  {name:<28} {layout:<8} padding {:.2}  {:.3e} s/epoch",
                s.layout_padding_ratio(),
                secs / 5.0
            );
            t7.row([
                name.to_string(),
                layout.to_string(),
                format!("{:.3}", s.layout_padding_ratio()),
                fmt(secs / 5.0),
            ]);
        }
    }
    save_and_announce(&t7, "ablation_layout.csv");
}

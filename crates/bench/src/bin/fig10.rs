//! Regenerates Figure 10 of the paper. See
//! [`scd_bench::distributed_figs::fig10`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig10();
}

//! Figure 1: convergence in duality gap for different implementations of
//! SCD, as a function of epochs (a) and of time (b), for the **primal**
//! form of ridge regression on the webspam stand-in with λ = 0.001.
//!
//! Paper headline (§III-D): A-SCD ≈ 2×, PASSCoDe-Wild ≈ 4× (but plateaus
//! above the optimum), TPA-SCD ≈ 14× (M4000) and ≈ 25× (Titan X).

use scd_bench::single_node::run_figure;
use scd_core::Form;

fn main() {
    run_figure(Form::Primal, 200, "fig1");
}

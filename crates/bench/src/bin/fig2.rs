//! Figure 2: convergence in duality gap for different implementations of
//! SCD, as a function of epochs (a) and of time (b), for the **dual** form
//! of ridge regression on the webspam stand-in with λ = 0.001.
//!
//! Paper headline (§III-D): ≈ 10× for TPA-SCD on the M4000 and ≈ 35× on
//! the Titan X, relative to single-thread sequential SCD.

use scd_bench::single_node::run_figure;
use scd_core::Form;

fn main() {
    run_figure(Form::Dual, 200, "fig2");
}

//! Regenerates Figure 4 of the paper. See
//! [`scd_bench::distributed_figs::fig4`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig4();
}

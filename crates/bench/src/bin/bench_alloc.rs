//! Steady-state heap-allocation audit of the training and serving hot
//! paths, recorded to `BENCH_alloc.json`.
//!
//! Requires the `alloc-count` feature: the crate then installs a counting
//! global allocator, and each configuration below is warmed up and
//! measured one *unit* at a time — a training epoch for the CPU engines,
//! a synchronous round for the distributed driver, a full scoring pass
//! for the serve scorer. Reported per config: the **worst** single-unit
//! allocation count and byte volume across the measured units (an upper
//! bound, so "0" really means no unit allocated), plus wall seconds per
//! unit so allocation discipline is never bought with throughput.
//!
//! `--baseline <path>` merges a previous run's numbers in as
//! `before_allocs_per_epoch` / `before_bytes_per_epoch` per label — how
//! the committed record carries the pre-workspace numbers next to the
//! post-workspace ones.
//!
//! `--smoke` shrinks everything for the tier-1 gate; `BENCH_OUT`
//! redirects the JSON.

use scd_bench::alloc_track;
use scd_bench::opts::{flag_present, flag_value};
use scd_core::{Form, ObjectiveKind, RidgeProblem, Solver, SyscdScd};
use scd_datasets::{scale_values, webspam_like};
use scd_distributed::{DistributedConfig, DistributedScd, WireFormat};
use scd_sched::Scheduler;
use scd_serve::{batch_from_pairs, BatchScorer};
use std::time::Instant;

struct Config {
    warmup: usize,
    reps: usize,
    train: RidgeProblem,
    train_label: String,
    dist: RidgeProblem,
    dist_label: String,
}

fn config(smoke: bool) -> Config {
    let (rows, cols, nnz, seed) = if smoke { (150, 120, 10, 8) } else { (2000, 1000, 20, 7) };
    let train = scale_values(&webspam_like(rows, cols, nnz, seed), 0.3);
    let (dr, dc, dn, ds) = if smoke { (200, 150, 12, 80) } else { (2000, 1200, 60, 80) };
    let dist = scale_values(&webspam_like(dr, dc, dn, ds), 0.3);
    Config {
        warmup: if smoke { 2 } else { 3 },
        reps: if smoke { 2 } else { 5 },
        train: RidgeProblem::from_labelled(&train, 1e-3).unwrap(),
        train_label: format!("webspam_like({rows}, {cols}, {nnz}, {seed}) scale 0.3"),
        dist: RidgeProblem::from_labelled(&dist, 1e-3).unwrap(),
        dist_label: format!("webspam_like({dr}, {dc}, {dn}, {ds}) scale 0.3"),
    }
}

/// Warm `unit` up, then report (worst allocs, worst bytes, mean seconds)
/// over `reps` measured units.
fn measure<F: FnMut()>(cfg: &Config, mut unit: F) -> (u64, u64, f64) {
    for _ in 0..cfg.warmup {
        unit();
    }
    let (mut allocs, mut bytes) = (0u64, 0u64);
    let start = Instant::now();
    for _ in 0..cfg.reps {
        let before = alloc_track::snapshot();
        unit();
        let (a, b) = alloc_track::delta(before);
        allocs = allocs.max(a);
        bytes = bytes.max(b);
    }
    (allocs, bytes, start.elapsed().as_secs_f64() / cfg.reps as f64)
}

/// Pull `"<field>": <integer>` for the config `label` out of a previous
/// run's JSON. The format is our own `format!` output, so plain string
/// scanning is exact.
fn baseline_field(text: &str, label: &str, field: &str) -> Option<u64> {
    let at = text.find(&format!("\"label\": \"{label}\""))?;
    let rest = &text[at..];
    let key = format!("\"{field}\": ");
    let from = rest.find(&key)? + key.len();
    let digits: String = rest[from..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let smoke = flag_present("smoke");
    let cfg = config(smoke);
    let baseline = flag_value("baseline")
        .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {p}: {e}")));
    println!(
        "# steady-state allocation audit: warmup {} units, measure {} units{}",
        cfg.warmup,
        cfg.reps,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<(String, u64, u64, f64)> = Vec::new();

    // Sequential SCD, dual form: one epoch per unit.
    {
        let mut solver = scd_core::SequentialScd::dual(&cfg.train, 1);
        let (a, b, s) = measure(&cfg, || {
            solver.epoch(&cfg.train);
        });
        rows.push(("seq".into(), a, b, s));
    }

    // SySCD at H threads on its own H-thread scheduler: one epoch per unit.
    for h in [1usize, 4, 8] {
        let sched = Scheduler::new(h);
        let mut solver = SyscdScd::new(&cfg.train, Form::Dual, h, 1).with_scheduler(sched);
        let (a, b, s) = measure(&cfg, || {
            solver.epoch(&cfg.train);
        });
        rows.push((format!("syscd-h{h}"), a, b, s));
    }

    // Synchronous distributed rounds, K=4, topk-ef:64 wire: one round per
    // unit. Round-metrics recording is off — metric rows are retained
    // history (per-worker timings, a label String per round), not scratch,
    // and would dominate the audit of the round's own hot path.
    {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_seed(42)
            .with_wire(WireFormat::TopKEf(64))
            .with_round_metrics(false);
        let mut dist = DistributedScd::new(&cfg.dist, &config).unwrap();
        let (a, b, s) = measure(&cfg, || {
            dist.epoch(&cfg.dist);
        });
        rows.push(("dist-k4-topk-ef64".into(), a, b, s));
    }

    // The serve scorer: one unit = scoring every pre-built batch (64 rows
    // each) against a fixed model.
    {
        let (rows_n, features, nnz) = if smoke { (128, 120, 8) } else { (1024, 500, 12) };
        let data = scale_values(&webspam_like(rows_n, features, nnz, 9), 0.3);
        let csr = data.matrix.to_csr();
        let beta: Vec<f32> = (0..features).map(|j| (j as f32 * 0.37).sin() * 0.1).collect();
        let batches: Vec<_> = (0..csr.rows())
            .step_by(64)
            .map(|start| {
                let end = (start + 64).min(csr.rows());
                let pairs: Vec<Vec<(u32, f32)>> = (start..end)
                    .map(|r| {
                        let row = csr.row(r);
                        row.indices.iter().copied().zip(row.values.iter().copied()).collect()
                    })
                    .collect();
                batch_from_pairs(&pairs, features).expect("dataset rows fit the model")
            })
            .collect();
        let scorer = BatchScorer::new(scd_sched::global());
        let mut scored = scd_serve::Scored::default();
        let (a, b, s) = measure(&cfg, || {
            for batch in &batches {
                scorer
                    .score_into(batch, ObjectiveKind::Ridge, &beta, &mut scored)
                    .expect("scoring succeeds");
            }
        });
        rows.push(("serve-scorer".into(), a, b, s));
    }

    let mut json_rows = Vec::new();
    for (label, allocs, bytes, secs) in &rows {
        let mut extra = String::new();
        if let Some(text) = &baseline {
            if let (Some(ba), Some(bb)) = (
                baseline_field(text, label, "allocs_per_epoch"),
                baseline_field(text, label, "bytes_per_epoch"),
            ) {
                let cut = if ba == 0 {
                    100.0
                } else {
                    100.0 * (1.0 - *allocs as f64 / ba as f64)
                };
                extra = format!(
                    ",\n      \"before_allocs_per_epoch\": {ba},\n      \
                     \"before_bytes_per_epoch\": {bb},\n      \
                     \"alloc_reduction_percent\": {cut:.2}"
                );
            }
        }
        println!("# {label}: {allocs} allocs/unit, {bytes} B/unit, {:.3} ms/unit", secs * 1e3);
        json_rows.push(format!(
            "    {{\n      \"label\": \"{label}\",\n      \"allocs_per_epoch\": {allocs},\n      \
             \"bytes_per_epoch\": {bytes},\n      \"seconds_per_epoch\": {secs:.6e}{extra}\n    }}"
        ));
    }

    let out = format!(
        "{{\n  \"benchmark\": \"steady_state_allocations\",\n  \"smoke\": {smoke},\n  \
         \"unit\": \"one epoch (seq/syscd), one round (dist), one full scoring pass (serve)\",\n  \
         \"statistic\": \"worst single unit after warm-up\",\n  \
         \"train_dataset\": \"{}\",\n  \"dist_dataset\": \"{}\",\n  \
         \"warmup_units\": {},\n  \"measured_units\": {},\n  \"configs\": [\n{}\n  ]\n}}\n",
        cfg.train_label,
        cfg.dist_label,
        cfg.warmup,
        cfg.reps,
        json_rows.join(",\n")
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_alloc.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
}

//! Wall-clock benchmark of the unified host scheduler, recorded to
//! `BENCH_sched.json` so the perf trajectory is tracked across PRs.
//!
//! Two configurations run the *same* simulated work — K TPA-SCD workers
//! each doing one dual epoch per round on their own partition:
//!
//! * `fragmented`: the pre-unification shape — K dedicated round threads
//!   (a `crossbeam::scope`), each worker's device driving its own private
//!   H-thread scheduler, so the process holds `K + K*(H-1)` host threads
//!   and they fight for the cores. This variant even skips the per-epoch
//!   barrier the real driver pays, so the comparison is conservative.
//! * `shared`: everything on one H-thread work-stealing scheduler — the
//!   K rounds are a task group (`RoundPool`) and each round's kernel
//!   grids nest onto the same threads.
//!
//! The headline is `speedup_shared_over_fragmented` per H ∈ {1, 2, 4};
//! on a 1-core host the expectation is parity (no regression), on a
//! multi-core host the shared pool should win by avoiding
//! oversubscription.

use gpu_sim::{Gpu, GpuProfile};
use scd_core::problem::{Form, RidgeProblem};
use scd_core::solver::Solver;
use scd_core::tpa::TpaScd;
use scd_datasets::{scale_values, webspam_like};
use scd_distributed::{partition_problem, RoundPool};
use scd_sched::Scheduler;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const WORKERS: usize = 3;
const LANES: usize = 64;

fn partitions() -> Vec<RidgeProblem> {
    let data = scale_values(&webspam_like(900, 600, 40, 80), 0.3);
    let full = RidgeProblem::from_labelled(&data, 1e-3).unwrap();
    partition_problem(
        &full,
        Form::Dual,
        WORKERS,
        scd_distributed::PartitionStrategy::Contiguous,
    )
    .into_iter()
    .map(|p| p.problem)
    .collect()
}

fn solver_on(sched: &Arc<Scheduler>, h: usize, problem: &RidgeProblem, seed: u64) -> TpaScd {
    let gpu = Gpu::new(GpuProfile::quadro_m4000())
        .with_scheduler(Arc::clone(sched))
        .with_host_threads(h);
    TpaScd::new(problem, Form::Dual, Arc::new(gpu), seed)
        .unwrap()
        .with_lanes(LANES)
}

/// K dedicated round threads, each with a private H-thread scheduler.
fn fragmented_seconds_per_epoch(parts: &[RidgeProblem], h: usize, epochs: usize) -> f64 {
    let mut solvers: Vec<(TpaScd, &RidgeProblem)> = parts
        .iter()
        .enumerate()
        .map(|(k, p)| (solver_on(&Scheduler::new(h), h, p, k as u64 + 1), p))
        .collect();
    for (s, p) in solvers.iter_mut() {
        s.epoch(p); // warm the device pools before timing
    }
    let start = Instant::now();
    crossbeam::scope(|scope| {
        for (s, p) in solvers.iter_mut() {
            scope.spawn(move |_| {
                for _ in 0..epochs {
                    s.epoch(p);
                }
            });
        }
    })
    .expect("fragmented worker panicked");
    start.elapsed().as_secs_f64() / epochs as f64
}

/// One H-thread scheduler for the round group and every nested grid.
/// Returns (seconds/epoch, peak host parallelism observed).
fn shared_seconds_per_epoch(parts: &[RidgeProblem], h: usize, epochs: usize) -> (f64, usize) {
    let sched = Scheduler::new(h);
    let solvers: Vec<(Mutex<TpaScd>, &RidgeProblem)> = parts
        .iter()
        .enumerate()
        .map(|(k, p)| (Mutex::new(solver_on(&sched, h, p, k as u64 + 1)), p))
        .collect();
    for (s, p) in &solvers {
        s.lock().unwrap().epoch(p);
    }
    let pool = RoundPool::on(Arc::clone(&sched), WORKERS);
    sched.reset_peak();
    let start = Instant::now();
    for _ in 0..epochs {
        pool.run(WORKERS, &|k| {
            let (s, p) = &solvers[k];
            s.lock().unwrap().epoch(p);
        });
    }
    let per_epoch = start.elapsed().as_secs_f64() / epochs as f64;
    (per_epoch, sched.peak_parallelism())
}

/// How many threads the scheduler can *engage* at width `h`: run a wide
/// flat group of rendezvous tasks that each park until `h` of them are
/// on-core simultaneously, then read the peak. Unlike the free-running
/// epochs above — whose short tasks can drain before parked workers
/// reach a core on a loaded host, legitimately under-filling
/// `shared_peak_parallelism` — this probe is insensitive to task
/// granularity, so it separates "scheduler cannot subscribe H threads"
/// (a bug) from "the bench's tasks were too short to need them" (not).
fn engageable_parallelism(h: usize) -> usize {
    let sched = Scheduler::new(h);
    let tasks = 4 * h;
    let expect = h.min(tasks);
    sched.reset_peak();
    let arrivals = Mutex::new(0usize);
    let cv = Condvar::new();
    sched.parallel_for(tasks, &|_| {
        let mut arrived = arrivals.lock().unwrap();
        *arrived += 1;
        if *arrived >= expect {
            cv.notify_all();
        } else {
            let (_guard, timeout) = cv
                .wait_timeout_while(arrived, Duration::from_secs(10), |a| *a < expect)
                .unwrap();
            assert!(
                !timeout.timed_out(),
                "scheduler width {h} failed to engage {expect} tasks"
            );
        }
    });
    sched.peak_parallelism()
}

fn main() {
    let parts = partitions();
    let epochs: usize = std::env::var("BENCH_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "# {WORKERS}-worker TPA-SCD rounds, fragmented vs shared scheduler, {epochs} epochs/config, host cores {host}"
    );
    let reps: usize = std::env::var("BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut rows = Vec::new();
    for h in [1usize, 2, 4] {
        // Interleave the variants and keep the best of `reps` runs each:
        // on a shared host the minimum is the least noisy estimator.
        let mut fragmented = f64::INFINITY;
        let mut shared = f64::INFINITY;
        let mut peak = 0usize;
        for _ in 0..reps {
            fragmented = fragmented.min(fragmented_seconds_per_epoch(&parts, h, epochs));
            let (s, p) = shared_seconds_per_epoch(&parts, h, epochs);
            shared = shared.min(s);
            peak = peak.max(p);
        }
        let speedup = fragmented / shared;
        let engageable = engageable_parallelism(h);
        println!(
            "# H={h}: fragmented {:.3} ms/epoch ({} host threads), shared {:.3} ms/epoch ({h} host threads, peak {peak}, engageable {engageable}), speedup {speedup:.2}x",
            fragmented * 1e3,
            WORKERS + WORKERS * (h - 1),
            shared * 1e3,
        );
        assert!(
            peak <= h.max(1),
            "shared scheduler exceeded its configured width: peak {peak} > {h}"
        );
        assert_eq!(
            engageable, h,
            "scheduler must engage its full width when tasks are long enough"
        );
        rows.push(format!(
            "    {{\n      \"host_threads\": {h},\n      \"fragmented_threads_total\": {},\n      \"fragmented_seconds_per_epoch\": {fragmented:.6e},\n      \"shared_seconds_per_epoch\": {shared:.6e},\n      \"shared_peak_parallelism\": {peak},\n      \"engageable_parallelism\": {engageable},\n      \"speedup_shared_over_fragmented\": {speedup:.3}\n    }}",
            WORKERS + WORKERS * (h - 1)
        ));
    }

    let out = format!(
        "{{\n  \"benchmark\": \"host_scheduler_fragmented_vs_shared\",\n  \"dataset\": \"webspam_like(900, 600, 40, 80) scale 0.3, dual form, K={WORKERS} contiguous partitions\",\n  \"epochs_timed\": {epochs},\n  \"host_parallelism\": {host},\n  \"configs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_sched.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
}

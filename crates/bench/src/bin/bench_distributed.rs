//! Wall-clock benchmark of the distributed round runtime, recorded to
//! `BENCH_distributed.json` so the perf trajectory is tracked across PRs.
//!
//! For K ∈ {1, 2, 4, 8} workers the *same* cluster (identical partitions,
//! seeds, and trajectory — bit-identity is covered by
//! `crates/distributed/tests/runtime_fault.rs`) runs its epochs twice:
//!
//! * `sequential`: the reference inline loop, one worker after another;
//! * `concurrent`: rounds on the persistent `RoundPool` host threads.
//!
//! A second section demonstrates the fault layer: one worker's round is
//! dropped every epoch (`rotating_drop`) and the per-round `RoundMetrics`
//! series — drops, retries, rescaled γ — is embedded in the JSON record.
//!
//! A third section sweeps the delta wire format at K=4 (raw, fp16,
//! topk:64, topk-ef:64) and records raw vs encoded bytes, the compression
//! ratio, and the duality gap each codec reaches — the bandwidth/accuracy
//! trade-off of the `scd-wire` subsystem. The timed rows honour `--wire`
//! (default raw).
//!
//! A fourth section sweeps the staleness bound τ of the event-driven
//! runtime at K=4 with a 4x straggler on worker 3: τ=0 is the barrier
//! (bit-identical to the synchronous driver), τ ∈ {1, 4, ∞} let the fast
//! workers pipeline past the straggler. Recorded per τ: simulated seconds
//! per epoch, epochs and simulated seconds to a 5e-3 gap, and the final
//! gap — the freshness/overlap trade the bounded-staleness design buys.

use scd_bench::opts::wire_flag;
use scd_core::{Form, RidgeProblem, Solver};
use scd_datasets::{scale_values, webspam_like};
use scd_distributed::{
    AsyncScd, DistributedConfig, DistributedScd, FaultPlan, RoundMetrics, RoundRuntime, Staleness,
    WireFormat,
};
use std::time::Instant;

fn problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(2000, 1200, 60, 80), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

/// Mean host wall-clock per epoch for one cluster configuration.
fn epoch_seconds(
    full: &RidgeProblem,
    workers: usize,
    runtime: RoundRuntime,
    epochs: usize,
    wire: WireFormat,
) -> f64 {
    let config = DistributedConfig::new(workers, Form::Primal)
        .with_seed(42)
        .with_wire(wire)
        .with_runtime(runtime);
    let mut dist = DistributedScd::new(full, &config).unwrap();
    dist.epoch(full); // warm the pool (and caches) before timing
    let start = Instant::now();
    for _ in 0..epochs {
        dist.epoch(full);
    }
    start.elapsed().as_secs_f64() / epochs as f64
}

/// 20 epochs with one worker dropped per round; returns (metrics JSON,
/// final duality gap, first-epoch gap).
fn fault_demo(full: &RidgeProblem, epochs: usize) -> (String, f64, f64) {
    let plan = FaultPlan {
        rotating_drop: true,
        max_retries: 1,
        ..FaultPlan::none()
    };
    let config = DistributedConfig::new(4, Form::Primal)
        .with_seed(42)
        .with_fault(plan);
    let mut dist = DistributedScd::new(full, &config).unwrap();
    dist.epoch(full);
    let first_gap = dist.duality_gap(full);
    for _ in 1..epochs {
        dist.epoch(full);
    }
    let gap = dist.duality_gap(full);
    (
        RoundMetrics::series_to_json(dist.round_metrics()),
        gap,
        first_gap,
    )
}

fn main() {
    let full = problem();
    let epochs: usize = std::env::var("BENCH_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "# Distributed SCD epoch wall-clock, webspam-like {}x{} ({} nnz), {} epochs/config, {} host cores",
        full.n(),
        full.m(),
        full.csr().nnz(),
        epochs,
        host_threads
    );

    let wire = wire_flag();
    println!("# wire format for timed rows: {wire}");

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let seq = epoch_seconds(&full, k, RoundRuntime::Sequential, epochs, wire);
        let conc =
            epoch_seconds(&full, k, RoundRuntime::Concurrent { threads: 0 }, epochs, wire);
        let speedup = seq / conc;
        println!(
            "# K={k}: sequential {:.3} ms/epoch, concurrent {:.3} ms/epoch, {speedup:.2}x",
            seq * 1e3,
            conc * 1e3
        );
        rows.push(format!(
            "    {{\"workers\": {k}, \"sequential_seconds_per_epoch\": {seq:.6e}, \
             \"concurrent_seconds_per_epoch\": {conc:.6e}, \
             \"speedup_concurrent_over_sequential\": {speedup:.3}}}"
        ));
    }

    let fault_epochs = 20;
    let (fault_metrics, fault_gap, fault_first_gap) = fault_demo(&full, fault_epochs);
    println!(
        "# fault demo (1 of 4 workers dropped/round, {fault_epochs} epochs): gap {fault_first_gap:.3e} -> {fault_gap:.3e}"
    );

    // Compression sweep: same K=4 cluster under each wire format.
    let sweep_epochs = 60;
    let mut sweep_rows = Vec::new();
    for w in [
        WireFormat::Raw,
        WireFormat::Fp16,
        WireFormat::TopK(64),
        WireFormat::TopKEf(64),
    ] {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_seed(42)
            .with_wire(w);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        for _ in 0..sweep_epochs {
            dist.epoch(&full);
        }
        let gap = dist.duality_gap(&full);
        let (raw, encoded) = dist.wire_bytes_total();
        let ratio = raw as f64 / encoded as f64;
        println!(
            "# wire {w}: {raw} B raw -> {encoded} B encoded ({ratio:.2}x), gap {gap:.3e} after {sweep_epochs} epochs"
        );
        sweep_rows.push(format!(
            "    {{\"wire\": \"{w}\", \"epochs\": {sweep_epochs}, \"bytes_raw\": {raw}, \
             \"bytes_encoded\": {encoded}, \"compression_ratio\": {ratio:.3}, \
             \"final_duality_gap\": {gap:.6e}}}"
        ));
    }

    // Staleness sweep: K=4 with a 4x straggler so the barrier actually
    // costs something for bounded staleness to remove.
    let stale_eps = 5e-3;
    let stale_cap = 300usize;
    let mut stale_rows = Vec::new();
    for tau in [
        Staleness::Bounded(0),
        Staleness::Bounded(1),
        Staleness::Bounded(4),
        Staleness::Unbounded,
    ] {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_seed(42)
            .with_wire(wire)
            .with_worker_slowdowns(vec![1.0, 1.0, 1.0, 4.0]);
        let mut event = AsyncScd::new(&full, &config, tau).unwrap();
        let mut sim_seconds = 0.0;
        let mut ran = 0usize;
        let mut converged = false;
        while ran < stale_cap {
            sim_seconds += event.epoch(&full).seconds();
            ran += 1;
            if event.duality_gap(&full) <= stale_eps {
                converged = true;
                break;
            }
        }
        let gap = event.duality_gap(&full);
        let per_epoch = sim_seconds / ran as f64;
        println!(
            "# staleness tau={tau}: {ran} epochs ({}), {per_epoch:.3e} sim s/epoch, \
             {sim_seconds:.3e} sim s total, gap {gap:.3e}",
            if converged { "converged" } else { "cap hit" }
        );
        stale_rows.push(format!(
            "    {{\"tau\": \"{tau}\", \"converged\": {converged}, \"epochs_to_5e-3\": {ran}, \
             \"sim_seconds_per_epoch\": {per_epoch:.6e}, \"sim_seconds_to_5e-3\": {sim_seconds:.6e}, \
             \"final_duality_gap\": {gap:.6e}}}"
        ));
    }

    let indented_metrics = fault_metrics.replace('\n', "\n  ");
    let out = format!(
        "{{\n  \"benchmark\": \"distributed_scd_rounds\",\n  \"dataset\": \"webspam_like(2000, 1200, 60, 80) scale 0.3\",\n  \"lambda\": 1e-3,\n  \"epochs_timed\": {epochs},\n  \"host_threads\": {host_threads},\n  \"wire\": \"{wire}\",\n  \"rounds\": [\n{}\n  ],\n  \"compression_sweep\": [\n{}\n  ],\n  \"staleness_sweep\": {{\n    \"cluster\": \"K=4, worker 3 slowed 4x\",\n    \"gap_target\": 5e-3,\n    \"epoch_cap\": {stale_cap},\n    \"rows\": [\n{}\n    ]\n  }},\n  \"fault_demo\": {{\n    \"plan\": \"rotating_drop, max_retries 1, K=4\",\n    \"epochs\": {fault_epochs},\n    \"first_epoch_duality_gap\": {fault_first_gap:.6e},\n    \"final_duality_gap\": {fault_gap:.6e},\n    \"round_metrics\": {indented_metrics}\n  }}\n}}\n",
        rows.join(",\n"),
        sweep_rows.join(",\n"),
        stale_rows.join(",\n")
    );
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_distributed.json".to_string());
    std::fs::write(&path, out).expect("writing benchmark record");
    println!("# wrote {path}");
}

//! Synchronous vs asynchronous distribution — the design decision behind
//! §V-A: "we have opted to use synchronous communication between the
//! workers at the network level and asynchronous communication between the
//! 'sub-workers' at the GPU level."
//!
//! This study puts the road not taken next to the road taken: the
//! asynchronous parameter-server scheme of [6] (additive pushes against
//! stale snapshots, communication hidden by compute, no aggregation
//! parameter to tune) against the synchronous Algorithm 3/4 rounds
//! (barriers and reduce/broadcast costs, but a principled γ*).

use scd_bench::csv::{fmt, save_and_announce, Table};
use scd_bench::figdata::{describe, scaled_link, webspam_fig_small};
use scd_bench::opts::wire_flag;
use scd_core::{Form, Solver};
use scd_distributed::{
    Aggregation, AsyncScd, DistributedConfig, DistributedScd, ParamServerConfig, ParamServerScd,
    Staleness,
};
use scd_perf_model::LinkProfile;

fn run_to(solver: &mut dyn Solver, p: &scd_core::RidgeProblem, eps: f64, cap: usize) -> (String, String) {
    let mut secs = 0.0;
    for e in 1..=cap {
        secs += solver.epoch(p).seconds();
        let gap = solver.duality_gap(p);
        if !gap.is_finite() {
            return ("diverged".into(), "-".into());
        }
        if gap <= eps {
            return (e.to_string(), fmt(secs));
        }
    }
    (format!(">{cap}"), "-".into())
}

fn main() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let form = Form::Primal;
    let eps = 1e-4;
    let link = scaled_link(&LinkProfile::ethernet_10g(), &problem, form);
    let wire = wire_flag();
    println!("# wire format: {wire}");

    let mut table = Table::new(["scheme", "workers", "epochs_to_1e-4", "sim_seconds"]);
    for k in [2usize, 4, 8] {
        println!("# K = {k}:");
        // Synchronous, averaging (Algorithm 3).
        let mut sync_avg = DistributedScd::new(
            &problem,
            &DistributedConfig::new(k, form)
                .with_network(link.clone())
                .with_wire(wire)
                .with_seed(0x5A),
        )
        .expect("cluster fits");
        let (e, s) = run_to(&mut sync_avg, &problem, eps, 3000);
        println!("#   synchronous averaging:  {e:>7} epochs, {s} s");
        table.row(["sync averaging".to_string(), k.to_string(), e, s]);

        // Synchronous, adaptive (Algorithm 4).
        let mut sync_ada = DistributedScd::new(
            &problem,
            &DistributedConfig::new(k, form)
                .with_aggregation(Aggregation::Adaptive)
                .with_network(link.clone())
                .with_wire(wire)
                .with_seed(0x5A),
        )
        .expect("cluster fits");
        let (e, s) = run_to(&mut sync_ada, &problem, eps, 3000);
        println!("#   synchronous adaptive:   {e:>7} epochs, {s} s");
        table.row(["sync adaptive".to_string(), k.to_string(), e, s]);

        // Bounded-staleness event runtime: τ=0 replays the synchronous
        // barrier bit-for-bit (same epochs as "sync averaging" above),
        // larger τ trades snapshot freshness for overlap — the middle
        // ground between the barrier and the free-running server below.
        for tau in [
            Staleness::Bounded(0),
            Staleness::Bounded(1),
            Staleness::Bounded(4),
            Staleness::Unbounded,
        ] {
            let mut event = AsyncScd::new(
                &problem,
                &DistributedConfig::new(k, form)
                    .with_network(link.clone())
                    .with_wire(wire)
                    .with_seed(0x5A),
                tau,
            )
            .expect("cluster fits");
            let (e, s) = run_to(&mut event, &problem, eps, 3000);
            let label = format!("event tau={tau}:");
            println!("#   {label:<24}{e:>7} epochs, {s} s");
            table.row([format!("event tau={tau}"), k.to_string(), e, s]);
        }

        // Asynchronous parameter server [6], across push granularities:
        // small chunks are nearly fresh (fast convergence, chatty), large
        // chunks overshoot with no γ to rein them in — the tuning burden
        // the synchronous adaptive design avoids.
        for divisor in [512usize, 128, 32] {
            let chunk = (problem.coords(form) / divisor).max(1);
            let mut ps = ParamServerScd::new(
                &problem,
                &ParamServerConfig::new(k, form)
                    .with_chunk(chunk)
                    .with_network(link.clone())
                    .with_wire(wire)
                    .with_seed(0x5A),
            );
            let (e, s) = run_to(&mut ps, &problem, eps, 3000);
            println!("#   async PS (chunk {chunk:>3}):   {e:>7} epochs, {s} s");
            table.row([
                format!("async param-server chunk {chunk}"),
                k.to_string(),
                e,
                s,
            ]);
        }
    }
    save_and_announce(&table, "syncasync.csv");
    println!(
        "# reading: the async scheme's stability cliff moves with K (a push size \
         that converges at K=4 diverges at K=8) and there is no γ to rein it in; \
         the synchronous design with adaptive γ* is robust at every K without \
         tuning — the trade the paper makes in §V-A"
    );
}

//! Regenerates Figure 9 of the paper. See
//! [`scd_bench::distributed_figs::fig9`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig9();
}

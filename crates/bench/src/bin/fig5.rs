//! Regenerates Figure 5 of the paper. See
//! [`scd_bench::distributed_figs::fig5`] for the experiment definition.

fn main() {
    scd_bench::distributed_figs::fig5();
}

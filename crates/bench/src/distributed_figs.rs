//! Shared implementation of the distributed figures (Figs. 3–6, 8–10).

use crate::csv::{fmt, save_and_announce, Table};
use crate::figdata::{criteo_fig, describe, scaled_cpu, scaled_gpu, scaled_link, webspam_fig_small};
use scd_perf_model::CpuProfile;
use crate::harness::{run_distributed_convergence, speedup_at};
use crate::plot::{render, Series};
use gpu_sim::GpuProfile;
use scd_core::{AsyncCpuMode, ConvergenceRecorder, Form, RidgeProblem, Solver};
use scd_distributed::{Aggregation, DistributedConfig, DistributedScd, LocalSolverKind};
use scd_perf_model::LinkProfile;

/// Epsilon thresholds of Figs. 6 and 8.
pub const EPSILONS: [f64; 3] = [3e-3, 3e-4, 3e-5];

/// Build the standard CPU-cluster config for the webspam stand-in.
fn cpu_cluster_config(
    problem: &RidgeProblem,
    k: usize,
    form: Form,
    aggregation: Aggregation,
) -> DistributedConfig {
    DistributedConfig::new(k, form)
        .with_aggregation(aggregation)
        .with_network(scaled_link(&LinkProfile::ethernet_10g(), problem, form))
        .with_seed(0xD15)
}

/// Run a distributed configuration until the gap reaches `target` or
/// `max_epochs` elapse, recording γ and the time breakdown per epoch.
fn run_dist_until(
    problem: &RidgeProblem,
    config: &DistributedConfig,
    target: f64,
    max_epochs: usize,
) -> ConvergenceRecorder {
    let mut dist = DistributedScd::new(problem, config).expect("cluster fits");
    let mut rec = ConvergenceRecorder::new();
    rec.record_initial(dist.duality_gap(problem));
    for _ in 0..max_epochs {
        let stats = dist.epoch(problem);
        let gap = dist.duality_gap(problem);
        rec.record_epoch(stats.breakdown, gap, dist.last_gamma());
        if gap <= target {
            break;
        }
    }
    rec
}

/// Figure 3: distributed SCD convergence vs epochs for K = 1, 2, 4, 8,
/// primal (a) and dual (b), averaging aggregation — the approximately
/// linear per-epoch slow-down.
pub fn fig3() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let mut table = Table::new(["form", "workers", "epoch", "duality_gap"]);
    for (form, max_epochs) in [(Form::Primal, 400), (Form::Dual, 150)] {
        println!("# {} form:", form.label());
        let mut plot_series = Vec::new();
        let mut rate_k1: Option<f64> = None;
        for k in [1usize, 2, 4, 8] {
            let config = cpu_cluster_config(&problem, k, form, Aggregation::Averaging);
            let rec = run_dist_until(&problem, &config, 1e-6, max_epochs);
            for pt in rec.points() {
                table.row([
                    form.label().to_string(),
                    k.to_string(),
                    pt.epoch.to_string(),
                    fmt(pt.gap),
                ]);
            }
            // Quantify the slow-down as the ratio of epochs to a fixed gap
            // (the curves are not single-exponential, so a global rate fit
            // would mix the fast transient with the tail).
            let epochs = rec.epochs_to_gap(1e-4);
            if k == 1 {
                rate_k1 = epochs.map(|e| e as f64);
            }
            let slowdown = match (rate_k1, epochs) {
                (Some(e1), Some(ek)) => ek as f64 / e1,
                _ => f64::NAN,
            };
            println!(
                "#   K={k}: epochs to gap 1e-4: {epochs:?} ({slowdown:.1}x vs K=1; linear slow-down would be {k}x)"
            );
            plot_series.push(Series {
                label: format!("{k} worker(s)"),
                points: rec
                    .points()
                    .iter()
                    .map(|pt| (pt.epoch as f64, pt.gap))
                    .collect(),
            });
        }
        println!("{}", render(&plot_series, 64, 16, "epochs"));
    }
    save_and_announce(&table, "fig3.csv");
}

/// Figure 4: averaging vs adaptive aggregation at K = 8, primal (a) and
/// dual (b). The paper sees ≈2× fewer epochs for the primal and a
/// crossover near gap 5e-4 for the dual.
pub fn fig4() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let mut table = Table::new(["form", "aggregation", "epoch", "duality_gap"]);
    for (form, max_epochs) in [(Form::Primal, 800), (Form::Dual, 200)] {
        println!("# {} form:", form.label());
        for agg in [Aggregation::Averaging, Aggregation::Adaptive] {
            let config = cpu_cluster_config(&problem, 8, form, agg);
            let rec = run_dist_until(&problem, &config, 1e-6, max_epochs);
            for pt in rec.points() {
                table.row([
                    form.label().to_string(),
                    agg.label().to_string(),
                    pt.epoch.to_string(),
                    fmt(pt.gap),
                ]);
            }
            println!(
                "#   {}: epochs to 1e-4 = {:?}, to 1e-5 = {:?}",
                agg.label(),
                rec.epochs_to_gap(1e-4),
                rec.epochs_to_gap(1e-5)
            );
        }
    }
    save_and_announce(&table, "fig4.csv");
}

/// Figure 5: evolution of the optimal aggregation parameter γ*ₜ for
/// K = 1, 2, 4, 8 — starts low, rises, and settles well above 1/K.
pub fn fig5() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let mut table = Table::new(["form", "workers", "epoch", "gamma"]);
    for (form, epochs) in [(Form::Primal, 80), (Form::Dual, 30)] {
        println!("# {} form:", form.label());
        for k in [1usize, 2, 4, 8] {
            let config = cpu_cluster_config(&problem, k, form, Aggregation::Adaptive);
            let mut dist = DistributedScd::new(&problem, &config).expect("cluster fits");
            let rec = run_distributed_convergence(&mut dist, &problem, epochs);
            let mut last = 0.0;
            for pt in &rec.points()[1..] {
                table.row([
                    form.label().to_string(),
                    k.to_string(),
                    pt.epoch.to_string(),
                    fmt(pt.gamma),
                ]);
                last = pt.gamma;
            }
            println!(
                "#   K={k}: final gamma {last:.3} (averaging would use {:.3})",
                1.0 / k as f64
            );
        }
    }
    save_and_announce(&table, "fig5.csv");
}

/// Figure 6: time to reach duality gap ε vs number of workers, averaging
/// vs adaptive, ε ∈ {3e-3, 3e-4, 3e-5} — roughly flat scaling.
pub fn fig6() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let mut table = Table::new(["form", "aggregation", "workers", "epsilon", "seconds"]);
    for form in [Form::Primal, Form::Dual] {
        println!("# {} form:", form.label());
        for agg in [Aggregation::Averaging, Aggregation::Adaptive] {
            let mut times: Vec<Option<f64>> = Vec::with_capacity(8);
            for k in 1..=8usize {
                let config = cpu_cluster_config(&problem, k, form, agg);
                let rec = run_dist_until(&problem, &config, EPSILONS[2], 3000);
                for &eps in &EPSILONS {
                    let cell = rec
                        .seconds_to_gap(eps)
                        .map(fmt)
                        .unwrap_or_else(|| "unreached".into());
                    table.row([
                        form.label().to_string(),
                        agg.label().to_string(),
                        k.to_string(),
                        format!("{eps:.0e}"),
                        cell,
                    ]);
                }
                times.push(rec.seconds_to_gap(EPSILONS[2]));
            }
            // Flat-scaling summary at the tightest epsilon.
            if let (Some(t1), Some(t8)) = (times[0], times[7]) {
                println!(
                    "#   {}: K=1 {:.4}s -> K=8 {:.4}s at eps 3e-5 (ratio {:.2})",
                    agg.label(),
                    t1,
                    t8,
                    t8 / t1
                );
            }
        }
    }
    save_and_announce(&table, "fig6.csv");
}

/// Figure 8: distributed TPA-SCD vs distributed sequential SCD, dual form,
/// time-to-ε vs workers, on the M4000 cluster (a: 10 GbE) and the Titan X
/// box (b: PCIe interconnect). Averaging aggregation, as in the paper.
pub fn fig8() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let form = Form::Dual;
    let mut table = Table::new(["testbed", "solver", "workers", "epsilon", "seconds"]);
    let testbeds: [(&str, GpuProfile, LinkProfile); 2] = [
        (
            "M4000 cluster",
            scaled_gpu(&GpuProfile::quadro_m4000(), &problem, form),
            LinkProfile::ethernet_10g(),
        ),
        (
            "Titan X box",
            scaled_gpu(&GpuProfile::titan_x_maxwell(), &problem, form),
            LinkProfile::pcie3_x16(),
        ),
    ];
    for (testbed, gpu, link) in testbeds {
        println!("# {testbed}:");
        for (solver_name, kind) in [
            ("SCD", LocalSolverKind::Sequential),
            (
                "TPA-SCD",
                LocalSolverKind::Tpa {
                    profile: gpu.clone(),
                    lanes: 64,
                    deterministic: true,
                },
            ),
        ] {
            let mut k1_time = None;
            for k in 1..=8usize {
                let config = DistributedConfig::new(k, form)
                    .with_aggregation(Aggregation::Averaging)
                    .with_network(scaled_link(&link, &problem, form))
                    .with_pcie(scaled_link(&LinkProfile::pcie3_x16(), &problem, form))
                    .with_cpu(scaled_cpu(&CpuProfile::xeon_e5_2640(), &problem, form))
                    .with_solver(kind.clone())
                    .with_seed(0xF18);
                let rec = run_dist_until(&problem, &config, EPSILONS[2], 3000);
                for &eps in &EPSILONS {
                    let cell = rec
                        .seconds_to_gap(eps)
                        .map(fmt)
                        .unwrap_or_else(|| "unreached".into());
                    table.row([
                        testbed.to_string(),
                        solver_name.to_string(),
                        k.to_string(),
                        format!("{eps:.0e}"),
                        cell,
                    ]);
                }
                if k == 1 {
                    k1_time = rec.seconds_to_gap(EPSILONS[2]);
                }
                if k == 8 {
                    if let (Some(t1), Some(t8)) = (k1_time, rec.seconds_to_gap(EPSILONS[2])) {
                        println!(
                            "#   {solver_name}: K=1 {t1:.4}s -> K=8 {t8:.4}s at eps 3e-5"
                        );
                    }
                }
            }
        }
    }
    save_and_announce(&table, "fig8.csv");
    println!("# expected shape: TPA-SCD curves sit ~an order of magnitude below SCD at every K");
}

/// Figure 9: computation vs communication breakdown on the M4000 cluster,
/// dual form, time to reach duality gap 1e-5 split into GPU compute, host
/// compute, PCIe and network — communication ≈17% of total at K = 8.
pub fn fig9() {
    let problem = webspam_fig_small();
    println!("{}", describe("webspam stand-in (small)", &problem));
    let form = Form::Dual;
    let target = 1e-5;
    let mut table = Table::new([
        "workers", "gpu_s", "host_s", "pcie_s", "network_s", "total_s", "comm_share",
    ]);
    for k in [1usize, 2, 4, 8] {
        let config = DistributedConfig::new(k, form)
            .with_aggregation(Aggregation::Averaging)
            .with_network(scaled_link(&LinkProfile::ethernet_10g(), &problem, form))
            .with_pcie(scaled_link(&LinkProfile::pcie3_x16(), &problem, form))
            .with_cpu(scaled_cpu(&CpuProfile::xeon_e5_2640(), &problem, form))
            .with_solver(LocalSolverKind::Tpa {
                profile: scaled_gpu(&GpuProfile::quadro_m4000(), &problem, form),
                lanes: 64,
                deterministic: true,
            })
            .with_seed(0xF19);
        let rec = run_dist_until(&problem, &config, target, 3000);
        match rec.breakdown_to_gap(target) {
            Some(b) => {
                let comm = (b.pcie + b.network) / b.total();
                table.row([
                    k.to_string(),
                    fmt(b.gpu),
                    fmt(b.host),
                    fmt(b.pcie),
                    fmt(b.network),
                    fmt(b.total()),
                    format!("{:.1}%", 100.0 * comm),
                ]);
                println!(
                    "# K={k}: total {:.4}s, communication share {:.1}%",
                    b.total(),
                    100.0 * comm
                );
            }
            None => println!("# K={k}: target gap not reached"),
        }
    }
    save_and_announce(&table, "fig9.csv");
}

/// Figure 10: the large-scale criteo stand-in, dual form, K = 4 workers:
/// distributed sequential SCD and distributed PASSCoDe-Wild (both
/// averaging, as Algorithm 3) vs distributed TPA-SCD on Titan X GPUs with
/// adaptive aggregation. Paper headline: ≈40× over 1-thread workers and
/// ≈20× over 16-thread wild workers, with the wild gap saturating.
pub fn fig10() {
    let problem = criteo_fig();
    println!("{}", describe("criteo stand-in", &problem));
    let form = Form::Dual;
    let k = 4;
    let epochs = 150;
    let network = scaled_link(&LinkProfile::pcie3_x16(), &problem, form);

    let schemes: Vec<(&str, DistributedConfig)> = vec![
        (
            "SCD (1 thread)",
            DistributedConfig::new(k, form)
                .with_network(network.clone())
                .with_seed(0xF10),
        ),
        (
            "PASSCoDe (16 threads)",
            DistributedConfig::new(k, form)
                .with_network(network.clone())
                .with_solver(LocalSolverKind::AsyncSim {
                    mode: AsyncCpuMode::Wild,
                    threads: 16,
                    paper_scale_staleness: true,
                })
                .with_seed(0xF10),
        ),
        (
            "TPA-SCD (Titan X)",
            DistributedConfig::new(k, form)
                .with_network(network)
                .with_pcie(scaled_link(&LinkProfile::pcie3_x16(), &problem, form))
                .with_cpu(scaled_cpu(&CpuProfile::xeon_e5_2640(), &problem, form))
                .with_aggregation(Aggregation::Adaptive)
                .with_solver(LocalSolverKind::Tpa {
                    profile: scaled_gpu(&GpuProfile::titan_x_maxwell(), &problem, form),
                    lanes: 64,
                    deterministic: true,
                })
                .with_seed(0xF10),
        ),
    ];

    let mut table = Table::new(["scheme", "seconds", "duality_gap"]);
    let mut recorders = Vec::new();
    for (label, config) in &schemes {
        let mut dist = DistributedScd::new(&problem, config).expect("cluster fits");
        let rec = run_distributed_convergence(&mut dist, &problem, epochs);
        println!(
            "# {label}: final gap {:.3e} after {:.4}s simulated",
            rec.points().last().unwrap().gap,
            rec.total_seconds()
        );
        for pt in rec.points() {
            table.row([label.to_string(), fmt(pt.seconds), fmt(pt.gap)]);
        }
        recorders.push((label.to_string(), rec));
    }
    save_and_announce(&table, "fig10.csv");

    let plot_series: Vec<Series> = recorders
        .iter()
        .map(|(label, rec)| Series {
            label: label.clone(),
            points: rec
                .points()
                .iter()
                .filter(|pt| pt.seconds > 0.0)
                .map(|pt| (pt.seconds, pt.gap))
                .collect(),
        })
        .collect();
    println!("{}", render(&plot_series, 64, 16, "simulated seconds"));

    // Headline speed-ups at a gap all converging schemes reach.
    let eps = recorders[0].1.best_gap().max(recorders[2].1.best_gap()) * 3.0;
    let tpa = &recorders[2].1;
    if let Some(s) = speedup_at(&recorders[0].1, tpa, eps) {
        println!("# TPA-SCD speed-up over 1-thread workers at gap {eps:.1e}: {s:.1}x");
    }
    match speedup_at(&recorders[1].1, tpa, eps) {
        Some(s) => println!("# TPA-SCD speed-up over wild workers at gap {eps:.1e}: {s:.1}x"),
        None => {
            let shallow = recorders[1].1.best_gap() * 2.0;
            if let Some(s) = speedup_at(&recorders[1].1, tpa, shallow) {
                println!(
                    "# TPA-SCD speed-up over wild workers at their {shallow:.1e} plateau: {s:.1}x"
                );
            }
        }
    }
}

//! Experiment harness for reproducing every figure in the paper.
//!
//! Each `fig*` binary in `src/bin/` regenerates one of the paper's figures
//! as CSV series written to `results/` plus a human-readable summary on
//! stdout (who wins, by what factor, where crossovers fall). The data
//! instances in [`figdata`] are the scaled-down webspam/criteo stand-ins
//! documented in DESIGN.md and EXPERIMENTS.md.

#[cfg(feature = "alloc-count")]
pub mod alloc_track;
pub mod csv;
pub mod distributed_figs;
pub mod figdata;
pub mod harness;
pub mod opts;
pub mod plot;
pub mod single_node;

pub use harness::{run_convergence, ConvergenceRun};

/// With `alloc-count` on, every binary and test in this crate runs under
/// the counting allocator — installed here once so `bench_alloc` and the
/// steady-state allocation tests cannot disagree about instrumentation.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static COUNTING_ALLOCATOR: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

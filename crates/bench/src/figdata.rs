//! The standard data instances behind the reproduced figures.
//!
//! Scaled-down stand-ins for the paper's datasets, chosen so that the
//! *per-coordinate* work matches the originals (hundreds to thousands of
//! nonzeros per column/row — that is what determines the CPU/GPU cost
//! ratios in the time models) while the *number* of coordinates shrinks to
//! something a test machine sweeps in seconds. See EXPERIMENTS.md for the
//! full scale-factor table.

use scd_core::RidgeProblem;
use scd_datasets::{criteo_like, scale_values, webspam_like, webspam_like_custom, DatasetStats};

/// λ used in every webspam experiment in the paper.
pub const WEBSPAM_LAMBDA: f64 = 1e-3;

/// Coordinates of the real webspam sample, for staleness scaling.
pub const WEBSPAM_PRIMAL_COORDS: usize = 680_715;
/// Examples of the real webspam sample.
pub const WEBSPAM_DUAL_COORDS: usize = 262_938;

/// The webspam stand-in used by Figs. 1–9.
///
/// 1,500 examples × 2,500 features (features > examples, like webspam's
/// 263k × 681k), ≈1,000 nonzero draws per row before dedup, Zipf-skewed
/// feature popularity — roughly 1.1 M stored nonzeros, so columns average
/// several hundred nonzeros (webspam: ≈1,300) and rows several hundred
/// (webspam: ≈3,400).
pub fn webspam_fig() -> RidgeProblem {
    let data = scale_values(&webspam_like(1_500, 2_500, 1_000, 0xEB), 0.25);
    RidgeProblem::from_labelled(&data, WEBSPAM_LAMBDA).unwrap()
}

/// The webspam stand-in for the distributed sweeps (Figs. 3–6 and 8–9),
/// where hundreds of epochs × 8 workers × 2 aggregations are run.
///
/// Sparser and with a milder popularity skew (Zipf 0.3) than
/// [`webspam_fig`]: random partitions of this instance exhibit the
/// *approximately linear* per-epoch slow-down of the paper's Fig. 3,
/// whereas the heavy-head instance saturates worker contention already at
/// K = 2 (cross-worker coupling concentrates in a few dense columns). The
/// value scale 0.4 puts single-node convergence to gap 1e-4 near 15
/// epochs, so 8-worker sweeps stay in the hundreds of epochs as in the
/// paper.
pub fn webspam_fig_small() -> RidgeProblem {
    let data = scale_values(&webspam_like_custom(2_000, 3_000, 60, 0.3, 0xEB), 0.4);
    RidgeProblem::from_labelled(&data, WEBSPAM_LAMBDA).unwrap()
}

/// The criteo stand-in used by Fig. 10: one-hot categorical rows whose
/// values are all exactly 1, examples ≫ locally-active features, heavy
/// feature-frequency skew. 20,000 examples × 40 fields × 250 values
/// (criteo's one-day sample: 200 M examples, 39 fields, 75 M features).
pub fn criteo_fig() -> RidgeProblem {
    let data = criteo_like(20_000, 40, 250, 0xC217E0);
    RidgeProblem::from_labelled(&data, WEBSPAM_LAMBDA).unwrap()
}

/// Nonzero count of the paper's webspam sample (≈7.3 GB at 8 B/nnz).
pub const WEBSPAM_NNZ: usize = 900_000_000;

/// Scale a link profile so the stand-in keeps the paper's
/// communication-to-computation ratio.
///
/// Shrinking the dataset shrinks per-epoch *compute* by
/// `paper_nnz / our_nnz` but shrinks the exchanged shared vector by a
/// different (smaller) factor, and shrinks per-message *latency* not at
/// all — so an unscaled link would make the reproduced Figs. 6–9 purely
/// latency-bound, which the paper's testbed was not. Dividing latency by
/// the compute scale and multiplying bandwidth by
/// (compute scale / vector scale) restores the original ratio of every
/// communication term to every computation term.
pub fn scaled_link(
    base: &scd_perf_model::LinkProfile,
    problem: &RidgeProblem,
    form: scd_core::Form,
) -> scd_perf_model::LinkProfile {
    let compute_scale = WEBSPAM_NNZ as f64 / problem.csr().nnz() as f64;
    let paper_shared = match form {
        scd_core::Form::Primal => WEBSPAM_DUAL_COORDS,  // w has length N
        scd_core::Form::Dual => WEBSPAM_PRIMAL_COORDS, // w̄ has length M
    };
    let vector_scale = paper_shared as f64 / problem.shared_len(form) as f64;
    scd_perf_model::scaling::scale_link(base, compute_scale, vector_scale)
}

/// Scale a GPU profile's *fixed* costs to the stand-in, preserving the
/// paper's overhead shares.
///
/// Per-nonzero streaming cost is scale-free, but the kernel-launch cost is
/// per *epoch* and the block-scheduling cost per *coordinate* — on a
/// dataset thousands of times smaller they would swamp the streaming term
/// and erase the GPU's advantage, which is not what the paper's testbed
/// saw. Launch cost is divided by the total-nonzeros ratio and block
/// overhead by the per-coordinate-nonzeros ratio.
pub fn scaled_gpu(
    base: &scd_perf_model::GpuProfile,
    problem: &RidgeProblem,
    form: scd_core::Form,
) -> scd_perf_model::GpuProfile {
    let compute_scale = WEBSPAM_NNZ as f64 / problem.csr().nnz() as f64;
    let paper_coords = match form {
        scd_core::Form::Primal => WEBSPAM_PRIMAL_COORDS,
        scd_core::Form::Dual => WEBSPAM_DUAL_COORDS,
    };
    let paper_per_coord = WEBSPAM_NNZ as f64 / paper_coords as f64;
    let our_per_coord = problem.csr().nnz() as f64 / problem.coords(form) as f64;
    let coord_scale = paper_per_coord / our_per_coord;
    scd_perf_model::scaling::scale_gpu(base, compute_scale, coord_scale)
}

/// Scale the host CPU's dense-vector bookkeeping rate to the stand-in (the
/// same vector-vs-compute distortion as [`scaled_link`]: the shared vector
/// shrank far less than the nonzero count, so unscaled host Δ-vector and
/// aggregation arithmetic would dominate the GPU workers' rounds).
pub fn scaled_cpu(
    base: &scd_perf_model::CpuProfile,
    problem: &RidgeProblem,
    form: scd_core::Form,
) -> scd_perf_model::CpuProfile {
    let compute_scale = WEBSPAM_NNZ as f64 / problem.csr().nnz() as f64;
    let paper_shared = match form {
        scd_core::Form::Primal => WEBSPAM_DUAL_COORDS,
        scd_core::Form::Dual => WEBSPAM_PRIMAL_COORDS,
    };
    let vector_scale = paper_shared as f64 / problem.shared_len(form) as f64;
    scd_perf_model::scaling::scale_cpu(base, compute_scale, vector_scale)
}

/// Print the instance summary line every figure binary emits first.
pub fn describe(name: &str, problem: &RidgeProblem) -> String {
    let stats = DatasetStats::of(&scd_sparse::io::LabelledData {
        matrix: {
            // Rebuild a COO view for the stats helper.
            let mut coo = scd_sparse::CooMatrix::new(problem.n(), problem.m());
            for (r, row) in problem.csr().iter_rows().enumerate() {
                for (&c, &v) in row.indices.iter().zip(row.values) {
                    coo.push(r, c as usize, v).expect("in range");
                }
            }
            coo
        },
        labels: problem.labels().to_vec(),
    });
    format!("# {name}: {stats} lambda={}", problem.lambda())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webspam_fig_geometry() {
        let p = webspam_fig();
        assert_eq!(p.n(), 1_500);
        assert_eq!(p.m(), 2_500);
        assert!(p.m() > p.n(), "webspam has more features than examples");
        let nnz = p.csr().nnz();
        let per_row = nnz as f64 / p.n() as f64;
        let per_col = nnz as f64 / p.m() as f64;
        assert!(per_row > 300.0, "rows must stay dense enough: {per_row}");
        assert!(per_col > 150.0, "columns must stay dense enough: {per_col}");
    }

    #[test]
    fn criteo_fig_is_one_hot() {
        let p = criteo_fig();
        assert_eq!(p.n(), 20_000);
        assert_eq!(p.m(), 10_000);
        assert!(p.csr().values().iter().all(|&v| v == 1.0));
        assert_eq!(p.csr().nnz(), 20_000 * 40);
    }

    #[test]
    fn scaled_link_preserves_comm_to_compute_ratio() {
        use scd_perf_model::LinkProfile;
        let p = webspam_fig_small();
        let base = LinkProfile::ethernet_10g();
        let scaled = scaled_link(&base, &p, scd_core::Form::Dual);
        // Paper-side ratio: time to move the paper's w̄ over the base link
        // vs a paper CPU epoch.
        let paper_epoch = 2.0 * WEBSPAM_NNZ as f64 * 2.75e-9;
        let paper_comm = base.transfer_seconds(4 * WEBSPAM_PRIMAL_COORDS);
        // Stand-in ratio with the scaled link.
        let our_epoch = 2.0 * p.csr().nnz() as f64 * 2.75e-9;
        let our_comm = scaled.transfer_seconds(4 * p.shared_len(scd_core::Form::Dual));
        let ratio = (paper_comm / paper_epoch) / (our_comm / our_epoch);
        assert!(
            (0.8..1.25).contains(&ratio),
            "comm/compute ratio must be preserved, got distortion {ratio}"
        );
    }

    #[test]
    fn scaled_gpu_shrinks_only_fixed_costs() {
        use scd_perf_model::GpuProfile;
        let p = webspam_fig_small();
        let base = GpuProfile::quadro_m4000();
        let scaled = scaled_gpu(&base, &p, scd_core::Form::Dual);
        assert!(scaled.kernel_launch_seconds < base.kernel_launch_seconds / 1000.0);
        assert!(scaled.block_overhead_seconds < base.block_overhead_seconds);
        assert_eq!(scaled.mem_bandwidth_bytes_per_s, base.mem_bandwidth_bytes_per_s);
        assert_eq!(scaled.mem_efficiency, base.mem_efficiency);
        assert_eq!(scaled.sm_count, base.sm_count);
    }

    #[test]
    fn describe_mentions_shape() {
        let p = webspam_fig_small();
        let line = describe("webspam-small", &p);
        assert!(line.contains("N=2000"));
        assert!(line.contains("lambda=0.001"));
    }
}

//! Tiny CSV writer for the figure series (no external dependency needed).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Where figure CSVs land: `<workspace>/results/`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SCD_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// A rectangular table with a header row.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize as CSV (fields containing commas/quotes are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let encoded: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') || c.contains('\n') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&encoded.join(","));
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Write the CSV under [`results_dir`], creating it if needed; returns
    /// the path written.
    pub fn save(&self, filename: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(filename);
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Format a float for CSV/report output (compact scientific).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e4).contains(&v.abs()) {
        format!("{v:.4e}")
    } else {
        format!("{v:.5}")
    }
}

/// Save a table and announce it on stdout.
pub fn save_and_announce(table: &Table, filename: &str) {
    match table.save(filename) {
        Ok(path) => println!("# wrote {} rows to {}", table.len(), path.display()),
        Err(e) => eprintln!("# failed to write {filename}: {e}"),
    }
}

/// Check a file exists relative to the results dir (used by tests).
pub fn exists(filename: &str) -> bool {
    Path::new(&results_dir()).join(filename).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_simple() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row(["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n\"x,y\",\"q\"\"z\"\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1e-7), "1.0000e-7");
        assert!(fmt(3.25).starts_with("3.25"));
        assert!(fmt(-2e9).contains('e'));
    }

    #[test]
    fn save_writes_file() {
        std::env::set_var("SCD_RESULTS_DIR", std::env::temp_dir().join("scd_csv_test"));
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        let path = t.save("unit.csv").unwrap();
        assert!(path.exists());
        assert!(exists("unit.csv"));
        std::fs::remove_file(path).ok();
        std::env::remove_var("SCD_RESULTS_DIR");
    }
}

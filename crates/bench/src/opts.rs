//! Tiny command-line helpers shared by the study binaries.
//!
//! The fig/study binaries take no positional arguments; the few knobs they
//! expose ride on `--flag value` (or `--flag=value`) pairs scanned straight
//! from `std::env::args`, keeping the binaries free of an argument-parsing
//! dependency.

use scd_distributed::WireFormat;

/// The value of `--<name> <value>` (or `--<name>=<value>`) if present.
pub fn flag_value(name: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == long {
            return args.next();
        }
        if let Some(v) = arg.strip_prefix(&prefixed) {
            return Some(v.to_string());
        }
    }
    None
}

/// Whether the bare flag `--<name>` appears in argv (no value expected).
pub fn flag_present(name: &str) -> bool {
    let long = format!("--{name}");
    std::env::args().skip(1).any(|arg| arg == long)
}

/// The `--wire {raw,fp16,topk:<k>,topk-ef:<k>}` selection, defaulting to
/// [`WireFormat::Raw`]. Exits with the parse error on a malformed value —
/// a study binary has no later chance to report it.
pub fn wire_flag() -> WireFormat {
    match flag_value("wire") {
        None => WireFormat::Raw,
        Some(v) => WireFormat::parse(&v).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_flag_defaults_to_raw() {
        // The test harness's argv has no --wire flag.
        assert_eq!(wire_flag(), WireFormat::Raw);
        assert_eq!(flag_value("wire"), None);
        assert!(!flag_present("smoke"));
    }
}

//! Shared implementation of Figures 1 and 2: single-node solver
//! comparison (SCD, A-SCD, PASSCoDe-Wild, TPA-SCD on two GPUs) on the
//! webspam stand-in, primal (Fig. 1) and dual (Fig. 2).

use crate::csv::{fmt, save_and_announce, Table};
use crate::figdata::{describe, webspam_fig, WEBSPAM_DUAL_COORDS, WEBSPAM_PRIMAL_COORDS};
use crate::harness::{run_convergence, speedup_at, ConvergenceRun};
use crate::plot::{render, Series};
use gpu_sim::{Gpu, GpuProfile};
use scd_core::async_sim::scaled_staleness;
use scd_core::{AsyncSimScd, Form, RidgeProblem, SequentialScd, Solver, TpaScd};
use std::sync::Arc;



/// The five solvers of Figs. 1–2, in the paper's legend order.
pub fn solvers(problem: &RidgeProblem, form: Form) -> Vec<(String, Box<dyn Solver>)> {
    let coords = problem.coords(form);
    let reference = match form {
        Form::Primal => WEBSPAM_PRIMAL_COORDS,
        Form::Dual => WEBSPAM_DUAL_COORDS,
    };
    let window = scaled_staleness(16, coords, reference);
    let seq: Box<dyn Solver> = Box::new(match form {
        Form::Primal => SequentialScd::primal(problem, 1),
        Form::Dual => SequentialScd::dual(problem, 1),
    });
    let a_scd: Box<dyn Solver> =
        Box::new(AsyncSimScd::a_scd(problem, form, 1).with_staleness(window));
    let wild: Box<dyn Solver> = Box::new(AsyncSimScd::wild(problem, form, 1).with_staleness(window));
    let m4000: Box<dyn Solver> = Box::new(
        TpaScd::new(
            problem,
            form,
            Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1)),
            1,
        )
        .expect("webspam stand-in fits in 8 GB"),
    );
    let titan: Box<dyn Solver> = Box::new(
        TpaScd::new(
            problem,
            form,
            Arc::new(Gpu::new(GpuProfile::titan_x_maxwell()).with_host_threads(1)),
            1,
        )
        .expect("webspam stand-in fits in 12 GB"),
    );
    vec![
        ("SCD (1 thread)".into(), seq),
        ("A-SCD (16 threads)".into(), a_scd),
        ("PASSCoDe-Wild (16 threads)".into(), wild),
        ("TPA-SCD (M4000)".into(), m4000),
        ("TPA-SCD (Titan X)".into(), titan),
    ]
}

/// Run the five-solver comparison and write `<fig>_epochs.csv` and
/// `<fig>_time.csv`.
pub fn run_figure(form: Form, epochs: usize, fig_name: &str) {
    let problem = webspam_fig();
    println!("{}", describe("webspam stand-in", &problem));
    println!("# form: {}, epochs: {epochs}", form.label());

    let runs: Vec<ConvergenceRun> = solvers(&problem, form)
        .into_iter()
        .map(|(label, mut solver)| {
            let recorder = run_convergence(solver.as_mut(), &problem, epochs);
            println!(
                "# {label}: final gap {:.3e}, simulated total {:.3}s",
                recorder.points().last().unwrap().gap,
                recorder.total_seconds()
            );
            ConvergenceRun { label, recorder }
        })
        .collect();

    // (a) gap vs epochs.
    let mut epochs_table = Table::new(["epoch", "solver", "duality_gap"]);
    // (b) gap vs simulated time.
    let mut time_table = Table::new(["seconds", "solver", "duality_gap"]);
    for run in &runs {
        for pt in run.recorder.points() {
            epochs_table.row([pt.epoch.to_string(), run.label.clone(), fmt(pt.gap)]);
            time_table.row([fmt(pt.seconds), run.label.clone(), fmt(pt.gap)]);
        }
    }
    save_and_announce(&epochs_table, &format!("{fig_name}_epochs.csv"));
    save_and_announce(&time_table, &format!("{fig_name}_time.csv"));

    // At-a-glance shape check: gap (log scale) vs epochs.
    let plot_series: Vec<Series> = runs
        .iter()
        .map(|run| Series {
            label: run.label.clone(),
            points: run
                .recorder
                .points()
                .iter()
                .map(|pt| (pt.epoch as f64, pt.gap))
                .collect(),
        })
        .collect();
    println!("{}", render(&plot_series, 72, 20, "epochs"));

    // Headline speed-ups at a mid-curve gap every converging solver reaches.
    let baseline = &runs[0].recorder;
    let eps = baseline.best_gap().max(1e-6) * 10.0;
    println!("# speed-ups vs SCD (1 thread) at duality gap {eps:.1e}:");
    for run in &runs[1..] {
        match speedup_at(baseline, &run.recorder, eps) {
            Some(s) => println!("#   {:<28} {:>6.1}x", run.label, s),
            None => {
                // Plateauing solvers (PASSCoDe-Wild) never reach deep gaps;
                // report the speed-up at twice their plateau instead, which
                // is how the paper's 4x wild speed-up is read off Fig. 1b.
                let shallow = run.recorder.best_gap() * 2.0;
                match speedup_at(baseline, &run.recorder, shallow) {
                    Some(s) => println!(
                        "#   {:<28} {:>6.1}x (at its {:.1e} plateau)",
                        run.label, s, shallow
                    ),
                    None => println!("#   {:<28}   n/a", run.label),
                }
            }
        }
    }
}


//! Driving solvers through epochs and recording convergence curves.

use scd_core::{ConvergenceRecorder, RidgeProblem, Solver};
use scd_distributed::DistributedScd;

/// A labelled convergence curve.
pub struct ConvergenceRun {
    /// Legend label (matches the paper's figure legends).
    pub label: String,
    /// The recorded per-epoch points.
    pub recorder: ConvergenceRecorder,
}

/// Run `epochs` epochs of a solver, recording the duality gap after every
/// epoch (and the initial gap at epoch 0). γ is recorded as 0 for
/// single-node engines.
pub fn run_convergence(
    solver: &mut dyn Solver,
    problem: &RidgeProblem,
    epochs: usize,
) -> ConvergenceRecorder {
    let mut rec = ConvergenceRecorder::new();
    rec.record_initial(solver.duality_gap(problem));
    for _ in 0..epochs {
        let stats = solver.epoch(problem);
        rec.record_epoch(stats.breakdown, solver.duality_gap(problem), 0.0);
    }
    rec
}

/// Like [`run_convergence`], but for distributed solvers: also records the
/// per-epoch aggregation parameter γₜ (Fig. 5's series).
pub fn run_distributed_convergence(
    solver: &mut DistributedScd,
    problem: &RidgeProblem,
    epochs: usize,
) -> ConvergenceRecorder {
    let mut rec = ConvergenceRecorder::new();
    rec.record_initial(solver.duality_gap(problem));
    for _ in 0..epochs {
        let stats = solver.epoch(problem);
        rec.record_epoch(
            stats.breakdown,
            solver.duality_gap(problem),
            solver.last_gamma(),
        );
    }
    rec
}

/// Run until the gap reaches `epsilon` or `max_epochs` elapse; returns the
/// recorder either way (query `seconds_to_gap` on it).
pub fn run_until_gap(
    solver: &mut dyn Solver,
    problem: &RidgeProblem,
    epsilon: f64,
    max_epochs: usize,
) -> ConvergenceRecorder {
    let mut rec = ConvergenceRecorder::new();
    rec.record_initial(solver.duality_gap(problem));
    for _ in 0..max_epochs {
        let stats = solver.epoch(problem);
        let gap = solver.duality_gap(problem);
        rec.record_epoch(stats.breakdown, gap, 0.0);
        if gap <= epsilon {
            break;
        }
    }
    rec
}

/// Speed-up of `candidate` over `baseline` in time-to-ε (the paper's
/// definition of "speed-up in training time": the same duality gap reached
/// in a shorter amount of time). `None` when either never reaches ε.
pub fn speedup_at(
    baseline: &ConvergenceRecorder,
    candidate: &ConvergenceRecorder,
    epsilon: f64,
) -> Option<f64> {
    let b = baseline.seconds_to_gap(epsilon)?;
    let c = candidate.seconds_to_gap(epsilon)?;
    Some(b / c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_core::{Form, SequentialScd};
    use scd_datasets::webspam_like;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(120, 80, 8, 5), 1e-2).unwrap()
    }

    #[test]
    fn convergence_run_records_every_epoch() {
        let p = problem();
        let mut s = SequentialScd::primal(&p, 1);
        let rec = run_convergence(&mut s, &p, 10);
        assert_eq!(rec.epochs(), 10);
        assert_eq!(rec.points().len(), 11);
        assert!(rec.points()[0].gap > rec.points()[10].gap);
        assert!(rec.total_seconds() > 0.0);
    }

    #[test]
    fn run_until_gap_stops_early() {
        let p = problem();
        let mut s = SequentialScd::primal(&p, 2);
        let rec = run_until_gap(&mut s, &p, 1e-3, 500);
        assert!(rec.epochs() < 500, "should stop well before the cap");
        assert!(rec.best_gap() <= 1e-3);
    }

    #[test]
    fn speedup_compares_time_axes() {
        let p = problem();
        let mut slow = SequentialScd::primal(&p, 3);
        let mut fast = SequentialScd::dual(&p, 3);
        let r_slow = run_convergence(&mut slow, &p, 60);
        let r_fast = run_convergence(&mut fast, &p, 60);
        let eps = 1e-3;
        if let Some(s) = speedup_at(&r_slow, &r_fast, eps) {
            assert!(s.is_finite() && s > 0.0);
        }
        // Unreachable epsilon yields None.
        assert!(speedup_at(&r_slow, &r_fast, 1e-30).is_none());
    }

    #[test]
    fn distributed_run_records_gamma() {
        use scd_distributed::{Aggregation, DistributedConfig};
        let p = problem();
        let config = DistributedConfig::new(4, Form::Primal)
            .with_aggregation(Aggregation::Adaptive);
        let mut dist = DistributedScd::new(&p, &config).unwrap();
        let rec = run_distributed_convergence(&mut dist, &p, 5);
        assert!(rec.points()[1..].iter().all(|pt| pt.gamma != 0.0));
    }
}

//! Steady-state allocation assertions: after warm-up, the CPU engines'
//! epochs, the synchronous distributed round (metrics off), and the serve
//! scorer's batch pass must not touch the heap at all.
//!
//! Gated on the `alloc-count` feature (which installs the counting
//! global allocator); without it every test here compiles away. The
//! counters are process-wide, so tier-1 runs this binary with
//! `--test-threads=1` — a concurrently-allocating sibling test would
//! otherwise charge its traffic to whichever window is open.

#![cfg(feature = "alloc-count")]

use scd_bench::alloc_track;
use scd_core::{Form, ObjectiveKind, RidgeProblem, Solver, SyscdScd};
use scd_datasets::{scale_values, webspam_like};
use scd_distributed::{DistributedConfig, DistributedScd, WireFormat};
use scd_sched::Scheduler;
use scd_serve::{batch_from_pairs, BatchScorer, Scored};

const WARMUP: usize = 3;
const MEASURED: usize = 3;

fn problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(200, 150, 12, 8), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

/// Warm `unit` up, then assert the *best* measured unit stays within
/// `max_allocs` allocation events. A structural allocation on the hot
/// path shows up in every unit, so the minimum over a few reps catches
/// it; taking the minimum (rather than failing on the worst unit) keeps
/// the gate immune to the scheduler's rare pinned-pool-entry race, where
/// an OS-preempted stealer holds a group reference across a unit
/// boundary and forces a one-off allocation.
fn assert_steady_state<F: FnMut()>(label: &str, max_allocs: u64, mut unit: F) {
    for _ in 0..WARMUP {
        unit();
    }
    let mut best = u64::MAX;
    let mut best_bytes = 0u64;
    for _ in 0..MEASURED {
        let before = alloc_track::snapshot();
        unit();
        let (allocs, bytes) = alloc_track::delta(before);
        if allocs < best {
            best = allocs;
            best_bytes = bytes;
        }
    }
    assert!(
        best <= max_allocs,
        "{label}: every measured unit allocated; best was {best} allocations \
         ({best_bytes} bytes), bound is {max_allocs}"
    );
}

#[test]
fn sequential_epochs_are_allocation_free() {
    let problem = problem();
    let mut solver = scd_core::SequentialScd::dual(&problem, 1);
    assert_steady_state("seq", 0, || {
        solver.epoch(&problem);
    });
}

#[test]
fn syscd_epochs_are_allocation_free_across_thread_counts() {
    let problem = problem();
    for h in [1usize, 4] {
        let sched = Scheduler::new(h);
        let mut solver = SyscdScd::new(&problem, Form::Dual, h, 1).with_scheduler(sched);
        assert_steady_state(&format!("syscd-h{h}"), 0, || {
            solver.epoch(&problem);
        });
    }
}

#[test]
fn distributed_rounds_stay_within_a_fixed_allocation_bound() {
    let problem = problem();
    let config = DistributedConfig::new(4, Form::Primal)
        .with_seed(42)
        .with_wire(WireFormat::TopKEf(64))
        .with_round_metrics(false);
    let mut dist = DistributedScd::new(&problem, &config).unwrap();
    // With metrics off the round's own hot path is allocation-free; the
    // bound is 0 today but the contract for distributed rounds is "small
    // and fixed", so a couple of bookkeeping allocations would not be a
    // regression worth failing the tier-1 gate over.
    assert_steady_state("dist-k4-topk-ef64", 2, || {
        dist.epoch(&problem);
    });
}

#[test]
fn serve_scoring_is_allocation_free_with_a_reused_workspace() {
    let data = scale_values(&webspam_like(256, 120, 8, 9), 0.3);
    let csr = data.matrix.to_csr();
    let beta: Vec<f32> = (0..csr.cols()).map(|j| (j as f32 * 0.37).sin() * 0.1).collect();
    let pairs: Vec<Vec<(u32, f32)>> = (0..csr.rows())
        .map(|r| {
            let row = csr.row(r);
            row.indices.iter().copied().zip(row.values.iter().copied()).collect()
        })
        .collect();
    let batch = batch_from_pairs(&pairs, csr.cols()).unwrap();
    let scorer = BatchScorer::new(scd_sched::global());
    let mut scored = Scored::default();
    assert_steady_state("serve-scorer", 0, || {
        scorer
            .score_into(&batch, ObjectiveKind::Ridge, &beta, &mut scored)
            .expect("scoring succeeds");
    });
}

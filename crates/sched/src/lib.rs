//! # scd-sched — the unified work-stealing host scheduler
//!
//! One persistent thread pool for every host-parallel path in the
//! workspace: gpu-sim thread blocks, distributed worker rounds, the
//! asynchronous CPU baselines, and bulk host↔device transfers. Before
//! this crate each of those owned its own threads, so a K-worker
//! distributed run whose local solver is TPA-SCD oversubscribed the host
//! K× (the ROADMAP "Pool sharing" item); now they all share one pool
//! sized to the host, and nested work — K rounds each launching kernel
//! grids — schedules cooperatively.
//!
//! ## Architecture
//!
//! * **Per-worker Chase–Lev deques + a global injector** ([`deque`]).
//!   A pool worker pushes nested work to its own deque bottom (LIFO);
//!   idle workers steal from other deques' tops (FIFO) or pop the
//!   injector, which also receives submissions from threads outside the
//!   pool and deque overflow.
//! * **Group tokens, not task queues.** A `parallel_for(n, f)` call
//!   builds one task *group* with an atomic claim cursor over `0..n` and
//!   enqueues up to `min(n, cap, threads) - 1` *tokens* — cheap
//!   references to the group. Whoever pops a token claims and runs
//!   indices until the cursor runs dry. Queue traffic is therefore
//!   proportional to participating threads, and a group's parallelism is
//!   capped by its token count (how the gpu-sim keeps a launch within
//!   `host_threads` even on a wider shared pool).
//! * **The caller always participates.** The submitting thread claims
//!   indices inline before waiting, so every call makes progress even if
//!   all workers are busy or the pool has zero workers (`threads == 1`
//!   degenerates to an ordinary sequential loop — the degenerate case
//!   that keeps `with_host_threads(1)` determinism trivially intact).
//!
//! ## Nesting rule (why a task may block on a subgroup)
//!
//! A task may call `parallel_for`/`scope` on the *same* pool. The nested
//! call claims its own indices inline; by the time it blocks in `wait`,
//! every remaining index of the subgroup has been claimed by — and is
//! running on — some other thread. Leaf groups therefore finish, waiters
//! unwind, and no cycle of threads can wait on each other: deadlock-free
//! without needing the waiter to execute unrelated stolen work (which
//! would unboundedly grow its stack). Blocked waiters are parked, so the
//! count of threads *executing* tasks never exceeds the pool size plus
//! the external submitters — observable via [`Scheduler::peak_parallelism`].
//!
//! Simulated time never flows through this crate: gpu-sim and the
//! distributed runtime derive their clocks from counted work
//! (`BlockCost`, perf-model charges), so scheduling order affects only
//! wall-clock, never the simulation's numbers.

mod deque;
mod group;

use deque::{Deque, Steal};
use group::GroupCore;

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

const DEQUE_CAPACITY: usize = 256;

/// Errors surfaced by the fallible configuration entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// A scheduler must have at least one thread (the caller itself).
    ZeroThreads,
    /// [`configure_global`] was called after the process-wide pool was
    /// already built with a different width.
    GlobalAlreadyConfigured { current: usize, requested: usize },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::ZeroThreads => write!(f, "host scheduler needs at least 1 thread"),
            SchedError::GlobalAlreadyConfigured { current, requested } => write!(
                f,
                "global host scheduler already running with {current} thread(s); \
                 cannot reconfigure to {requested}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

struct Shared {
    /// One deque per pool worker (the submitting thread has none; it
    /// pushes to the injector).
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<usize>>,
    sleep: Mutex<()>,
    wake: Condvar,
    /// Workers registered as (about to be) sleeping. Checked by pushers
    /// to skip the notify lock on the hot path.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    /// Threads currently executing tasks of this scheduler.
    active: AtomicUsize,
    peak: AtomicUsize,
}

thread_local! {
    /// Set once per pool-worker thread: (owning scheduler address, index).
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// Stack of scheduler addresses this thread is currently executing
    /// inside, for nesting-aware active/peak accounting.
    static ENTERED: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

impl Shared {
    fn addr(&self) -> usize {
        self as *const Shared as usize
    }

    /// Enqueue a group token and wake a sleeper if there is one. `me` is
    /// the caller's worker index when it belongs to this pool.
    fn push_token(&self, raw: usize, me: Option<usize>) {
        let overflow = match me {
            Some(i) => self.deques[i].push(raw).err(),
            None => Some(raw),
        };
        if let Some(raw) = overflow {
            self.injector.lock().unwrap().push_back(raw);
        }
        // SeqCst pairing with `park`: either we observe the sleeper here,
        // or the sleeper's own has_work check observes our push.
        if self.sleepers.load(SeqCst) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_all();
        }
    }

    fn find_token(&self, me: usize) -> Option<usize> {
        if let Some(raw) = self.deques[me].pop() {
            return Some(raw);
        }
        if let Some(raw) = self.injector.lock().unwrap().pop_front() {
            return Some(raw);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = &self.deques[(me + off) % n];
            loop {
                match victim.steal() {
                    Steal::Success(raw) => return Some(raw),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
            || self.deques.iter().any(|d| !d.is_empty_hint())
    }

    /// Park until work arrives (or shutdown). The sleeper count is
    /// published *before* re-checking the queues, pairing with
    /// `push_token`'s push-then-check, so a wakeup can never be missed.
    fn park(&self) {
        self.sleepers.fetch_add(1, SeqCst);
        let guard = self.sleep.lock().unwrap();
        if !self.has_work() && !self.shutdown.load(SeqCst) {
            drop(self.wake.wait(guard).unwrap());
        } else {
            drop(guard);
        }
        self.sleepers.fetch_sub(1, SeqCst);
    }

    /// Claim-and-run until this group's cursor is exhausted, maintaining
    /// the active/peak counters (a thread nested in the same scheduler is
    /// only counted once).
    fn drain(&self, group: &GroupCore) {
        // Claim *before* counting: a token popped after its group's
        // cursor is already dry — a stale token from a completed group —
        // must not transiently inflate active/peak while an unrelated
        // group is being measured.
        let Some(mut index) = group.claim() else {
            return;
        };
        let first = ENTERED.with(|e| {
            let mut stack = e.borrow_mut();
            let first = !stack.contains(&self.addr());
            stack.push(self.addr());
            first
        });
        if first {
            let now = self.active.fetch_add(1, SeqCst) + 1;
            self.peak.fetch_max(now, SeqCst);
        }
        loop {
            group.run_index(index);
            match group.claim() {
                Some(next) => index = next,
                None => break,
            }
        }
        ENTERED.with(|e| {
            e.borrow_mut().pop();
        });
        if first {
            self.active.fetch_sub(1, SeqCst);
        }
    }
}

fn worker_main(shared: Arc<Shared>, me: usize) {
    WORKER.with(|w| w.set(Some((shared.addr(), me))));
    loop {
        if shared.shutdown.load(SeqCst) {
            break;
        }
        match shared.find_token(me) {
            Some(raw) => {
                // Safety: tokens are `Arc::into_raw(Arc<GroupCore>)`;
                // popping one transfers its reference count to us.
                let group = unsafe { Arc::from_raw(raw as *const GroupCore) };
                shared.drain(&group);
            }
            None => shared.park(),
        }
    }
}

/// A persistent work-stealing pool. `Scheduler::new(t)` spawns `t - 1`
/// worker threads; the submitting thread lends itself as the `t`-th, so
/// total execution parallelism per call site is `t`.
///
/// Most code should use the process-wide [`global`] handle; explicit
/// instances exist for tests and benchmarks that need a specific width
/// regardless of the host (this repository's CI is a 1-core box).
pub struct Scheduler {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Recycled indexed [`GroupCore`]s. A `parallel_for` acquires an
    /// exclusively-owned entry (`Arc::get_mut` succeeds) and re-arms it
    /// in place instead of allocating; at release, the group's unpopped
    /// tokens are reclaimed from the queues and the group returns here.
    /// Each pool worker holds at most one token at a time, so at most
    /// `threads - 1` entries can be pinned by in-flight stealers at any
    /// acquire — a pool of `threads` entries always has a free one, and
    /// steady-state launches allocate nothing.
    group_pool: Mutex<Vec<Arc<GroupCore>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Scheduler {
    /// Build a pool that executes up to `threads` tasks concurrently.
    /// `threads == 1` spawns no workers at all: every call degenerates to
    /// an inline sequential loop on the caller.
    pub fn new(threads: usize) -> Arc<Scheduler> {
        Self::try_new(threads).expect("scheduler thread count must be >= 1")
    }

    /// Fallible form of [`Scheduler::new`].
    pub fn try_new(threads: usize) -> Result<Arc<Scheduler>, SchedError> {
        if threads == 0 {
            return Err(SchedError::ZeroThreads);
        }
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Deque::new(DEQUE_CAPACITY)).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scd-sched-{i}"))
                    .spawn(move || worker_main(shared, i))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Ok(Arc::new(Scheduler {
            shared,
            threads,
            handles: Mutex::new(handles),
            group_pool: Mutex::new(Vec::with_capacity(threads + 1)),
        }))
    }

    /// Configured width: the maximum number of threads that will execute
    /// tasks for any one submission.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Highest number of threads observed executing tasks simultaneously
    /// since the last [`Self::reset_peak`]. Blocked waiters of nested
    /// groups stay counted (they occupy a stack, just not a core), so
    /// this is a conservative ceiling on host-thread usage.
    pub fn peak_parallelism(&self) -> usize {
        self.shared.peak.load(SeqCst)
    }

    pub fn reset_peak(&self) {
        self.shared
            .peak
            .store(self.shared.active.load(SeqCst), SeqCst);
    }

    /// This thread's worker index, when it is a pool worker of *this*
    /// scheduler (tokens then go to its own deque instead of the injector).
    fn worker_index(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((addr, i)) if addr == self.shared.addr() => Some(i),
            _ => None,
        })
    }

    /// Run `f(i)` for every `i in 0..n`, using up to `threads()` threads
    /// (including the calling thread). Blocks until all indices finish;
    /// panics if any index panicked. Safe to call from inside a task on
    /// the same pool (see the module-level nesting rule).
    pub fn parallel_for(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        self.parallel_for_limited(n, self.threads, f);
    }

    /// [`Self::parallel_for`] with parallelism additionally capped at
    /// `cap` — how a gpu-sim launch honours `host_threads` on a wider
    /// shared pool.
    pub fn parallel_for_limited(&self, n: usize, cap: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        let width = self.threads.min(cap.max(1)).min(n);
        if width == 1 {
            // Inline fast path: no group allocation, panics propagate
            // directly. Peak accounting still applies.
            // Safety: `run_index` is never called, so the erased borrow in
            // a would-be group doesn't exist; we just loop.
            let guard = ActiveGuard::enter(&self.shared);
            for i in 0..n {
                f(i);
            }
            drop(guard);
            return;
        }
        // Safety: we block in `wait` below until every index completes,
        // so the erased borrow of `f` outlives all claims.
        let group = unsafe { self.acquire_group(f, n) };
        let me = self.worker_index();
        for _ in 0..width - 1 {
            let raw = Arc::into_raw(Arc::clone(&group)) as usize;
            self.shared.push_token(raw, me);
        }
        self.shared.drain(&group);
        group.wait();
        let poisoned = group.panicked();
        self.release_group(group, me);
        if poisoned {
            panic!("scd-sched: a task in a parallel group panicked");
        }
    }

    /// A group for `f` over `0..n`: a recycled pool entry when one is
    /// exclusively owned (re-armed in place, no heap traffic), a fresh
    /// allocation otherwise. The pool saturates at roughly `threads`
    /// entries — see the `group_pool` field docs.
    ///
    /// # Safety
    /// Same contract as [`GroupCore::indexed`]: the caller must block
    /// until every index completes before `f`'s storage goes away.
    unsafe fn acquire_group(&self, f: &(dyn Fn(usize) + Sync), n: usize) -> Arc<GroupCore> {
        // A released entry can transiently stay pinned: a stealer that
        // popped (and no-op-claimed) a token of the *previous* submission
        // may not have dropped its reference yet. That window is a few
        // instructions wide, so when the pool has entries but none is
        // free, yield briefly and rescan before giving up and allocating.
        for attempt in 0..3 {
            let mut pool = self.group_pool.lock().unwrap();
            for idx in 0..pool.len() {
                if Arc::get_mut(&mut pool[idx]).is_some() {
                    let mut group = pool.swap_remove(idx);
                    // The get_mut above proved exclusive ownership: no token
                    // of a previous incarnation survives anywhere, so the
                    // in-place reset cannot race a claim.
                    Arc::get_mut(&mut group)
                        .expect("still exclusively owned")
                        .reset_indexed(f, n);
                    return group;
                }
            }
            let empty = pool.is_empty();
            drop(pool);
            if empty {
                break;
            }
            if attempt + 1 < 3 {
                std::thread::yield_now();
            }
        }
        Arc::new(GroupCore::indexed(f, n))
    }

    /// Return a finished group to the pool. Its unpopped tokens are
    /// pulled back out of the queues first (they only pin the refcount;
    /// their claims would no-op anyway), so by the next acquire the
    /// entry is reusable unless an in-flight stealer still holds a
    /// popped token.
    fn release_group(&self, group: Arc<GroupCore>, me: Option<usize>) {
        let ptr = Arc::as_ptr(&group) as usize;
        match me {
            Some(i) => {
                // Our tokens went to our own deque bottom; anything above
                // them (nested groups') was reclaimed by the nested call,
                // so pop while the bottom entry is ours. A foreign entry
                // ends the sweep and goes straight back.
                while let Some(raw) = self.shared.deques[i].pop() {
                    if raw == ptr {
                        // Safety: the token carries one strong reference.
                        unsafe { drop(Arc::from_raw(raw as *const GroupCore)) };
                    } else {
                        if let Err(back) = self.shared.deques[i].push(raw) {
                            self.shared.injector.lock().unwrap().push_back(back);
                        }
                        break;
                    }
                }
            }
            None => {
                // External submitters push every token to the injector.
                self.shared.injector.lock().unwrap().retain(|&raw| {
                    if raw == ptr {
                        // Safety: as above — drop the queued reference.
                        unsafe { drop(Arc::from_raw(raw as *const GroupCore)) };
                        false
                    } else {
                        true
                    }
                });
            }
        }
        let mut pool = self.group_pool.lock().unwrap();
        if pool.len() < pool.capacity() {
            pool.push(group);
        }
    }

    /// Bucketed variant of [`Self::parallel_for_limited`]: the index
    /// space `0..n` is carved into contiguous chunks of `chunk` elements
    /// (the last may be short) and each *chunk* is one claimable task.
    /// Claim traffic — and therefore contention on the group cursor —
    /// drops by a factor of `chunk`, and consecutive elements stay on one
    /// thread, which is what a cache-line-sized coordinate bucket wants.
    ///
    /// `f` receives the half-open element range of its chunk. Chunks are
    /// claimed in order but may run concurrently; per-element work must
    /// be independent across chunks (or deterministic by construction,
    /// like the SySCD merge where each element folds worker replicas in
    /// a fixed order).
    pub fn parallel_for_chunked(
        &self,
        n: usize,
        chunk: usize,
        cap: usize,
        f: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) {
        assert!(chunk >= 1, "chunk size must be >= 1");
        let chunks = n.div_ceil(chunk);
        self.parallel_for_limited(chunks, cap, &|ci| {
            let start = ci * chunk;
            f(start..(start + chunk).min(n));
        });
    }

    /// Scoped task group: spawn heterogeneous closures that may borrow
    /// from the enclosing stack; all of them are joined before `scope`
    /// returns (mirroring `std::thread::scope`, but onto pool threads —
    /// no per-call spawn/join). Panics from tasks are re-raised here.
    ///
    /// Spawning is the scope owner's privilege: tasks must not spawn onto
    /// their parent scope. Nested parallelism inside a task uses a fresh
    /// `parallel_for`/`scope` call, which the pool handles per the
    /// nesting rule.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope TaskScope<'scope, 'env>) -> R,
    {
        let task_scope = TaskScope {
            sched: self,
            group: Arc::new(GroupCore::queued()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&task_scope)));
        // Join before propagating anything: spawned tasks borrow the
        // caller's stack and must not outlive this frame even on panic.
        self.shared.drain(&task_scope.group);
        task_scope.group.wait();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if task_scope.group.panicked() {
                    panic!("scd-sched: a scoped task panicked");
                }
                value
            }
        }
    }
}

/// RAII active/peak accounting for the inline `width == 1` path (drop on
/// unwind keeps the counters sane when the body panics).
struct ActiveGuard<'a> {
    shared: &'a Shared,
    first: bool,
}

impl<'a> ActiveGuard<'a> {
    fn enter(shared: &'a Shared) -> Self {
        let first = ENTERED.with(|e| {
            let mut stack = e.borrow_mut();
            let first = !stack.contains(&shared.addr());
            stack.push(shared.addr());
            first
        });
        if first {
            let now = shared.active.fetch_add(1, SeqCst) + 1;
            shared.peak.fetch_max(now, SeqCst);
        }
        ActiveGuard { shared, first }
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        ENTERED.with(|e| {
            e.borrow_mut().pop();
        });
        if self.first {
            self.shared.active.fetch_sub(1, SeqCst);
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        {
            let _guard = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        // Release tokens of long-completed groups still sitting in queues.
        while let Some(raw) = self.shared.injector.lock().unwrap().pop_front() {
            unsafe { drop(Arc::from_raw(raw as *const GroupCore)) };
        }
        for d in &self.shared.deques {
            while let Some(raw) = d.pop() {
                unsafe { drop(Arc::from_raw(raw as *const GroupCore)) };
            }
        }
    }
}

/// Handle for spawning borrowed tasks inside [`Scheduler::scope`].
pub struct TaskScope<'scope, 'env: 'scope> {
    sched: &'scope Scheduler,
    group: Arc<GroupCore>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> TaskScope<'scope, 'env> {
    /// Queue `f` onto the pool. It may borrow anything that outlives the
    /// scope and is guaranteed to finish before `scope` returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // Safety: the scope joins (drain + wait) before returning, so the
        // erased borrows outlive every execution.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        self.group.push_task(task);
        if self.sched.threads > 1 {
            let raw = Arc::into_raw(Arc::clone(&self.group)) as usize;
            self.sched
                .shared
                .push_token(raw, self.sched.worker_index());
        }
    }
}

static GLOBAL: OnceLock<Arc<Scheduler>> = OnceLock::new();

/// Width the process-wide pool gets when nobody calls [`configure_global`]
/// first: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide shared scheduler, built on first use with
/// [`default_threads`]. Everything that parallelises host work — gpu-sim
/// launches, distributed rounds, CPU baselines, bulk copies — goes
/// through this handle unless a component was given an explicit pool.
pub fn global() -> Arc<Scheduler> {
    Arc::clone(GLOBAL.get_or_init(|| Scheduler::new(default_threads())))
}

/// Size the process-wide pool explicitly (the CLI's `--host-threads`).
/// Must run before anything touches [`global`]; succeeds idempotently if
/// the pool already has exactly the requested width.
pub fn configure_global(threads: usize) -> Result<Arc<Scheduler>, SchedError> {
    if threads == 0 {
        return Err(SchedError::ZeroThreads);
    }
    let mut created = false;
    let sched = GLOBAL.get_or_init(|| {
        created = true;
        Scheduler::new(threads)
    });
    if !created && sched.threads() != threads {
        return Err(SchedError::GlobalAlreadyConfigured {
            current: sched.threads(),
            requested: threads,
        });
    }
    Ok(Arc::clone(sched))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1, 2, 4] {
            let sched = Scheduler::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            sched.parallel_for(hits.len(), &|i| {
                hits[i].fetch_add(1, SeqCst);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(SeqCst), 1, "index {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_groups() {
        let sched = Scheduler::new(3);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            sched.parallel_for(round + 1, &|i| {
                sum.fetch_add(i + 1, SeqCst);
            });
            let n = round + 1;
            assert_eq!(sum.load(SeqCst), n * (n + 1) / 2);
        }
    }

    #[test]
    fn cap_limits_claimed_parallelism_not_coverage() {
        let sched = Scheduler::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        sched.parallel_for_limited(hits.len(), 2, &|i| {
            hits[i].fetch_add(1, SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(SeqCst) == 1));
    }

    #[test]
    fn nested_parallel_for_completes_within_pool_width() {
        let sched = Scheduler::new(3);
        sched.reset_peak();
        let total = AtomicUsize::new(0);
        sched.parallel_for(4, &|_outer| {
            sched.parallel_for(8, &|_inner| {
                total.fetch_add(1, SeqCst);
            });
        });
        assert_eq!(total.load(SeqCst), 32);
        assert!(
            sched.peak_parallelism() <= 3,
            "peak {} exceeded pool width",
            sched.peak_parallelism()
        );
    }

    #[test]
    fn recycled_groups_preserve_correctness_under_nesting() {
        // Hundreds of launches re-arm the same few pooled GroupCores;
        // every index must still run exactly once, nested included.
        let sched = Scheduler::new(4);
        for _ in 0..200 {
            let total = AtomicUsize::new(0);
            sched.parallel_for(6, &|_outer| {
                sched.parallel_for(5, &|i| {
                    total.fetch_add(i, SeqCst);
                });
            });
            assert_eq!(total.load(SeqCst), 6 * 10);
        }
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let sched = Scheduler::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            sched.parallel_for(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still works after a poisoned group.
        let count = AtomicUsize::new(0);
        sched.parallel_for(10, &|_| {
            count.fetch_add(1, SeqCst);
        });
        assert_eq!(count.load(SeqCst), 10);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let sched = Scheduler::new(3);
        let mut out = [0u32; 16];
        sched.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || {
                    *slot = i as u32 + 1;
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn scope_panic_in_task_propagates_after_join() {
        let sched = Scheduler::new(2);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            sched.scope(|s| {
                s.spawn(|| panic!("scoped boom"));
                s.spawn(|| {
                    done.fetch_add(1, SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(SeqCst), 1, "surviving task still joined");
    }

    #[test]
    fn width_one_runs_strictly_in_order() {
        let sched = Scheduler::new(1);
        let order = Mutex::new(Vec::new());
        sched.parallel_for(10, &|i| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_new_rejects_zero_threads() {
        assert_eq!(Scheduler::try_new(0).unwrap_err(), SchedError::ZeroThreads);
    }

    #[test]
    fn configure_global_zero_is_an_error() {
        assert_eq!(configure_global(0).unwrap_err(), SchedError::ZeroThreads);
    }

    #[test]
    fn external_submitters_peak_counts_caller() {
        let sched = Scheduler::new(1);
        sched.reset_peak();
        sched.parallel_for(4, &|_| {});
        assert_eq!(sched.peak_parallelism(), 1);
    }
}

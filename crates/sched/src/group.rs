//! Task groups: the unit of scheduling.
//!
//! A group is a batch of tasks that complete together — either an indexed
//! range (`parallel_for`'s `0..n`) or a queue of boxed closures (`scope`'s
//! spawns). The scheduler never enqueues individual tasks; it enqueues
//! *tokens*, each an `Arc<GroupCore>` reference. A thread holding a token
//! drains the group's claim cursor: claim an index, run it, repeat until
//! the cursor is exhausted, then drop the token. This keeps queue traffic
//! proportional to the number of participating threads, not the number of
//! tasks, and caps a group's parallelism at its token count.
//!
//! Lifetime erasure: `parallel_for` and `scope` borrow closures from the
//! caller's stack and erase the lifetime (`Body::Indexed` stores a raw fat
//! pointer, `Body::Queued` transmutes boxed closures to `'static`). This
//! is sound because both calls block until `completed == total`, and a
//! claim can only succeed before then — tokens that outlive the call site
//! in some deque find the cursor exhausted and never touch the body.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Condvar, Mutex};

type QueuedTask = Box<dyn FnOnce() + Send + 'static>;

enum Body {
    /// `parallel_for` body: one shared closure called with each index.
    /// Lifetime-erased borrow of the caller's stack.
    Indexed(*const (dyn Fn(usize) + Sync)),
    /// `scope` body: one boxed closure per spawned task, taken on claim.
    Queued(Mutex<Vec<Option<QueuedTask>>>),
}

// Safety: the raw pointer in `Indexed` targets a `Sync` closure that the
// blocked caller keeps alive until every index completes (see module
// docs); `Queued` tasks are `Send` and each is taken by exactly one
// thread under the mutex.
unsafe impl Send for Body {}
unsafe impl Sync for Body {}

pub(crate) struct GroupCore {
    body: Body,
    /// Claim cursor: next index to hand out.
    next: AtomicUsize,
    /// Total tasks. Fixed for `Indexed`; grows with each `scope` spawn.
    total: AtomicUsize,
    /// Tasks finished (run, skipped-after-panic, or panicked).
    completed: AtomicUsize,
    panicked: AtomicBool,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl GroupCore {
    /// # Safety
    /// The caller must not let the returned group outlive `f` *while any
    /// claim can still succeed* — i.e. it must block until [`Self::wait`]
    /// returns before `f`'s storage goes away.
    pub(crate) unsafe fn indexed(f: &(dyn Fn(usize) + Sync), n: usize) -> Self {
        let f: *const (dyn Fn(usize) + Sync) = std::mem::transmute(f);
        GroupCore {
            body: Body::Indexed(f),
            next: AtomicUsize::new(0),
            total: AtomicUsize::new(n),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Re-arm a finished indexed group for a new body — the recycling
    /// path that keeps steady-state `parallel_for` calls off the heap.
    ///
    /// # Safety
    /// Same contract as [`Self::indexed`] for `f`'s lifetime. The `&mut`
    /// receiver must come from proven exclusive ownership
    /// (`Arc::get_mut`): no token for a previous incarnation may still be
    /// live anywhere, so no concurrent claim can observe the reset
    /// half-done.
    pub(crate) unsafe fn reset_indexed(&mut self, f: &(dyn Fn(usize) + Sync), n: usize) {
        let f: *const (dyn Fn(usize) + Sync) = std::mem::transmute(f);
        self.body = Body::Indexed(f);
        *self.next.get_mut() = 0;
        *self.total.get_mut() = n;
        *self.completed.get_mut() = 0;
        *self.panicked.get_mut() = false;
    }

    pub(crate) fn queued() -> Self {
        GroupCore {
            body: Body::Queued(Mutex::new(Vec::new())),
            next: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Append a spawned task (scope owner only, before join). The task is
    /// stored before `total` is bumped so a claimer always finds its slot.
    pub(crate) fn push_task(&self, task: QueuedTask) {
        match &self.body {
            Body::Queued(q) => q.lock().unwrap().push(Some(task)),
            Body::Indexed(_) => unreachable!("push_task on an indexed group"),
        }
        self.total.fetch_add(1, SeqCst);
    }

    /// Claim the next unclaimed index, if any. A CAS loop (rather than a
    /// blind `fetch_add`) so the cursor never overshoots `total`, which
    /// matters for queued groups whose `total` grows between claims.
    pub(crate) fn claim(&self) -> Option<usize> {
        let mut cur = self.next.load(SeqCst);
        loop {
            if cur >= self.total.load(SeqCst) {
                return None;
            }
            match self.next.compare_exchange(cur, cur + 1, SeqCst, SeqCst) {
                Ok(_) => return Some(cur),
                Err(now) => cur = now,
            }
        }
    }

    /// Execute a claimed index. Panics are caught and poison the group.
    /// An indexed group fails fast — once poisoned, remaining indices
    /// complete as no-ops, the way a GPU launch aborts the grid — while a
    /// queued group still runs every spawned task (independent closures,
    /// `std::thread::scope` semantics). Either way every claimed index is
    /// counted in `completed` exactly once, so the waiter always unblocks.
    pub(crate) fn run_index(&self, index: usize) {
        let outcome = match &self.body {
            Body::Indexed(_) if self.panicked.load(SeqCst) => Ok(()),
            Body::Indexed(f) => {
                // Safety: a successful claim proves the owning call is
                // still blocked in `wait`, so the borrow is live.
                let f = unsafe { &**f };
                catch_unwind(AssertUnwindSafe(|| f(index)))
            }
            Body::Queued(q) => match q.lock().unwrap()[index].take() {
                Some(task) => catch_unwind(AssertUnwindSafe(task)),
                None => Ok(()),
            },
        };
        if outcome.is_err() {
            self.panicked.store(true, SeqCst);
        }
        let done = self.completed.fetch_add(1, SeqCst) + 1;
        if done >= self.total.load(SeqCst) {
            // Lock before notifying so a waiter can't check-then-sleep
            // between our increment and our notify.
            let _guard = self.done_lock.lock().unwrap();
            self.done_cv.notify_all();
        }
    }

    /// Block until every task has completed. Callers must have exhausted
    /// the claim cursor first (the scheduler's drain loop does), so
    /// everything still outstanding is running on some other thread.
    pub(crate) fn wait(&self) {
        let mut guard = self.done_lock.lock().unwrap();
        while self.completed.load(SeqCst) < self.total.load(SeqCst) {
            guard = self.done_cv.wait(guard).unwrap();
        }
    }

    pub(crate) fn panicked(&self) -> bool {
        self.panicked.load(SeqCst)
    }
}

//! Fixed-capacity Chase–Lev work-stealing deque.
//!
//! One deque per pool worker: the owner pushes and pops at the *bottom*
//! (LIFO, so nested groups run before their parents' leftovers), thieves
//! take from the *top* (FIFO, so the oldest — usually largest — work
//! migrates first). This is the classic Chase–Lev algorithm in the
//! formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013), with two
//! simplifications that fit this workspace:
//!
//! * the ring buffer never grows — a full deque overflows to the
//!   scheduler's global injector instead (tasks here are coarse group
//!   tokens, a handful per launch, so 256 slots is already generous);
//! * every atomic uses `SeqCst`. Task granularity is a whole kernel
//!   launch or worker round, microseconds at minimum, so the cost of the
//!   conservative orderings is unmeasurable while the correctness
//!   argument stays the textbook one.
//!
//! Items are `usize` payloads — the scheduler stores `Arc<GroupCore>`
//! pointers from `Arc::into_raw`. Ownership transfers with the item: a
//! successful `pop`/`steal` hands the reference count to the caller.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering::SeqCst};

/// Result of a steal attempt.
pub(crate) enum Steal {
    /// Took this item; its ownership transfers to the thief.
    Success(usize),
    /// Nothing to take.
    Empty,
    /// Lost a race with the owner or another thief; top has moved, retry.
    Retry,
}

pub(crate) struct Deque {
    /// Next position a thief steals from. Monotonically increasing, which
    /// is what rules out ABA on the CAS.
    top: AtomicIsize,
    /// Next position the owner pushes to. Written only by the owner.
    bottom: AtomicIsize,
    buf: Box<[AtomicUsize]>,
}

impl Deque {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    /// Owner-only: push at the bottom. Returns the item back if the ring
    /// is full (caller overflows to the injector).
    pub(crate) fn push(&self, item: usize) -> Result<(), usize> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if b - t >= self.buf.len() as isize {
            return Err(item);
        }
        self.buf[(b as usize) & self.mask()].store(item, SeqCst);
        self.bottom.store(b + 1, SeqCst);
        Ok(())
    }

    /// Owner-only: pop at the bottom (LIFO). The single-element case races
    /// with thieves and is decided by a CAS on `top`.
    pub(crate) fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(SeqCst) - 1;
        self.bottom.store(b, SeqCst);
        let t = self.top.load(SeqCst);
        if t > b {
            // Already empty; undo the reservation.
            self.bottom.store(b + 1, SeqCst);
            return None;
        }
        let item = self.buf[(b as usize) & self.mask()].load(SeqCst);
        if t == b {
            // Last element: fight the thieves for it.
            let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            self.bottom.store(b + 1, SeqCst);
            return won.then_some(item);
        }
        Some(item)
    }

    /// Any thread: steal from the top (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        let item = self.buf[(t as usize) & self.mask()].load(SeqCst);
        if self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
            Steal::Success(item)
        } else {
            Steal::Retry
        }
    }

    /// Racy occupancy hint, used only to decide whether a worker may park
    /// (the sleep protocol's SeqCst fence pairing makes a stale answer
    /// safe — see `Shared::park`).
    pub(crate) fn is_empty_hint(&self) -> bool {
        self.top.load(SeqCst) >= self.bottom.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::new(8);
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.pop(), Some(3));
        match d.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            _ => panic!("steal should take the oldest item"),
        }
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn overflow_returns_the_item() {
        let d = Deque::new(4);
        for i in 0..4 {
            d.push(i).unwrap();
        }
        assert_eq!(d.push(99), Err(99));
    }

    /// One owner pushing/popping, several thieves stealing: every pushed
    /// item must be consumed exactly once.
    #[test]
    fn concurrent_steals_never_lose_or_duplicate() {
        const ITEMS: usize = 10_000;
        const THIEVES: usize = 3;
        let d = Arc::new(Deque::new(256));
        let seen: Arc<Vec<AtomicBool>> =
            Arc::new((0..ITEMS).map(|_| AtomicBool::new(false)).collect());
        let done = Arc::new(AtomicBool::new(false));

        let mark = |seen: &[AtomicBool], v: usize| {
            assert!(
                !seen[v].swap(true, SeqCst),
                "item {v} consumed twice"
            );
        };

        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                let d = Arc::clone(&d);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => mark(&seen, v),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(SeqCst) {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner: interleave pushes with occasional pops.
            let mut next = 0;
            while next < ITEMS {
                for _ in 0..7 {
                    if next == ITEMS {
                        break;
                    }
                    if d.push(next).is_ok() {
                        next += 1;
                    } else if let Some(v) = d.pop() {
                        mark(&seen, v);
                    }
                }
                if let Some(v) = d.pop() {
                    mark(&seen, v);
                }
            }
            while let Some(v) = d.pop() {
                mark(&seen, v);
            }
            done.store(true, SeqCst);
        });

        for (i, flag) in seen.iter().enumerate() {
            assert!(flag.load(SeqCst), "item {i} lost");
        }
    }
}

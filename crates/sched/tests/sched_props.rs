//! Property tests for the work-stealing scheduler: exactly-once execution
//! under arbitrary widths/caps/nesting shapes, peak-concurrency bounds,
//! and width-1 sequential ordering — the invariants every ported consumer
//! (gpu-sim launches, distributed rounds, CPU baselines) leans on.

use proptest::prelude::*;
use scd_sched::Scheduler;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flat groups: every index runs exactly once, for any pool width,
    /// cap, and task count.
    #[test]
    fn flat_group_exactly_once(threads in 1usize..5,
                               cap in 1usize..6,
                               n in 0usize..120) {
        let sched = Scheduler::new(threads);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        sched.parallel_for_limited(n, cap, &|i| {
            hits[i].fetch_add(1, SeqCst);
        });
        for h in &hits {
            prop_assert_eq!(h.load(SeqCst), 1);
        }
    }

    /// Two-level nesting: outer tasks spawn inner groups onto the same
    /// pool; the full outer × inner product runs exactly once and the
    /// peak thread count never exceeds the configured width (workers plus
    /// the one external submitter).
    #[test]
    fn nested_groups_exactly_once_within_width(threads in 1usize..5,
                                               outer in 1usize..7,
                                               inner in 1usize..9) {
        let sched = Scheduler::new(threads);
        sched.reset_peak();
        let hits: Vec<AtomicUsize> =
            (0..outer * inner).map(|_| AtomicUsize::new(0)).collect();
        sched.parallel_for(outer, &|o| {
            sched.parallel_for(inner, &|i| {
                hits[o * inner + i].fetch_add(1, SeqCst);
            });
        });
        for h in &hits {
            prop_assert_eq!(h.load(SeqCst), 1);
        }
        prop_assert!(sched.peak_parallelism() <= threads,
                     "peak {} > configured {}", sched.peak_parallelism(), threads);
    }

    /// Scoped spawns interleaved with indexed groups all join.
    #[test]
    fn scope_and_parallel_for_compose(threads in 1usize..5,
                                      tasks in 0usize..20,
                                      inner in 1usize..6) {
        let sched = Scheduler::new(threads);
        let total = AtomicUsize::new(0);
        sched.scope(|s| {
            for _ in 0..tasks {
                let total = &total;
                let sched = &sched;
                s.spawn(move || {
                    sched.parallel_for(inner, &|_| {
                        total.fetch_add(1, SeqCst);
                    });
                });
            }
        });
        prop_assert_eq!(total.load(SeqCst), tasks * inner);
    }

    /// A width-1 scheduler is a plain sequential loop: indices observe
    /// strict order, which is what `with_host_threads(1)` determinism
    /// reduces to.
    #[test]
    fn width_one_is_sequential(n in 0usize..60) {
        let sched = Scheduler::new(1);
        let order = Mutex::new(Vec::new());
        sched.parallel_for(n, &|i| {
            order.lock().unwrap().push(i);
        });
        prop_assert_eq!(order.into_inner().unwrap(), (0..n).collect::<Vec<_>>());
    }
}

//! Property tests for the work-stealing scheduler: exactly-once execution
//! under arbitrary widths/caps/nesting shapes, peak-concurrency bounds,
//! and width-1 sequential ordering — the invariants every ported consumer
//! (gpu-sim launches, distributed rounds, CPU baselines) leans on.

use proptest::prelude::*;
use scd_sched::Scheduler;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Run `n` tasks on `sched` capped at `cap`, where the first wave of
/// tasks rendezvous: each parks until `expect = min(width, n)` tasks are
/// inside the group simultaneously (or a generous timeout trips). Long
/// enough tasks make the scheduler's *engageable* parallelism observable
/// through peak accounting, instead of racing task granularity against
/// worker wake-up latency. Returns `(expect, sched.peak_parallelism())`.
fn rendezvous_peak(sched: &Scheduler, n: usize, cap: usize) -> (usize, usize) {
    let expect = sched.threads().min(cap.max(1)).min(n);
    // A worker of a *previous* group decrements the active counter a few
    // instructions after its last index completes (peak accounting is a
    // conservative ceiling, not a completion barrier), so settle until
    // the reset baseline shows only idle threads before measuring.
    while {
        sched.reset_peak();
        sched.peak_parallelism() != 0
    } {
        std::thread::yield_now();
    }
    let arrivals = Mutex::new(0usize);
    let cv = Condvar::new();
    sched.parallel_for_limited(n, cap, &|_| {
        let mut arrived = arrivals.lock().unwrap();
        *arrived += 1;
        if *arrived >= expect {
            cv.notify_all();
        } else {
            // Hold this task live until the whole first wave is on-core;
            // the timeout turns a scheduler that cannot engage `expect`
            // threads into an assertion failure instead of a hang.
            let (_guard, timeout) = cv
                .wait_timeout_while(arrived, Duration::from_secs(10), |a| *a < expect)
                .unwrap();
            assert!(!timeout.timed_out(), "rendezvous timed out below {expect} tasks");
        }
    });
    (expect, sched.peak_parallelism())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flat groups: every index runs exactly once, for any pool width,
    /// cap, and task count.
    #[test]
    fn flat_group_exactly_once(threads in 1usize..5,
                               cap in 1usize..6,
                               n in 0usize..120) {
        let sched = Scheduler::new(threads);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        sched.parallel_for_limited(n, cap, &|i| {
            hits[i].fetch_add(1, SeqCst);
        });
        for h in &hits {
            prop_assert_eq!(h.load(SeqCst), 1);
        }
    }

    /// Two-level nesting: outer tasks spawn inner groups onto the same
    /// pool; the full outer × inner product runs exactly once and the
    /// peak thread count never exceeds the configured width (workers plus
    /// the one external submitter).
    #[test]
    fn nested_groups_exactly_once_within_width(threads in 1usize..5,
                                               outer in 1usize..7,
                                               inner in 1usize..9) {
        let sched = Scheduler::new(threads);
        sched.reset_peak();
        let hits: Vec<AtomicUsize> =
            (0..outer * inner).map(|_| AtomicUsize::new(0)).collect();
        sched.parallel_for(outer, &|o| {
            sched.parallel_for(inner, &|i| {
                hits[o * inner + i].fetch_add(1, SeqCst);
            });
        });
        for h in &hits {
            prop_assert_eq!(h.load(SeqCst), 1);
        }
        prop_assert!(sched.peak_parallelism() <= threads,
                     "peak {} > configured {}", sched.peak_parallelism(), threads);
    }

    /// Scoped spawns interleaved with indexed groups all join.
    #[test]
    fn scope_and_parallel_for_compose(threads in 1usize..5,
                                      tasks in 0usize..20,
                                      inner in 1usize..6) {
        let sched = Scheduler::new(threads);
        let total = AtomicUsize::new(0);
        sched.scope(|s| {
            for _ in 0..tasks {
                let total = &total;
                let sched = &sched;
                s.spawn(move || {
                    sched.parallel_for(inner, &|_| {
                        total.fetch_add(1, SeqCst);
                    });
                });
            }
        });
        prop_assert_eq!(total.load(SeqCst), tasks * inner);
    }

    /// A width-1 scheduler is a plain sequential loop: indices observe
    /// strict order, which is what `with_host_threads(1)` determinism
    /// reduces to.
    #[test]
    fn width_one_is_sequential(n in 0usize..60) {
        let sched = Scheduler::new(1);
        let order = Mutex::new(Vec::new());
        sched.parallel_for(n, &|i| {
            order.lock().unwrap().push(i);
        });
        prop_assert_eq!(order.into_inner().unwrap(), (0..n).collect::<Vec<_>>());
    }

    /// Chunked groups: every element of `0..n` is visited exactly once,
    /// each chunk is a contiguous range of the requested size (short only
    /// at the end), for any width/cap/chunk combination.
    #[test]
    fn chunked_group_covers_every_element_once(threads in 1usize..5,
                                               cap in 1usize..6,
                                               n in 0usize..150,
                                               chunk in 1usize..20) {
        let sched = Scheduler::new(threads);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        sched.parallel_for_chunked(n, chunk, cap, &|range| {
            assert!(range.start % chunk == 0, "chunks start on chunk boundaries");
            assert!(range.len() == chunk || range.end == n, "only the last chunk is short");
            for i in range {
                hits[i].fetch_add(1, SeqCst);
            }
        });
        for h in &hits {
            prop_assert_eq!(h.load(SeqCst), 1);
        }
    }
}

/// Regression for the `BENCH_sched.json` anomaly (`host_threads: 4`
/// reporting `shared_peak_parallelism: 2` on a single-core host): when
/// tasks live long enough to rendezvous, the scheduler must engage — and
/// peak accounting must report — exactly `min(configured width, available
/// tasks)` threads on a wide flat group. The bench's short free-running
/// epochs can legitimately drain before parked workers reach a core (the
/// bench now reports an `engageable_parallelism` probe alongside the
/// observed peak), but the scheduler itself may neither under-subscribe
/// nor under-count.
#[test]
fn peak_equals_min_width_tasks_on_wide_flat_group() {
    // Wide flat group: more tasks than threads → peak == width.
    let sched = Scheduler::new(4);
    let (expect, peak) = rendezvous_peak(&sched, 16, usize::MAX);
    assert_eq!(expect, 4);
    assert_eq!(peak, expect, "peak {peak} != min(width, tasks) = {expect}");

    // Fewer tasks than threads → peak == task count.
    let (expect, peak) = rendezvous_peak(&sched, 2, usize::MAX);
    assert_eq!(expect, 2);
    assert_eq!(peak, expect, "peak {peak} != min(width, tasks) = {expect}");

    // Cap below both → peak == cap.
    let (expect, peak) = rendezvous_peak(&sched, 16, 3);
    assert_eq!(expect, 3);
    assert_eq!(peak, expect, "peak {peak} != min(width, cap, tasks) = {expect}");
}

#[test]
fn peak_equals_width_across_widths() {
    for threads in 1..=6 {
        let sched = Scheduler::new(threads);
        let (expect, peak) = rendezvous_peak(&sched, 12, usize::MAX);
        assert_eq!(expect, threads.min(12));
        assert_eq!(peak, expect, "width {threads}: peak {peak} != {expect}");
    }
}

//! End-to-end store tests: bit-identity against the in-memory generator,
//! corruption detection on real files, and the bounded-RSS contract.

use scd_datasets::{criteo_like, CriteoSpec};
use scd_store::layout::{chunk_file_name, INDEX_FILE};
use scd_store::{write_criteo, Backing, ShardedDataset, StoreError};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scd_store_it_{name}_{}", std::process::id()))
}

/// Write the shared criteo fixture: 200 rows × (6 fields × 32 values),
/// chunked every 64 rows → 4 chunks.
fn write_fixture(dir: &Path) {
    let spec = CriteoSpec::new(200, 6, 32, 42);
    write_criteo(dir, &spec, 64).unwrap();
}

#[test]
fn shards_are_bit_identical_to_in_memory_generator() {
    let dir = tmp("bit_identity");
    write_fixture(&dir);

    // The in-memory path: same parameters, same seed.
    let data = criteo_like(200, 6, 32, 42);
    let mem_csr = data.matrix.to_csr();

    for backing in [Backing::Heap, Backing::Mmap] {
        let ds = ShardedDataset::open_with(&dir, backing).unwrap();
        let (csr, labels) = ds.load_all().unwrap();
        assert_eq!(csr.rows(), mem_csr.rows());
        assert_eq!(csr.cols(), mem_csr.cols());
        assert_eq!(csr.nnz(), mem_csr.nnz());
        // Row-for-row, bit-for-bit: indices, value bits, label bits.
        for r in 0..200 {
            let (a, b) = (csr.row(r), mem_csr.row(r));
            assert_eq!(a.indices, b.indices, "row {r} indices");
            let av: Vec<u32> = a.values.iter().map(|v| v.to_bits()).collect();
            let bv: Vec<u32> = b.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(av, bv, "row {r} value bits");
            assert_eq!(
                labels[r].to_bits(),
                data.labels[r].to_bits(),
                "row {r} label bits"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_load_equals_sliced_full_load() {
    let dir = tmp("partition");
    write_fixture(&dir);
    let ds = ShardedDataset::open(&dir).unwrap();
    let (full, labels) = ds.load_all().unwrap();
    // A worker-style partition crossing chunk boundaries.
    let (part, part_labels) = ds.load_rows(50..150).unwrap();
    assert_eq!(part.rows(), 100);
    for (local, global) in (50..150).enumerate() {
        let (a, b) = (part.row(local), full.row(global));
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.values, b.values);
        assert_eq!(part_labels[local].to_bits(), labels[global].to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_exceeds_writer_memory_by_4x() {
    let dir = tmp("bounded_rss");
    // Enough rows that chunking matters: 20k rows in 256-row chunks.
    let spec = CriteoSpec::new(20_000, 8, 64, 1);
    let s = write_criteo(&dir, &spec, 256).unwrap();
    assert!(
        s.disk_bytes >= 4 * s.buffered_high_water as u64,
        "disk {} < 4x buffered high-water {}",
        s.disk_bytes,
        s.buffered_high_water
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Corruption: every tampering mode yields a typed error, never a panic.
// ---------------------------------------------------------------------------

fn corrupt_at(path: &Path, offset: u64, xor: u8) {
    let mut f = OpenOptions::new().read(true).write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[b[0] ^ xor]).unwrap();
}

fn truncate_to(path: &Path, len: u64) {
    OpenOptions::new()
        .write(true)
        .open(path)
        .unwrap()
        .set_len(len)
        .unwrap();
}

#[test]
fn truncated_chunk_is_detected_at_open() {
    let dir = tmp("trunc_chunk");
    write_fixture(&dir);
    let chunk = dir.join(chunk_file_name(1));
    let len = std::fs::metadata(&chunk).unwrap().len();
    truncate_to(&chunk, len - 100);
    // The open-time size sweep already catches it.
    match ShardedDataset::open(&dir) {
        Err(StoreError::Truncated { expected, found, .. }) => {
            assert_eq!(expected, len);
            assert_eq!(found, len - 100);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_chunk_magic_and_version_are_typed() {
    let dir = tmp("chunk_magic");
    write_fixture(&dir);
    let chunk = dir.join(chunk_file_name(0));
    corrupt_at(&chunk, 0, 0xFF); // magic byte
    let ds = ShardedDataset::open(&dir).unwrap(); // sizes still fine
    assert!(matches!(ds.map_shard(0), Err(StoreError::BadMagic { .. })));
    corrupt_at(&chunk, 0, 0xFF); // restore
    corrupt_at(&chunk, 8, 0x55); // version field
    let ds = ShardedDataset::open(&dir).unwrap();
    assert!(matches!(
        ds.map_shard(0),
        Err(StoreError::BadVersion { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn payload_corruption_is_a_checksum_mismatch() {
    let dir = tmp("payload");
    write_fixture(&dir);
    let chunk = dir.join(chunk_file_name(2));
    corrupt_at(&chunk, 200, 0x01); // one payload bit
    let ds = ShardedDataset::open(&dir).unwrap();
    assert!(matches!(
        ds.map_shard(2),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    // verify() sweeps all chunks and hits it too; load_rows refuses to
    // hand out data from the bad chunk.
    assert!(ds.verify().is_err());
    assert!(ds.load_rows(100..200).is_err());
    // But rows entirely inside intact chunks still load.
    assert!(ds.load_rows(0..64).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn row_count_disagreement_is_typed() {
    let dir = tmp("rowcount");
    write_fixture(&dir);
    let chunk = dir.join(chunk_file_name(1));
    // Flip the low byte of the chunk header's rows field (offset 24):
    // the index still says 64, the chunk now claims something else.
    corrupt_at(&chunk, 24, 0x03);
    let ds = ShardedDataset::open(&dir).unwrap();
    match ds.map_shard(1) {
        Err(StoreError::RowCountMismatch {
            index_rows,
            chunk_rows,
            ..
        }) => {
            assert_eq!(index_rows, 64);
            assert_ne!(chunk_rows, 64);
        }
        other => panic!("expected RowCountMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_corruption_is_detected_at_open() {
    let dir = tmp("index");
    write_fixture(&dir);
    let index = dir.join(INDEX_FILE);

    corrupt_at(&index, 0, 0xFF);
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(StoreError::BadMagic { .. })
    ));
    corrupt_at(&index, 0, 0xFF); // restore

    corrupt_at(&index, 8, 0x20); // version
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(StoreError::BadVersion { .. })
    ));
    corrupt_at(&index, 8, 0x20); // restore

    corrupt_at(&index, 30, 0x01); // body byte → checksum breaks
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    corrupt_at(&index, 30, 0x01); // restore

    let len = std::fs::metadata(&index).unwrap().len();
    truncate_to(&index, len - 8);
    assert!(matches!(
        ShardedDataset::open(&dir),
        Err(StoreError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_error_formats_as_one_line() {
    let dir = tmp("one_line");
    write_fixture(&dir);
    corrupt_at(&dir.join(chunk_file_name(0)), 100, 0x01);
    let err = ShardedDataset::open(&dir).unwrap().map_shard(0).unwrap_err();
    let msg = err.to_string();
    assert!(!msg.contains('\n'), "multi-line error: {msg:?}");
    assert!(msg.contains("chunk-00000.scdc"), "no path in: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

//! Process-level memory telemetry for the bounded-RSS claims.
//!
//! The streaming generator's contract is "writes a dataset ≥ 4× its RSS
//! high-water"; the number backing that claim is the kernel's own peak
//! resident-set counter, read from `/proc/self/status`.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// where `/proc` is unavailable (non-Linux).
pub fn rss_high_water_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            // Format: "VmHWM:      12345 kB".
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwm_is_positive_and_monotonic_on_linux() {
        let Some(before) = rss_high_water_bytes() else {
            return; // non-Linux: nothing to check
        };
        assert!(before > 0);
        // Touch a few MB; the high-water must not decrease.
        let block = vec![7u8; 4 << 20];
        std::hint::black_box(&block);
        let after = rss_high_water_bytes().unwrap();
        assert!(after >= before, "{after} < {before}");
    }
}

//! # scd-store — out-of-core sharded dataset storage
//!
//! The paper's headline experiment trains on a 40 GB criteo day — a scale
//! no in-memory synthetic in this repository can reach. This crate stores
//! a sparse CSR dataset *on disk*, split into fixed-layout chunk files
//! that memory-map straight into `&[u32]` / `&[f32]` slices, so
//!
//! * a streaming [`ShardWriter`] emits multi-GB datasets row-at-a-time in
//!   bounded RSS (the matrix is never materialized in memory), and
//! * a [`ShardedDataset`] reader lets each distributed worker map only
//!   the chunks overlapping its own row range.
//!
//! ## On-disk format
//!
//! A dataset directory holds one index file plus one file per chunk:
//!
//! ```text
//! dataset/
//!   index.scds      versioned, checksummed table of contents
//!   chunk-00000.scdc
//!   chunk-00001.scdc
//!   ...
//! ```
//!
//! Every multi-byte integer is little-endian. Chunk payload sections are
//! 8-byte aligned (see [`layout`]), which together with the page-aligned
//! base address of an `mmap` makes the zero-copy slice casts sound.
//!
//! The format is paranoid by construction: magic + version fields on every
//! file, an FNV-1a checksum over the index and over each chunk payload,
//! and row/nnz counts recorded redundantly in both the index and the chunk
//! headers. Every disagreement surfaces as a typed [`StoreError`] — never
//! a panic, never silently truncated data.
//!
//! Training from shards is bit-identical to training in-memory on the same
//! generator seed: the writer stores the exact `f32`/`u32` the generator
//! produced, and the reader hands them back bit-for-bit.

pub mod gen;
pub mod layout;
pub mod mmap;
pub mod process;
pub mod reader;
pub mod writer;

pub use gen::{write_criteo, write_rows, write_webspam, StoreSummary};
pub use mmap::{Backing, Mapping};
pub use process::rss_high_water_bytes;
pub use reader::{MappedChunk, ShardedDataset};
pub use writer::ShardWriter;

use std::path::{Path, PathBuf};

/// Errors raised by the store. Every variant names the offending file, so
/// the message is actionable as a one-line CLI error.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// File or directory being touched.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// The file's format version is not one this build understands.
    BadVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found on disk.
        found: u32,
    },
    /// The stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
    },
    /// The file is shorter (or longer) than its header claims.
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually on disk.
        found: u64,
    },
    /// The index and a chunk header disagree about the chunk's row count.
    RowCountMismatch {
        /// Offending chunk file.
        path: PathBuf,
        /// Rows recorded in the index.
        index_rows: u64,
        /// Rows recorded in the chunk header.
        chunk_rows: u64,
    },
    /// The data is structurally invalid (bad offsets, out-of-range column
    /// index, unsorted row, ...).
    Invalid {
        /// Offending file.
        path: PathBuf,
        /// What exactly is wrong.
        detail: String,
    },
}

impl StoreError {
    /// Attach a path to an I/O error.
    pub fn io(path: &Path, source: std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "{}: not a scd-store file (bad magic)", path.display())
            }
            StoreError::BadVersion { path, found } => write!(
                f,
                "{}: unsupported format version {found} (this build reads version {})",
                path.display(),
                layout::VERSION
            ),
            StoreError::ChecksumMismatch { path } => {
                write!(f, "{}: checksum mismatch (file corrupt)", path.display())
            }
            StoreError::Truncated { path, expected, found } => write!(
                f,
                "{}: truncated or padded file ({found} bytes on disk, header implies {expected})",
                path.display()
            ),
            StoreError::RowCountMismatch { path, index_rows, chunk_rows } => write!(
                f,
                "{}: row count disagreement (index says {index_rows}, chunk header says {chunk_rows})",
                path.display()
            ),
            StoreError::Invalid { path, detail } => {
                write!(f, "{}: invalid data: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a, 64-bit: the store's integrity checksum. Not cryptographic —
/// it guards against truncation, bit rot, and partial writes, the failure
/// modes a local dataset cache actually meets.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn errors_display_one_line() {
        let e = StoreError::RowCountMismatch {
            path: PathBuf::from("/x/chunk-00001.scdc"),
            index_rows: 10,
            chunk_rows: 12,
        };
        let s = e.to_string();
        assert!(s.contains("chunk-00001.scdc"), "{s}");
        assert!(s.contains("index says 10"), "{s}");
        assert!(!s.contains('\n'));
        let e = StoreError::Truncated {
            path: PathBuf::from("c"),
            expected: 100,
            found: 40,
        };
        assert!(e.to_string().contains("40 bytes"), "{e}");
    }
}

//! Reading a sharded dataset back: index validation, chunk mapping, and
//! partition loads that touch only the chunks a worker actually owns.

use crate::layout::{
    self, chunk_file_name, chunk_layout, decode_index, ChunkHeader, ShardMeta, StoreIndex,
    INDEX_FILE,
};
use crate::mmap::{Backing, Mapping};
use crate::{fnv1a64, StoreError};
use scd_sparse::CsrMatrix;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// An opened dataset directory: the validated index plus the machinery to
/// map individual chunks on demand. Opening reads *only* the index — no
/// chunk bytes move until a `map_shard`/`load_rows` call asks for them,
/// which is what lets K workers each touch 1/K of the data.
pub struct ShardedDataset {
    dir: PathBuf,
    index: StoreIndex,
    /// Global row index at which each shard starts; one extra entry = total.
    row_starts: Vec<u64>,
    backing: Backing,
}

impl ShardedDataset {
    /// Open `dir` with the platform-default backing (mmap where available).
    pub fn open(dir: &Path) -> Result<ShardedDataset, StoreError> {
        Self::open_with(dir, Backing::default_for_platform())
    }

    /// Open `dir`, forcing a particular [`Backing`].
    pub fn open_with(dir: &Path, backing: Backing) -> Result<ShardedDataset, StoreError> {
        let index_path = dir.join(INDEX_FILE);
        let bytes =
            std::fs::read(&index_path).map_err(|e| StoreError::io(&index_path, e))?;
        let index = decode_index(&bytes, &index_path)?;
        let mut row_starts = Vec::with_capacity(index.shards.len() + 1);
        let mut acc = 0u64;
        for s in &index.shards {
            row_starts.push(acc);
            acc += s.rows;
        }
        row_starts.push(acc);
        // Cheap whole-dataset sanity pass: every chunk file must exist with
        // exactly the size the index recorded. Content (checksums) is only
        // verified when a chunk is actually mapped.
        for (i, meta) in index.shards.iter().enumerate() {
            let path = dir.join(chunk_file_name(i));
            let found = std::fs::metadata(&path)
                .map_err(|e| StoreError::io(&path, e))?
                .len();
            if found != meta.file_bytes {
                return Err(StoreError::Truncated {
                    path,
                    expected: meta.file_bytes,
                    found,
                });
            }
        }
        Ok(ShardedDataset {
            dir: dir.to_path_buf(),
            index,
            row_starts,
            backing,
        })
    }

    /// Total rows N.
    pub fn rows(&self) -> usize {
        self.index.rows as usize
    }

    /// Feature-space width M.
    pub fn cols(&self) -> usize {
        self.index.cols as usize
    }

    /// Total nonzeros.
    pub fn nnz(&self) -> usize {
        self.index.nnz as usize
    }

    /// Number of chunk files.
    pub fn num_shards(&self) -> usize {
        self.index.shards.len()
    }

    /// Index metadata for shard `i`.
    pub fn meta(&self, i: usize) -> &ShardMeta {
        &self.index.shards[i]
    }

    /// Global row range stored in shard `i`.
    pub fn shard_rows(&self, i: usize) -> Range<usize> {
        self.row_starts[i] as usize..self.row_starts[i + 1] as usize
    }

    /// Bytes on disk for the chunk files intersecting the global row range
    /// `rows` — the *actual* transfer size a worker loading that partition
    /// incurs, charged to the PCIe/network performance models.
    pub fn stored_bytes_for_rows(&self, rows: Range<usize>) -> u64 {
        self.intersecting_shards(&rows)
            .map(|i| self.index.shards[i].file_bytes)
            .sum()
    }

    /// Map shard `i`, fully validating it (header fields against the
    /// index, file size against the layout, payload checksum).
    pub fn map_shard(&self, i: usize) -> Result<MappedChunk, StoreError> {
        let meta = self.index.shards[i];
        let path = self.dir.join(chunk_file_name(i));
        let map = Mapping::open(&path, self.backing).map_err(|e| StoreError::io(&path, e))?;
        let bytes = map.bytes();
        // Validation order: shape of the file first (magic / version /
        // header truncation), then cross-checks against the index, then
        // size, then content. Each failure names the exact disagreement.
        let header = ChunkHeader::decode(bytes, &path)?;
        if header.rows != meta.rows {
            return Err(StoreError::RowCountMismatch {
                path,
                index_rows: meta.rows,
                chunk_rows: header.rows,
            });
        }
        if header.shard_id != i as u64
            || header.cols != self.index.cols
            || header.nnz != meta.nnz
        {
            return Err(StoreError::Invalid {
                path,
                detail: format!(
                    "chunk header (shard {}, cols {}, nnz {}) disagrees with index (shard {}, cols {}, nnz {})",
                    header.shard_id, header.cols, header.nnz, i, self.index.cols, meta.nnz
                ),
            });
        }
        let l = chunk_layout(meta.rows as usize, meta.nnz as usize);
        if bytes.len() != l.file_bytes {
            return Err(StoreError::Truncated {
                path,
                expected: l.file_bytes as u64,
                found: bytes.len() as u64,
            });
        }
        let payload = &bytes[layout::CHUNK_HEADER_BYTES..];
        let checksum = fnv1a64(payload);
        if checksum != header.payload_checksum || checksum != meta.payload_checksum {
            return Err(StoreError::ChecksumMismatch { path });
        }
        let chunk = MappedChunk {
            map,
            layout: l,
            rows: meta.rows as usize,
            nnz: meta.nnz as usize,
        };
        // Offsets must describe a valid chunk-local CSR before anyone
        // trusts them for slicing.
        let offsets = chunk.offsets();
        if offsets[0] != 0 || offsets[chunk.rows] != chunk.nnz as u64 {
            return Err(StoreError::Invalid {
                path,
                detail: format!(
                    "offsets span [{}, {}] but must span [0, {}]",
                    offsets[0], offsets[chunk.rows], chunk.nnz
                ),
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Invalid {
                path,
                detail: "row offsets are not monotonically non-decreasing".into(),
            });
        }
        Ok(chunk)
    }

    /// Load the global row range `rows` into one in-memory CSR matrix plus
    /// its label vector, touching only the intersecting chunks. The result
    /// is bit-identical to slicing the in-memory dataset: values and
    /// labels come back exactly as written.
    pub fn load_rows(&self, rows: Range<usize>) -> Result<(CsrMatrix, Vec<f32>), StoreError> {
        if rows.start > rows.end || rows.end > self.rows() {
            return Err(StoreError::Invalid {
                path: self.dir.clone(),
                detail: format!(
                    "row range {}..{} outside dataset of {} rows",
                    rows.start,
                    rows.end,
                    self.rows()
                ),
            });
        }
        let n = rows.end - rows.start;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut labels = Vec::with_capacity(n);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in self.intersecting_shards(&rows) {
            let shard_rows = self.shard_rows(i);
            let chunk = self.map_shard(i)?;
            let lo = rows.start.max(shard_rows.start) - shard_rows.start;
            let hi = rows.end.min(shard_rows.end) - shard_rows.start;
            let co = chunk.offsets();
            let base = co[lo] as usize;
            let end = co[hi] as usize;
            indices.extend_from_slice(&chunk.indices()[base..end]);
            values.extend_from_slice(&chunk.values()[base..end]);
            labels.extend_from_slice(&chunk.labels()[lo..hi]);
            let already = *offsets.last().expect("nonempty");
            offsets.extend(co[lo + 1..=hi].iter().map(|&o| already + (o as usize - base)));
        }
        let csr = CsrMatrix::from_raw(n, self.cols(), offsets, indices, values).map_err(|e| {
            StoreError::Invalid {
                path: self.dir.clone(),
                detail: format!("stored rows do not form a valid CSR: {e}"),
            }
        })?;
        Ok((csr, labels))
    }

    /// Load the whole dataset.
    pub fn load_all(&self) -> Result<(CsrMatrix, Vec<f32>), StoreError> {
        self.load_rows(0..self.rows())
    }

    /// Map and checksum every chunk; `Ok(())` means all bytes on disk are
    /// intact. Used by `scd shard inspect --verify`.
    pub fn verify(&self) -> Result<(), StoreError> {
        for i in 0..self.num_shards() {
            self.map_shard(i)?;
        }
        Ok(())
    }

    fn intersecting_shards(&self, rows: &Range<usize>) -> Range<usize> {
        if rows.start >= rows.end {
            return 0..0;
        }
        let first = self
            .row_starts
            .partition_point(|&s| s <= rows.start as u64)
            .saturating_sub(1);
        let last = self.row_starts.partition_point(|&s| s < rows.end as u64);
        first..last.min(self.num_shards())
    }
}

impl std::fmt::Debug for ShardedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDataset")
            .field("dir", &self.dir)
            .field("rows", &self.index.rows)
            .field("cols", &self.index.cols)
            .field("nnz", &self.index.nnz)
            .field("shards", &self.index.shards.len())
            .finish()
    }
}

/// A fully validated, mapped chunk. The accessor slices are zero-copy
/// reinterpretations of the mapped bytes — sound because both backings
/// guarantee an 8-byte-aligned base and the layout aligns every section
/// to 8 (see [`crate::mmap`] and [`crate::layout`]).
pub struct MappedChunk {
    map: Mapping,
    layout: layout::ChunkLayout,
    rows: usize,
    nnz: usize,
}

impl std::fmt::Debug for MappedChunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedChunk")
            .field("rows", &self.rows)
            .field("nnz", &self.nnz)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

impl MappedChunk {
    /// Rows in this chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Nonzeros in this chunk.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Whether the bytes come from a live `mmap` (false = heap copy).
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// Chunk-local CSR row offsets, `rows + 1` entries.
    pub fn offsets(&self) -> &[u64] {
        let b = &self.map.bytes()[self.layout.offsets.clone()];
        // SAFETY: section is 8-aligned within an 8-aligned base and holds
        // exactly (rows + 1) little-endian u64 (this build is LE-only by
        // the mmap platform gate; the heap path reads raw file bytes the
        // writer produced on the same machine).
        unsafe { std::slice::from_raw_parts(b.as_ptr() as *const u64, self.rows + 1) }
    }

    /// Labels, one per row.
    pub fn labels(&self) -> &[f32] {
        let b = &self.map.bytes()[self.layout.labels.clone()];
        // SAFETY: 4-aligned section (offset is a multiple of 8), f32 is POD.
        unsafe { std::slice::from_raw_parts(b.as_ptr() as *const f32, self.rows) }
    }

    /// Column indices for all rows, concatenated.
    pub fn indices(&self) -> &[u32] {
        let b = &self.map.bytes()[self.layout.indices.clone()];
        // SAFETY: 8-aligned section, u32 is POD.
        unsafe { std::slice::from_raw_parts(b.as_ptr() as *const u32, self.nnz) }
    }

    /// Values for all rows, concatenated.
    pub fn values(&self) -> &[f32] {
        let b = &self.map.bytes()[self.layout.values.clone()];
        // SAFETY: 8-aligned section, f32 is POD.
        unsafe { std::slice::from_raw_parts(b.as_ptr() as *const f32, self.nnz) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ShardWriter;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("scd_store_reader_{name}_{}", std::process::id()))
    }

    /// 10 rows over 50 columns, chunks of 4 rows (4 + 4 + 2).
    fn write_fixture(dir: &Path) {
        let mut w = ShardWriter::create(dir, 50, 4).unwrap();
        for r in 0..10u32 {
            let cols = [r, r + 10, r + 30];
            let vals = [r as f32 + 0.5, 1.0, -2.0];
            w.push_row(&cols, &vals, if r % 2 == 0 { 1.0 } else { -1.0 }).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn roundtrip_whole_dataset() {
        let dir = tmp("roundtrip");
        write_fixture(&dir);
        for backing in [Backing::Heap, Backing::Mmap] {
            let ds = ShardedDataset::open_with(&dir, backing).unwrap();
            assert_eq!((ds.rows(), ds.cols(), ds.nnz()), (10, 50, 30));
            assert_eq!(ds.num_shards(), 3);
            assert_eq!(ds.shard_rows(0), 0..4);
            assert_eq!(ds.shard_rows(2), 8..10);
            let (csr, labels) = ds.load_all().unwrap();
            assert_eq!(csr.rows(), 10);
            assert_eq!(csr.nnz(), 30);
            assert_eq!(labels.len(), 10);
            for r in 0..10 {
                let row = csr.row(r);
                let r32 = r as u32;
                assert_eq!(row.indices, &[r32, r32 + 10, r32 + 30]);
                assert_eq!(row.values, &[r as f32 + 0.5, 1.0, -2.0]);
                assert_eq!(labels[r], if r % 2 == 0 { 1.0 } else { -1.0 });
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rows_slices_across_chunk_boundaries() {
        let dir = tmp("slices");
        write_fixture(&dir);
        let ds = ShardedDataset::open(&dir).unwrap();
        // 3..9 spans all three chunks partially.
        let (csr, labels) = ds.load_rows(3..9).unwrap();
        assert_eq!(csr.rows(), 6);
        assert_eq!(labels.len(), 6);
        for (local, global) in (3..9).enumerate() {
            let row = csr.row(local);
            let g = global as u32;
            assert_eq!(row.indices, &[g, g + 10, g + 30]);
            assert_eq!(row.values[0], global as f32 + 0.5);
        }
        // Empty range is fine.
        let (csr, labels) = ds.load_rows(5..5).unwrap();
        assert_eq!(csr.rows(), 0);
        assert!(labels.is_empty());
        // Out-of-range is a typed error.
        assert!(matches!(ds.load_rows(0..11), Err(StoreError::Invalid { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stored_bytes_track_intersecting_chunks() {
        let dir = tmp("bytes");
        write_fixture(&dir);
        let ds = ShardedDataset::open(&dir).unwrap();
        let all: u64 = (0..3).map(|i| ds.meta(i).file_bytes).sum();
        assert_eq!(ds.stored_bytes_for_rows(0..10), all);
        assert_eq!(ds.stored_bytes_for_rows(0..4), ds.meta(0).file_bytes);
        assert_eq!(ds.stored_bytes_for_rows(4..5), ds.meta(1).file_bytes);
        assert_eq!(
            ds.stored_bytes_for_rows(3..5),
            ds.meta(0).file_bytes + ds.meta(1).file_bytes
        );
        assert_eq!(ds.stored_bytes_for_rows(0..0), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_passes_on_intact_data() {
        let dir = tmp("verify");
        write_fixture(&dir);
        ShardedDataset::open(&dir).unwrap().verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_and_missing_index_are_io_errors() {
        let dir = tmp("missing");
        assert!(matches!(
            ShardedDataset::open(&dir),
            Err(StoreError::Io { .. })
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            ShardedDataset::open(&dir),
            Err(StoreError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The streaming shard writer: rows in, chunk files out, bounded RSS.

use crate::layout::{
    self, chunk_file_name, chunk_layout, encode_index, ChunkHeader, ShardMeta, StoreIndex,
    INDEX_FILE,
};
use crate::{fnv1a64, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes a sharded dataset one row at a time. Rows accumulate in a small
/// chunk buffer (`chunk_rows` rows); each full buffer is flushed to its
/// own `chunk-NNNNN.scdc` file and dropped, so the writer's memory
/// high-water is one chunk, not the dataset — the property that lets the
/// generators emit multi-GB datasets from a few MB of RSS.
///
/// Rows must arrive with strictly increasing, in-range column indices
/// (the CSR invariant every solver relies on); violations surface
/// immediately as [`StoreError::Invalid`] rather than poisoning the file.
pub struct ShardWriter {
    dir: PathBuf,
    cols: usize,
    chunk_rows: usize,
    // Current chunk buffer (chunk-local CSR).
    offsets: Vec<u64>,
    labels: Vec<f32>,
    indices: Vec<u32>,
    values: Vec<f32>,
    shards: Vec<ShardMeta>,
    /// Serialized-chunk scratch, reused across flushes: after the first
    /// chunk, flushing allocates nothing.
    payload: Vec<u8>,
    total_rows: u64,
    total_nnz: u64,
    disk_bytes: u64,
    buffered_high_water: usize,
}

impl ShardWriter {
    /// Start a dataset of width `cols` in directory `dir` (created if
    /// absent), cutting a chunk every `chunk_rows` rows.
    pub fn create(dir: &Path, cols: usize, chunk_rows: usize) -> Result<ShardWriter, StoreError> {
        if cols == 0 || cols > u32::MAX as usize {
            return Err(StoreError::Invalid {
                path: dir.to_path_buf(),
                detail: format!("column count {cols} outside [1, u32::MAX]"),
            });
        }
        if chunk_rows == 0 {
            return Err(StoreError::Invalid {
                path: dir.to_path_buf(),
                detail: "chunk_rows must be >= 1".into(),
            });
        }
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        Ok(ShardWriter {
            dir: dir.to_path_buf(),
            cols,
            chunk_rows,
            offsets: vec![0],
            labels: Vec::new(),
            indices: Vec::new(),
            values: Vec::new(),
            shards: Vec::new(),
            payload: Vec::new(),
            total_rows: 0,
            total_nnz: 0,
            disk_bytes: 0,
            buffered_high_water: 0,
        })
    }

    /// Append one row (its nonzero columns, matching values, and label).
    pub fn push_row(
        &mut self,
        indices: &[u32],
        values: &[f32],
        label: f32,
    ) -> Result<(), StoreError> {
        if indices.len() != values.len() {
            return Err(self.invalid(format!(
                "row {}: {} indices but {} values",
                self.total_rows,
                indices.len(),
                values.len()
            )));
        }
        let mut prev: Option<u32> = None;
        for &c in indices {
            if c as usize >= self.cols {
                return Err(self.invalid(format!(
                    "row {}: column {c} out of range (cols = {})",
                    self.total_rows, self.cols
                )));
            }
            if prev.is_some_and(|p| p >= c) {
                return Err(self.invalid(format!(
                    "row {}: column indices not strictly increasing",
                    self.total_rows
                )));
            }
            prev = Some(c);
        }
        self.indices.extend_from_slice(indices);
        self.values.extend_from_slice(values);
        self.labels.push(label);
        self.offsets.push(self.indices.len() as u64);
        self.total_rows += 1;
        self.total_nnz += indices.len() as u64;
        let buffered = self.offsets.len() * 8
            + self.labels.len() * 4
            + self.indices.len() * 4
            + self.values.len() * 4;
        self.buffered_high_water = self.buffered_high_water.max(buffered);
        if self.labels.len() == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Largest number of bytes the row buffer ever held — the writer's
    /// contribution to the process RSS high-water.
    pub fn buffered_high_water(&self) -> usize {
        self.buffered_high_water
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.total_rows
    }

    /// Flush the buffered rows (if any) and write the index. Consumes the
    /// writer: a finished dataset directory is immutable.
    pub fn finish(mut self) -> Result<crate::StoreSummary, StoreError> {
        if !self.labels.is_empty() {
            self.flush_chunk()?;
        }
        if self.total_rows == 0 {
            return Err(StoreError::Invalid {
                path: self.dir.clone(),
                detail: "no rows written".into(),
            });
        }
        let index = StoreIndex {
            cols: self.cols as u64,
            rows: self.total_rows,
            nnz: self.total_nnz,
            shards: std::mem::take(&mut self.shards),
        };
        let chunks = index.shards.len();
        let bytes = encode_index(&index);
        let path = self.dir.join(INDEX_FILE);
        fs::write(&path, &bytes).map_err(|e| StoreError::io(&path, e))?;
        self.disk_bytes += bytes.len() as u64;
        Ok(crate::StoreSummary {
            rows: self.total_rows as usize,
            cols: self.cols,
            nnz: self.total_nnz as usize,
            chunks,
            disk_bytes: self.disk_bytes,
            buffered_high_water: self.buffered_high_water,
        })
    }

    fn invalid(&self, detail: String) -> StoreError {
        StoreError::Invalid {
            path: self.dir.clone(),
            detail,
        }
    }

    /// Write the buffered rows as the next chunk file and clear the buffer.
    fn flush_chunk(&mut self) -> Result<(), StoreError> {
        let rows = self.labels.len();
        let nnz = self.indices.len();
        let l = chunk_layout(rows, nnz);
        // The serialization scratch persists across flushes (clear +
        // zero-fill resize, no reallocation once it has grown to one
        // chunk), so it counts toward the buffered high-water alongside
        // the row buffer it snapshots.
        self.payload.clear();
        self.payload.resize(l.file_bytes - layout::CHUNK_HEADER_BYTES, 0);
        let payload = &mut self.payload;
        let base = layout::CHUNK_HEADER_BYTES;
        let put = |dst: &mut [u8], at: std::ops::Range<usize>, src: &[u8]| {
            dst[at.start - base..at.end - base].copy_from_slice(src);
        };
        put(payload, l.offsets.clone(), bytes_of_u64(&self.offsets));
        put(payload, l.labels.clone(), bytes_of_f32(&self.labels));
        put(payload, l.indices.clone(), bytes_of_u32(&self.indices));
        put(payload, l.values.clone(), bytes_of_f32(&self.values));
        let checksum = fnv1a64(&self.payload);
        let buffered = self.offsets.len() * 8
            + self.labels.len() * 4
            + self.indices.len() * 4
            + self.values.len() * 4
            + self.payload.len();
        self.buffered_high_water = self.buffered_high_water.max(buffered);

        let header = ChunkHeader {
            shard_id: self.shards.len() as u64,
            rows: rows as u64,
            cols: self.cols as u64,
            nnz: nnz as u64,
            payload_checksum: checksum,
        };
        let path = self.dir.join(chunk_file_name(self.shards.len()));
        let mut file = fs::File::create(&path).map_err(|e| StoreError::io(&path, e))?;
        file.write_all(&header.encode()).map_err(|e| StoreError::io(&path, e))?;
        file.write_all(&self.payload).map_err(|e| StoreError::io(&path, e))?;

        self.shards.push(ShardMeta {
            rows: rows as u64,
            nnz: nnz as u64,
            file_bytes: l.file_bytes as u64,
            payload_checksum: checksum,
        });
        self.disk_bytes += l.file_bytes as u64;
        self.offsets.clear();
        self.offsets.push(0);
        self.labels.clear();
        self.indices.clear();
        self.values.clear();
        Ok(())
    }
}

fn bytes_of_u64(v: &[u64]) -> &[u8] {
    // SAFETY: plain-old-data reinterpretation, length scaled accordingly.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 8) }
}

fn bytes_of_u32(v: &[u32]) -> &[u8] {
    // SAFETY: as above.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 4) }
}

fn bytes_of_f32(v: &[f32]) -> &[u8] {
    // SAFETY: as above.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 4) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("scd_store_writer_{name}_{}", std::process::id()))
    }

    #[test]
    fn rejects_bad_rows() {
        let dir = tmp("bad_rows");
        let mut w = ShardWriter::create(&dir, 10, 4).unwrap();
        assert!(matches!(
            w.push_row(&[1, 2], &[1.0], 1.0),
            Err(StoreError::Invalid { .. })
        ));
        assert!(w.push_row(&[3, 2], &[1.0, 1.0], 1.0).is_err(), "unsorted");
        assert!(w.push_row(&[2, 2], &[1.0, 1.0], 1.0).is_err(), "duplicate");
        assert!(w.push_row(&[10], &[1.0], 1.0).is_err(), "out of range");
        assert!(w.push_row(&[0, 9], &[1.0, 2.0], -1.0).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_degenerate_configs() {
        let dir = tmp("degen");
        assert!(ShardWriter::create(&dir, 0, 4).is_err());
        assert!(ShardWriter::create(&dir, 4, 0).is_err());
        let w = ShardWriter::create(&dir, 4, 2).unwrap();
        assert!(matches!(w.finish(), Err(StoreError::Invalid { .. })), "empty dataset");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunking_and_summary_counts() {
        let dir = tmp("counts");
        let mut w = ShardWriter::create(&dir, 100, 3).unwrap();
        for r in 0..8u32 {
            w.push_row(&[r, r + 50], &[1.0, 2.0], 1.0).unwrap();
        }
        let s = w.finish().unwrap();
        assert_eq!(s.rows, 8);
        assert_eq!(s.nnz, 16);
        assert_eq!(s.chunks, 3, "3 + 3 + 2 rows");
        assert!(dir.join(INDEX_FILE).is_file());
        for i in 0..3 {
            assert!(dir.join(chunk_file_name(i)).is_file());
        }
        // Disk bytes match what is actually on disk.
        let on_disk: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        assert_eq!(s.disk_bytes, on_disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn buffered_high_water_is_one_chunk() {
        let dir = tmp("hw");
        let mut w = ShardWriter::create(&dir, 1000, 16).unwrap();
        for r in 0..160u32 {
            let c = r % 900;
            w.push_row(&[c, c + 50], &[0.5, 1.5], -1.0).unwrap();
        }
        let s = w.finish().unwrap();
        // One chunk buffers 16 rows: 17 offsets + 16 labels + 32 idx + 32 val,
        // plus the persistent serialization scratch holding the same chunk
        // in its on-disk form (honest accounting: that buffer lives as
        // long as the writer does).
        let one_chunk = 17 * 8 + 16 * 4 + 32 * 4 + 32 * 4;
        let scratch = chunk_layout(16, 32).file_bytes - layout::CHUNK_HEADER_BYTES;
        assert_eq!(s.buffered_high_water, one_chunk + scratch);
        assert!(s.disk_bytes >= 4 * s.buffered_high_water as u64);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The on-disk byte layout: index header, per-shard metadata, chunk
//! header, and the aligned section map of a chunk payload.
//!
//! ## Index file (`index.scds`)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "SCDSIDX1"
//!      8     4  version (u32, = 1)
//!     12     4  flags   (u32, = 0, reserved)
//!     16     8  cols    (u64)
//!     24     8  rows    (u64, total)
//!     32     8  nnz     (u64, total)
//!     40     8  chunks  (u64, count C)
//!     48  32·C  C × ShardMeta { rows, nnz, file_bytes, payload_checksum }
//!   end-8     8  fnv1a64 over every preceding byte
//! ```
//!
//! ## Chunk file (`chunk-NNNNN.scdc`)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "SCDSCHK1"
//!      8     4  version (u32, = 1)
//!     12     4  pad     (u32, = 0)
//!     16     8  shard_id (u64)
//!     24     8  rows     (u64, this chunk)
//!     32     8  cols     (u64, = index cols)
//!     40     8  nnz      (u64, this chunk)
//!     48     8  payload_checksum (fnv1a64 over bytes [64, EOF))
//!     56     8  reserved (u64, = 0)
//!     64     …  payload: offsets ‖ labels ‖ indices ‖ values
//! ```
//!
//! Payload sections, in order, each starting on an 8-byte boundary
//! (`offsets` trivially; the others via zero padding to the next multiple
//! of 8):
//!
//! * `offsets` — `(rows+1) × u64`, chunk-local CSR row offsets
//!   (`offsets[0] = 0`, `offsets[rows] = nnz`)
//! * `labels`  — `rows × f32`, padded to 8
//! * `indices` — `nnz × f32`-sized `u32` column indices, padded to 8
//! * `values`  — `nnz × f32`, padded to 8
//!
//! The 64-byte header plus 8-byte section alignment means every section's
//! file offset is a multiple of 8; an `mmap` base address is page-aligned,
//! so the in-memory addresses inherit that alignment and the `&[u64]` /
//! `&[u32]` / `&[f32]` reinterpretations in [`crate::reader`] are sound.

use crate::{fnv1a64, StoreError};
use std::ops::Range;
use std::path::Path;

/// Magic bytes opening the index file.
pub const INDEX_MAGIC: [u8; 8] = *b"SCDSIDX1";
/// Magic bytes opening every chunk file.
pub const CHUNK_MAGIC: [u8; 8] = *b"SCDSCHK1";
/// The format version this build reads and writes.
pub const VERSION: u32 = 1;
/// Fixed chunk header size; a multiple of 8 so the payload starts aligned.
pub const CHUNK_HEADER_BYTES: usize = 64;
/// Fixed index preamble size (before the shard table).
pub const INDEX_HEADER_BYTES: usize = 48;
/// Bytes per shard-table entry.
pub const SHARD_META_BYTES: usize = 32;
/// The index file's name inside a dataset directory.
pub const INDEX_FILE: &str = "index.scds";

/// The chunk file name for shard `i`.
pub fn chunk_file_name(i: usize) -> String {
    format!("chunk-{i:05}.scdc")
}

/// Round `n` up to the next multiple of 8.
pub fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Per-shard entry in the index's table of contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Rows stored in this chunk.
    pub rows: u64,
    /// Nonzeros stored in this chunk.
    pub nnz: u64,
    /// Total chunk file size in bytes (header + payload) — the *actual*
    /// bytes a worker moves to load this shard, charged to the perf models.
    pub file_bytes: u64,
    /// FNV-1a over the chunk payload; duplicated from the chunk header so
    /// the index alone can detect a swapped-in foreign chunk.
    pub payload_checksum: u64,
}

/// The decoded index: dataset shape plus the shard table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreIndex {
    /// Feature-space width M.
    pub cols: u64,
    /// Total rows N across all chunks.
    pub rows: u64,
    /// Total nonzeros across all chunks.
    pub nnz: u64,
    /// Per-chunk metadata, in chunk order.
    pub shards: Vec<ShardMeta>,
}

/// Byte ranges of the four payload sections within a chunk file, plus the
/// implied total file size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkLayout {
    /// `(rows+1) × u64` chunk-local row offsets.
    pub offsets: Range<usize>,
    /// `rows × f32` labels.
    pub labels: Range<usize>,
    /// `nnz × u32` column indices.
    pub indices: Range<usize>,
    /// `nnz × f32` values.
    pub values: Range<usize>,
    /// Header + payload (with padding): the exact file size.
    pub file_bytes: usize,
}

/// Compute the section map for a chunk of `rows` rows and `nnz` nonzeros.
pub fn chunk_layout(rows: usize, nnz: usize) -> ChunkLayout {
    let offsets_start = CHUNK_HEADER_BYTES;
    let offsets_end = offsets_start + 8 * (rows + 1);
    let labels_end = offsets_end + 4 * rows;
    let indices_start = pad8(labels_end);
    let indices_end = indices_start + 4 * nnz;
    let values_start = pad8(indices_end);
    let values_end = values_start + 4 * nnz;
    ChunkLayout {
        offsets: offsets_start..offsets_end,
        labels: offsets_end..labels_end,
        indices: indices_start..indices_end,
        values: values_start..values_end,
        file_bytes: pad8(values_end),
    }
}

/// The decoded fixed-size chunk header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Position of this chunk in the dataset.
    pub shard_id: u64,
    /// Rows in this chunk.
    pub rows: u64,
    /// Feature-space width M (same in every chunk).
    pub cols: u64,
    /// Nonzeros in this chunk.
    pub nnz: u64,
    /// FNV-1a over the payload bytes.
    pub payload_checksum: u64,
}

impl ChunkHeader {
    /// Serialize to the fixed 64-byte header.
    pub fn encode(&self) -> [u8; CHUNK_HEADER_BYTES] {
        let mut buf = [0u8; CHUNK_HEADER_BYTES];
        buf[0..8].copy_from_slice(&CHUNK_MAGIC);
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        // bytes 12..16: pad, zero.
        buf[16..24].copy_from_slice(&self.shard_id.to_le_bytes());
        buf[24..32].copy_from_slice(&self.rows.to_le_bytes());
        buf[32..40].copy_from_slice(&self.cols.to_le_bytes());
        buf[40..48].copy_from_slice(&self.nnz.to_le_bytes());
        buf[48..56].copy_from_slice(&self.payload_checksum.to_le_bytes());
        // bytes 56..64: reserved, zero.
        buf
    }

    /// Parse and validate the magic/version of a chunk header.
    pub fn decode(bytes: &[u8], path: &Path) -> Result<Self, StoreError> {
        if bytes.len() < CHUNK_HEADER_BYTES {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                expected: CHUNK_HEADER_BYTES as u64,
                found: bytes.len() as u64,
            });
        }
        if bytes[0..8] != CHUNK_MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::BadVersion {
                path: path.to_path_buf(),
                found: version,
            });
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        Ok(ChunkHeader {
            shard_id: u64_at(16),
            rows: u64_at(24),
            cols: u64_at(32),
            nnz: u64_at(40),
            payload_checksum: u64_at(48),
        })
    }
}

/// Serialize the index file: preamble, shard table, trailing checksum.
pub fn encode_index(index: &StoreIndex) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(INDEX_HEADER_BYTES + SHARD_META_BYTES * index.shards.len() + 8);
    buf.extend_from_slice(&INDEX_MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // flags
    buf.extend_from_slice(&index.cols.to_le_bytes());
    buf.extend_from_slice(&index.rows.to_le_bytes());
    buf.extend_from_slice(&index.nnz.to_le_bytes());
    buf.extend_from_slice(&(index.shards.len() as u64).to_le_bytes());
    for s in &index.shards {
        buf.extend_from_slice(&s.rows.to_le_bytes());
        buf.extend_from_slice(&s.nnz.to_le_bytes());
        buf.extend_from_slice(&s.file_bytes.to_le_bytes());
        buf.extend_from_slice(&s.payload_checksum.to_le_bytes());
    }
    let checksum = fnv1a64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Parse and fully validate an index file's bytes: magic, version,
/// trailing checksum, table length, and internal row/nnz totals.
pub fn decode_index(bytes: &[u8], path: &Path) -> Result<StoreIndex, StoreError> {
    let min = INDEX_HEADER_BYTES + 8;
    if bytes.len() < min {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            expected: min as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[0..8] != INDEX_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::BadVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    let cols = u64_at(16);
    let rows = u64_at(24);
    let nnz = u64_at(32);
    let chunks = u64_at(40);
    let expected = INDEX_HEADER_BYTES as u64 + SHARD_META_BYTES as u64 * chunks + 8;
    if bytes.len() as u64 != expected {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            expected,
            found: bytes.len() as u64,
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a64(&bytes[..body_end]) != stored {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
        });
    }
    let mut shards = Vec::with_capacity(chunks as usize);
    for i in 0..chunks as usize {
        let base = INDEX_HEADER_BYTES + SHARD_META_BYTES * i;
        shards.push(ShardMeta {
            rows: u64_at(base),
            nnz: u64_at(base + 8),
            file_bytes: u64_at(base + 16),
            payload_checksum: u64_at(base + 24),
        });
    }
    let sum_rows: u64 = shards.iter().map(|s| s.rows).sum();
    let sum_nnz: u64 = shards.iter().map(|s| s.nnz).sum();
    if sum_rows != rows || sum_nnz != nnz {
        return Err(StoreError::Invalid {
            path: path.to_path_buf(),
            detail: format!(
                "shard table sums to {sum_rows} rows / {sum_nnz} nnz but the header claims {rows} / {nnz}"
            ),
        });
    }
    Ok(StoreIndex {
        cols,
        rows,
        nnz,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("test.scds")
    }

    #[test]
    fn chunk_layout_is_aligned_and_tight() {
        for (rows, nnz) in [(1, 1), (3, 7), (100, 999), (5, 0)] {
            let l = chunk_layout(rows, nnz);
            for start in [l.offsets.start, l.labels.start, l.indices.start, l.values.start] {
                assert_eq!(start % 8, 0, "section at {start} unaligned");
            }
            assert_eq!(l.offsets.len(), 8 * (rows + 1));
            assert_eq!(l.labels.len(), 4 * rows);
            assert_eq!(l.indices.len(), 4 * nnz);
            assert_eq!(l.values.len(), 4 * nnz);
            assert_eq!(l.file_bytes % 8, 0);
            assert!(l.file_bytes >= l.values.end);
            assert!(l.file_bytes - l.values.end < 8);
        }
    }

    #[test]
    fn chunk_header_roundtrip() {
        let h = ChunkHeader {
            shard_id: 3,
            rows: 1000,
            cols: 1 << 40,
            nnz: 123456,
            payload_checksum: 0xDEADBEEFCAFEF00D,
        };
        let bytes = h.encode();
        assert_eq!(ChunkHeader::decode(&bytes, &p()).unwrap(), h);
    }

    #[test]
    fn chunk_header_rejects_corruption() {
        let h = ChunkHeader {
            shard_id: 0,
            rows: 1,
            cols: 2,
            nnz: 1,
            payload_checksum: 9,
        };
        let mut bytes = h.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            ChunkHeader::decode(&bytes, &p()),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bytes = h.encode();
        bytes[8] = 99;
        assert!(matches!(
            ChunkHeader::decode(&bytes, &p()),
            Err(StoreError::BadVersion { found: 99, .. })
        ));
        assert!(matches!(
            ChunkHeader::decode(&h.encode()[..10], &p()),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn index_roundtrip_and_corruption() {
        let idx = StoreIndex {
            cols: 640,
            rows: 30,
            nnz: 120,
            shards: vec![
                ShardMeta { rows: 16, nnz: 64, file_bytes: 1000, payload_checksum: 1 },
                ShardMeta { rows: 14, nnz: 56, file_bytes: 900, payload_checksum: 2 },
            ],
        };
        let bytes = encode_index(&idx);
        assert_eq!(decode_index(&bytes, &p()).unwrap(), idx);

        let mut bad = bytes.clone();
        bad[20] ^= 1; // cols byte → checksum breaks
        assert!(matches!(
            decode_index(&bad, &p()),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            decode_index(&bytes[..bytes.len() - 3], &p()),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_index(&bad, &p()), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn index_rejects_inconsistent_totals() {
        let idx = StoreIndex {
            cols: 10,
            rows: 99, // shards only sum to 30
            nnz: 120,
            shards: vec![ShardMeta { rows: 30, nnz: 120, file_bytes: 1, payload_checksum: 0 }],
        };
        let bytes = encode_index(&idx);
        assert!(matches!(decode_index(&bytes, &p()), Err(StoreError::Invalid { .. })));
    }
}

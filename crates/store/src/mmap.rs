//! Read-only file mappings without a libc dependency.
//!
//! The workspace vendors all external crates as std-only stubs, so there
//! is no `libc`/`memmap2` to lean on. On Linux (x86_64 / aarch64) we issue
//! the `mmap`/`munmap` syscalls directly via inline assembly; everywhere
//! else — and on request, for tests — we fall back to reading the file
//! into an 8-byte-aligned heap buffer that presents the identical `&[u8]`
//! view.
//!
//! ## Safety model
//!
//! * Mappings are `PROT_READ` + `MAP_PRIVATE`: nothing written through
//!   them, no shared-memory aliasing with other processes' writes.
//! * The mapped length is captured at open; chunk files are immutable
//!   once [`crate::ShardWriter::finish`] returns, and every reader
//!   validates sizes and checksums before trusting content. Truncating a
//!   mapped file under a live mapping would raise SIGBUS — the store's
//!   contract is that dataset directories are write-once.
//! * The heap fallback buffer is backed by `Vec<u64>`, so both backings
//!   guarantee 8-byte base alignment; combined with the 8-byte-aligned
//!   section offsets of [`crate::layout`], reinterpreting subslices as
//!   `&[u64]`/`&[u32]`/`&[f32]` is well-defined.

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// How file bytes are presented to the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// `mmap(2)` the file (zero-copy; falls back to [`Backing::Heap`] on
    /// platforms without the raw syscall shim).
    Mmap,
    /// Read the file into an aligned heap buffer.
    Heap,
}

impl Backing {
    /// The preferred backing for this platform: mmap where the syscall
    /// shim exists, heap elsewhere.
    pub fn default_for_platform() -> Backing {
        if sys::HAVE_MMAP {
            Backing::Mmap
        } else {
            Backing::Heap
        }
    }
}

/// An immutable byte view of a file: either a live `mmap` or an aligned
/// heap copy. Dereference via [`Mapping::bytes`].
pub struct Mapping {
    inner: Inner,
    len: usize,
}

enum Inner {
    /// Base address of a live mapping (page-aligned, `len` bytes).
    Mapped(*const u8),
    /// 8-byte-aligned heap buffer holding the file's bytes.
    Heap(Vec<u64>),
}

// SAFETY: the mapping is read-only and owned; the raw pointer is only a
// base address into memory that lives exactly as long as `self`.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map (or read) the whole file at `path`.
    pub fn open(path: &Path, backing: Backing) -> std::io::Result<Mapping> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap rejects zero-length mappings; an empty heap buffer
            // presents the same (empty) view.
            return Ok(Mapping { inner: Inner::Heap(Vec::new()), len: 0 });
        }
        match backing {
            Backing::Mmap if sys::HAVE_MMAP => {
                let ptr = sys::mmap_readonly(&file, len)?;
                Ok(Mapping { inner: Inner::Mapped(ptr), len })
            }
            _ => {
                // ceil(len/8) u64 words guarantee 8-byte alignment; the
                // trailing pad bytes stay zero and out of `bytes()`.
                let mut words = vec![0u64; len.div_ceil(8)];
                // SAFETY: a u64 buffer reinterpreted as bytes is plain
                // memory of the same size.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len)
                };
                file.read_exact(dst)?;
                Ok(Mapping { inner: Inner::Heap(words), len })
            }
        }
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            // SAFETY: the mapping covers `len` readable bytes for as long
            // as `self` is alive (munmap only happens in Drop).
            Inner::Mapped(ptr) => unsafe { std::slice::from_raw_parts(*ptr, self.len) },
            Inner::Heap(words) => {
                // SAFETY: the buffer holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, self.len) }
            }
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this mapping is a live `mmap` (false = heap copy).
    pub fn is_mmap(&self) -> bool {
        matches!(self.inner, Inner::Mapped(_))
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        if let Inner::Mapped(ptr) = self.inner {
            // SAFETY: `ptr`/`len` came from a successful mmap_readonly and
            // are unmapped exactly once.
            unsafe { sys::munmap(ptr, self.len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

/// Raw-syscall shim. Linux-only; other platforms compile the `HAVE_MMAP =
/// false` stub and every open silently takes the heap path.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    pub const HAVE_MMAP: bool = true;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// Six-argument syscall, returning the kernel's raw result (negative
    /// errno on failure, encoded in the usual [-4095, -1] window).
    unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`.
    pub fn mmap_readonly(file: &File, len: usize) -> std::io::Result<*const u8> {
        let fd = file.as_raw_fd() as usize;
        // SAFETY: all arguments are valid for mmap; the kernel validates
        // the fd and length and reports failure through the return value.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd, 0) };
        if (-4095..0).contains(&ret) {
            return Err(std::io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as *const u8)
    }

    /// `munmap(ptr, len)`; errors are ignored (nothing actionable in Drop).
    ///
    /// # Safety
    /// `ptr`/`len` must describe a live mapping returned by
    /// [`mmap_readonly`], not yet unmapped.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    use std::fs::File;

    pub const HAVE_MMAP: bool = false;

    pub fn mmap_readonly(_file: &File, _len: usize) -> std::io::Result<*const u8> {
        unreachable!("mmap shim absent on this platform; Backing::Heap is forced")
    }

    /// # Safety
    /// Never called: no mapping can exist on this platform.
    pub unsafe fn munmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("scd_store_mmap_{name}_{}", std::process::id()))
    }

    #[test]
    fn both_backings_agree_bytewise() {
        let path = tmp("agree");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();

        let heap = Mapping::open(&path, Backing::Heap).unwrap();
        assert!(!heap.is_mmap());
        assert_eq!(heap.bytes(), &payload[..]);
        assert_eq!(heap.len(), payload.len());

        let mapped = Mapping::open(&path, Backing::Mmap).unwrap();
        assert_eq!(mapped.is_mmap(), sys::HAVE_MMAP);
        assert_eq!(mapped.bytes(), &payload[..]);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn base_addresses_are_8_aligned() {
        let path = tmp("align");
        // 13 bytes: deliberately not a multiple of 8.
        File::create(&path).unwrap().write_all(b"0123456789abc").unwrap();
        for backing in [Backing::Heap, Backing::Mmap] {
            let map = Mapping::open(&path, backing).unwrap();
            assert_eq!(map.bytes().as_ptr() as usize % 8, 0, "{backing:?}");
            assert_eq!(map.len(), 13);
            assert!(!map.is_empty());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("empty");
        File::create(&path).unwrap();
        let map = Mapping::open(&path, Backing::Mmap).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Mapping::open(&tmp("missing_never_created"), Backing::Mmap).is_err());
    }
}

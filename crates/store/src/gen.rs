//! Streaming dataset generation: spec in, shard directory out, one row in
//! memory at a time.

use crate::writer::ShardWriter;
use crate::StoreError;
use scd_datasets::{CriteoSpec, WebspamStreamSpec};
use std::path::Path;

/// What a finished write produced — the numbers `scd shard gen` prints and
/// the bounded-RSS tests assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Rows written.
    pub rows: usize,
    /// Feature-space width.
    pub cols: usize,
    /// Total nonzeros written.
    pub nnz: usize,
    /// Chunk files produced.
    pub chunks: usize,
    /// Total bytes on disk (chunks + index).
    pub disk_bytes: u64,
    /// Peak bytes the writer's row buffer held — the streaming path's
    /// memory footprint, compared against `disk_bytes` to demonstrate the
    /// dataset exceeds its generation RSS.
    pub buffered_high_water: usize,
}

/// Stream `rows` generator-produced rows into a shard directory. `row_fn`
/// fills the scratch index/value vectors for its row number and returns
/// the label; only one chunk of rows is ever buffered.
pub fn write_rows<F>(
    dir: &Path,
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    mut row_fn: F,
) -> Result<StoreSummary, StoreError>
where
    F: FnMut(usize, &mut Vec<u32>, &mut Vec<f32>) -> f32,
{
    let mut writer = ShardWriter::create(dir, cols, chunk_rows)?;
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..rows {
        let label = row_fn(r, &mut indices, &mut values);
        writer.push_row(&indices, &values, label)?;
    }
    writer.finish()
}

/// Stream a [`CriteoSpec`] dataset to disk. The resulting shards load
/// back bit-identical to `scd_datasets::criteo_like` with the same
/// parameters.
pub fn write_criteo(
    dir: &Path,
    spec: &CriteoSpec,
    chunk_rows: usize,
) -> Result<StoreSummary, StoreError> {
    write_rows(dir, spec.rows, spec.cols(), chunk_rows, |r, idx, val| {
        spec.row(r, idx, val)
    })
}

/// Stream a [`WebspamStreamSpec`] dataset to disk.
pub fn write_webspam(
    dir: &Path,
    spec: &WebspamStreamSpec,
    chunk_rows: usize,
) -> Result<StoreSummary, StoreError> {
    write_rows(dir, spec.rows, spec.cols, chunk_rows, |r, idx, val| {
        spec.row(r, idx, val)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ShardedDataset;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("scd_store_gen_{name}_{}", std::process::id()))
    }

    #[test]
    fn criteo_stream_roundtrips() {
        let dir = tmp("criteo");
        let spec = CriteoSpec::new(64, 4, 16, 7);
        let s = write_criteo(&dir, &spec, 10).unwrap();
        assert_eq!(s.rows, 64);
        assert_eq!(s.cols, 64);
        assert_eq!(s.nnz, 64 * 4);
        assert_eq!(s.chunks, 7);
        let ds = ShardedDataset::open(&dir).unwrap();
        let (csr, labels) = ds.load_all().unwrap();
        assert_eq!(csr.rows(), 64);
        assert_eq!(labels.len(), 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn webspam_stream_roundtrips() {
        let dir = tmp("webspam");
        let spec = WebspamStreamSpec::new(40, 200, 8, 3);
        let s = write_webspam(&dir, &spec, 16).unwrap();
        assert_eq!(s.rows, 40);
        assert_eq!(s.chunks, 3);
        let ds = ShardedDataset::open(&dir).unwrap();
        ds.verify().unwrap();
        let (csr, _) = ds.load_all().unwrap();
        assert_eq!(csr.nnz(), s.nnz);
        std::fs::remove_dir_all(&dir).ok();
    }
}

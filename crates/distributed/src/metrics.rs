//! Per-epoch round telemetry for the distributed driver.
//!
//! One [`RoundMetrics`] is recorded per synchronous round (epoch): what
//! each worker's round cost, which workers were lost, how many retries
//! the master issued, and the γ it finally applied. The bench harness
//! and CLI export the series as JSON (hand-rolled — the workspace has no
//! serde) so fault-injection experiments are auditable after the fact.

/// Telemetry for one synchronous round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Round index (0-based, monotonically increasing per driver).
    pub epoch: usize,
    /// Final simulated round seconds per worker, by worker id, including
    /// injected delays and retry charges. Lost workers report the time
    /// the master spent waiting on them.
    pub worker_round_seconds: Vec<f64>,
    /// The barrier charge for this round: the slowest worker's total.
    pub barrier_seconds: f64,
    /// The aggregation scale the master applied.
    pub gamma: f64,
    /// Histogram of the staleness of the deltas applied this round:
    /// `staleness_hist[s]` counts deltas computed against a snapshot `s`
    /// master versions behind the version they were applied to. A
    /// synchronous round is always `[K′]` (every delta exactly fresh);
    /// the bounded-staleness driver reports the spread its τ permitted.
    pub staleness_hist: Vec<usize>,
    /// Retry requests the master issued this round (all workers).
    pub retries: usize,
    /// Workers whose round never arrived and were aggregated around.
    pub dropped_workers: Vec<usize>,
    /// K′: number of workers whose delta made it into the update.
    pub survivors: usize,
    /// Wire format label (`raw`, `fp16`, `topk:<k>`, `topk-ef:<k>`).
    pub wire: String,
    /// Dense-f32 bytes this round would have moved without a codec:
    /// upload (K′ reduces + retry re-sends) plus download (K broadcasts).
    pub bytes_raw: usize,
    /// Bytes actually charged to the network model after encoding, over
    /// the same legs as `bytes_raw` (includes sparse index overhead).
    pub bytes_encoded: usize,
    /// `bytes_raw / bytes_encoded`; 1.0 for `raw`, higher is better.
    pub compression_ratio: f64,
}

impl RoundMetrics {
    /// Serialize as a single JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epoch\": {}, \"worker_round_seconds\": {}, \"barrier_seconds\": {:.6e}, \
             \"gamma\": {:.6e}, \"staleness_hist\": {}, \"retries\": {}, \
             \"dropped_workers\": {}, \"survivors\": {}, \"wire\": \"{}\", \
             \"bytes_raw\": {}, \"bytes_encoded\": {}, \"compression_ratio\": {:.4}}}",
            self.epoch,
            json_f64_array(&self.worker_round_seconds),
            self.barrier_seconds,
            self.gamma,
            json_usize_array(&self.staleness_hist),
            self.retries,
            json_usize_array(&self.dropped_workers),
            self.survivors,
            self.wire,
            self.bytes_raw,
            self.bytes_encoded,
            self.compression_ratio,
        )
    }

    /// Serialize a series of rounds as a JSON array (one object per line).
    pub fn series_to_json(series: &[RoundMetrics]) -> String {
        if series.is_empty() {
            return "[]".to_string();
        }
        let mut out = String::from("[\n");
        for (i, m) in series.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&m.to_json());
            if i + 1 < series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

fn json_f64_array(values: &[f64]) -> String {
    let body: Vec<String> = values.iter().map(|v| format!("{v:.6e}")).collect();
    format!("[{}]", body.join(", "))
}

fn json_usize_array(values: &[usize]) -> String {
    let body: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoundMetrics {
        RoundMetrics {
            epoch: 3,
            worker_round_seconds: vec![0.5, 1.25],
            barrier_seconds: 1.25,
            gamma: 0.5,
            staleness_hist: vec![1],
            retries: 1,
            dropped_workers: vec![1],
            survivors: 1,
            wire: "topk:8".to_string(),
            bytes_raw: 8192,
            bytes_encoded: 144,
            compression_ratio: 8192.0 / 144.0,
        }
    }

    #[test]
    fn json_object_contains_every_field() {
        let json = sample().to_json();
        for key in [
            "\"epoch\": 3",
            "\"worker_round_seconds\": [5.000000e-1, 1.250000e0]",
            "\"barrier_seconds\":",
            "\"gamma\":",
            "\"staleness_hist\": [1]",
            "\"retries\": 1",
            "\"dropped_workers\": [1]",
            "\"survivors\": 1",
            "\"wire\": \"topk:8\"",
            "\"bytes_raw\": 8192",
            "\"bytes_encoded\": 144",
            "\"compression_ratio\": 56.8889",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn series_renders_as_array() {
        assert_eq!(RoundMetrics::series_to_json(&[]), "[]");
        let series = vec![sample(), sample()];
        let json = RoundMetrics::series_to_json(&series);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"epoch\"").count(), 2);
        assert_eq!(json.matches(',').count() % 2, 1, "one separator between objects");
    }
}

//! Bounded-staleness asynchronous rounds on the deterministic
//! discrete-event engine ([`scd_events`]).
//!
//! Where [`crate::DistributedScd`] advances in lock-step rounds — every
//! worker computes against the same broadcast snapshot, the master
//! reduces all K deltas behind a barrier — this driver lets each worker
//! free-run: pull the master's latest state, compute a round, push the
//! delta, and (staleness bound permitting) immediately pull again. The
//! staleness bound τ is the SSP-style knob interpolating between the two
//! regimes:
//!
//! * **τ = 0** — a worker may only start round r+1 once *every* worker
//!   has finished round r. The master buffers the K pushes of a round
//!   and aggregates them through *exactly* the synchronous driver's code
//!   path (worker-id-order encode → decode → sum, scalar reduce, shared
//!   [`choose_gamma`], one apply) — so the trajectory is **bit-identical**
//!   to [`crate::DistributedScd`]; the event engine re-derives only
//!   *when* things happen, never *what* is computed.
//! * **0 < τ < ∞** — a worker may run at most τ rounds ahead of the
//!   slowest worker. Pushes are applied on arrival (γ chosen for the
//!   single delta, with averaging still damping by 1/K), so fast workers
//!   overlap their communication with slow workers' compute.
//! * **τ = ∞** — a true event-driven parameter server: nothing gates a
//!   worker but its own round-trip latency. This supersedes the
//!   round-robin approximation in [`crate::param_server`] — deltas land
//!   in simulated-arrival order, not in a fixed interleave.
//!
//! ### Clock model
//!
//! Every duration comes from the calibrated perf models: a worker's
//! compute time is its round's [`scd_core::TimeBreakdown`] total, uploads
//! cost one [`LinkProfile::transfer_seconds`] of the codec's encoded
//! bytes, master applies cost `host_vector_op_seconds`, and snapshot
//! grants travel as dense `4·len`-byte state (snapshots are full state,
//! not deltas — the delta codecs do not apply). Fault plans inject
//! *delays* (compute scaled by `delay_factor`) and *drops* (the push
//! arrives as a loss notification; the master discards it, the worker
//! rolls back) keyed by the same deterministic fate hash as the
//! synchronous driver. There are no retries here — a retry is a
//! synchronous-barrier concept; an async worker just pulls fresh state
//! and moves on. `timeout_seconds` is likewise ignored (there is no
//! barrier to time out of).
//!
//! Staleness is *measured*, not just bounded: each applied delta records
//! `master_version(apply) − master_version(pull)` and the per-epoch
//! histogram lands in [`RoundMetrics::staleness_hist`].

use crate::driver::{build_workers, choose_gamma, Aggregation, DistributedConfig};
use crate::fault::{FaultPlan, RoundFate};
use crate::metrics::RoundMetrics;
use crate::worker::{Worker, WorkerRound};
use gpu_sim::GpuError;
use scd_core::{
    EpochStats, Form, ObjectiveKind, RidgeProblem, Solver, TimeBreakdown, WorkerScalars,
};
use scd_events::{ActorId, Engine};
use scd_perf_model::{CpuProfile, LinkProfile};
use scd_sparse::dense;
use scd_wire::{DeltaCodec, WireFormat, WirePayload};

/// The staleness bound τ: how many rounds the fastest worker may run
/// ahead of the slowest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staleness {
    /// At most τ rounds of lead; `Bounded(0)` is the synchronous barrier.
    Bounded(usize),
    /// No bound — free-running parameter server.
    Unbounded,
}

impl Staleness {
    /// Parse a CLI value: a non-negative integer, or `inf` / `unbounded`.
    pub fn parse(s: &str) -> Result<Staleness, String> {
        match s {
            "inf" | "unbounded" => Ok(Staleness::Unbounded),
            _ => s
                .parse::<usize>()
                .map(Staleness::Bounded)
                .map_err(|_| format!("invalid staleness '{s}' (want an integer or 'inf')")),
        }
    }

    /// Whether a worker `lead` rounds ahead of the slowest may proceed.
    fn allows(self, lead: usize) -> bool {
        match self {
            Staleness::Bounded(tau) => lead <= tau,
            Staleness::Unbounded => true,
        }
    }
}

impl std::fmt::Display for Staleness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Staleness::Bounded(tau) => write!(f, "{tau}"),
            Staleness::Unbounded => write!(f, "inf"),
        }
    }
}

/// What travels through the event queue.
enum AsyncEvent {
    /// A state snapshot arrives at `worker`, which immediately computes
    /// its next round against it. The state is captured at send time —
    /// master mutations during flight must not leak into it.
    Snapshot {
        worker: usize,
        state: Vec<f32>,
        version: u64,
    },
    /// `worker`'s delta (stored in `in_flight`) arrives at the master.
    Push { worker: usize },
}

/// A delta on the wire, waiting for its arrival event to pop.
struct PendingPush {
    round: WorkerRound,
    /// The push was lost in flight; the master sees only the loss.
    dropped: bool,
    /// Master version the worker's snapshot carried.
    pulled_version: u64,
}

/// Per-epoch accumulators, reset every [`AsyncScd::epoch`].
struct EpochAccum {
    busy: Vec<TimeBreakdown>,
    master_host: f64,
    staleness_hist: Vec<usize>,
    dropped: Vec<usize>,
    applied: usize,
    updates: usize,
    bytes_raw: usize,
    bytes_encoded: usize,
    last_gamma: f64,
}

impl EpochAccum {
    fn new(k: usize) -> Self {
        EpochAccum {
            busy: vec![TimeBreakdown::default(); k],
            master_host: 0.0,
            staleness_hist: Vec::new(),
            dropped: Vec::new(),
            applied: 0,
            updates: 0,
            bytes_raw: 0,
            bytes_encoded: 0,
            last_gamma: 0.0,
        }
    }

    fn bump_staleness(&mut self, stale: usize, count: usize) {
        if self.staleness_hist.len() <= stale {
            self.staleness_hist.resize(stale + 1, 0);
        }
        self.staleness_hist[stale] += count;
    }
}

/// The bounded-staleness asynchronous driver (implements [`Solver`]).
pub struct AsyncScd {
    form: Form,
    objective: ObjectiveKind,
    aggregation: Aggregation,
    workers: Vec<Worker>,
    /// The master's authoritative shared vector.
    shared: Vec<f32>,
    weights_total: usize,
    cpu: CpuProfile,
    network: LinkProfile,
    fault: FaultPlan,
    wire: WireFormat,
    codec: Box<dyn DeltaCodec>,
    staleness: Staleness,
    engine: Engine<AsyncEvent>,
    /// Initial snapshots scheduled (first `epoch` call kicks this off).
    started: bool,
    /// Applies so far — the version stamp on snapshots.
    master_version: u64,
    /// Rounds completed per worker (push arrived at the master).
    completed: Vec<usize>,
    /// Workers that finished a push and await a staleness-gated grant.
    waiting: Vec<bool>,
    /// One in-flight push per worker (workers are serial).
    in_flight: Vec<Option<PendingPush>>,
    /// τ=0 only: buffered pushes of the current barrier round.
    bucket: Vec<Option<PendingPush>>,
    bucket_count: usize,
    last_gamma: f64,
    epoch_index: usize,
    round_metrics: Vec<RoundMetrics>,
    bytes_raw_total: usize,
    bytes_encoded_total: usize,
    /// Reused codec scratch: the encoded payload and its decoded dense
    /// form, recycled across every apply.
    payload_scratch: WirePayload,
    decoded_scratch: Vec<f32>,
}

impl AsyncScd {
    /// Partition the problem and stand up the cluster on the event
    /// engine. Partitions, seeds, and per-worker cost profiles are built
    /// by the same [`build_workers`] as the synchronous driver — only the
    /// round protocol differs. `config.runtime` is ignored: event order
    /// already fixes the execution, there is no pool to race.
    pub fn new(
        full: &RidgeProblem,
        config: &DistributedConfig,
        staleness: Staleness,
    ) -> Result<Self, GpuError> {
        assert!(config.workers >= 1, "need at least one worker");
        let workers = build_workers(full, config, &crate::source::PartitionSource::Memory)
            .map_err(crate::driver::BuildError::expect_gpu)?
            .workers;
        let k = workers.len();
        Ok(AsyncScd {
            form: config.form,
            objective: config.objective,
            aggregation: config.aggregation,
            workers,
            shared: vec![0.0; full.shared_len(config.form)],
            weights_total: full.coords(config.form),
            cpu: config.cpu.clone(),
            network: config.network.clone(),
            fault: config.fault,
            wire: config.wire,
            codec: config.wire.codec(),
            staleness,
            engine: Engine::new(),
            started: false,
            master_version: 0,
            completed: vec![0; k],
            waiting: vec![false; k],
            in_flight: (0..k).map(|_| None).collect(),
            bucket: (0..k).map(|_| None).collect(),
            bucket_count: 0,
            last_gamma: 1.0,
            epoch_index: 0,
            round_metrics: Vec::new(),
            bytes_raw_total: 0,
            bytes_encoded_total: 0,
            payload_scratch: WirePayload::default(),
            decoded_scratch: Vec::new(),
        })
    }

    /// Number of workers K.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The staleness bound τ.
    pub fn staleness(&self) -> Staleness {
        self.staleness
    }

    /// γ applied by the most recent delta (or barrier round).
    pub fn last_gamma(&self) -> f64 {
        self.last_gamma
    }

    /// Telemetry of every epoch run so far, in order.
    pub fn round_metrics(&self) -> &[RoundMetrics] {
        &self.round_metrics
    }

    /// The full round-metrics series as a JSON array.
    pub fn metrics_json(&self) -> String {
        RoundMetrics::series_to_json(&self.round_metrics)
    }

    /// The wire format delta traffic travels in.
    pub fn wire(&self) -> WireFormat {
        self.wire
    }

    /// Cumulative (dense-f32, encoded) traffic bytes, uploads + snapshots.
    pub fn wire_bytes_total(&self) -> (usize, usize) {
        (self.bytes_raw_total, self.bytes_encoded_total)
    }

    /// Enable (or disable) per-event trace recording on the engine.
    pub fn set_trace(&mut self, enabled: bool) {
        self.engine.set_trace(enabled);
    }

    /// Rendered trace lines, one per recorded event.
    pub fn trace_lines(&self) -> Vec<String> {
        self.engine
            .trace()
            .iter()
            .map(|entry| entry.render())
            .collect()
    }

    /// Scatter the workers' local weights into the global coordinate
    /// space.
    pub fn assemble_weights(&self) -> Vec<f32> {
        let mut global = vec![0.0f32; self.weights_total];
        for worker in &self.workers {
            for (local, &g) in worker.global_ids().iter().enumerate() {
                global[g] = worker.weights()[local];
            }
        }
        global
    }

    fn completed_total(&self) -> usize {
        self.completed.iter().sum()
    }

    /// A snapshot arrived at `worker`: compute the round and put the
    /// push on the wire.
    fn on_snapshot(&mut self, worker: usize, state: Vec<f32>, version: u64, accum: &mut EpochAccum) {
        let k = self.workers.len();
        let round_idx = self.completed[worker];
        let mut round = self.workers[worker].run_round(&state).clone();
        let fate = self.fault.fate(round_idx, worker, 0, k);
        if fate == RoundFate::Delayed {
            round.breakdown.gpu *= self.fault.delay_factor;
            round.breakdown.host *= self.fault.delay_factor;
            round.breakdown.pcie *= self.fault.delay_factor;
            round.breakdown.network *= self.fault.delay_factor;
        }
        let compute = round.breakdown.total();
        let upload = self
            .network
            .transfer_seconds(self.codec.upload_bytes(self.shared.len()));
        accum.busy[worker].accumulate(&round.breakdown);
        accum.busy[worker].network += upload;
        self.engine.record(
            ActorId(worker),
            format!("round {round_idx} computed from v{version}"),
        );
        self.in_flight[worker] = Some(PendingPush {
            round,
            dropped: fate == RoundFate::Dropped,
            pulled_version: version,
        });
        self.engine
            .schedule_in(compute + upload, AsyncEvent::Push { worker });
    }

    /// `worker`'s push arrived at the master.
    fn on_push(&mut self, worker: usize, full: &RidgeProblem, accum: &mut EpochAccum) {
        let push = self.in_flight[worker]
            .take()
            .expect("push event without an in-flight round");
        if self.staleness == Staleness::Bounded(0) {
            self.bucket[worker] = Some(push);
            self.bucket_count += 1;
            if self.bucket_count == self.workers.len() {
                self.apply_barrier_bucket(full, accum);
            }
        } else {
            self.apply_on_arrival(worker, push, full, accum);
        }
    }

    /// τ=0: all K pushes of the round are in — run the synchronous
    /// driver's aggregation verbatim (worker-id order, shared γ rule, one
    /// apply), so τ=0 trajectories are bit-identical to
    /// [`crate::DistributedScd`].
    fn apply_barrier_bucket(&mut self, full: &RidgeProblem, accum: &mut EpochAccum) {
        let k = self.workers.len();
        let len = self.shared.len();
        let upload_bytes = self.codec.upload_bytes(len);
        let mut delta = vec![0.0f32; len];
        let mut scalars = Vec::with_capacity(k);
        let mut survivors = Vec::with_capacity(k);
        for wid in 0..k {
            let push = self.bucket[wid].take().expect("barrier bucket complete");
            if push.dropped {
                self.workers[wid].discard_round();
                accum.dropped.push(wid);
            } else {
                self.codec
                    .encode_into(wid, &push.round.delta_shared, &mut self.payload_scratch);
                self.codec
                    .decode_into(&self.payload_scratch, &mut self.decoded_scratch);
                dense::axpy(1.0, &self.decoded_scratch, &mut delta);
                scalars.push(push.round.scalars);
                survivors.push(wid);
                accum.bytes_raw += 4 * len;
                accum.bytes_encoded += upload_bytes;
            }
        }
        self.bucket_count = 0;
        let k_eff = scalars.len();
        let reduced = WorkerScalars::reduce(scalars);
        let gamma = if k_eff == 0 {
            0.0
        } else {
            choose_gamma(
                self.aggregation,
                self.form,
                self.objective,
                full,
                &self.shared,
                &delta,
                &reduced,
                k_eff,
            )
        };
        self.last_gamma = gamma;
        accum.last_gamma = gamma;
        if k_eff > 0 {
            dense::axpy(gamma as f32, &delta, &mut self.shared);
            for &wid in &survivors {
                self.workers[wid].apply_gamma(gamma);
                accum.updates += self.workers[wid].coords();
            }
            accum.bump_staleness(0, k_eff);
        }
        accum.applied += k_eff;
        self.master_version += 1;
        for wid in 0..k {
            self.completed[wid] += 1;
        }
        self.engine.record(
            ActorId::MASTER,
            format!("barrier round applied gamma={gamma:.3e} survivors={k_eff}"),
        );

        // Aggregation arithmetic on the master, then dense snapshots to
        // every worker (the next round starts for all of them at once).
        let host = self.cpu.host_vector_op_seconds((k_eff + 1) * len);
        accum.master_host += host;
        let down = self.network.transfer_seconds(4 * len);
        for wid in 0..k {
            accum.bytes_raw += 4 * len;
            accum.bytes_encoded += 4 * len;
            self.engine.schedule_in(
                host + down,
                AsyncEvent::Snapshot {
                    worker: wid,
                    state: self.shared.clone(),
                    version: self.master_version,
                },
            );
        }
    }

    /// τ ≥ 1: apply the single delta immediately, then grant fresh
    /// snapshots to every waiting worker the staleness bound admits.
    fn apply_on_arrival(
        &mut self,
        worker: usize,
        push: PendingPush,
        full: &RidgeProblem,
        accum: &mut EpochAccum,
    ) {
        let k = self.workers.len();
        let len = self.shared.len();
        self.completed[worker] += 1;
        self.waiting[worker] = true;
        let mut apply_host = 0.0;
        if push.dropped {
            self.workers[worker].discard_round();
            accum.dropped.push(worker);
            self.engine
                .record(ActorId::MASTER, format!("push from worker{worker} lost"));
        } else {
            self.codec
                .encode_into(worker, &push.round.delta_shared, &mut self.payload_scratch);
            self.codec
                .decode_into(&self.payload_scratch, &mut self.decoded_scratch);
            // γ for one delta: averaging still damps by 1/K (K deltas per
            // "round" arrive on average), the closed forms optimize the
            // objective for exactly this delta against the current state.
            let gamma = choose_gamma(
                self.aggregation,
                self.form,
                self.objective,
                full,
                &self.shared,
                &self.decoded_scratch,
                &push.round.scalars,
                k,
            );
            dense::axpy(gamma as f32, &self.decoded_scratch, &mut self.shared);
            self.workers[worker].apply_gamma(gamma);
            self.last_gamma = gamma;
            accum.last_gamma = gamma;
            let stale = (self.master_version - push.pulled_version) as usize;
            accum.bump_staleness(stale, 1);
            self.master_version += 1;
            accum.applied += 1;
            accum.updates += self.workers[worker].coords();
            accum.bytes_raw += 4 * len;
            accum.bytes_encoded += self.codec.upload_bytes(len);
            apply_host = self.cpu.host_vector_op_seconds(2 * len);
            accum.master_host += apply_host;
            self.engine.record(
                ActorId::MASTER,
                format!("applied worker{worker} delta gamma={gamma:.3e} staleness={stale}"),
            );
        }

        // Staleness gate: grant a fresh snapshot to every waiting worker
        // within τ of the slowest (the slowest always qualifies, so the
        // simulation can never stall). Worker-id order keeps equal-time
        // grants deterministic.
        let min_done = self.completed.iter().copied().min().unwrap_or(0);
        let down = self.network.transfer_seconds(4 * len);
        for wid in 0..k {
            if self.waiting[wid] && self.staleness.allows(self.completed[wid] - min_done) {
                self.waiting[wid] = false;
                accum.bytes_raw += 4 * len;
                accum.bytes_encoded += 4 * len;
                self.engine.record(
                    ActorId(wid),
                    format!("granted snapshot v{}", self.master_version),
                );
                self.engine.schedule_in(
                    apply_host + down,
                    AsyncEvent::Snapshot {
                        worker: wid,
                        state: self.shared.clone(),
                        version: self.master_version,
                    },
                );
            }
        }
    }
}

impl Solver for AsyncScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        format!(
            "Async {} (K={}, tau={}, {})",
            self.workers
                .first()
                .map(|w| w.solver_name())
                .unwrap_or_else(|| "SCD".into()),
            self.workers.len(),
            self.staleness,
            self.aggregation.label()
        )
    }

    /// Run the event simulation until every worker has completed one more
    /// round on average — K further pushes — and report the epoch as the
    /// elapsed virtual time. With τ=0 that is exactly one barrier round;
    /// with τ>0 the K pushes may come from an uneven mix of workers.
    fn epoch(&mut self, full: &RidgeProblem) -> EpochStats {
        let k = self.workers.len();
        if !self.started {
            self.started = true;
            let zeros = vec![0.0f32; self.shared.len()];
            for wid in 0..k {
                self.engine.schedule_at(
                    0.0,
                    AsyncEvent::Snapshot {
                        worker: wid,
                        state: zeros.clone(),
                        version: 0,
                    },
                );
            }
        }
        let start = self.engine.now();
        let target = (self.epoch_index + 1) * k;
        let mut accum = EpochAccum::new(k);
        accum.last_gamma = self.last_gamma;
        while self.completed_total() < target {
            let (_, event) = self
                .engine
                .step()
                .expect("event queue drained before the epoch completed");
            match event {
                AsyncEvent::Snapshot {
                    worker,
                    state,
                    version,
                } => self.on_snapshot(worker, state, version, &mut accum),
                AsyncEvent::Push { worker } => self.on_push(worker, full, &mut accum),
            }
        }
        let elapsed = self.engine.now() - start;

        // The epoch's breakdown: the busiest worker's per-category time,
        // master arithmetic as host, and the remaining (non-overlapped)
        // wall-clock as network — so the total equals the simulated
        // elapsed time whenever busy time fits inside it.
        let slowest = (0..k)
            .max_by(|&a, &b| {
                accum.busy[a]
                    .total()
                    .partial_cmp(&accum.busy[b].total())
                    .expect("busy times are finite")
            })
            .unwrap_or(0);
        let mut breakdown = accum.busy[slowest];
        breakdown.host += accum.master_host;
        breakdown.network += (elapsed - breakdown.total()).max(0.0);

        self.bytes_raw_total += accum.bytes_raw;
        self.bytes_encoded_total += accum.bytes_encoded;
        self.round_metrics.push(RoundMetrics {
            epoch: self.epoch_index,
            worker_round_seconds: accum.busy.iter().map(TimeBreakdown::total).collect(),
            barrier_seconds: elapsed,
            gamma: accum.last_gamma,
            staleness_hist: accum.staleness_hist.clone(),
            retries: 0,
            dropped_workers: accum.dropped.clone(),
            survivors: accum.applied,
            wire: self.wire.label(),
            bytes_raw: accum.bytes_raw,
            bytes_encoded: accum.bytes_encoded,
            compression_ratio: if accum.bytes_encoded > 0 {
                accum.bytes_raw as f64 / accum.bytes_encoded as f64
            } else {
                1.0
            },
        });
        self.epoch_index += 1;
        EpochStats {
            updates: accum.updates,
            breakdown,
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.assemble_weights()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.clone()
    }
}

//! The synchronous distributed SCD driver: Algorithm 3 (fixed aggregation)
//! and Algorithm 4 (adaptive aggregation) over an in-process cluster with a
//! modeled network.
//!
//! Each epoch: workers run one permuted pass over their local coordinates
//! against the last broadcast shared vector — concurrently on the round
//! pool ([`crate::runtime::RoundPool`]) by default, since the workers are
//! independent state machines; the master then reduces the
//! Δ-shared-vectors and the adaptive scalars *in worker-id order* (so the
//! result is bit-identical to the sequential reference loop), picks γ (1/K
//! averaging, 1 adding, or the closed-form optimum), applies the
//! aggregated update, and conceptually broadcasts it back. Simulated time
//! charges the round at the *slowest* worker's total round time
//! (synchronous barrier) plus master host work plus the network
//! reduce/broadcast and any PCIe traffic.
//!
//! When a [`FaultPlan`] is active the master additionally plays each
//! round's fates: delayed rounds cost more, lost rounds (dropped or slower
//! than the timeout) are re-requested up to `max_retries` times, and
//! whatever is still missing after that is aggregated around — the K′ < K
//! surviving deltas are combined with γ rescaled (averaging uses 1/K′) and
//! the dropped workers keep their previous master-consistent state, so the
//! invariant shared = A·β survives the loss. Every round is recorded in a
//! [`RoundMetrics`] entry.

use crate::fault::{FaultPlan, RoundFate};
use crate::local::LocalSolver;
use crate::metrics::RoundMetrics;
use crate::partition::{partition_problem, LocalPartition, PartitionStrategy};
use crate::runtime::{RoundPool, RoundRuntime};
use crate::source::{
    check_store_shape, memory_partition_bytes, store_partitions, PartitionSource, SetupCost,
};
use crate::worker::Worker;
use gpu_sim::{Gpu, GpuError, GpuProfile};
use scd_store::{ShardedDataset, StoreError};
use scd_core::{
    async_sim::scaled_staleness, optimal_gamma_dual, optimal_gamma_primal, AsyncCpuMode,
    AsyncSimScd, EpochStats, Form, ObjectiveKind, RidgeProblem, SequentialScd, Solver,
    TimeBreakdown, TpaScd, WorkerScalars,
};
use scd_perf_model::{CpuProfile, LinkProfile};
use scd_sched::Scheduler;
use scd_sparse::dense;
use scd_wire::{DeltaCodec, WireFormat};
use std::sync::Arc;

/// How the master combines the workers' updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// γ = 1/K (Algorithm 3; CoCoA-style averaging [7]).
    Averaging,
    /// γ = 1 (the "adding" end of the spectrum studied in [24]; unsafe —
    /// can diverge on correlated partitions).
    Adding,
    /// γ = γ*ₜ, the closed-form optimum of §IV-B (Algorithm 4).
    Adaptive,
    /// CoCoA+ [24]: γ = 1 made *safe* by scaling every worker's local
    /// quadratic term by σ′ = K.
    CocoaPlus,
    /// Explicit numerical line search for γ on the master (the [21]
    /// approach the paper cites) — must agree with [`Self::Adaptive`] up to
    /// search tolerance, at higher master cost.
    LineSearch,
}

impl Aggregation {
    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Aggregation::Averaging => "averaging",
            Aggregation::Adding => "adding",
            Aggregation::Adaptive => "adaptive",
            Aggregation::CocoaPlus => "cocoa+",
            Aggregation::LineSearch => "line-search",
        }
    }
}

/// Golden-section minimizer for the master's explicit line search.
fn golden_min(mut f: impl FnMut(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..120 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if f(a) < f(b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    (lo + hi) / 2.0
}

/// Which engine every worker runs locally.
#[derive(Debug, Clone)]
pub enum LocalSolverKind {
    /// Algorithm 1 on one thread (the paper's Fig. 3–6 configuration).
    Sequential,
    /// The deterministic asynchronous engine (PASSCoDe-Wild workers in
    /// Fig. 10 use `mode = Wild, threads = 16`). `paper_scale_staleness`
    /// maps the staleness window onto the local partition size.
    AsyncSim {
        /// Write-back semantics.
        mode: AsyncCpuMode,
        /// Thread count being modeled.
        threads: usize,
        /// Scale the staleness window by the paper's coordinate counts.
        paper_scale_staleness: bool,
    },
    /// TPA-SCD on one simulated GPU per worker (Figs. 8–10).
    Tpa {
        /// Device model for every worker's GPU.
        profile: GpuProfile,
        /// Lanes per thread block.
        lanes: usize,
        /// Run device blocks on one host thread for bit-reproducible runs.
        deterministic: bool,
    },
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Number of workers K.
    pub workers: usize,
    /// Which formulation to solve (decides the partitioning axis).
    pub form: Form,
    /// The training objective every worker's local engine optimizes
    /// (ridge by default — the paper's setting).
    pub objective: ObjectiveKind,
    /// Aggregation rule.
    pub aggregation: Aggregation,
    /// Coordinate-assignment strategy; `None` (the default) derives the
    /// partition RNG from [`Self::seed`], so differently seeded clusters
    /// see different partitions.
    pub strategy: Option<PartitionStrategy>,
    /// The local engine.
    pub solver: LocalSolverKind,
    /// Worker ↔ master link.
    pub network: LinkProfile,
    /// Host ↔ device link on each worker.
    pub pcie: LinkProfile,
    /// Host CPU on workers and master.
    pub cpu: CpuProfile,
    /// Full local passes each worker performs per communication round
    /// (H > 1 side of the §IV-A computation/communication trade-off).
    pub local_epochs_per_round: usize,
    /// Cap on local coordinate updates per round (the H < coords side of
    /// the trade-off); `None` = one full pass. Sequential workers only.
    pub local_updates_per_round: Option<usize>,
    /// Per-worker speed multipliers on compute cost (1.0 = nominal; 3.0 =
    /// a 3× straggler). Shorter vectors repeat 1.0 for remaining workers.
    /// Synchronous rounds cost the *slowest* worker, so one straggler
    /// stretches every round — the barrier's known weakness.
    pub worker_slowdowns: Vec<f64>,
    /// Base RNG seed (workers derive per-worker seeds).
    pub seed: u64,
    /// How the K worker rounds execute on this host each epoch.
    pub runtime: RoundRuntime,
    /// Fault injection applied by the master each round.
    pub fault: FaultPlan,
    /// Wire format the delta traffic travels in ([`WireFormat::Raw`] is
    /// bit-identical to direct exchange).
    pub wire: WireFormat,
    /// Whether the driver retains a [`RoundMetrics`] entry per round
    /// (default on). Retained telemetry is the one per-round allocation
    /// that cannot be recycled; turn it off to make steady-state rounds
    /// allocation-free.
    pub record_round_metrics: bool,
    /// Host scheduler the round pool and any worker GPUs submit to;
    /// `None` (the default) uses the process-wide shared scheduler.
    pub sched: Option<Arc<Scheduler>>,
}

impl DistributedConfig {
    /// The paper's default cluster: K sequential-SCD workers on 10 GbE with
    /// averaging aggregation.
    pub fn new(workers: usize, form: Form) -> Self {
        DistributedConfig {
            workers,
            form,
            objective: ObjectiveKind::Ridge,
            aggregation: Aggregation::Averaging,
            strategy: None,
            solver: LocalSolverKind::Sequential,
            network: LinkProfile::ethernet_10g(),
            pcie: LinkProfile::pcie3_x16(),
            cpu: CpuProfile::xeon_e5_2640(),
            local_epochs_per_round: 1,
            local_updates_per_round: None,
            worker_slowdowns: Vec::new(),
            seed: 1,
            runtime: RoundRuntime::default(),
            fault: FaultPlan::none(),
            wire: WireFormat::Raw,
            record_round_metrics: true,
            sched: None,
        }
    }

    /// The effective partitioning strategy: the explicit one if set,
    /// otherwise a random partition whose RNG is derived from the cluster
    /// seed (so `with_seed` re-rolls the partition too).
    pub fn partition_strategy(&self) -> PartitionStrategy {
        self.strategy.unwrap_or(PartitionStrategy::Random(
            0xC0C0A ^ self.seed.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }

    /// Mark stragglers: worker k's compute costs are multiplied by
    /// `slowdowns[k]` (missing entries default to 1.0).
    pub fn with_worker_slowdowns(mut self, slowdowns: Vec<f64>) -> Self {
        assert!(
            slowdowns.iter().all(|&s| s > 0.0),
            "slowdown factors must be positive"
        );
        self.worker_slowdowns = slowdowns;
        self
    }

    /// Full local passes per communication round (H > 1).
    pub fn with_local_epochs_per_round(mut self, h: usize) -> Self {
        assert!(h >= 1, "need at least one local pass per round");
        self.local_epochs_per_round = h;
        self
    }

    /// Cap local coordinate updates per round (H < coords; sequential
    /// workers only).
    pub fn with_local_updates_per_round(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "need at least one update per round");
        self.local_updates_per_round = Some(cap);
        self
    }

    /// Select the aggregation rule.
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Select the training objective every worker optimizes locally.
    /// Validity against the form and labels is checked when the cluster
    /// is stood up.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Select the local engine.
    pub fn with_solver(mut self, solver: LocalSolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Select the partitioning strategy explicitly (disables the
    /// seed-derived default).
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Select how worker rounds execute on this host.
    pub fn with_runtime(mut self, runtime: RoundRuntime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Inject faults per the given plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Select the wire format for delta traffic.
    pub fn with_wire(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// Enable or disable per-round telemetry retention (on by default).
    pub fn with_round_metrics(mut self, record: bool) -> Self {
        self.record_round_metrics = record;
        self
    }

    /// Select the worker ↔ master link.
    pub fn with_network(mut self, network: LinkProfile) -> Self {
        self.network = network;
        self
    }

    /// Select the host ↔ device link on each worker.
    pub fn with_pcie(mut self, pcie: LinkProfile) -> Self {
        self.pcie = pcie;
        self
    }

    /// Select the host CPU profile for workers and master.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pin the cluster to an explicit host scheduler instead of the
    /// process-wide one — benchmarks and tests use this to control real
    /// parallelism regardless of the host's core count.
    pub fn with_scheduler(mut self, sched: Arc<Scheduler>) -> Self {
        self.sched = Some(sched);
        self
    }
}

/// What cluster setup failed on: worker construction, a store read, or a
/// configuration the data source cannot serve.
#[derive(Debug)]
pub enum BuildError {
    /// A worker's simulated GPU could not be stood up.
    Gpu(GpuError),
    /// A partition could not be loaded from the sharded store.
    Store(StoreError),
    /// The requested configuration is invalid for the data source.
    Config(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Gpu(e) => write!(f, "{e}"),
            BuildError::Store(e) => write!(f, "{e}"),
            BuildError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl BuildError {
    /// Unwrap the GPU error of a memory-sourced build (the only kind a
    /// memory source can raise).
    pub(crate) fn expect_gpu(self) -> GpuError {
        match self {
            BuildError::Gpu(e) => e,
            other => unreachable!("memory source raised a non-GPU error: {other}"),
        }
    }
}

/// The K constructed workers plus what distributing their partitions cost.
pub(crate) struct BuiltWorkers {
    pub workers: Vec<Worker>,
    pub setup: SetupCost,
}

/// Partition `full` per `config` from the given data source and construct
/// the K workers — the shared setup of [`DistributedScd`] and the
/// bounded-staleness [`crate::AsyncScd`], factored out so all drivers
/// stand on identical partitions, seeds, and per-worker cost profiles.
pub(crate) fn build_workers(
    full: &RidgeProblem,
    config: &DistributedConfig,
    source: &PartitionSource<'_>,
) -> Result<BuiltWorkers, BuildError> {
    // Objective × form × labels validity is checked once, on the full
    // problem, before any partition is cut (partitions inherit labels).
    if let Err(err) = config.objective.validate(full, config.form) {
        panic!("{err}");
    }
    let partitions: Vec<(LocalPartition, u64)> = match source {
        PartitionSource::Memory => partition_problem(
            full,
            config.form,
            config.workers,
            config.partition_strategy(),
        )
        .into_iter()
        .map(|p| {
            let bytes = memory_partition_bytes(&p);
            (p, bytes)
        })
        .collect(),
        PartitionSource::Store(store) => {
            check_store_shape(store, full, config.form).map_err(BuildError::Config)?;
            if config.partition_strategy() != PartitionStrategy::Contiguous {
                return Err(BuildError::Config(
                    "store-backed training requires the contiguous partition strategy \
                     (shards are row-major)"
                        .into(),
                ));
            }
            store_partitions(store, full, config.workers).map_err(BuildError::Store)?
        }
    };
    let (partitions, bytes_per_worker): (Vec<_>, Vec<u64>) = partitions.into_iter().unzip();
    let is_gpu = matches!(config.solver, LocalSolverKind::Tpa { .. });
    let setup = SetupCost::price(
        bytes_per_worker,
        &config.network,
        is_gpu.then_some(&config.pcie),
    );
    let workers = construct_workers(config, partitions).map_err(BuildError::Gpu)?;
    Ok(BuiltWorkers { workers, setup })
}

/// Turn partitions into workers: per-worker seeds, straggler profiles,
/// and local solver engines.
fn construct_workers(
    config: &DistributedConfig,
    partitions: Vec<LocalPartition>,
) -> Result<Vec<Worker>, GpuError> {
    // CoCoA+ makes adding safe by scaling the local quadratic term.
    let sigma_prime = if config.aggregation == Aggregation::CocoaPlus {
        config.workers as f64
    } else {
        1.0
    };
    let mut workers = Vec::with_capacity(config.workers);
    for (k, part) in partitions.into_iter().enumerate() {
        let worker_seed = config.seed ^ ((k as u64 + 1) * 0x5DEECE66D);
        let slowdown = config.worker_slowdowns.get(k).copied().unwrap_or(1.0);
        let worker_cpu = CpuProfile {
            seconds_per_nnz: config.cpu.seconds_per_nnz * slowdown,
            seconds_per_coord: config.cpu.seconds_per_coord * slowdown,
            host_stream_bytes_per_s: config.cpu.host_stream_bytes_per_s / slowdown,
            ..config.cpu.clone()
        };
        let solver: Box<dyn LocalSolver> = match &config.solver {
            LocalSolverKind::Sequential => {
                let mut s = match config.form {
                    Form::Primal => SequentialScd::primal(&part.problem, worker_seed),
                    Form::Dual => SequentialScd::dual(&part.problem, worker_seed),
                }
                .with_cpu(worker_cpu.clone())
                .with_quadratic_scale(sigma_prime)
                .with_objective(config.objective);
                if let Some(cap) = config.local_updates_per_round {
                    s = s.with_updates_per_call(cap);
                }
                Box::new(s)
            }
            LocalSolverKind::AsyncSim {
                mode,
                threads,
                paper_scale_staleness,
            } => {
                let coords = part.problem.coords(config.form);
                let mut s =
                    AsyncSimScd::new(&part.problem, config.form, *mode, *threads, worker_seed)
                        .with_cpu(worker_cpu.clone());
                if *paper_scale_staleness {
                    let reference = match config.form {
                        Form::Primal => 680_715,
                        Form::Dual => 262_938,
                    };
                    s = s.with_staleness(scaled_staleness(*threads, coords, reference));
                }
                Box::new(
                    s.with_quadratic_scale(sigma_prime)
                        .with_objective(config.objective),
                )
            }
            LocalSolverKind::Tpa {
                profile,
                lanes,
                deterministic,
            } => {
                let mut gpu = Gpu::new(profile.clone());
                if let Some(sched) = &config.sched {
                    gpu = gpu.with_scheduler(Arc::clone(sched));
                }
                if *deterministic {
                    gpu = gpu.try_with_host_threads(1)?;
                }
                let s = TpaScd::new(&part.problem, config.form, Arc::new(gpu), worker_seed)?
                    .with_lanes(*lanes)
                    .with_cpu(worker_cpu.clone())
                    .with_quadratic_scale(sigma_prime)
                    .with_objective(config.objective);
                Box::new(s)
            }
        };
        workers.push(Worker::new(
            k,
            part,
            solver,
            config.form,
            worker_cpu,
            config.pcie.clone(),
        )
        .with_local_epochs(config.local_epochs_per_round));
    }
    Ok(workers)
}

/// Golden-section line search for γ on the margin-loss duals (SVM,
/// logistic), where Eq. 7's ridge quadratic does not apply: minimize the
/// primal value of the induced iterate β(γ) = (w̄ + γΔw̄)/(Nλ) over
/// γ ∈ [0, 1] using the objective's per-example loss oracle. Two matvecs
/// up front; each probe is O(N) scalar work.
fn margin_gamma_search(
    objective: ObjectiveKind,
    full: &RidgeProblem,
    shared: &[f32],
    delta: &[f32],
) -> f64 {
    let n = full.n() as f64;
    let n_lambda = full.n_lambda();
    let t0 = full.csr().matvec(shared).expect("shared has length M");
    let t1 = full.csr().matvec(delta).expect("delta has length M");
    // margin_i(γ) = y_i·(t0_i + γ·t1_i)/(Nλ), precomputed as m0 + γ·m1.
    let (m0, m1): (Vec<f64>, Vec<f64>) = t0
        .iter()
        .zip(&t1)
        .zip(full.labels())
        .map(|((&a, &b), &y)| (y as f64 * a as f64 / n_lambda, y as f64 * b as f64 / n_lambda))
        .unzip();
    // ‖w̄ + γΔw̄‖²/(2λN²) — the regularizer of the induced iterate.
    let s1: f64 = shared
        .iter()
        .zip(delta)
        .map(|(&w, &d)| w as f64 * d as f64)
        .sum();
    let s2: f64 = delta.iter().map(|&d| (d as f64) * (d as f64)).sum();
    let reg_scale = 1.0 / (2.0 * full.lambda() * n * n);
    let obj = objective.as_objective();
    let primal_of = |g: f64| {
        let loss: f64 = m0
            .iter()
            .zip(&m1)
            .map(|(&a, &b)| obj.margin_loss(a + g * b))
            .sum::<f64>()
            / n;
        loss + (2.0 * g * s1 + g * g * s2) * reg_scale
    };
    golden_min(primal_of, 0.0, 1.0)
}

/// The master's γ rule over the `k_eff` surviving workers. Free function
/// shared verbatim by the synchronous and bounded-staleness drivers, so
/// τ=0 async runs make bit-identical choices.
///
/// Whatever the rule computes, the returned γ is clamped to a positive
/// finite value: a degenerate round (all-zero aggregate delta, a line
/// search wandering to γ ≤ 0, a 0/0 in the closed forms) falls back to
/// the always-safe averaging step 1/K′ instead of poisoning the shared
/// vector with a NaN or dragging it backwards.
#[allow(clippy::too_many_arguments)] // internal: mirrors the reduce step's full state
pub(crate) fn choose_gamma(
    aggregation: Aggregation,
    form: Form,
    objective: ObjectiveKind,
    full: &RidgeProblem,
    shared: &[f32],
    delta: &[f32],
    reduced: &WorkerScalars,
    k_eff: usize,
) -> f64 {
    let safe = 1.0 / k_eff as f64;
    let gamma = match aggregation {
        Aggregation::Averaging => safe,
        Aggregation::Adding | Aggregation::CocoaPlus => 1.0,
        // The Eq. 7 closed forms and the quadratic line search are
        // ridge-specific; the margin duals get a value-oracle search,
        // lasso the conservative averaging step.
        Aggregation::Adaptive | Aggregation::LineSearch
            if objective != ObjectiveKind::Ridge =>
        {
            match objective {
                ObjectiveKind::Svm | ObjectiveKind::Logistic => {
                    margin_gamma_search(objective, full, shared, delta)
                }
                _ => safe,
            }
        }
        Aggregation::LineSearch => match form {
            Form::Primal => {
                // φ(γ) = (1/2N)‖w+γΔw−y‖² + λ(γ⟨β,Δβ⟩ + γ²‖Δβ‖²/2) + const.
                let n = full.n() as f64;
                let lambda = full.lambda();
                let fit_a: f64 = delta
                    .iter()
                    .map(|&d| (d as f64) * (d as f64))
                    .sum::<f64>()
                    / (2.0 * n);
                let fit_b: f64 = shared
                    .iter()
                    .zip(full.labels())
                    .zip(delta)
                    .map(|((&w, &y), &d)| (w as f64 - y as f64) * d as f64)
                    .sum::<f64>()
                    / n;
                let phi = |g: f64| {
                    fit_a * g * g
                        + fit_b * g
                        + lambda * (g * reduced.x_dot_dx + g * g * reduced.dx_sq / 2.0)
                };
                golden_min(phi, -4.0, 4.0)
            }
            Form::Dual => {
                // maximize ψ(γ) ⇔ minimize −ψ(γ).
                let n = full.n() as f64;
                let lambda = full.lambda();
                let quad_w: f64 = delta
                    .iter()
                    .map(|&d| (d as f64) * (d as f64))
                    .sum::<f64>()
                    / (2.0 * lambda);
                let lin_w: f64 = shared
                    .iter()
                    .zip(delta)
                    .map(|(&w, &d)| w as f64 * d as f64)
                    .sum::<f64>()
                    / lambda;
                let neg_psi = |g: f64| {
                    n / 2.0 * (2.0 * g * reduced.x_dot_dx + g * g * reduced.dx_sq)
                        + quad_w * g * g
                        + lin_w * g
                        - g * reduced.dx_dot_y
                };
                golden_min(neg_psi, -4.0, 4.0)
            }
        },
        Aggregation::Adaptive => match form {
            Form::Primal => optimal_gamma_primal(
                full.labels(),
                shared,
                delta,
                reduced.x_dot_dx,
                reduced.dx_sq,
                full.n_lambda(),
            ),
            Form::Dual => optimal_gamma_dual(
                shared,
                delta,
                reduced.dx_dot_y,
                reduced.x_dot_dx,
                reduced.dx_sq,
                full.n(),
                full.lambda(),
            ),
        },
    };
    if gamma.is_finite() && gamma > 0.0 {
        gamma
    } else {
        safe
    }
}

/// Callback a driver invokes at each round boundary with the 1-based
/// round index and its freshly-assembled global weights (in the driver's
/// native form: β for primal runs, α for dual runs — consumers convert
/// dual iterates through `ObjectiveKind::induced_primal`). This is the
/// publication hook the serving side hangs a model slot on: the driver
/// stays ignorant of who consumes the snapshots.
pub type RoundObserver = Box<dyn FnMut(u64, &[f32]) + Send>;

/// Reusable per-epoch buffers of [`DistributedScd`]: after the first
/// epoch has grown their capacities, steady-state rounds allocate only
/// for retained telemetry (and nothing at all with
/// [`DistributedConfig::record_round_metrics`] off).
#[derive(Default)]
struct EpochScratch {
    /// Whether worker w committed a surviving round this epoch.
    committed: Vec<bool>,
    worker_time: Vec<TimeBreakdown>,
    pending: Vec<usize>,
    still_pending: Vec<usize>,
    dropped: Vec<usize>,
    /// The aggregated (post-codec) delta.
    delta: Vec<f32>,
    scalars: Vec<WorkerScalars>,
    /// Encoded payload; `encode_into` recycles its buffers.
    payload: scd_wire::WirePayload,
    /// Dense decode of one payload.
    decoded: Vec<f32>,
    /// Observer-assembly scratch for the global weights.
    weights: Vec<f32>,
}

/// The distributed solver (implements [`Solver`], so the same harness
/// drives single-node and distributed runs).
pub struct DistributedScd {
    form: Form,
    objective: ObjectiveKind,
    aggregation: Aggregation,
    workers: Vec<Worker>,
    /// One-time data-distribution cost of standing the cluster up.
    setup: SetupCost,
    /// The master's aggregated shared vector w⁽ᵗ⁾ / w̄⁽ᵗ⁾.
    shared: Vec<f32>,
    weights_total: usize,
    cpu: CpuProfile,
    network: LinkProfile,
    last_gamma: f64,
    /// Host-thread pool for concurrent rounds; `None` = inline loop.
    pool: Option<RoundPool>,
    fault: FaultPlan,
    /// Rounds completed so far (keys the fault schedule).
    epoch_index: usize,
    round_metrics: Vec<RoundMetrics>,
    /// Format the delta traffic travels in.
    wire: WireFormat,
    /// The codec shipping the deltas (stateful for error feedback).
    codec: Box<dyn DeltaCodec>,
    /// Cumulative dense-f32 bytes across all rounds (both legs).
    bytes_raw_total: usize,
    /// Cumulative encoded bytes across all rounds (both legs).
    bytes_encoded_total: usize,
    /// Round-boundary publication hook (model serving, checkpointing).
    observer: Option<RoundObserver>,
    /// Whether a [`RoundMetrics`] entry is retained per round.
    record_metrics: bool,
    /// Reused epoch buffers (see [`EpochScratch`]).
    scratch: EpochScratch,
}

impl DistributedScd {
    /// Partition the in-memory problem and stand up the cluster.
    pub fn new(full: &RidgeProblem, config: &DistributedConfig) -> Result<Self, GpuError> {
        Self::from_source(full, config, &PartitionSource::Memory)
            .map_err(BuildError::expect_gpu)
    }

    /// Stand up the cluster with each worker's partition loaded from an
    /// on-disk sharded dataset: worker k maps only the chunks overlapping
    /// its contiguous row range, and the setup cost charges the *actual*
    /// chunk-file bytes it moved. Requires the dual form and the
    /// contiguous partition strategy (shards are row-major), and a store
    /// whose shape matches `full`.
    pub fn from_store(
        full: &RidgeProblem,
        store: &ShardedDataset,
        config: &DistributedConfig,
    ) -> Result<Self, BuildError> {
        Self::from_source(full, config, &PartitionSource::Store(store))
    }

    /// Stand up the cluster from an explicit data source.
    pub fn from_source(
        full: &RidgeProblem,
        config: &DistributedConfig,
        source: &PartitionSource<'_>,
    ) -> Result<Self, BuildError> {
        let BuiltWorkers { workers, setup } = build_workers(full, config, source)?;
        // A one-thread pool would run the same inline loop with extra
        // hand-offs; only stand the pool up when it can overlap rounds.
        let pool = config
            .runtime
            .pool_threads(config.workers)
            .filter(|&t| t > 1)
            .map(|t| match &config.sched {
                Some(sched) => RoundPool::on(Arc::clone(sched), t),
                None => RoundPool::new(t),
            });
        Ok(DistributedScd {
            form: config.form,
            objective: config.objective,
            aggregation: config.aggregation,
            workers,
            setup,
            shared: vec![0.0; full.shared_len(config.form)],
            weights_total: full.coords(config.form),
            cpu: config.cpu.clone(),
            network: config.network.clone(),
            last_gamma: 1.0,
            pool,
            fault: config.fault,
            epoch_index: 0,
            round_metrics: Vec::new(),
            wire: config.wire,
            codec: config.wire.codec(),
            bytes_raw_total: 0,
            bytes_encoded_total: 0,
            observer: None,
            record_metrics: config.record_round_metrics,
            scratch: EpochScratch::default(),
        })
    }

    /// Install a round-boundary observer; it fires after every completed
    /// epoch with the current assembled global weights.
    pub fn set_round_observer(&mut self, observer: RoundObserver) {
        self.observer = Some(observer);
    }

    /// Number of workers K.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The one-time data-distribution cost paid before the first round:
    /// per-worker partition bytes plus the network (and, for GPU workers,
    /// PCIe) time to move them. Store-backed clusters charge the actual
    /// on-disk chunk bytes; in-memory clusters charge a size estimate.
    /// Kept separate from [`Solver::epoch`] stats, which model steady
    /// state.
    pub fn setup_cost(&self) -> &SetupCost {
        &self.setup
    }

    /// The aggregation parameter chosen in the most recent epoch (Fig. 5's
    /// y-axis).
    pub fn last_gamma(&self) -> f64 {
        self.last_gamma
    }

    /// Host threads executing rounds concurrently (1 = inline loop).
    pub fn round_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, RoundPool::threads)
    }

    /// Telemetry of every round run so far, in order.
    pub fn round_metrics(&self) -> &[RoundMetrics] {
        &self.round_metrics
    }

    /// The full round-metrics series as a JSON array.
    pub fn metrics_json(&self) -> String {
        RoundMetrics::series_to_json(&self.round_metrics)
    }

    /// The wire format delta traffic travels in.
    pub fn wire(&self) -> WireFormat {
        self.wire
    }

    /// Cumulative (dense-f32, encoded) delta-traffic bytes over every
    /// round so far, both legs plus retry re-sends.
    pub fn wire_bytes_total(&self) -> (usize, usize) {
        (self.bytes_raw_total, self.bytes_encoded_total)
    }

    /// Run the rounds of the `pending` workers (unique ids) against the
    /// current shared vector, inline or on the pool. Each result lands in
    /// its worker's reused round buffer ([`Worker::round`]) — nothing is
    /// returned, cloned, or allocated here.
    fn run_attempt(&mut self, pending: &[usize]) {
        let Some(pool) = &self.pool else {
            let shared = &self.shared;
            for &wid in pending {
                self.workers[wid].run_round(shared);
            }
            return;
        };

        /// Worker array base pointer, shipped to the pool tasks.
        struct WorkerBase(*mut Worker);
        // SAFETY: `Worker: Send` (LocalSolver requires Send) and every
        // task dereferences a distinct element (pending ids are unique).
        unsafe impl Sync for WorkerBase {}
        impl WorkerBase {
            /// # Safety
            /// `wid` must be in bounds and no other live reference to
            /// worker `wid` may exist for the returned borrow's lifetime.
            #[allow(clippy::mut_from_ref)]
            unsafe fn worker(&self, wid: usize) -> &mut Worker {
                &mut *self.0.add(wid)
            }
        }

        let shared = &self.shared;
        let base = WorkerBase(self.workers.as_mut_ptr());
        pool.run(pending.len(), &|i| {
            // SAFETY: `pending` holds unique in-bounds worker ids and each
            // task index is claimed exactly once, so this is the only
            // live reference to worker `pending[i]`; its result stays in
            // the worker's own round buffer.
            let worker = unsafe { base.worker(pending[i]) };
            worker.run_round(shared);
        });
    }

    /// Scatter the workers' local weights into the global coordinate space.
    pub fn assemble_weights(&self) -> Vec<f32> {
        let mut global = Vec::new();
        self.assemble_weights_into(&mut global);
        global
    }

    /// [`Self::assemble_weights`] into a reusable buffer.
    pub fn assemble_weights_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.weights_total, 0.0);
        for worker in &self.workers {
            for (local, &g) in worker.global_ids().iter().enumerate() {
                out[g] = worker.weights()[local];
            }
        }
    }
}

impl Solver for DistributedScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        format!(
            "Distributed {} (K={}, {})",
            self.workers
                .first()
                .map(|w| w.solver_name())
                .unwrap_or_else(|| "SCD".into()),
            self.workers.len(),
            self.aggregation.label()
        )
    }

    fn epoch(&mut self, full: &RidgeProblem) -> EpochStats {
        let k = self.workers.len();
        let epoch_idx = self.epoch_index;
        self.epoch_index += 1;

        // Phase 1: run the rounds (concurrently when the pool is up) and
        // play the fault plan — delayed rounds cost more, lost rounds
        // (dropped, or slower than the master's timeout) are re-requested
        // up to `max_retries` times, then aggregated around. All epoch
        // state lives in the reused scratch, moved out for the borrow
        // checker and restored at the end.
        let mut s = std::mem::take(&mut self.scratch);
        s.committed.clear();
        s.committed.resize(k, false);
        s.worker_time.clear();
        s.worker_time.resize(k, TimeBreakdown::default());
        s.dropped.clear();
        s.pending.clear();
        s.pending.extend(0..k);
        let mut retries = 0usize;
        let max_attempts = if self.fault.is_active() {
            1 + self.fault.max_retries
        } else {
            1
        };
        for attempt in 0..max_attempts {
            if s.pending.is_empty() {
                break;
            }
            self.run_attempt(&s.pending);
            s.still_pending.clear();
            for slot in 0..s.pending.len() {
                let wid = s.pending[slot];
                let fate = self.fault.fate(epoch_idx, wid, attempt, k);
                if fate == RoundFate::Delayed {
                    let b = &mut self.workers[wid].round_mut().breakdown;
                    b.gpu *= self.fault.delay_factor;
                    b.host *= self.fault.delay_factor;
                    b.pcie *= self.fault.delay_factor;
                    b.network *= self.fault.delay_factor;
                }
                let total = self.workers[wid].round().breakdown.total();
                let timed_out = self
                    .fault
                    .timeout_seconds
                    .is_some_and(|limit| total > limit);
                if fate == RoundFate::Dropped || timed_out {
                    // The master waits out the timeout (or, with none
                    // configured, learns of the loss after the round's
                    // nominal duration) — a wall-clock charge with no
                    // usable result behind it.
                    let waited = self.fault.timeout_seconds.unwrap_or(total);
                    s.worker_time[wid].network += waited;
                    // The worker's speculative local pass is discarded so
                    // its state stays consistent with what the master will
                    // aggregate.
                    self.workers[wid].discard_round();
                    if attempt + 1 < max_attempts {
                        retries += 1;
                        // The re-requested round re-sends the worker's
                        // *encoded* payload as a unicast outside the
                        // reduce tree — charge the encoded bytes, not the
                        // dense frame.
                        s.worker_time[wid].network += self.network.retry_request_seconds()
                            + self
                                .network
                                .transfer_seconds(self.codec.upload_bytes(self.shared.len()));
                        s.still_pending.push(wid);
                    } else {
                        s.dropped.push(wid);
                    }
                } else {
                    s.worker_time[wid].accumulate(&self.workers[wid].round().breakdown);
                    s.committed[wid] = true;
                }
            }
            std::mem::swap(&mut s.pending, &mut s.still_pending);
        }

        // Phase 2: reduce the K′ surviving deltas in worker-id order —
        // the deterministic order that keeps concurrent execution
        // bit-identical to the sequential reference loop. Every surviving
        // delta goes through the codec: what the master aggregates is what
        // the wire carried. Dropped rounds never reach `encode`, so a
        // stateful codec's per-worker residual only advances on commit.
        // The payload and decode scratch recycle their buffers, so this
        // loop stops allocating once capacities have grown.
        s.delta.clear();
        s.delta.resize(self.shared.len(), 0.0);
        s.scalars.clear();
        for wid in 0..k {
            if !s.committed[wid] {
                continue;
            }
            let round = self.workers[wid].round();
            self.codec.encode_into(wid, &round.delta_shared, &mut s.payload);
            self.codec.decode_into(&s.payload, &mut s.decoded);
            dense::axpy(1.0, &s.decoded, &mut s.delta);
            s.scalars.push(round.scalars);
        }
        let k_eff = s.scalars.len();
        let reduced = WorkerScalars::reduce(s.scalars.iter().copied());

        // Master: choose γ (degraded aggregation rescales over K′).
        let gamma = if k_eff == 0 {
            0.0
        } else {
            choose_gamma(
                self.aggregation,
                self.form,
                self.objective,
                full,
                &self.shared,
                &s.delta,
                &reduced,
                k_eff,
            )
        };
        self.last_gamma = gamma;

        // Apply on the master and rescale on the surviving workers (a
        // dropped worker never hears γ; its discarded Δ keeps it
        // consistent with the master regardless).
        if k_eff > 0 {
            dense::axpy(gamma as f32, &s.delta, &mut self.shared);
            for wid in 0..k {
                if s.committed[wid] {
                    self.workers[wid].apply_gamma(gamma);
                }
            }
        }

        // Synchronous barrier: the round costs the slowest worker's
        // *total* time; keep that worker's per-category breakdown.
        let slowest = (0..k)
            .max_by(|&a, &b| {
                s.worker_time[a]
                    .total()
                    .partial_cmp(&s.worker_time[b].total())
                    .expect("round times are finite")
            })
            .unwrap_or(0);
        let mut breakdown = s.worker_time[slowest];

        // Master-side aggregation arithmetic: K′ Δ-vectors summed + applied.
        breakdown.host += self
            .cpu
            .host_vector_op_seconds((k_eff + 1) * self.shared.len());
        // Reduce of the K′ arriving Δ-vectors + broadcast to all K workers,
        // plus the adaptive scalars (a few extra bytes, as the paper
        // stresses).
        let extra_scalars = if self.aggregation == Aggregation::Adaptive {
            3
        } else {
            0
        };
        let len = self.shared.len();
        let upload_bytes = self.codec.upload_bytes(len);
        let download_bytes = self.codec.broadcast_bytes(len, k_eff);
        breakdown.network +=
            self.network
                .codec_round_seconds(k_eff, upload_bytes, k, download_bytes, extra_scalars);

        // Byte accounting over both legs plus retry re-sends: K′ uploads
        // into the reduce, `retries` unicast re-sends, K broadcast copies.
        let bytes_raw = 4 * len * (k_eff + retries + k);
        let bytes_encoded =
            upload_bytes * (k_eff + retries) + download_bytes * k;
        self.bytes_raw_total += bytes_raw;
        self.bytes_encoded_total += bytes_encoded;

        // Per-round metric rows allocate (per-worker timings, wire label);
        // benches chasing zero-allocation rounds turn them off via
        // `DistributedConfig::with_round_metrics(false)`.
        if self.record_metrics {
            self.round_metrics.push(RoundMetrics {
                epoch: epoch_idx,
                worker_round_seconds: s.worker_time.iter().map(TimeBreakdown::total).collect(),
                barrier_seconds: s.worker_time[slowest].total(),
                gamma,
                // Synchronous rounds apply every surviving delta at staleness
                // 0 by construction.
                staleness_hist: vec![k_eff],
                retries,
                dropped_workers: s.dropped.clone(),
                survivors: k_eff,
                wire: self.wire.label(),
                bytes_raw,
                bytes_encoded,
                compression_ratio: if bytes_encoded > 0 {
                    bytes_raw as f64 / bytes_encoded as f64
                } else {
                    1.0
                },
            });
        }

        let updates = (0..k)
            .filter(|&wid| s.committed[wid])
            .map(|wid| self.workers[wid].coords())
            .sum();

        // Round boundary: the aggregated model is consistent — publish it.
        if self.observer.is_some() {
            self.assemble_weights_into(&mut s.weights);
            if let Some(observer) = self.observer.as_mut() {
                observer(self.epoch_index as u64, &s.weights);
            }
        }
        self.scratch = s;
        EpochStats { updates, breakdown }
    }

    fn weights(&self) -> Vec<f32> {
        self.assemble_weights()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.clone()
    }
}


//! Asynchronous parameter-server distribution — the *other* distribution
//! family the paper's introduction discusses (Li et al., OSDI'14 [6]):
//! "worker nodes perform stochastic updates of a local model and
//! asynchronously communicate their model updates to a parameter server",
//! in contrast to the synchronous CoCoA-style rounds of Algorithms 3/4
//! that the paper adopts.
//!
//! The deterministic simulation: workers own coordinate partitions exactly
//! as in the synchronous driver, but instead of a global barrier each
//! worker repeatedly
//!
//! 1. **pulls** a snapshot of the server's shared vector that is
//!    `staleness` pushes old (the pipeline depth of a real async system),
//! 2. runs a *chunk* of coordinate updates against that stale snapshot
//!    (its own weights are always fresh — single owner), and
//! 3. **pushes** the resulting shared-vector delta, which the server
//!    applies additively (γ = 1; there is no aggregation step to tune,
//!    which is precisely what Algorithm 4 adds to the synchronous side).
//!
//! Workers are interleaved round-robin, so the execution is reproducible.
//! One `epoch()` = every coordinate updated once, as everywhere else.
//!
//! ### Timing
//!
//! The async design's selling point is that communication overlaps
//! computation: no barrier, pushes stream while workers compute. Timing
//! is simulated on the discrete-event engine ([`scd_events`]): each
//! worker's chunks become compute-completion events at its cumulative
//! compute times, and the pushes they emit contend for the server's
//! single ingress link ([`scd_events::FifoLink`]) in event order. The
//! epoch costs the later of "slowest worker finishes computing" and
//! "last push drains off the server link"; only the excess over compute
//! is charged as network. The round-robin *numerics* are untouched — the
//! engine re-times the schedule, it does not reorder the updates.

use crate::partition::{partition_problem, PartitionStrategy};
use scd_core::{
    EpochStats, Form, ObjectiveKind, RidgeProblem, SequentialScd, Solver, TimeBreakdown,
};
use scd_events::{Engine, FifoLink};
use scd_perf_model::{CpuProfile, LinkProfile};
use scd_sparse::dense;
use scd_wire::{DeltaCodec, WireFormat};
use std::collections::VecDeque;

/// Configuration for the parameter-server run.
#[derive(Debug, Clone)]
pub struct ParamServerConfig {
    /// Number of workers.
    pub workers: usize,
    /// Formulation (decides the partition axis, as in the sync driver).
    pub form: Form,
    /// The training objective every worker optimizes (ridge by default).
    pub objective: ObjectiveKind,
    /// Snapshot age in pushes: 0 = every pull sees the latest server state
    /// (sequential-equivalent at K=1), larger = deeper pipeline.
    pub staleness: usize,
    /// Coordinate updates per push.
    pub chunk: usize,
    /// Partitioning strategy.
    pub strategy: PartitionStrategy,
    /// Worker ↔ server link.
    pub network: LinkProfile,
    /// Host CPU profile.
    pub cpu: CpuProfile,
    /// Base seed.
    pub seed: u64,
    /// Wire format every push travels in.
    pub wire: WireFormat,
}

impl ParamServerConfig {
    /// Defaults mirroring [`crate::DistributedConfig::new`].
    pub fn new(workers: usize, form: Form) -> Self {
        ParamServerConfig {
            workers,
            form,
            objective: ObjectiveKind::Ridge,
            staleness: workers, // one in-flight push per worker
            chunk: 64,
            strategy: PartitionStrategy::Random(0xC0C0A),
            network: LinkProfile::ethernet_10g(),
            cpu: CpuProfile::xeon_e5_2640(),
            seed: 1,
            wire: WireFormat::Raw,
        }
    }

    /// Select the training objective every worker optimizes locally.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Set the snapshot age in pushes.
    pub fn with_staleness(mut self, staleness: usize) -> Self {
        self.staleness = staleness;
        self
    }

    /// Set the partitioning strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the updates-per-push chunk.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "need at least one update per push");
        self.chunk = chunk;
        self
    }

    /// Set the worker ↔ server link.
    pub fn with_network(mut self, network: LinkProfile) -> Self {
        self.network = network;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the wire format for push traffic.
    pub fn with_wire(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }
}

struct PsWorker {
    solver: SequentialScd,
    global_ids: Vec<usize>,
    /// Coordinate updates still owed this epoch.
    remaining: usize,
    problem: RidgeProblem,
}

/// Per-push scratch reused across chunks and epochs, so steady-state
/// pushes stop allocating (the history ring recycles its own buffers).
#[derive(Default)]
struct PsScratch {
    snapshot: Vec<f32>,
    after: Vec<f32>,
    delta: Vec<f32>,
    payload: scd_wire::WirePayload,
    decoded: Vec<f32>,
}

/// The asynchronous parameter-server trainer (implements [`Solver`]).
pub struct ParamServerScd {
    form: Form,
    objective: ObjectiveKind,
    workers: Vec<PsWorker>,
    /// The server's authoritative shared vector.
    server: Vec<f32>,
    /// Ring of past server states for stale pulls (front = oldest).
    history: VecDeque<Vec<f32>>,
    staleness: usize,
    chunk: usize,
    coords_total: usize,
    weights_total: usize,
    cpu: CpuProfile,
    network: LinkProfile,
    /// The codec every push travels through.
    codec: Box<dyn DeltaCodec>,
    /// Cumulative dense-f32 bytes pushed.
    bytes_raw_total: usize,
    /// Cumulative encoded bytes pushed.
    bytes_encoded_total: usize,
    /// Epochs completed (the observer's round index).
    epochs_done: u64,
    /// Round-boundary publication hook (model serving, checkpointing).
    observer: Option<crate::driver::RoundObserver>,
    /// Reused per-push buffers.
    scratch: PsScratch,
}

impl ParamServerScd {
    /// Partition the problem and stand up the server and workers.
    pub fn new(full: &RidgeProblem, config: &ParamServerConfig) -> Self {
        if let Err(err) = config.objective.validate(full, config.form) {
            panic!("{err}");
        }
        let partitions = partition_problem(full, config.form, config.workers, config.strategy);
        let workers = partitions
            .into_iter()
            .enumerate()
            .map(|(k, part)| {
                let worker_seed = config.seed ^ ((k as u64 + 1) * 0x5DEECE66D);
                let solver = match config.form {
                    Form::Primal => SequentialScd::primal(&part.problem, worker_seed),
                    Form::Dual => SequentialScd::dual(&part.problem, worker_seed),
                }
                .with_cpu(config.cpu.clone())
                .with_objective(config.objective)
                .with_updates_per_call(config.chunk);
                PsWorker {
                    solver,
                    global_ids: part.global_ids,
                    remaining: 0,
                    problem: part.problem,
                }
            })
            .collect();
        ParamServerScd {
            form: config.form,
            objective: config.objective,
            workers,
            server: vec![0.0; full.shared_len(config.form)],
            history: VecDeque::new(),
            staleness: config.staleness,
            chunk: config.chunk,
            coords_total: full.coords(config.form),
            weights_total: full.coords(config.form),
            cpu: config.cpu.clone(),
            network: config.network.clone(),
            codec: config.wire.codec(),
            bytes_raw_total: 0,
            bytes_encoded_total: 0,
            epochs_done: 0,
            observer: None,
            scratch: PsScratch::default(),
        }
    }

    /// Install a round-boundary observer; it fires after every completed
    /// epoch with the current assembled weights (the same vector
    /// [`ParamServerScd::assemble_weights`] returns).
    pub fn set_round_observer(&mut self, observer: crate::driver::RoundObserver) {
        self.observer = Some(observer);
    }

    /// Cumulative (dense-f32, encoded) push-traffic bytes so far.
    pub fn wire_bytes_total(&self) -> (usize, usize) {
        (self.bytes_raw_total, self.bytes_encoded_total)
    }

    /// Scatter the workers' local weights into the global coordinate space.
    pub fn assemble_weights(&self) -> Vec<f32> {
        let mut global = vec![0.0f32; self.weights_total];
        for w in &self.workers {
            let weights = w.solver.weights();
            for (local, &g) in w.global_ids.iter().enumerate() {
                global[g] = weights[local];
            }
        }
        global
    }

    /// The snapshot a pull sees: the server state `staleness` pushes ago.
    fn stale_snapshot_into(&self, out: &mut Vec<f32>) {
        let src = self.history.front().unwrap_or(&self.server);
        out.clear();
        out.extend_from_slice(src);
    }

    fn record_history(&mut self) {
        if self.staleness == 0 {
            return;
        }
        // Recycle the evicted oldest entry as the new snapshot's buffer:
        // once the ring is full, recording stops allocating.
        let mut buf = if self.history.len() >= self.staleness {
            self.history.pop_front().expect("ring is non-empty")
        } else {
            Vec::new()
        };
        buf.clear();
        buf.extend_from_slice(&self.server);
        self.history.push_back(buf);
    }
}

impl Solver for ParamServerScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        format!(
            "Parameter server (K={}, staleness {}, chunk {})",
            self.workers.len(),
            self.staleness,
            self.chunk
        )
    }

    fn epoch(&mut self, _full: &RidgeProblem) -> EpochStats {
        // Reset the per-epoch quota.
        for w in self.workers.iter_mut() {
            w.remaining = w.problem.coords(self.form);
        }
        let mut per_worker_compute = vec![0.0f64; self.workers.len()];
        // Per-worker chunk durations, in execution order — the compute
        // schedule replayed on the event engine below.
        let mut chunk_schedule: Vec<Vec<f64>> = vec![Vec::new(); self.workers.len()];
        let mut pushes = 0usize;
        // Round-robin until every worker exhausted its quota.
        let mut s = std::mem::take(&mut self.scratch);
        loop {
            let mut any = false;
            for (k, compute) in per_worker_compute.iter_mut().enumerate() {
                if self.workers[k].remaining == 0 {
                    continue;
                }
                any = true;
                // Pull (stale), compute a chunk, push — every vector on
                // this path lands in a reused scratch buffer.
                self.stale_snapshot_into(&mut s.snapshot);
                let w = &mut self.workers[k];
                w.solver.set_shared(&s.snapshot);
                let stats = w.solver.epoch(&w.problem);
                w.remaining = w.remaining.saturating_sub(stats.updates);
                *compute += stats.breakdown.total();
                chunk_schedule[k].push(stats.breakdown.total());
                w.solver.shared_vector_into(&mut s.after);
                // The snapshot the worker pulled is the "before" state —
                // `set_shared` copied it into the solver, leaving it intact.
                dense::sub_into(&s.after, &s.snapshot, &mut s.delta);
                // The push travels through the codec: the server applies
                // what the wire carried, not the worker's exact delta.
                self.codec.encode_into(k, &s.delta, &mut s.payload);
                self.codec.decode_into(&s.payload, &mut s.decoded);
                self.record_history();
                dense::axpy(1.0, &s.decoded, &mut self.server);
                pushes += 1;
            }
            if !any {
                break;
            }
        }
        self.scratch = s;
        // Async overlap, timed on the event engine: each worker's chunks
        // complete back to back at its cumulative compute times; every
        // completion emits a push that contends for the server's single
        // ingress link in completion order (engine order — deterministic).
        let compute = per_worker_compute.iter().copied().fold(0.0f64, f64::max);
        let server_host = self
            .cpu
            .host_vector_op_seconds(pushes * self.server.len());
        // Each push carries the encoded payload; the model charges the
        // encoded bytes (value-independent, so timing stays deterministic).
        let push_bytes = self.codec.upload_bytes(self.server.len());
        self.bytes_raw_total += pushes * 4 * self.server.len();
        self.bytes_encoded_total += pushes * push_bytes;
        let mut engine: Engine<usize> = Engine::new();
        for durations in &chunk_schedule {
            let mut ready = 0.0f64;
            for &d in durations {
                ready += d;
                engine.schedule_at(ready, push_bytes);
            }
        }
        let mut ingress = FifoLink::new(self.network.clone());
        let mut last_arrival = 0.0f64;
        while let Some((key, bytes)) = engine.step() {
            last_arrival = ingress.delivery(key.time, bytes);
        }
        let elapsed = compute.max(last_arrival);
        let network_excess = (elapsed - compute).max(0.0);

        // Round boundary: every worker drained its quota — publish.
        self.epochs_done += 1;
        if self.observer.is_some() {
            let weights = self.assemble_weights();
            if let Some(observer) = self.observer.as_mut() {
                observer(self.epochs_done, &weights);
            }
        }
        EpochStats {
            updates: self.coords_total,
            breakdown: TimeBreakdown {
                host: compute + server_host,
                network: network_excess,
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.assemble_weights()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.server.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::{scale_values, webspam_like_custom};

    fn problem() -> RidgeProblem {
        let data = scale_values(&webspam_like_custom(400, 600, 25, 0.3, 0xEB), 0.4);
        RidgeProblem::from_labelled(&data, 1e-3).unwrap()
    }

    #[test]
    fn round_observer_fires_once_per_epoch_with_assembled_weights() {
        use std::sync::{Arc, Mutex};
        let p = problem();
        let config = ParamServerConfig::new(3, Form::Primal).with_seed(9);
        let mut ps = ParamServerScd::new(&p, &config);
        let log: Arc<Mutex<Vec<(u64, Vec<f32>)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        ps.set_round_observer(Box::new(move |round, weights| {
            sink.lock().unwrap().push((round, weights.to_vec()));
        }));
        for _ in 0..4 {
            ps.epoch(&p);
        }
        let log = log.lock().unwrap();
        assert_eq!(log.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(log[3].1, ps.assemble_weights(), "last publish is current");
        assert_ne!(log[0].1, log[3].1, "training moved between publishes");
    }

    #[test]
    fn k1_zero_staleness_matches_sequential() {
        // One worker, fresh pulls, chunked pushes: the chunks stream one
        // permutation, so the result equals Algorithm 1 exactly.
        let p = problem();
        let config = ParamServerConfig::new(1, Form::Primal)
            .with_staleness(0)
            .with_chunk(13)
            .with_strategy(PartitionStrategy::Contiguous)
            .with_seed(5);
        let mut ps = ParamServerScd::new(&p, &config);
        let mut seq = SequentialScd::primal(&p, 5 ^ 0x5DEECE66D);
        for _ in 0..3 {
            ps.epoch(&p);
            seq.epoch(&p);
        }
        assert!(
            dense::max_abs_diff(&ps.weights(), &seq.weights()) < 1e-5,
            "K=1 fresh parameter server must track Algorithm 1"
        );
    }

    #[test]
    fn converges_with_bounded_staleness() {
        // The in-flight window is K·chunk coordinates; on this scaled-down
        // problem (600 coordinates) the chunk must shrink with the problem,
        // exactly like the staleness scaling of the async CPU engines.
        let p = problem();
        let config = ParamServerConfig::new(4, Form::Primal)
            .with_chunk(8)
            .with_seed(7);
        let mut ps = ParamServerScd::new(&p, &config);
        for _ in 0..300 {
            ps.epoch(&p);
        }
        let gap = ps.duality_gap(&p);
        assert!(gap < 1e-3, "parameter server must converge, gap {gap}");
    }

    #[test]
    fn dual_form_converges_too() {
        let p = problem();
        let config = ParamServerConfig::new(3, Form::Dual)
            .with_chunk(8)
            .with_seed(8);
        let mut ps = ParamServerScd::new(&p, &config);
        for _ in 0..300 {
            ps.epoch(&p);
        }
        let gap = ps.duality_gap(&p);
        assert!(gap < 5e-3, "gap {gap}");
    }

    #[test]
    fn oversized_inflight_window_destabilizes() {
        // The flip side: K·chunk comparable to the coordinate count is the
        // "adding overshoot" regime — the async analogue of the divergence
        // the synchronous Adding aggregation exhibits.
        let p = problem();
        let gap_after = |chunk: usize| {
            let config = ParamServerConfig::new(4, Form::Primal)
                .with_chunk(chunk)
                .with_seed(11);
            let mut ps = ParamServerScd::new(&p, &config);
            for _ in 0..60 {
                ps.epoch(&p);
            }
            ps.duality_gap(&p)
        };
        let small = gap_after(8);
        let big = gap_after(128);
        assert!(
            big.is_nan() || big > small,
            "chunk 128 (gap {big}) should destabilize vs chunk 8 (gap {small})"
        );
    }

    #[test]
    fn deeper_staleness_converges_slower() {
        let p = problem();
        let gap_after = |staleness: usize| {
            let config = ParamServerConfig::new(4, Form::Primal)
                .with_staleness(staleness)
                .with_seed(9);
            let mut ps = ParamServerScd::new(&p, &config);
            for _ in 0..40 {
                ps.epoch(&p);
            }
            ps.duality_gap(&p)
        };
        let fresh = gap_after(0);
        let deep = gap_after(64);
        assert!(
            deep > fresh,
            "staleness 64 (gap {deep}) should trail staleness 0 (gap {fresh})"
        );
    }

    #[test]
    fn server_state_tracks_assembled_weights() {
        // All pushes are applied additively and exactly once, so at epoch
        // boundaries the server's shared vector equals A·(assembled model).
        let p = problem();
        let config = ParamServerConfig::new(4, Form::Primal).with_seed(3);
        let mut ps = ParamServerScd::new(&p, &config);
        for _ in 0..5 {
            ps.epoch(&p);
        }
        let w_true = p.csc().matvec(&ps.weights()).unwrap();
        let drift = dense::max_abs_diff(&ps.shared_vector(), &w_true);
        assert!(drift < 1e-3, "server must apply every push exactly once, drift {drift}");
    }

    #[test]
    fn async_overlap_hides_network_on_fast_links() {
        let p = problem();
        // A link whose latency/bandwidth are scaled to the problem (see
        // scd_perf_model::scaling): pushes are then fully hidden by compute.
        let fast = LinkProfile {
            name: "scaled link",
            latency_seconds: 1e-12,
            bandwidth_bytes_per_s: 1e15,
        };
        let config = ParamServerConfig::new(4, Form::Primal)
            .with_chunk(8)
            .with_network(fast)
            .with_seed(2);
        let mut ps = ParamServerScd::new(&p, &config);
        let stats = ps.epoch(&p);
        assert!(stats.breakdown.host > 0.0);
        // The tail push still has to drain off the link after the last
        // chunk completes, so "hidden" means sub-nanosecond here, not an
        // exact zero.
        assert!(
            stats.breakdown.network < 1e-9,
            "fully-hidden pushes must add no wall-clock, got {}",
            stats.breakdown.network
        );
        assert!(ps.name().contains("Parameter server"));

        // A link slower than compute leaks excess into the breakdown.
        let slow = LinkProfile {
            name: "slow link",
            latency_seconds: 1e-3,
            bandwidth_bytes_per_s: 1e6,
        };
        let config = ParamServerConfig::new(4, Form::Primal)
            .with_chunk(8)
            .with_network(slow)
            .with_seed(2);
        let mut ps = ParamServerScd::new(&p, &config);
        let stats = ps.epoch(&p);
        assert!(stats.breakdown.network > 0.0);
    }
}

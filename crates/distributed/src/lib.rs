//! Distributed stochastic learning (§IV–V of the paper): synchronous
//! CoCoA-style distribution of SCD across K workers with averaging
//! (Algorithm 3) or adaptive (Algorithm 4) aggregation, over an in-process
//! cluster whose communication costs follow the calibrated link models.
//!
//! * [`partition`] — by-feature / by-example data partitioning.
//! * [`local`] — the [`local::LocalSolver`] contract any engine
//!   (sequential, async CPU, TPA-SCD on a GPU) must meet to act as a
//!   worker's solver.
//! * [`worker`] — one worker node: local epoch, Δ computation, γ rescale.
//! * [`runtime`] — the [`runtime::RoundPool`]: persistent host threads
//!   that execute worker rounds concurrently within one epoch.
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]):
//!   delayed and dropped rounds, keyed by (epoch, worker, attempt).
//! * [`metrics`] — per-round telemetry ([`metrics::RoundMetrics`]) with
//!   JSON export for the bench harness.
//! * [`driver`] — the master loop: reduce, choose γ, broadcast, survive
//!   lost rounds by degraded aggregation; implements [`scd_core::Solver`]
//!   so the figure harness drives distributed and single-node runs
//!   identically.
//! * [`param_server`] — the asynchronous parameter-server alternative [6]
//!   the paper's introduction contrasts the synchronous design against;
//!   its timing now runs on the discrete-event engine.
//! * [`async_scd`] — bounded-staleness asynchronous rounds on the
//!   deterministic event engine ([`scd_events`]): τ=0 reproduces the
//!   synchronous barrier bit-identically, τ=∞ is a true event-driven
//!   parameter server, anything between is SSP-style bounded staleness.
//!
//! Delta traffic between workers and master goes through a pluggable wire
//! format ([`scd_wire::WireFormat`], re-exported here): raw f32 (the
//! default, bit-identical to direct exchange), fp16, top-k sparsification,
//! or top-k with error-feedback residuals. The network model charges the
//! *encoded* byte counts, and [`metrics::RoundMetrics`] records raw vs
//! encoded traffic per round.

pub mod async_scd;
pub mod driver;
pub mod fault;
pub mod local;
pub mod metrics;
pub mod param_server;
pub mod partition;
pub mod runtime;
pub mod source;
pub mod worker;

pub use async_scd::{AsyncScd, Staleness};
pub use driver::{
    Aggregation, BuildError, DistributedConfig, DistributedScd, LocalSolverKind, RoundObserver,
};
pub use source::{PartitionSource, SetupCost};
pub use fault::{FaultPlan, RoundFate};
pub use metrics::RoundMetrics;
pub use param_server::{ParamServerConfig, ParamServerScd};
pub use local::LocalSolver;
pub use partition::{partition_coords, partition_problem, LocalPartition, PartitionStrategy};
pub use runtime::{RoundPool, RoundRuntime};
pub use worker::{Worker, WorkerRound};
pub use scd_wire::{DeltaCodec, WireFormat};

#[cfg(test)]
mod tests {
    use super::*;
    use scd_core::{Form, RidgeProblem, SequentialScd, Solver};
    use scd_datasets::webspam_like;
    use scd_sparse::dense;

    fn full_problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-3).unwrap()
    }

    /// A better-conditioned problem (larger λ) for the slow dual-form tests.
    fn dual_problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-2).unwrap()
    }

    #[test]
    fn distributed_k1_averaging_matches_single_node() {
        // One worker with γ = 1/1 = 1 is exactly Algorithm 1 run locally.
        let full = full_problem();
        let config = DistributedConfig::new(1, Form::Primal)
            .with_strategy(PartitionStrategy::Contiguous)
            .with_seed(5);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        let mut single = SequentialScd::primal(&full, 5 ^ 0x5DEECE66D);
        for _ in 0..3 {
            dist.epoch(&full);
            single.epoch(&full);
        }
        // Master applies w ← w + (w' − w), which differs from w' by f32
        // rounding once w ≠ 0; trajectories agree to ULP-level.
        assert!(dense::max_abs_diff(&dist.weights(), &single.weights()) < 1e-5);
        assert!(
            dense::max_abs_diff(&dist.shared_vector(), &single.shared_vector()) < 1e-4
        );
        assert_eq!(dist.last_gamma(), 1.0);
    }

    #[test]
    fn distributed_primal_converges() {
        let full = full_problem();
        let config = DistributedConfig::new(4, Form::Primal);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        for _ in 0..150 {
            dist.epoch(&full);
        }
        let gap = dist.duality_gap(&full);
        assert!(gap < 1e-3, "gap {gap}");
    }

    #[test]
    fn distributed_dual_converges() {
        let full = dual_problem();
        let config = DistributedConfig::new(4, Form::Dual);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        for _ in 0..150 {
            dist.epoch(&full);
        }
        let gap = dist.duality_gap(&full);
        assert!(gap < 1e-3, "gap {gap}");
    }

    #[test]
    fn zero_delta_round_clamps_gamma_positive() {
        // Regression: a round whose surviving workers produced an all-zero
        // delta left the γ rules with a flat (or purely linear) objective —
        // the dual line search wandered to the −4 boundary and poisoned the
        // shared vector with a negative step. Every rule must now come back
        // finite and positive.
        use crate::driver::choose_gamma;
        use scd_core::{ObjectiveKind, WorkerScalars};
        let full = full_problem();
        let reduced = WorkerScalars {
            x_dot_dx: 0.0,
            dx_sq: 0.0,
            dx_dot_y: -1.0,
        };
        for aggregation in [
            Aggregation::Averaging,
            Aggregation::Adding,
            Aggregation::Adaptive,
            Aggregation::CocoaPlus,
            Aggregation::LineSearch,
        ] {
            for form in [Form::Primal, Form::Dual] {
                // The shared vector lives in example space (length N) for
                // the primal and feature space (length M) for the dual.
                let zeros = match form {
                    Form::Primal => vec![0.0f32; full.n()],
                    Form::Dual => vec![0.0f32; full.m()],
                };
                let gamma = choose_gamma(
                    aggregation,
                    form,
                    ObjectiveKind::Ridge,
                    &full,
                    &zeros,
                    &zeros,
                    &reduced,
                    3,
                );
                assert!(
                    gamma.is_finite() && gamma > 0.0,
                    "{aggregation:?}/{form:?} gave γ = {gamma}"
                );
            }
        }
        // The dual line search specifically lands on the −4 boundary here;
        // the clamp must replace it with the safe averaging step 1/K′.
        let zeros = vec![0.0f32; full.m()];
        let gamma = choose_gamma(
            Aggregation::LineSearch,
            Form::Dual,
            ObjectiveKind::Ridge,
            &full,
            &zeros,
            &zeros,
            &reduced,
            3,
        );
        assert_eq!(gamma, 1.0 / 3.0);
    }

    #[test]
    fn more_workers_converge_slower_per_epoch() {
        // Fig. 3: "an approximately linear slow-down in convergence speed as
        // a function of epochs."
        let full = full_problem();
        let epochs_to = |k: usize| -> usize {
            let config = DistributedConfig::new(k, Form::Primal).with_seed(9);
            let mut dist = DistributedScd::new(&full, &config).unwrap();
            for e in 1..=400 {
                dist.epoch(&full);
                if dist.duality_gap(&full) <= 1e-3 {
                    return e;
                }
            }
            401
        };
        let e1 = epochs_to(1);
        let e4 = epochs_to(4);
        assert!(
            e4 > e1,
            "4 workers ({e4} epochs) must need more epochs than 1 ({e1})"
        );
        assert!(e4 <= 400, "4 workers must still converge");
    }

    #[test]
    fn shared_vector_tracks_assembled_weights() {
        // Invariant of Algorithms 3/4: after aggregation the master's w
        // equals A·(assembled β) — workers' rescaled local models stay
        // consistent with the aggregated shared vector.
        let full = full_problem();
        let config = DistributedConfig::new(4, Form::Primal);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        for _ in 0..5 {
            dist.epoch(&full);
        }
        let w_true = full.csc().matvec(&dist.weights()).unwrap();
        let drift = dense::max_abs_diff(&dist.shared_vector(), &w_true);
        assert!(drift < 1e-3, "master w must track Aβ, drift {drift}");
    }

    #[test]
    fn dual_shared_vector_tracks_assembled_alpha() {
        let full = full_problem();
        let config = DistributedConfig::new(3, Form::Dual);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        for _ in 0..5 {
            dist.epoch(&full);
        }
        let w_bar_true = full.csr().matvec_t(&dist.weights()).unwrap();
        let drift = dense::max_abs_diff(&dist.shared_vector(), &w_bar_true);
        assert!(drift < 1e-3, "master w̄ must track Aᵀα, drift {drift}");
    }

    #[test]
    fn adaptive_aggregation_speeds_up_primal() {
        // Fig. 4a: adaptive aggregation reaches small gaps in fewer epochs
        // than averaging at K=8.
        let full = full_problem();
        let epochs_to = |agg: Aggregation| -> usize {
            let config = DistributedConfig::new(8, Form::Primal)
                .with_aggregation(agg)
                .with_seed(11);
            let mut dist = DistributedScd::new(&full, &config).unwrap();
            for e in 1..=600 {
                dist.epoch(&full);
                if dist.duality_gap(&full) <= 1e-4 {
                    return e;
                }
            }
            601
        };
        let avg = epochs_to(Aggregation::Averaging);
        let ada = epochs_to(Aggregation::Adaptive);
        assert!(
            ada < avg,
            "adaptive ({ada} epochs) must beat averaging ({avg} epochs)"
        );
    }

    #[test]
    fn adaptive_gamma_exceeds_averaging_gamma() {
        // Fig. 5: γ*ₜ converges to a value "significantly larger than ...
        // averaging (i.e., γ = 1/K)".
        let full = full_problem();
        let config = DistributedConfig::new(8, Form::Primal)
            .with_aggregation(Aggregation::Adaptive)
            .with_seed(3);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        let mut last = 0.0;
        for _ in 0..40 {
            dist.epoch(&full);
            last = dist.last_gamma();
        }
        assert!(
            last > 1.0 / 8.0,
            "converged γ {last} should exceed averaging's 1/8"
        );
    }

    #[test]
    fn network_time_grows_with_workers() {
        let full = full_problem();
        let net_time = |k: usize| {
            let config = DistributedConfig::new(k, Form::Primal);
            let mut dist = DistributedScd::new(&full, &config).unwrap();
            dist.epoch(&full).breakdown.network
        };
        assert_eq!(net_time(1), 0.0, "single worker needs no network");
        assert!(net_time(8) > net_time(2));
    }

    #[test]
    fn adding_aggregation_overshoots_on_correlated_data() {
        // "Adding" (γ=1) applies every worker's full step; on correlated
        // partitions it overshoots relative to averaging — the motivation
        // for tunable aggregation in [24].
        let full = full_problem();
        let gap_after = |agg: Aggregation| {
            let config = DistributedConfig::new(8, Form::Primal)
                .with_aggregation(agg)
                .with_seed(13);
            let mut dist = DistributedScd::new(&full, &config).unwrap();
            for _ in 0..30 {
                dist.epoch(&full);
            }
            dist.duality_gap(&full)
        };
        let adding = gap_after(Aggregation::Adding);
        let averaging = gap_after(Aggregation::Averaging);
        assert!(
            !(adding < averaging) || adding.is_nan(),
            "adding ({adding}) should not beat averaging ({averaging}) on \
             this correlated problem"
        );
    }

    #[test]
    fn tpa_workers_report_gpu_and_pcie_time() {
        use gpu_sim::GpuProfile;
        let full = dual_problem();
        let config = DistributedConfig::new(4, Form::Dual).with_solver(LocalSolverKind::Tpa {
            profile: GpuProfile::quadro_m4000(),
            lanes: 64,
            deterministic: true,
        });
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        let stats = dist.epoch(&full);
        assert!(stats.breakdown.gpu > 0.0, "GPU time must be charged");
        assert!(stats.breakdown.pcie > 0.0, "PCIe time must be charged");
        assert!(stats.breakdown.network > 0.0);
        for _ in 0..60 {
            dist.epoch(&full);
        }
        assert!(
            dist.duality_gap(&full) < 1e-2,
            "distributed TPA-SCD converges, gap {}",
            dist.duality_gap(&full)
        );
    }

    #[test]
    fn wild_workers_converge_to_biased_solution() {
        // Fig. 10's PASSCoDe(16 threads) reference: converges fast but the
        // gap saturates above the consistent solvers'.
        let full = full_problem();
        let config = DistributedConfig::new(4, Form::Dual)
            .with_solver(LocalSolverKind::AsyncSim {
                mode: scd_core::AsyncCpuMode::Wild,
                threads: 16,
                paper_scale_staleness: true,
            })
            .with_seed(21);
        let mut wild = DistributedScd::new(&full, &config).unwrap();
        let clean_cfg = DistributedConfig::new(4, Form::Dual).with_seed(21);
        let mut clean = DistributedScd::new(&full, &clean_cfg).unwrap();
        for _ in 0..150 {
            wild.epoch(&full);
            clean.epoch(&full);
        }
        let (gw, gc) = (wild.duality_gap(&full), clean.duality_gap(&full));
        assert!(gw.is_finite());
        assert!(
            gw > gc,
            "wild workers ({gw}) should stall above sequential workers ({gc})"
        );
    }

    #[test]
    fn cocoa_plus_makes_adding_safe() {
        // Plain adding (γ=1) diverges on this correlated problem (see the
        // `adding_aggregation_overshoots` test); CoCoA+ keeps γ=1 but
        // scales every local quadratic term by σ′=K, restoring convergence
        // — the safe-adding result of [24].
        let full = full_problem();
        let config = DistributedConfig::new(8, Form::Primal)
            .with_aggregation(Aggregation::CocoaPlus)
            .with_seed(13);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        for _ in 0..400 {
            dist.epoch(&full);
        }
        let gap = dist.duality_gap(&full);
        assert!(gap.is_finite() && gap < 1e-3, "CoCoA+ must converge, gap {gap}");
        assert_eq!(dist.last_gamma(), 1.0, "CoCoA+ adds with γ = 1");
    }

    #[test]
    fn cocoa_plus_beats_averaging_per_epoch() {
        let full = full_problem();
        let gap_after = |agg: Aggregation| {
            let config = DistributedConfig::new(8, Form::Primal)
                .with_aggregation(agg)
                .with_seed(14);
            let mut dist = DistributedScd::new(&full, &config).unwrap();
            for _ in 0..60 {
                dist.epoch(&full);
            }
            dist.duality_gap(&full)
        };
        let cocoa = gap_after(Aggregation::CocoaPlus);
        let avg = gap_after(Aggregation::Averaging);
        assert!(
            cocoa < avg,
            "CoCoA+ ({cocoa}) should make more per-epoch progress than averaging ({avg})"
        );
    }

    #[test]
    fn line_search_matches_closed_form_gamma() {
        // The master's explicit line search [21] must land on the same γ as
        // the §IV-B closed form, in both formulations.
        let full = full_problem();
        for form in [Form::Primal, Form::Dual] {
            let adaptive_cfg = DistributedConfig::new(4, form)
                .with_aggregation(Aggregation::Adaptive)
                .with_seed(15);
            let search_cfg = DistributedConfig::new(4, form)
                .with_aggregation(Aggregation::LineSearch)
                .with_seed(15);
            let mut adaptive = DistributedScd::new(&full, &adaptive_cfg).unwrap();
            let mut search = DistributedScd::new(&full, &search_cfg).unwrap();
            for _ in 0..5 {
                adaptive.epoch(&full);
                search.epoch(&full);
                assert!(
                    (adaptive.last_gamma() - search.last_gamma()).abs() < 1e-3,
                    "{}: closed form {} vs line search {}",
                    form.label(),
                    adaptive.last_gamma(),
                    search.last_gamma()
                );
            }
        }
    }

    #[test]
    fn one_straggler_stretches_every_synchronous_round() {
        let full = full_problem();
        let balanced = DistributedConfig::new(4, Form::Primal).with_seed(30);
        let straggling = DistributedConfig::new(4, Form::Primal)
            .with_worker_slowdowns(vec![1.0, 1.0, 6.0, 1.0])
            .with_seed(30);
        let mut a = DistributedScd::new(&full, &balanced).unwrap();
        let mut b = DistributedScd::new(&full, &straggling).unwrap();
        let ta = a.epoch(&full).breakdown.host;
        let tb = b.epoch(&full).breakdown.host;
        // The barrier charges the slowest worker; the master's (unscaled)
        // aggregation arithmetic dilutes the pure 6x, but the stretch must
        // be large and bounded by the slowdown itself.
        let ratio = tb / ta;
        assert!(
            (2.0..6.0).contains(&ratio),
            "a 6x straggler should stretch the round severalfold, got {ratio}"
        );
        // Convergence is unaffected — only time is.
        for _ in 0..30 {
            a.epoch(&full);
            b.epoch(&full);
        }
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn names_and_labels() {
        let full = full_problem();
        let config = DistributedConfig::new(2, Form::Primal)
            .with_aggregation(Aggregation::Adaptive);
        let dist = DistributedScd::new(&full, &config).unwrap();
        let name = dist.name();
        assert!(name.contains("K=2"));
        assert!(name.contains("adaptive"));
        assert_eq!(Aggregation::Averaging.label(), "averaging");
        assert_eq!(dist.worker_count(), 2);
    }
}

//! Where workers get their training data, and what distributing it costs.
//!
//! The epoch loop models steady-state training; this module models the
//! *setup* leg the paper's cluster pays before the first round — moving
//! each worker's partition to it over the network, and (for GPU workers)
//! across PCIe into device memory. An in-memory partition can only charge
//! a size *estimate*; a [`ShardedDataset`] partition charges the exact
//! chunk-file bytes that exist on disk.

use crate::partition::{partition_coords, LocalPartition, PartitionStrategy};
use scd_core::{Form, RidgeProblem};
use scd_perf_model::LinkProfile;
use scd_store::{ShardedDataset, StoreError};

/// Where the K worker partitions come from.
pub enum PartitionSource<'a> {
    /// Cut partitions from a fully materialized in-memory problem (the
    /// historical path; any form, any strategy).
    Memory,
    /// Load each worker's rows from an on-disk sharded dataset. Dual form
    /// and [`PartitionStrategy::Contiguous`] only: shards are row-major
    /// and contiguous ranges are the partitions that map whole chunks.
    Store(&'a ShardedDataset),
}

/// What standing the cluster up cost: the one-time data-distribution leg,
/// kept separate from per-epoch stats so steady-state numbers (and every
/// golden file derived from them) are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupCost {
    /// Bytes each worker's partition occupies in transit. For a store
    /// source these are the *actual* on-disk chunk bytes the worker maps;
    /// for a memory source, the in-memory CSR + label size estimate.
    pub bytes_per_worker: Vec<u64>,
    /// Master → workers over the cluster network: sequential unicast
    /// sends, so the legs sum.
    pub network_seconds: f64,
    /// Host → device on each worker (GPU workers only): workers load
    /// concurrently, so the slowest leg bounds the wall-clock.
    pub pcie_seconds: f64,
}

impl SetupCost {
    /// A zero-cost setup (used when no workers move data, e.g. K=0 in
    /// degenerate tests).
    pub fn zero() -> Self {
        SetupCost {
            bytes_per_worker: Vec::new(),
            network_seconds: 0.0,
            pcie_seconds: 0.0,
        }
    }

    /// Total bytes distributed across all workers.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_worker.iter().sum()
    }

    /// Charge the network and (optionally) PCIe legs for the recorded
    /// per-worker byte counts.
    pub(crate) fn price(
        bytes_per_worker: Vec<u64>,
        network: &LinkProfile,
        pcie: Option<&LinkProfile>,
    ) -> Self {
        let network_seconds = bytes_per_worker
            .iter()
            .map(|&b| network.transfer_seconds(b as usize))
            .sum();
        let pcie_seconds = pcie
            .map(|link| {
                bytes_per_worker
                    .iter()
                    .map(|&b| link.transfer_seconds(b as usize))
                    .fold(0.0f64, f64::max)
            })
            .unwrap_or(0.0);
        SetupCost {
            bytes_per_worker,
            network_seconds,
            pcie_seconds,
        }
    }
}

/// The in-transit size of an in-memory partition: CSR arrays plus labels.
pub(crate) fn memory_partition_bytes(part: &LocalPartition) -> u64 {
    (part.problem.csr().memory_bytes() + part.problem.labels().len() * 4) as u64
}

/// Cut the K dual partitions of `store` as contiguous row ranges —
/// exactly the ranges [`partition_coords`] produces for
/// [`PartitionStrategy::Contiguous`], so a store-sourced cluster is
/// bit-identical to an in-memory cluster partitioned the same way.
/// Returns each partition with the on-disk byte count of the chunks the
/// worker maps to load it.
pub(crate) fn store_partitions(
    store: &ShardedDataset,
    full: &RidgeProblem,
    workers: usize,
) -> Result<Vec<(LocalPartition, u64)>, StoreError> {
    let ranges = partition_coords(store.rows(), workers, PartitionStrategy::Contiguous);
    let mut parts = Vec::with_capacity(workers);
    for global_ids in ranges {
        let lo = *global_ids.first().expect("non-empty partition");
        let hi = *global_ids.last().expect("non-empty partition") + 1;
        let bytes = store.stored_bytes_for_rows(lo..hi);
        let (csr, labels) = store.load_rows(lo..hi)?;
        let problem = RidgeProblem::new(csr, labels, full.lambda())
            .expect("partition of a valid store is valid")
            .with_regularization_examples(full.n());
        parts.push((
            LocalPartition {
                global_ids,
                problem,
            },
            bytes,
        ));
    }
    Ok(parts)
}

/// Check that a store matches the in-memory problem it claims to back.
pub(crate) fn check_store_shape(
    store: &ShardedDataset,
    full: &RidgeProblem,
    form: Form,
) -> Result<(), String> {
    if form != Form::Dual {
        return Err(
            "store-backed training partitions by example; use the dual form".into(),
        );
    }
    if store.rows() != full.n() || store.cols() != full.m() {
        return Err(format!(
            "store shape {}x{} does not match problem {}x{}",
            store.rows(),
            store.cols(),
            full.n(),
            full.m()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_cost_prices_network_sum_and_pcie_max() {
        let net = LinkProfile::ethernet_10g();
        let pcie = LinkProfile::pcie3_x16();
        let cost = SetupCost::price(vec![1000, 3000, 2000], &net, Some(&pcie));
        let net_expected: f64 = [1000usize, 3000, 2000]
            .iter()
            .map(|&b| net.transfer_seconds(b))
            .sum();
        assert!((cost.network_seconds - net_expected).abs() < 1e-15);
        assert!((cost.pcie_seconds - pcie.transfer_seconds(3000)).abs() < 1e-15);
        assert_eq!(cost.total_bytes(), 6000);

        let no_gpu = SetupCost::price(vec![1000], &net, None);
        assert_eq!(no_gpu.pcie_seconds, 0.0);

        let zero = SetupCost::zero();
        assert_eq!(zero.total_bytes(), 0);
        assert_eq!(zero.network_seconds, 0.0);
    }
}

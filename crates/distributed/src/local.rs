//! The local-solver abstraction: any SCD engine that can participate in a
//! synchronous distributed round.
//!
//! §IV-A: "The coordinate updates on each worker can be computed using any
//! of the techniques discussed in the previous section" — a worker's engine
//! must run epochs (the [`Solver`] contract) *and* accept the master's
//! broadcast state between rounds.

use scd_core::{AsyncSimScd, SequentialScd, Solver, TpaScd};

/// A [`Solver`] that can be re-synchronized by the distributed driver.
///
/// `Send` is part of the contract: the round runtime moves each worker's
/// engine to a pool thread for the duration of its local epoch.
pub trait LocalSolver: Solver + Send {
    /// Load the aggregated shared vector the master broadcast (Algorithm
    /// 3's "Broadcast w(t−1) to the K workers").
    fn load_shared(&mut self, shared: &[f32]);

    /// Load the rescaled local model weights (the consistency step
    /// β(t,k) = β(t−1,k) + γΔβ(t,k)).
    fn load_weights(&mut self, weights: &[f32]);

    /// Bytes that loading/retrieving the shared vector moves over PCIe per
    /// round-trip, or 0 for engines whose state lives in host memory.
    fn pcie_bytes_per_exchange(&self) -> usize {
        0
    }

    /// The (download, upload) legs of the PCIe exchange. The default
    /// splits [`Self::pcie_bytes_per_exchange`] evenly, assigning the odd
    /// byte to the upload leg so no traffic is lost to integer halving.
    fn pcie_bytes_split(&self) -> (usize, usize) {
        let total = self.pcie_bytes_per_exchange();
        (total / 2, total - total / 2)
    }
}

impl LocalSolver for SequentialScd {
    fn load_shared(&mut self, shared: &[f32]) {
        self.set_shared(shared);
    }

    fn load_weights(&mut self, weights: &[f32]) {
        self.set_weights(weights);
    }
}

impl LocalSolver for AsyncSimScd {
    fn load_shared(&mut self, shared: &[f32]) {
        self.set_shared(shared);
    }

    fn load_weights(&mut self, weights: &[f32]) {
        self.set_weights(weights);
    }
}

impl LocalSolver for TpaScd {
    fn load_shared(&mut self, shared: &[f32]) {
        self.upload_shared(shared);
    }

    fn load_weights(&mut self, weights: &[f32]) {
        self.upload_weights(weights);
    }

    fn pcie_bytes_per_exchange(&self) -> usize {
        TpaScd::pcie_bytes_per_exchange(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_core::{Form, RidgeProblem};
    use scd_datasets::webspam_like;

    #[test]
    fn cpu_solvers_report_no_pcie() {
        let p = RidgeProblem::from_labelled(&webspam_like(30, 20, 4, 1), 1e-2).unwrap();
        let seq = SequentialScd::primal(&p, 1);
        assert_eq!(LocalSolver::pcie_bytes_per_exchange(&seq), 0);
        let sim = AsyncSimScd::a_scd(&p, Form::Primal, 1);
        assert_eq!(LocalSolver::pcie_bytes_per_exchange(&sim), 0);
    }

    #[test]
    fn load_roundtrip_through_trait_object() {
        let p = RidgeProblem::from_labelled(&webspam_like(30, 20, 4, 2), 1e-2).unwrap();
        let mut solver: Box<dyn LocalSolver> = Box::new(SequentialScd::primal(&p, 3));
        let shared = vec![0.5f32; p.n()];
        let weights = vec![-0.25f32; p.m()];
        solver.load_shared(&shared);
        solver.load_weights(&weights);
        assert_eq!(solver.shared_vector(), shared);
        assert_eq!(solver.weights(), weights);
    }

    #[test]
    fn tpa_reports_pcie_traffic() {
        use gpu_sim::{Gpu, GpuProfile};
        use std::sync::Arc;
        let p = RidgeProblem::from_labelled(&webspam_like(30, 20, 4, 4), 1e-2).unwrap();
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()));
        let tpa = TpaScd::new(&p, Form::Dual, gpu, 1).unwrap();
        // Dual shared vector has length M = 20; down + up = 2 × 4 × 20.
        assert_eq!(LocalSolver::pcie_bytes_per_exchange(&tpa), 160);
    }
}

//! The round runtime: worker rounds of one synchronous epoch as a task
//! group on the shared host scheduler.
//!
//! The original driver ran the K workers one after another on the calling
//! thread; PR 2 moved them onto a dedicated pool of host threads owned by
//! each [`crate::DistributedScd`]. That pool was one of three independent
//! thread mechanisms in the workspace (gpu-sim's executor and the
//! crossbeam scopes in the CPU baselines being the others), so a
//! K-worker run whose local solver is TPA-SCD oversubscribed the host K×.
//! [`RoundPool`] is now a thin facade over the work-stealing scheduler
//! (`scd-sched`): an epoch submits "run the round of each pending worker"
//! as one task group capped at the configured width, and the worker
//! rounds — plus any kernel grids they launch — schedule cooperatively on
//! one process-wide set of host threads. Nested TPA-SCD launches inside a
//! round are safe by the scheduler's nesting rule (the submitting thread
//! drains its own group inline before blocking).
//!
//! Determinism: each task index is claimed by exactly one thread, every
//! worker is touched by at most one thread per epoch, and the *master*
//! reduces results in worker-id order afterwards — so the aggregated
//! state is bit-identical to the sequential loop regardless of thread
//! count or scheduling.

use scd_sched::Scheduler;
use std::sync::Arc;

/// How the driver executes the K worker rounds of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundRuntime {
    /// One worker after another on the calling thread — the pre-pool
    /// reference loop, kept for equivalence testing and 1-core hosts.
    Sequential,
    /// Rounds run as task groups on the shared host scheduler.
    /// `threads == 0` auto-sizes to `min(K, available_parallelism)`.
    Concurrent {
        /// Parallelism cap; 0 = auto.
        threads: usize,
    },
}

impl Default for RoundRuntime {
    fn default() -> Self {
        RoundRuntime::Concurrent { threads: 0 }
    }
}

impl RoundRuntime {
    /// Resolve the round-parallelism cap for a cluster of `workers`
    /// nodes; `None` means "no pool, run inline".
    pub(crate) fn pool_threads(self, workers: usize) -> Option<usize> {
        match self {
            RoundRuntime::Sequential => None,
            RoundRuntime::Concurrent { threads: 0 } => {
                let host = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                Some(host.min(workers).max(1))
            }
            RoundRuntime::Concurrent { threads } => Some(threads.min(workers).max(1)),
        }
    }
}

/// Per-driver handle onto the shared scheduler for executing the
/// per-worker round tasks of an epoch.
pub struct RoundPool {
    sched: Arc<Scheduler>,
    /// Parallelism cap for this driver's epochs.
    threads: usize,
}

impl RoundPool {
    /// A handle capped at `threads` concurrent rounds, on the
    /// process-wide scheduler.
    pub fn new(threads: usize) -> Self {
        Self::on(scd_sched::global(), threads)
    }

    /// A handle on an explicit scheduler — tests and benchmarks use this
    /// to pin real parallelism regardless of the host's core count.
    pub fn on(sched: Arc<Scheduler>, threads: usize) -> Self {
        assert!(threads >= 1, "round pool needs at least one thread");
        RoundPool { sched, threads }
    }

    /// This handle's round-parallelism cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The scheduler this handle submits to.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Execute `tasks` tasks as one group; `run_task(i)` is called exactly
    /// once for every `i in 0..tasks`. Returns after every task has
    /// finished. Tasks may themselves submit nested work (TPA-SCD kernel
    /// launches) to the same scheduler.
    ///
    /// # Panics
    /// Panics if any task panicked.
    pub fn run(&self, tasks: usize, run_task: &(dyn Fn(usize) + Sync)) {
        self.sched.parallel_for_limited(tasks, self.threads, run_task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_task_runs_exactly_once_and_pool_is_reusable() {
        let pool = RoundPool::on(Scheduler::new(3), 3);
        for _ in 0..4 {
            let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
            pool.run(17, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn empty_job_completes() {
        let pool = RoundPool::new(2);
        pool.run(0, &|_| panic!("no tasks should run"));
    }

    #[test]
    fn panicking_task_fails_the_job_but_not_the_pool() {
        let pool = RoundPool::on(Scheduler::new(2), 2);
        let failed = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            })
        }));
        assert!(failed.is_err());
        let ok = AtomicUsize::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    /// The cap throttles a wide scheduler: at most `threads` rounds run
    /// concurrently even when the scheduler could host more.
    #[test]
    fn cap_bounds_concurrent_rounds() {
        let sched = Scheduler::new(4);
        let pool = RoundPool::on(Arc::clone(&sched), 2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(12, &|_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn runtime_resolves_pool_width() {
        assert_eq!(RoundRuntime::Sequential.pool_threads(8), None);
        assert_eq!(
            RoundRuntime::Concurrent { threads: 3 }.pool_threads(8),
            Some(3)
        );
        // Wider than the cluster is clamped to K.
        assert_eq!(
            RoundRuntime::Concurrent { threads: 16 }.pool_threads(4),
            Some(4)
        );
        let auto = RoundRuntime::Concurrent { threads: 0 }
            .pool_threads(8)
            .unwrap();
        assert!(auto >= 1 && auto <= 8);
        assert_eq!(RoundRuntime::default(), RoundRuntime::Concurrent { threads: 0 });
    }
}

//! The round runtime: persistent host threads that execute worker rounds
//! concurrently inside one synchronous epoch.
//!
//! The original driver ran the K workers one after another on the calling
//! thread. That was semantically fine (workers are independent state
//! machines), but it serialized real wall-clock across K and made the
//! "synchronous barrier" a fiction of the cost model only. This module
//! applies the persistent-pool pattern of `gpu_sim`'s executor
//! (`crates/gpusim/src/pool.rs`) to the cluster: a pool of host threads is
//! created once per [`crate::DistributedScd`], and every epoch publishes
//! one job ("run the round of each pending worker") that the threads drain
//! from a shared cursor.
//!
//! Determinism: each task index is claimed by exactly one thread, every
//! worker is touched by at most one thread per job, and the *master*
//! reduces results in worker-id order afterwards — so the aggregated state
//! is bit-identical to the sequential loop regardless of thread count or
//! scheduling.
//!
//! Safety model (same as the gpu-sim pool): `run` erases the task
//! closure's lifetime to publish it to the long-lived workers and does not
//! return until every thread has checked in for the job, after which no
//! thread touches the job again.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How the driver executes the K worker rounds of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundRuntime {
    /// One worker after another on the calling thread — the pre-pool
    /// reference loop, kept for equivalence testing and 1-core hosts.
    Sequential,
    /// Rounds run on a persistent pool of host threads. `threads == 0`
    /// auto-sizes to `min(K, available_parallelism)`.
    Concurrent {
        /// Pool width; 0 = auto.
        threads: usize,
    },
}

impl Default for RoundRuntime {
    fn default() -> Self {
        RoundRuntime::Concurrent { threads: 0 }
    }
}

impl RoundRuntime {
    /// Resolve the pool width for a cluster of `workers` nodes; `None`
    /// means "no pool, run inline".
    pub(crate) fn pool_threads(self, workers: usize) -> Option<usize> {
        match self {
            RoundRuntime::Sequential => None,
            RoundRuntime::Concurrent { threads: 0 } => {
                let host = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                Some(host.min(workers).max(1))
            }
            RoundRuntime::Concurrent { threads } => Some(threads.min(workers).max(1)),
        }
    }
}

/// A task body as the pool sees it: run task `i` of the current job.
type TaskFn<'a> = &'a (dyn Fn(usize) + Sync);

/// One job in flight: task count, the erased body, the claim cursor, and
/// the completion latch.
struct Job {
    /// Task body with its borrow lifetime erased; valid until the `run`
    /// call that published it returns.
    run: TaskFn<'static>,
    tasks: usize,
    /// Next unclaimed task index (dynamic dispatch, exactly-once claim).
    next: AtomicUsize,
    /// Set when a task panicked; remaining tasks are abandoned.
    panicked: AtomicBool,
    /// Completion latch: threads that have finished this job.
    done: Mutex<usize>,
    all_done: Condvar,
}

enum Command {
    Idle,
    Run(u64, Arc<Job>),
    Shutdown,
}

struct PoolShared {
    command: Mutex<Command>,
    wake: Condvar,
}

/// A persistent pool of host threads executing per-worker round tasks.
pub struct RoundPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl RoundPool {
    /// Spin up `threads` host threads.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "round pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            command: Mutex::new(Command::Idle),
            wake: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scd-round-{i}"))
                    .spawn(move || thread_loop(&shared))
                    .expect("spawning round-pool thread")
            })
            .collect();
        RoundPool {
            shared,
            threads: handles,
        }
    }

    /// Number of pool threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Execute `tasks` tasks on the pool; `run_task(i)` is called exactly
    /// once for every `i in 0..tasks`, from some pool thread. Returns after
    /// every task has finished.
    ///
    /// # Panics
    /// Panics if any task panicked.
    pub fn run(&self, tasks: usize, run_task: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the erased reference outlives this call only inside the
        // job slot, and this call does not return until every thread has
        // checked in and can no longer touch it (see module docs).
        let run_static: TaskFn<'static> = unsafe { std::mem::transmute(run_task) };
        let job = Arc::new(Job {
            run: run_static,
            tasks,
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(0),
            all_done: Condvar::new(),
        });

        {
            let mut cmd = self.shared.command.lock().unwrap();
            let generation = match &*cmd {
                Command::Run(g, _) => g + 1,
                _ => 1,
            };
            *cmd = Command::Run(generation, Arc::clone(&job));
            self.shared.wake.notify_all();
        }

        let threads = self.threads.len();
        let mut done = job.done.lock().unwrap();
        while *done < threads {
            done = job.all_done.wait(done).unwrap();
        }
        drop(done);

        if job.panicked.load(Ordering::Relaxed) {
            panic!("worker round panicked");
        }
    }
}

impl Drop for RoundPool {
    fn drop(&mut self) {
        {
            let mut cmd = self.shared.command.lock().unwrap();
            *cmd = Command::Shutdown;
            self.shared.wake.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn thread_loop(shared: &PoolShared) {
    let mut seen: u64 = 0;
    loop {
        let job = {
            let mut cmd = shared.command.lock().unwrap();
            loop {
                match &*cmd {
                    Command::Shutdown => return,
                    Command::Run(generation, job) if *generation != seen => {
                        seen = *generation;
                        break Arc::clone(job);
                    }
                    _ => cmd = shared.wake.wait(cmd).unwrap(),
                }
            }
        };

        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks || job.panicked.load(Ordering::Relaxed) {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| (job.run)(i))).is_err() {
                job.panicked.store(true, Ordering::Relaxed);
            }
        }

        let mut done = job.done.lock().unwrap();
        *done += 1;
        job.all_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_runs_exactly_once_and_pool_is_reusable() {
        let pool = RoundPool::new(3);
        for _ in 0..4 {
            let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
            pool.run(17, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn empty_job_completes() {
        let pool = RoundPool::new(2);
        pool.run(0, &|_| panic!("no tasks should run"));
    }

    #[test]
    fn panicking_task_fails_the_job_but_not_the_pool() {
        let pool = RoundPool::new(2);
        let failed = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            })
        }));
        assert!(failed.is_err());
        let ok = AtomicUsize::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn runtime_resolves_pool_width() {
        assert_eq!(RoundRuntime::Sequential.pool_threads(8), None);
        assert_eq!(
            RoundRuntime::Concurrent { threads: 3 }.pool_threads(8),
            Some(3)
        );
        // Wider than the cluster is clamped to K.
        assert_eq!(
            RoundRuntime::Concurrent { threads: 16 }.pool_threads(4),
            Some(4)
        );
        let auto = RoundRuntime::Concurrent { threads: 0 }
            .pool_threads(8)
            .unwrap();
        assert!(auto >= 1 && auto <= 8);
        assert_eq!(RoundRuntime::default(), RoundRuntime::Concurrent { threads: 0 });
    }
}

//! Deterministic fault injection for the distributed round runtime.
//!
//! Faults in a real cluster are external events; in the simulator they
//! must be *reproducible* ones, so every (epoch, worker, attempt) triple
//! hashes to a fate through a splitmix64 mix of the plan's seed. Running
//! the same configuration twice — on any thread count — produces the same
//! drops, delays, retries and therefore the same trajectory.

/// What happened to one worker's round delivery on one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundFate {
    /// The round arrived at the master on time.
    Delivered,
    /// The round arrived, but `delay_factor` slower than computed.
    Delayed,
    /// The round never arrived; the master times out and may retry.
    Dropped,
}

/// Fault-injection plan evaluated by the master each round.
///
/// The default plan injects nothing and adds no cost — `FaultPlan::none()`
/// keeps the driver byte-identical to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a worker's round is dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered round is delayed.
    pub delay_probability: f64,
    /// Multiplier applied to a delayed worker's round time (> 1.0).
    pub delay_factor: f64,
    /// Master-side timeout on a worker's round, in simulated seconds.
    /// Rounds slower than this (dropped rounds always) count as lost.
    /// `None` means the master waits forever for delayed workers and
    /// only drops explicitly `Dropped` rounds.
    pub timeout_seconds: Option<f64>,
    /// How many times the master re-requests a lost round before
    /// aggregating without that worker.
    pub max_retries: usize,
    /// When set, worker `epoch % K` is dropped every round (all
    /// attempts) — a deterministic worst case for degraded-aggregation
    /// tests, applied on top of the probabilistic fates.
    pub rotating_drop: bool,
    /// Seed for the fate hash; independent of the solver seed so fault
    /// schedules can vary while the optimization path is held fixed.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            delay_probability: 0.0,
            delay_factor: 1.0,
            timeout_seconds: None,
            max_retries: 0,
            rotating_drop: false,
            seed: 0,
        }
    }

    /// True when the plan can affect a run (any fault source enabled).
    pub fn is_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.delay_probability > 0.0
            || self.rotating_drop
            || self.timeout_seconds.is_some()
    }

    /// The deterministic fate of `worker`'s round in `epoch`, on retry
    /// `attempt` (0 = first delivery). `workers` is the cluster size K,
    /// used by `rotating_drop`.
    pub fn fate(&self, epoch: usize, worker: usize, attempt: usize, workers: usize) -> RoundFate {
        if self.rotating_drop && workers > 0 && worker == epoch % workers {
            return RoundFate::Dropped;
        }
        if self.drop_probability <= 0.0 && self.delay_probability <= 0.0 {
            return RoundFate::Delivered;
        }
        let u = self.uniform(epoch, worker, attempt);
        if u < self.drop_probability {
            RoundFate::Dropped
        } else if u < self.drop_probability + self.delay_probability {
            RoundFate::Delayed
        } else {
            RoundFate::Delivered
        }
    }

    /// Uniform sample in `[0, 1)` keyed by (seed, epoch, worker, attempt).
    fn uniform(&self, epoch: usize, worker: usize, attempt: usize) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((epoch as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add((worker as u64).wrapping_mul(0x94D049BB133111EB))
            .wrapping_add(attempt as u64 + 1);
        let h = splitmix64(key);
        // 53 high bits -> f64 in [0, 1), the standard unbiased mapping.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_always_delivers() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for e in 0..8 {
            for w in 0..8 {
                assert_eq!(plan.fate(e, w, 0, 8), RoundFate::Delivered);
            }
        }
    }

    #[test]
    fn fate_is_deterministic_per_triple() {
        let plan = FaultPlan {
            drop_probability: 0.3,
            delay_probability: 0.3,
            seed: 7,
            ..FaultPlan::none()
        };
        for e in 0..16 {
            for w in 0..4 {
                for a in 0..3 {
                    assert_eq!(plan.fate(e, w, a, 4), plan.fate(e, w, a, 4));
                }
            }
        }
        // Different attempts of the same round can draw different fates.
        let varies = (0..64).any(|e| plan.fate(e, 0, 0, 4) != plan.fate(e, 0, 1, 4));
        assert!(varies, "retry attempts should re-roll the fate");
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let plan = FaultPlan {
            drop_probability: 0.25,
            delay_probability: 0.25,
            seed: 42,
            ..FaultPlan::none()
        };
        let trials = 4000;
        let mut dropped = 0;
        let mut delayed = 0;
        for e in 0..trials {
            match plan.fate(e, 0, 0, 1) {
                RoundFate::Dropped => dropped += 1,
                RoundFate::Delayed => delayed += 1,
                RoundFate::Delivered => {}
            }
        }
        let drop_rate = dropped as f64 / trials as f64;
        let delay_rate = delayed as f64 / trials as f64;
        assert!((drop_rate - 0.25).abs() < 0.05, "drop rate {drop_rate}");
        assert!((delay_rate - 0.25).abs() < 0.05, "delay rate {delay_rate}");
    }

    #[test]
    fn rotating_drop_hits_one_worker_per_epoch() {
        let plan = FaultPlan {
            rotating_drop: true,
            ..FaultPlan::none()
        };
        assert!(plan.is_active());
        for e in 0..12 {
            for w in 0..4 {
                let fate = plan.fate(e, w, 0, 4);
                if w == e % 4 {
                    assert_eq!(fate, RoundFate::Dropped);
                    // Retries do not resurrect a rotating-drop victim.
                    assert_eq!(plan.fate(e, w, 1, 4), RoundFate::Dropped);
                } else {
                    assert_eq!(fate, RoundFate::Delivered);
                }
            }
        }
    }
}

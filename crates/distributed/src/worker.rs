//! A distributed worker: one machine (optionally with a GPU) owning a
//! partition of the data and a local SCD engine.

use crate::local::LocalSolver;
use crate::partition::LocalPartition;
use scd_core::{Form, TimeBreakdown, WorkerScalars};
use scd_perf_model::{CpuProfile, LinkProfile};
use scd_sparse::dense;

/// What a worker sends the master after one local epoch.
#[derive(Debug, Clone)]
pub struct WorkerRound {
    /// Δw⁽ᵏ⁾ (primal) or Δw̄⁽ᵏ⁾ (dual): the worker's shared-vector update.
    pub delta_shared: Vec<f32>,
    /// The adaptive-aggregation scalars.
    pub scalars: WorkerScalars,
    /// Simulated time this worker spent in the round (compute + PCIe).
    pub breakdown: TimeBreakdown,
}

/// One worker node.
pub struct Worker {
    id: usize,
    partition: LocalPartition,
    solver: Box<dyn LocalSolver>,
    /// Master-consistent local weights (β⁽ᵗ⁻¹,ᵏ⁾ / α⁽ᵗ⁻¹,ᵏ⁾).
    weights: Vec<f32>,
    /// Δ weights of the round in flight, awaiting the master's γ.
    pending_delta: Vec<f32>,
    form: Form,
    /// Full local passes per communication round (≥ 1).
    local_epochs: usize,
    cpu: CpuProfile,
    pcie: LinkProfile,
    /// The latest round's result, its buffers reused round to round.
    round: WorkerRound,
    /// Scratch for the engine's post-round weights, reused round to round.
    new_weights: Vec<f32>,
    /// Scratch for the engine's post-round shared vector, ditto.
    new_shared: Vec<f32>,
}

impl Worker {
    /// Wrap a partition and a local engine into a worker.
    pub fn new(
        id: usize,
        partition: LocalPartition,
        solver: Box<dyn LocalSolver>,
        form: Form,
        cpu: CpuProfile,
        pcie: LinkProfile,
    ) -> Self {
        let coords = partition.problem.coords(form);
        Worker {
            id,
            partition,
            solver,
            weights: vec![0.0; coords],
            pending_delta: vec![0.0; coords],
            form,
            local_epochs: 1,
            cpu,
            pcie,
            round: WorkerRound {
                delta_shared: Vec::new(),
                scalars: WorkerScalars::default(),
                breakdown: TimeBreakdown::default(),
            },
            new_weights: Vec::new(),
            new_shared: Vec::new(),
        }
    }

    /// Run `h` full local passes between communications (§IV-A trade-off).
    pub fn with_local_epochs(mut self, h: usize) -> Self {
        assert!(h >= 1, "need at least one local pass");
        self.local_epochs = h;
        self
    }

    /// Worker index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Global coordinate ids this worker owns.
    pub fn global_ids(&self) -> &[usize] {
        &self.partition.global_ids
    }

    /// Master-consistent local weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Coordinate updates this worker performs per round.
    pub fn coords(&self) -> usize {
        self.weights.len()
    }

    /// The local engine's display name.
    pub fn solver_name(&self) -> String {
        self.solver.name()
    }

    /// Run one local epoch from the master's shared vector (Algorithm 3's
    /// per-worker body): load w⁽ᵗ⁻¹⁾, run a permuted pass over the local
    /// coordinates, and return Δw⁽ᵗ,ᵏ⁾ plus the adaptive-aggregation
    /// scalars. The Δβ⁽ᵗ,ᵏ⁾ stays here until [`Self::apply_gamma`].
    pub fn run_round(&mut self, global_shared: &[f32]) -> &WorkerRound {
        self.solver.load_shared(global_shared);
        let mut stats = self.solver.epoch(&self.partition.problem);
        for _ in 1..self.local_epochs {
            let extra = self.solver.epoch(&self.partition.problem);
            stats.updates += extra.updates;
            stats.breakdown.accumulate(&extra.breakdown);
        }
        // All of the round's vectors land in reused buffers: steady-state
        // rounds perform no heap allocation on this path.
        self.solver.weights_into(&mut self.new_weights);
        self.solver.shared_vector_into(&mut self.new_shared);

        dense::sub_into(&self.new_shared, global_shared, &mut self.round.delta_shared);
        dense::sub_into(&self.new_weights, &self.weights, &mut self.pending_delta);

        self.round.scalars = WorkerScalars {
            x_dot_dx: dense::dot(&self.weights, &self.pending_delta),
            dx_sq: dense::squared_norm(&self.pending_delta),
            dx_dot_y: match self.form {
                // ⟨Δα⁽ᵏ⁾, y⁽ᵏ⁾⟩ over the worker's own examples.
                Form::Dual => dense::dot(&self.pending_delta, self.partition.problem.labels()),
                Form::Primal => 0.0,
            },
        };

        let mut breakdown = stats.breakdown;
        // Forming Δw and Δβ plus the three scalar reductions on the host.
        breakdown.host += self
            .cpu
            .host_vector_op_seconds(2 * global_shared.len() + 3 * self.pending_delta.len());
        // GPU workers pay PCIe for the shared-vector round trip: the
        // download and upload legs are charged separately (they need not
        // carry the same bytes, and halving an odd total would silently
        // drop a byte).
        let (down_bytes, up_bytes) = self.solver.pcie_bytes_split();
        if down_bytes + up_bytes > 0 {
            breakdown.pcie +=
                self.pcie.transfer_seconds(down_bytes) + self.pcie.transfer_seconds(up_bytes);
        }
        self.round.breakdown = breakdown;
        &self.round
    }

    /// The latest [`Self::run_round`] result (stale until the first round).
    pub fn round(&self) -> &WorkerRound {
        &self.round
    }

    /// Mutable access to the latest round — the driver uses this to apply
    /// fault-plan fates (delay multipliers) without cloning the round.
    pub fn round_mut(&mut self) -> &mut WorkerRound {
        &mut self.round
    }

    /// Apply the master's aggregation parameter to the pending local update
    /// (Algorithm 4's "β(t,k) = β(t−1,k) + γₜΔβ(t,k)") and re-sync the
    /// engine.
    pub fn apply_gamma(&mut self, gamma: f64) {
        dense::axpy(gamma as f32, &self.pending_delta, &mut self.weights);
        self.solver.load_weights(&self.weights);
    }

    /// Abandon the round in flight (the master timed out on it or its
    /// delivery was dropped): zero the pending Δβ and re-sync the engine
    /// to the last master-consistent weights, so the worker re-enters the
    /// next round from exactly the state the master assumes it holds.
    pub fn discard_round(&mut self) {
        self.pending_delta.iter_mut().for_each(|d| *d = 0.0);
        self.solver.load_weights(&self.weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_problem, PartitionStrategy};
    use scd_core::{RidgeProblem, SequentialScd};
    use scd_datasets::webspam_like;

    fn full() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(60, 40, 6, 7), 1e-2).unwrap()
    }

    fn make_worker(full: &RidgeProblem, k: usize, of: usize) -> Worker {
        let parts = partition_problem(full, Form::Primal, of, PartitionStrategy::Contiguous);
        let part = parts.into_iter().nth(k).unwrap();
        let solver = SequentialScd::primal(&part.problem, 42 + k as u64);
        Worker::new(
            k,
            part,
            Box::new(solver),
            Form::Primal,
            CpuProfile::xeon_e5_2640(),
            LinkProfile::pcie3_x16(),
        )
    }

    #[test]
    fn round_produces_consistent_delta() {
        let full = full();
        let mut w = make_worker(&full, 0, 2);
        let zeros = vec![0.0f32; full.n()];
        let round = w.run_round(&zeros).clone();
        // From β=0, w=0: the delta shared vector must equal A_k β_new.
        w.apply_gamma(1.0);
        let expected = w
            .partition
            .problem
            .csc()
            .matvec(&w.weights)
            .unwrap();
        for (a, b) in round.delta_shared.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert!(round.scalars.dx_sq > 0.0);
        // x_dot_dx from β=0 is zero.
        assert_eq!(round.scalars.x_dot_dx, 0.0);
        assert!(round.breakdown.host > 0.0);
        assert_eq!(round.breakdown.pcie, 0.0, "CPU worker moves nothing over PCIe");
    }

    #[test]
    fn apply_gamma_scales_pending_update() {
        let full = full();
        let mut w = make_worker(&full, 1, 2);
        let zeros = vec![0.0f32; full.n()];
        w.run_round(&zeros);
        let pending = w.pending_delta.clone();
        w.apply_gamma(0.5);
        for (w_i, p_i) in w.weights().iter().zip(&pending) {
            assert!((w_i - 0.5 * p_i).abs() < 1e-6);
        }
        // Engine resynced to the scaled weights.
        assert_eq!(w.solver.weights(), w.weights);
    }

    #[test]
    fn worker_ids_and_coords() {
        let full = full();
        let w = make_worker(&full, 1, 4);
        assert_eq!(w.id(), 1);
        assert_eq!(w.coords(), 10);
        assert_eq!(w.global_ids().len(), 10);
        assert!(w.solver_name().contains("SCD"));
    }
}

//! Partitioning the training data across K workers.
//!
//! §IV-A: "The training data can either be distributed by sample (rows of
//! the matrix A) or by feature (columns of the matrix A)" — by feature for
//! the primal, by example for the dual. §IV-B closes by noting that with
//! structured data "one can partition the coordinates in an intelligent way
//! to achieve a faster convergence" [22]; the strategy enum exposes the
//! knob and the partitioning ablation bench measures it.

use scd_core::{Form, RidgeProblem};
use scd_sparse::perm::Permutation;

/// How coordinates are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Worker k gets the contiguous block [k·C/K, (k+1)·C/K).
    Contiguous,
    /// Coordinate c goes to worker c mod K.
    RoundRobin,
    /// Uniformly random assignment from the given seed (the paper's
    /// "randomly distribute the rows ... across the 4 workers").
    Random(u64),
}

/// Assign `total` coordinates to `workers` parts.
///
/// ```
/// use scd_distributed::{partition_coords, PartitionStrategy};
/// let parts = partition_coords(10, 3, PartitionStrategy::RoundRobin);
/// assert_eq!(parts[0], vec![0, 3, 6, 9]);
/// let total: usize = parts.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// ```
///
/// Every part is non-empty when `total ≥ workers`; parts are disjoint and
/// jointly exhaustive, and within each part the global indices are listed
/// in increasing order (matching the column/row order of the extracted
/// submatrix).
///
/// # Panics
/// Panics if `workers` is zero or exceeds `total`.
pub fn partition_coords(
    total: usize,
    workers: usize,
    strategy: PartitionStrategy,
) -> Vec<Vec<usize>> {
    assert!(workers > 0, "need at least one worker");
    assert!(
        workers <= total,
        "cannot spread {total} coordinates over {workers} workers"
    );
    let mut parts = vec![Vec::with_capacity(total / workers + 1); workers];
    match strategy {
        PartitionStrategy::Contiguous => {
            for (k, part) in parts.iter_mut().enumerate() {
                let lo = k * total / workers;
                let hi = (k + 1) * total / workers;
                part.extend(lo..hi);
            }
        }
        PartitionStrategy::RoundRobin => {
            for c in 0..total {
                parts[c % workers].push(c);
            }
        }
        PartitionStrategy::Random(seed) => {
            let perm = Permutation::random(total, seed);
            for (slot, c) in perm.iter().enumerate() {
                parts[slot % workers].push(c);
            }
            for part in parts.iter_mut() {
                part.sort_unstable();
            }
        }
    }
    parts
}

/// A worker's share of the problem: the global coordinate ids it owns and
/// the extracted local [`RidgeProblem`].
#[derive(Debug, Clone)]
pub struct LocalPartition {
    /// Local coordinate index → global coordinate id (sorted ascending).
    pub global_ids: Vec<usize>,
    /// The worker's local problem. For a by-feature (primal) partition this
    /// is N × m_k with the full label vector; for a by-example (dual)
    /// partition it is n_k × M with the worker's labels and the
    /// regularization count pinned to the *global* N.
    pub problem: RidgeProblem,
}

/// Split a full problem into per-worker local problems for the given form.
pub fn partition_problem(
    full: &RidgeProblem,
    form: Form,
    workers: usize,
    strategy: PartitionStrategy,
) -> Vec<LocalPartition> {
    let parts = partition_coords(full.coords(form), workers, strategy);
    parts
        .into_iter()
        .map(|global_ids| {
            let problem = match form {
                Form::Primal => {
                    // Columns subset, all rows, full labels.
                    let csc = full.csc().select_cols(&global_ids);
                    RidgeProblem::new(csc.to_csr(), full.labels().to_vec(), full.lambda())
                        .expect("partition of a valid problem is valid")
                }
                Form::Dual => {
                    // Rows subset, all columns, labels subset; Nλ stays global.
                    let csr = full.csr().select_rows(&global_ids);
                    let labels: Vec<f32> =
                        global_ids.iter().map(|&r| full.labels()[r]).collect();
                    RidgeProblem::new(csr, labels, full.lambda())
                        .expect("partition of a valid problem is valid")
                        .with_regularization_examples(full.n())
                }
            };
            LocalPartition {
                global_ids,
                problem,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::webspam_like;

    fn assert_disjoint_exhaustive(parts: &[Vec<usize>], total: usize) {
        let mut seen = vec![false; total];
        for part in parts {
            assert!(!part.is_empty(), "no empty parts");
            for &c in part {
                assert!(!seen[c], "coordinate {c} assigned twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every coordinate assigned");
    }

    #[test]
    fn contiguous_partition() {
        let parts = partition_coords(10, 3, PartitionStrategy::Contiguous);
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[1], vec![3, 4, 5]);
        assert_eq!(parts[2], vec![6, 7, 8, 9]);
        assert_disjoint_exhaustive(&parts, 10);
    }

    #[test]
    fn round_robin_partition() {
        let parts = partition_coords(7, 2, PartitionStrategy::RoundRobin);
        assert_eq!(parts[0], vec![0, 2, 4, 6]);
        assert_eq!(parts[1], vec![1, 3, 5]);
        assert_disjoint_exhaustive(&parts, 7);
    }

    #[test]
    fn random_partition_valid_and_deterministic() {
        let a = partition_coords(100, 8, PartitionStrategy::Random(4));
        assert_disjoint_exhaustive(&a, 100);
        let b = partition_coords(100, 8, PartitionStrategy::Random(4));
        assert_eq!(a, b);
        let c = partition_coords(100, 8, PartitionStrategy::Random(5));
        assert_ne!(a, c);
        // Balanced within one coordinate.
        for part in &a {
            assert!((12..=13).contains(&part.len()));
        }
    }

    #[test]
    fn single_worker_gets_everything() {
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Random(1),
        ] {
            let parts = partition_coords(5, 1, strategy);
            assert_eq!(parts.len(), 1);
            assert_eq!(parts[0], vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn more_workers_than_coords_rejected() {
        let _ = partition_coords(2, 3, PartitionStrategy::Contiguous);
    }

    #[test]
    fn primal_partition_shapes() {
        let full = RidgeProblem::from_labelled(&webspam_like(50, 40, 6, 1), 1e-2).unwrap();
        let parts = partition_problem(&full, Form::Primal, 4, PartitionStrategy::Contiguous);
        assert_eq!(parts.len(), 4);
        let total_cols: usize = parts.iter().map(|p| p.problem.m()).sum();
        assert_eq!(total_cols, 40);
        for p in &parts {
            assert_eq!(p.problem.n(), 50, "primal partitions keep all rows");
            assert_eq!(p.problem.labels(), full.labels());
            assert_eq!(p.global_ids.len(), p.problem.m());
            // Nλ unchanged: same rows.
            assert_eq!(p.problem.n_lambda(), full.n_lambda());
        }
    }

    #[test]
    fn dual_partition_shapes_and_global_n() {
        let full = RidgeProblem::from_labelled(&webspam_like(60, 30, 6, 2), 1e-2).unwrap();
        let parts = partition_problem(&full, Form::Dual, 3, PartitionStrategy::RoundRobin);
        let total_rows: usize = parts.iter().map(|p| p.problem.n()).sum();
        assert_eq!(total_rows, 60);
        for p in &parts {
            assert_eq!(p.problem.m(), 30, "dual partitions keep all columns");
            assert_eq!(
                p.problem.n_lambda(),
                full.n_lambda(),
                "dual partitions must regularize against the global N"
            );
            for (local, &global) in p.global_ids.iter().enumerate() {
                assert_eq!(p.problem.labels()[local], full.labels()[global]);
            }
        }
    }

    #[test]
    fn partition_preserves_data_content() {
        let full = RidgeProblem::from_labelled(&webspam_like(40, 25, 5, 3), 1e-2).unwrap();
        let parts = partition_problem(&full, Form::Dual, 2, PartitionStrategy::Contiguous);
        for p in &parts {
            for (local, &global) in p.global_ids.iter().enumerate() {
                let local_row = p.problem.csr().row(local);
                let full_row = full.csr().row(global);
                assert_eq!(local_row.indices, full_row.indices);
                assert_eq!(local_row.values, full_row.values);
            }
        }
    }
}

//! End-to-end wire-format behaviour through the distributed driver:
//!
//! * `--wire raw` is bit-identical to the pre-codec driver (the codec
//!   boundary must be invisible when it ships dense f32);
//! * top-k with error feedback converges to within 1e-3 of the raw-f32
//!   suboptimality while moving several times fewer bytes;
//! * the round metrics record the raw/encoded byte split over both legs.

use scd_core::{Form, RidgeProblem, Solver};
use scd_datasets::webspam_like;
use scd_distributed::{DistributedConfig, DistributedScd, WireFormat};

fn full_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-3).unwrap()
}

fn run(full: &RidgeProblem, wire: WireFormat, epochs: usize) -> DistributedScd {
    let config = DistributedConfig::new(4, Form::Primal)
        .with_wire(wire)
        .with_seed(5);
    let mut dist = DistributedScd::new(full, &config).unwrap();
    for _ in 0..epochs {
        dist.epoch(full);
    }
    dist
}

#[test]
fn raw_wire_is_bit_identical_to_default() {
    let full = full_problem();
    let config = DistributedConfig::new(4, Form::Primal).with_seed(5);
    let mut implicit = DistributedScd::new(&full, &config).unwrap();
    let mut explicit = run(&full, WireFormat::Raw, 0);
    for _ in 0..25 {
        implicit.epoch(&full);
        explicit.epoch(&full);
    }
    assert_eq!(implicit.weights(), explicit.weights());
    assert_eq!(implicit.shared_vector(), explicit.shared_vector());
    let (raw, encoded) = explicit.wire_bytes_total();
    assert_eq!(raw, encoded, "raw wire compresses nothing");
    for m in explicit.round_metrics() {
        assert_eq!(m.wire, "raw");
        assert_eq!(m.compression_ratio, 1.0);
    }
}

#[test]
fn topk_ef_converges_within_tolerance_of_raw() {
    let full = full_problem();
    let epochs = 300;
    let raw = run(&full, WireFormat::Raw, epochs);
    // k = shared_len / 4: each round ships a quarter of the entries, the
    // error-feedback residual defers the rest.
    let k = full.shared_len(Form::Primal) / 4;
    let ef = run(&full, WireFormat::TopKEf(k), epochs);
    let (gap_raw, gap_ef) = (raw.duality_gap(&full), ef.duality_gap(&full));
    assert!(
        gap_ef <= gap_raw + 1e-3,
        "top-k EF gap {gap_ef} must be within 1e-3 of raw gap {gap_raw}"
    );
    let (bytes_raw, bytes_enc) = ef.wire_bytes_total();
    assert!(
        bytes_enc < bytes_raw,
        "sparsified traffic ({bytes_enc} B) must undercut dense ({bytes_raw} B)"
    );
}

#[test]
fn topk_ef_at_k64_compresses_at_least_4x() {
    // The headline claim the bench record carries: K=4 workers shipping
    // topk-ef:64 payloads move >= 4x fewer bytes than dense f32 on a
    // shared vector large enough for the sparse framing to win.
    let full = RidgeProblem::from_labelled(&webspam_like(2000, 600, 20, 80), 1e-3).unwrap();
    let config = DistributedConfig::new(4, Form::Primal)
        .with_wire(WireFormat::TopKEf(64))
        .with_seed(5);
    let mut dist = DistributedScd::new(&full, &config).unwrap();
    for _ in 0..10 {
        dist.epoch(&full);
    }
    let (raw, encoded) = dist.wire_bytes_total();
    let ratio = raw as f64 / encoded as f64;
    assert!(
        ratio >= 4.0,
        "topk-ef:64 at K=4 must compress >= 4x, got {ratio:.2}x ({raw} -> {encoded} B)"
    );
    for m in dist.round_metrics() {
        assert_eq!(m.wire, "topk-ef:64");
        assert!(m.bytes_encoded < m.bytes_raw);
        assert!((m.compression_ratio - ratio).abs() < 1e-9, "uniform rounds");
    }
}

#[test]
fn fp16_tracks_raw_closely() {
    let full = full_problem();
    let epochs = 150;
    let raw = run(&full, WireFormat::Raw, epochs);
    let fp16 = run(&full, WireFormat::Fp16, epochs);
    let (gap_raw, gap_fp16) = (raw.duality_gap(&full), fp16.duality_gap(&full));
    assert!(
        gap_fp16 <= gap_raw + 1e-3,
        "fp16 gap {gap_fp16} must stay within 1e-3 of raw gap {gap_raw}"
    );
    let (bytes_raw, bytes_enc) = fp16.wire_bytes_total();
    assert_eq!(bytes_enc * 2, bytes_raw, "fp16 halves every leg");
}

#[test]
fn plain_topk_trails_its_error_feedback_variant() {
    // Dropping mass without compensation must not *beat* carrying it
    // forward — the reason TopKEf exists.
    let full = full_problem();
    let epochs = 300;
    let k = full.shared_len(Form::Primal) / 8;
    let plain = run(&full, WireFormat::TopK(k), epochs);
    let ef = run(&full, WireFormat::TopKEf(k), epochs);
    let (gap_plain, gap_ef) = (plain.duality_gap(&full), ef.duality_gap(&full));
    assert!(gap_ef.is_finite() && gap_plain.is_finite());
    assert!(
        gap_ef <= gap_plain * 1.5 + 1e-9,
        "EF ({gap_ef}) should not trail plain top-k ({gap_plain}) materially"
    );
}

#[test]
fn byte_accounting_covers_both_legs() {
    let full = full_problem();
    let dist = run(&full, WireFormat::TopKEf(16), 3);
    let shared_len = full.shared_len(Form::Primal);
    for m in dist.round_metrics() {
        // 4 uploads + 4 broadcasts, dense f32 baseline on both legs.
        assert_eq!(m.bytes_raw, 4 * shared_len * 8);
        assert!(m.bytes_encoded > 0 && m.bytes_encoded < m.bytes_raw);
        // Synchronous rounds apply every surviving delta perfectly fresh.
        assert_eq!(m.staleness_hist, vec![4]);
    }
}

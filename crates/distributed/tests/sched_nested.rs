//! Shared-scheduler integration tests: distributed worker rounds that
//! themselves launch TPA-SCD kernel grids onto the *same* host scheduler
//! (the nesting case the work-stealing design exists for), plus the
//! bit-identity oracles re-run with an explicitly wide scheduler so real
//! concurrency is exercised even on a 1-core CI host.

use gpu_sim::{Gpu, GpuProfile};
use scd_core::{Form, RidgeProblem, Solver, TpaScd};
use scd_datasets::webspam_like;
use scd_distributed::{
    Aggregation, AsyncScd, DistributedConfig, DistributedScd, LocalSolverKind, RoundPool,
    RoundRuntime, Staleness,
};
use scd_sched::Scheduler;
use std::sync::{Arc, Mutex};

fn full_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-3).unwrap()
}

/// K worker rounds run as a task group, and every round launches GPU
/// kernel grids as nested groups on the same scheduler. Must complete
/// without deadlock (the submitting thread drains its own group inline)
/// and must never exceed the configured host-thread count.
#[test]
fn nested_tpa_launches_share_one_scheduler_without_deadlock() {
    let sched = Scheduler::new(4);
    sched.reset_peak();
    let k = 3;
    let problems: Vec<RidgeProblem> = (0..k)
        .map(|i| {
            RidgeProblem::from_labelled(&webspam_like(80, 60, 6, 10 + i as u64), 1e-3).unwrap()
        })
        .collect();
    let solvers: Vec<Mutex<TpaScd>> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            // host_threads = 2 forces the pooled (nested-group) launch
            // path rather than the deterministic inline one.
            let gpu = Gpu::new(GpuProfile::quadro_m4000())
                .with_scheduler(Arc::clone(&sched))
                .with_host_threads(2);
            Mutex::new(TpaScd::new(p, Form::Primal, Arc::new(gpu), i as u64 + 1).unwrap())
        })
        .collect();
    let initial: Vec<f64> = solvers
        .iter()
        .zip(&problems)
        .map(|(s, p)| s.lock().unwrap().duality_gap(p))
        .collect();
    let pool = RoundPool::on(Arc::clone(&sched), k);
    for _ in 0..5 {
        pool.run(k, &|i| {
            solvers[i].lock().unwrap().epoch(&problems[i]);
        });
    }
    let peak = sched.peak_parallelism();
    assert!(
        peak <= sched.threads(),
        "peak host parallelism {peak} exceeded the configured {} threads",
        sched.threads()
    );
    for ((solver, problem), start) in solvers.iter().zip(&problems).zip(&initial) {
        let gap = solver.lock().unwrap().duality_gap(problem);
        assert!(
            gap.is_finite() && gap < *start,
            "gap {gap} did not shrink from {start}"
        );
    }
}

/// The sequential-vs-concurrent oracle, re-run with an injected 4-thread
/// scheduler: rounds genuinely overlap, yet the worker-id-order reduce
/// keeps every γ, the shared vector, and the weights bit-identical.
#[test]
fn wide_scheduler_rounds_bit_identical_to_sequential() {
    let full = full_problem();
    for solver in [
        LocalSolverKind::Sequential,
        LocalSolverKind::Tpa {
            profile: GpuProfile::quadro_m4000(),
            lanes: 64,
            deterministic: true,
        },
    ] {
        let base = DistributedConfig::new(4, Form::Primal)
            .with_aggregation(Aggregation::Adaptive)
            .with_solver(solver)
            .with_seed(7);
        let mut sequential = DistributedScd::new(
            &full,
            &base.clone().with_runtime(RoundRuntime::Sequential),
        )
        .unwrap();
        let concurrent_cfg = base
            .with_scheduler(Scheduler::new(4))
            .with_runtime(RoundRuntime::Concurrent { threads: 4 });
        let mut concurrent = DistributedScd::new(&full, &concurrent_cfg).unwrap();
        assert_eq!(concurrent.round_threads(), 4);
        for _ in 0..6 {
            sequential.epoch(&full);
            concurrent.epoch(&full);
            assert_eq!(sequential.last_gamma(), concurrent.last_gamma());
        }
        assert_eq!(sequential.shared_vector(), concurrent.shared_vector());
        assert_eq!(sequential.weights(), concurrent.weights());
    }
}

/// τ = 0 bounded staleness replays the synchronous barrier exactly, and
/// that replay must not depend on how many host threads the scheduler
/// has: both drivers on a shared 4-thread scheduler, compared epoch by
/// epoch against each other.
#[test]
fn tau_zero_replay_unchanged_under_wide_shared_scheduler() {
    let full = full_problem();
    let config = DistributedConfig::new(3, Form::Primal)
        .with_aggregation(Aggregation::Averaging)
        .with_seed(23)
        .with_scheduler(Scheduler::new(4))
        .with_runtime(RoundRuntime::Concurrent { threads: 3 });
    let mut sync = DistributedScd::new(&full, &config).unwrap();
    let mut asynch = AsyncScd::new(&full, &config, Staleness::Bounded(0)).unwrap();
    for e in 0..8 {
        sync.epoch(&full);
        asynch.epoch(&full);
        assert_eq!(
            sync.shared_vector(),
            asynch.shared_vector(),
            "shared vector diverged at epoch {e}"
        );
    }
    assert_eq!(sync.weights(), asynch.weights());
}

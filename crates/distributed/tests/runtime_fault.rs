//! Integration tests for the concurrent round runtime and the fault layer:
//! bit-identity of concurrent vs sequential execution, determinism of
//! fault-injected runs, γ-rule agreement, and degraded-aggregation
//! convergence with rounds lost every epoch.

use scd_core::{Form, RidgeProblem, Solver};
use scd_datasets::webspam_like;
use scd_distributed::{
    Aggregation, DistributedConfig, DistributedScd, FaultPlan, RoundRuntime,
};
use scd_sparse::dense;

fn full_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-3).unwrap()
}

/// Run `epochs` rounds, returning the γ series.
fn gamma_series(dist: &mut DistributedScd, full: &RidgeProblem, epochs: usize) -> Vec<f64> {
    (0..epochs)
        .map(|_| {
            dist.epoch(full);
            dist.last_gamma()
        })
        .collect()
}

#[test]
fn concurrent_rounds_bit_identical_to_sequential() {
    let full = full_problem();
    for aggregation in [Aggregation::Averaging, Aggregation::Adaptive] {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_aggregation(aggregation)
            .with_seed(7);
        let sequential_cfg = config.clone().with_runtime(RoundRuntime::Sequential);
        let concurrent_cfg = config.with_runtime(RoundRuntime::Concurrent { threads: 4 });
        let mut sequential = DistributedScd::new(&full, &sequential_cfg).unwrap();
        let mut concurrent = DistributedScd::new(&full, &concurrent_cfg).unwrap();
        assert_eq!(concurrent.round_threads(), 4);
        assert_eq!(sequential.round_threads(), 1);

        let gs = gamma_series(&mut sequential, &full, 10);
        let gc = gamma_series(&mut concurrent, &full, 10);
        // Bit-identical: f64 γ series, f32 shared vector and weights all
        // compare with exact equality.
        assert_eq!(gs, gc, "{} γ series must match", aggregation.label());
        assert_eq!(sequential.shared_vector(), concurrent.shared_vector());
        assert_eq!(sequential.weights(), concurrent.weights());
    }
}

#[test]
fn concurrent_dual_form_bit_identical_to_sequential() {
    let full = full_problem();
    let config = DistributedConfig::new(3, Form::Dual)
        .with_aggregation(Aggregation::Adaptive)
        .with_seed(19);
    let mut sequential = DistributedScd::new(
        &full,
        &config.clone().with_runtime(RoundRuntime::Sequential),
    )
    .unwrap();
    let mut concurrent = DistributedScd::new(
        &full,
        &config.with_runtime(RoundRuntime::Concurrent { threads: 3 }),
    )
    .unwrap();
    let gs = gamma_series(&mut sequential, &full, 10);
    let gc = gamma_series(&mut concurrent, &full, 10);
    assert_eq!(gs, gc);
    assert_eq!(sequential.shared_vector(), concurrent.shared_vector());
    assert_eq!(sequential.weights(), concurrent.weights());
}

#[test]
fn fault_injected_runs_are_deterministic_given_a_seed() {
    let full = full_problem();
    let plan = FaultPlan {
        drop_probability: 0.15,
        delay_probability: 0.25,
        delay_factor: 3.0,
        max_retries: 2,
        seed: 1234,
        ..FaultPlan::none()
    };
    let run = |runtime: RoundRuntime| {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_aggregation(Aggregation::Adaptive)
            .with_seed(7)
            .with_fault(plan)
            .with_runtime(runtime);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        let gammas = gamma_series(&mut dist, &full, 15);
        (gammas, dist.weights(), dist.round_metrics().to_vec())
    };
    let a = run(RoundRuntime::Concurrent { threads: 4 });
    let b = run(RoundRuntime::Concurrent { threads: 2 });
    let c = run(RoundRuntime::Sequential);
    // Same seed → same fault schedule, same trajectory, same telemetry —
    // regardless of how many host threads execute the rounds.
    assert_eq!(a, b);
    assert_eq!(a, c);
    // The plan actually injected something.
    let retries: usize = a.2.iter().map(|m| m.retries).sum();
    let drops: usize = a.2.iter().map(|m| m.dropped_workers.len()).sum();
    assert!(retries > 0, "plan should have caused retries");
    assert!(retries >= drops, "every drop was retried first");
}

#[test]
fn adaptive_and_line_search_gamma_agree_over_ten_epochs() {
    let full = full_problem();
    for form in [Form::Primal, Form::Dual] {
        let adaptive_cfg = DistributedConfig::new(4, form)
            .with_aggregation(Aggregation::Adaptive)
            .with_seed(15);
        let search_cfg = DistributedConfig::new(4, form)
            .with_aggregation(Aggregation::LineSearch)
            .with_seed(15);
        let mut adaptive = DistributedScd::new(&full, &adaptive_cfg).unwrap();
        let mut search = DistributedScd::new(&full, &search_cfg).unwrap();
        for e in 0..10 {
            adaptive.epoch(&full);
            search.epoch(&full);
            let (ga, gs) = (adaptive.last_gamma(), search.last_gamma());
            assert!(
                (ga - gs).abs() < 1e-3,
                "{} epoch {e}: closed form {ga} vs line search {gs}",
                form.label()
            );
        }
    }
}

#[test]
fn one_worker_dropped_per_round_still_converges() {
    let full = full_problem();
    let plan = FaultPlan {
        rotating_drop: true,
        max_retries: 1,
        ..FaultPlan::none()
    };
    let config = DistributedConfig::new(4, Form::Primal)
        .with_seed(3)
        .with_fault(plan);
    let mut dist = DistributedScd::new(&full, &config).unwrap();
    let gaps: Vec<f64> = (0..20)
        .map(|_| {
            dist.epoch(&full);
            dist.duality_gap(&full)
        })
        .collect();

    // Suboptimality decreases over the 20 epochs despite losing one
    // worker's round every epoch.
    assert!(
        gaps[19] < 0.2 * gaps[0],
        "gap must shrink: first {} last {}",
        gaps[0],
        gaps[19]
    );
    let decreasing = gaps.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(decreasing >= 15, "gap should fall in most rounds, fell in {decreasing}/19");

    // Telemetry: every round reports the drop, the retry, and γ rescaled
    // to the K′ = 3 survivors (averaging: 1/3, not 1/4).
    let metrics = dist.round_metrics();
    assert_eq!(metrics.len(), 20);
    for (e, m) in metrics.iter().enumerate() {
        assert_eq!(m.epoch, e);
        assert_eq!(m.dropped_workers, vec![e % 4]);
        assert_eq!(m.retries, 1, "the lost round is re-requested once");
        assert_eq!(m.survivors, 3);
        assert_eq!(m.gamma, 1.0 / 3.0);
        assert_eq!(m.worker_round_seconds.len(), 4);
        // Only the 3 surviving Δ-vectors were reduced, all at staleness 0,
        // and the byte accounting covers 3 uploads + 1 retry + 4 broadcasts.
        assert_eq!(m.staleness_hist, vec![3]);
        assert_eq!(m.bytes_raw, 4 * full.shared_len(Form::Primal) * (3 + 1 + 4));
        assert!(m.barrier_seconds > 0.0);
        let json = m.to_json();
        assert!(json.contains(&format!("\"dropped_workers\": [{}]", e % 4)));
        assert!(json.contains("\"retries\": 1"));
    }

    // The master's shared vector still tracks the assembled weights: the
    // invariant w = A·β survives discarded rounds.
    let w_true = full.csc().matvec(&dist.weights()).unwrap();
    let drift = dense::max_abs_diff(&dist.shared_vector(), &w_true);
    assert!(drift < 1e-3, "shared must track Aβ under faults, drift {drift}");
    assert!(dist.metrics_json().starts_with("[\n"));
}

#[test]
fn timeout_drops_a_straggler_that_exceeds_it() {
    let full = full_problem();
    // Probe a fault-free round to learn the nominal per-worker times.
    let probe_cfg = DistributedConfig::new(4, Form::Primal).with_seed(5);
    let mut probe = DistributedScd::new(&full, &probe_cfg).unwrap();
    probe.epoch(&full);
    let nominal = probe.round_metrics()[0]
        .worker_round_seconds
        .iter()
        .cloned()
        .fold(0.0, f64::max);

    // A 6× straggler on worker 2 blows through a 3×-nominal timeout; the
    // other workers stay inside it.
    let plan = FaultPlan {
        timeout_seconds: Some(3.0 * nominal),
        ..FaultPlan::none()
    };
    let config = DistributedConfig::new(4, Form::Primal)
        .with_seed(5)
        .with_worker_slowdowns(vec![1.0, 1.0, 6.0, 1.0])
        .with_fault(plan);
    let mut dist = DistributedScd::new(&full, &config).unwrap();
    dist.epoch(&full);
    let first_gap = dist.duality_gap(&full);
    for _ in 1..5 {
        dist.epoch(&full);
    }
    for m in dist.round_metrics() {
        assert_eq!(m.dropped_workers, vec![2], "the straggler misses the barrier");
        assert_eq!(m.survivors, 3);
        assert_eq!(m.retries, 0, "no retries configured");
        // The barrier now costs the timeout wait, not the straggler's
        // full 6× round.
        assert!(m.barrier_seconds <= 3.0 * nominal * 1.5);
    }
    // And the run still makes progress on the three live workers.
    let gap = dist.duality_gap(&full);
    assert!(gap < first_gap, "gap must fall: {first_gap} -> {gap}");
}

#[test]
fn seed_changes_partition_unless_strategy_is_explicit() {
    let full = full_problem();
    let weights_after = |config: &DistributedConfig| {
        let mut dist = DistributedScd::new(&full, config).unwrap();
        for _ in 0..3 {
            dist.epoch(&full);
        }
        dist.weights()
    };
    // Different seeds must see different partitions (and thus different
    // trajectories) under the default strategy…
    let a = weights_after(&DistributedConfig::new(4, Form::Primal).with_seed(1));
    let b = weights_after(&DistributedConfig::new(4, Form::Primal).with_seed(2));
    assert_ne!(a, b, "with_seed must re-roll the default partition");
    // …and identical explicit strategies must pin the partition while the
    // seed still drives the worker RNG.
    use scd_distributed::PartitionStrategy;
    let c = weights_after(
        &DistributedConfig::new(4, Form::Primal)
            .with_seed(1)
            .with_strategy(PartitionStrategy::Random(99)),
    );
    let d = weights_after(
        &DistributedConfig::new(4, Form::Primal)
            .with_seed(1)
            .with_strategy(PartitionStrategy::Random(99)),
    );
    assert_eq!(c, d);
}

#[test]
fn round_observer_sees_every_round_boundary() {
    use std::sync::{Arc, Mutex};
    let full = full_problem();
    let config = DistributedConfig::new(3, Form::Primal).with_seed(21);
    let mut dist = DistributedScd::new(&full, &config).unwrap();
    let log: Arc<Mutex<Vec<(u64, Vec<f32>)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    dist.set_round_observer(Box::new(move |round, weights| {
        sink.lock().unwrap().push((round, weights.to_vec()));
    }));
    for _ in 0..3 {
        dist.epoch(&full);
    }
    let log = log.lock().unwrap();
    assert_eq!(log.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![1, 2, 3]);
    // The published vector is exactly the driver's assembled model at
    // that boundary — the last one must match the current weights.
    assert_eq!(log[2].1, dist.weights());
    assert!(
        dense::max_abs_diff(&log[0].1, &log[2].1) > 0.0,
        "training progressed between publishes"
    );
}

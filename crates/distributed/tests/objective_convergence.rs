//! The Objective layer through the distributed drivers — the acceptance
//! surface of the pluggable-objective change:
//!
//! * all four objectives converge (strictly decreasing duality gap over
//!   ten epochs) under the synchronous driver with K=4 workers shipping
//!   topk-ef:64 deltas;
//! * τ=0 bounded-staleness rounds stay bit-identical to the synchronous
//!   barrier for the non-ridge objectives too;
//! * the parameter-server alternative trains the classification duals;
//! * ridge through an objective-aware config replays the legacy driver
//!   bit for bit.

use scd_core::{Form, ObjectiveKind, RidgeProblem, Solver};
use scd_datasets::dense_random;
use scd_distributed::{
    Aggregation, AsyncScd, DistributedConfig, DistributedScd, ParamServerConfig, ParamServerScd,
    Staleness, WireFormat,
};

/// Well-conditioned two-class problem: λ large enough that every
/// objective's gap shrinks strictly per epoch (the hinge duals bounce
/// under weak regularization).
fn full_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&dense_random(200, 40, 7), 5e-2).unwrap()
}

fn config_for(kind: ObjectiveKind) -> DistributedConfig {
    DistributedConfig::new(4, kind.default_form())
        .with_objective(kind)
        .with_wire(WireFormat::TopKEf(64))
        .with_seed(5)
}

#[test]
fn every_objective_converges_distributed_k4_topk_ef() {
    let full = full_problem();
    for kind in ObjectiveKind::ALL {
        let mut dist = DistributedScd::new(&full, &config_for(kind)).unwrap();
        let mut gaps = vec![dist.duality_gap(&full)];
        for _ in 0..10 {
            dist.epoch(&full);
            gaps.push(dist.duality_gap(&full));
        }
        assert!(
            gaps[0].is_finite() && gaps[0] > 0.0,
            "{kind}: bad initial gap {}",
            gaps[0]
        );
        for w in gaps.windows(2) {
            assert!(w[1] >= 0.0, "{kind}: negative gap {}", w[1]);
            assert!(
                w[1] < w[0] || w[1] <= 1e-10,
                "{kind}: gap stalled above the floor: {} -> {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn adaptive_gamma_stays_safe_for_the_margin_duals() {
    // Adaptive aggregation on svm/logistic routes through the value-oracle
    // line search (Eq. 7 is ridge-only); whatever it returns must be a
    // positive finite step and the run must still make progress.
    let full = full_problem();
    for kind in [ObjectiveKind::Svm, ObjectiveKind::Logistic] {
        let config = config_for(kind).with_aggregation(Aggregation::Adaptive);
        let mut dist = DistributedScd::new(&full, &config).unwrap();
        let initial = dist.duality_gap(&full);
        for _ in 0..10 {
            dist.epoch(&full);
            let gamma = dist.last_gamma();
            assert!(
                gamma.is_finite() && gamma > 0.0 && gamma <= 1.0,
                "{kind}: adaptive γ = {gamma}"
            );
        }
        let last = dist.duality_gap(&full);
        assert!(last < 0.5 * initial, "{kind}: gap {initial} -> {last}");
    }
}

#[test]
fn tau0_async_rounds_are_bit_identical_for_svm() {
    let full = full_problem();
    let config = config_for(ObjectiveKind::Svm);
    let mut sync = DistributedScd::new(&full, &config).unwrap();
    let mut asynch = AsyncScd::new(&full, &config, Staleness::Bounded(0)).unwrap();
    for e in 0..10 {
        sync.epoch(&full);
        asynch.epoch(&full);
        assert_eq!(
            sync.last_gamma(),
            asynch.last_gamma(),
            "gamma diverged at epoch {e}"
        );
        assert_eq!(
            sync.shared_vector(),
            asynch.shared_vector(),
            "shared vector diverged at epoch {e}"
        );
    }
    assert_eq!(sync.weights(), asynch.weights());
}

#[test]
fn ridge_objective_config_replays_the_legacy_driver() {
    // A config that names ridge explicitly must be bit-identical to one
    // that never mentions objectives at all.
    let full = full_problem();
    for form in [Form::Primal, Form::Dual] {
        let legacy = DistributedConfig::new(4, form).with_seed(5);
        let tagged = DistributedConfig::new(4, form)
            .with_objective(ObjectiveKind::Ridge)
            .with_seed(5);
        let mut a = DistributedScd::new(&full, &legacy).unwrap();
        let mut b = DistributedScd::new(&full, &tagged).unwrap();
        for _ in 0..10 {
            a.epoch(&full);
            b.epoch(&full);
        }
        assert_eq!(a.weights(), b.weights(), "{form:?}");
        assert_eq!(a.shared_vector(), b.shared_vector(), "{form:?}");
    }
}

#[test]
fn param_server_trains_the_classification_duals() {
    let full = full_problem();
    for kind in [ObjectiveKind::Logistic, ObjectiveKind::Svm] {
        // Staleness 1: on a dense, highly-correlated problem the default
        // snapshot age (= worker count) makes the parameter server
        // diverge for *every* objective, ridge included — exactly the
        // hazard the paper's synchronous design argues against.
        let config = ParamServerConfig::new(4, Form::Dual)
            .with_objective(kind)
            .with_staleness(1);
        let mut ps = ParamServerScd::new(&full, &config);
        let initial = ps.duality_gap(&full);
        for _ in 0..10 {
            ps.epoch(&full);
        }
        let last = ps.duality_gap(&full);
        assert!(
            last.is_finite() && last >= 0.0 && last < 0.5 * initial,
            "{kind}: param-server gap {initial} -> {last}"
        );
    }
}

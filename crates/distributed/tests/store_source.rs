//! Store-backed clusters must be *bit-identical* to in-memory clusters:
//! same shards, same seed, same partitions → same weights, same gap, to
//! the last bit, for K=1 and the paper's K=4.

use scd_core::{Form, RidgeProblem, Solver};
use scd_datasets::{criteo_like, CriteoSpec};
use scd_distributed::{
    BuildError, DistributedConfig, DistributedScd, PartitionStrategy,
};
use scd_store::{write_criteo, ShardedDataset};
use std::path::PathBuf;

const ROWS: usize = 160;
const FIELDS: usize = 5;
const CARDINALITY: usize = 24;
const SEED: u64 = 2017;
const LAMBDA: f64 = 1e-2;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scd_dist_store_{name}_{}", std::process::id()))
}

fn write_shards(dir: &PathBuf) -> ShardedDataset {
    let spec = CriteoSpec::new(ROWS, FIELDS, CARDINALITY, SEED);
    write_criteo(dir, &spec, 48).unwrap(); // 4 chunks, last one short
    ShardedDataset::open(dir).unwrap()
}

fn in_memory_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&criteo_like(ROWS, FIELDS, CARDINALITY, SEED), LAMBDA).unwrap()
}

fn contiguous_config(workers: usize) -> DistributedConfig {
    DistributedConfig::new(workers, Form::Dual)
        .with_strategy(PartitionStrategy::Contiguous)
        .with_seed(7)
}

#[test]
fn store_problem_is_bit_identical_to_in_memory() {
    let dir = tmp("problem");
    let store = write_shards(&dir);
    let (csr, labels) = store.load_all().unwrap();
    let from_store = RidgeProblem::new(csr, labels, LAMBDA).unwrap();
    let from_mem = in_memory_problem();
    assert_eq!(from_store.n(), from_mem.n());
    assert_eq!(from_store.m(), from_mem.m());
    for r in 0..ROWS {
        let (a, b) = (from_store.csr().row(r), from_mem.csr().row(r));
        assert_eq!(a.indices, b.indices);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.values), bits(b.values));
        assert_eq!(
            from_store.labels()[r].to_bits(),
            from_mem.labels()[r].to_bits()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn k4_training_from_store_matches_in_memory_bit_for_bit() {
    let dir = tmp("k4");
    let store = write_shards(&dir);
    let full = in_memory_problem();
    for workers in [1, 4] {
        let config = contiguous_config(workers);
        let mut from_store = DistributedScd::from_store(&full, &store, &config).unwrap();
        let mut from_mem = DistributedScd::new(&full, &config).unwrap();
        for epoch in 0..5 {
            from_store.epoch(&full);
            from_mem.epoch(&full);
            let (ws, wm) = (from_store.weights(), from_mem.weights());
            assert_eq!(ws.len(), wm.len());
            for (i, (a, b)) in ws.iter().zip(&wm).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "K={workers} epoch {epoch} weight {i} diverged"
                );
            }
            let (gs, gm) = (from_store.duality_gap(&full), from_mem.duality_gap(&full));
            assert_eq!(gs.to_bits(), gm.to_bits(), "K={workers} epoch {epoch} gap");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_setup_charges_actual_chunk_bytes() {
    let dir = tmp("setup");
    let store = write_shards(&dir);
    let full = in_memory_problem();
    let config = contiguous_config(4);
    let dist = DistributedScd::from_store(&full, &store, &config).unwrap();
    let setup = dist.setup_cost();
    assert_eq!(setup.bytes_per_worker.len(), 4);
    // Each worker's bytes are the on-disk chunk files its row range maps.
    for (k, &bytes) in setup.bytes_per_worker.iter().enumerate() {
        let lo = k * ROWS / 4;
        let hi = (k + 1) * ROWS / 4;
        assert_eq!(bytes, store.stored_bytes_for_rows(lo..hi), "worker {k}");
        assert!(bytes > 0);
    }
    // All four workers together cover every chunk at least once; with
    // 48-row chunks and 40-row partitions, chunk 1 and 2 are each mapped
    // by two workers, so the distributed total exceeds the on-disk total.
    let on_disk: u64 = (0..store.num_shards())
        .map(|i| store.meta(i).file_bytes)
        .sum();
    assert!(setup.total_bytes() > on_disk);
    assert!(setup.network_seconds > 0.0);
    // Sequential workers move nothing over PCIe.
    assert_eq!(setup.pcie_seconds, 0.0);

    // The in-memory source estimates instead: same worker count, nonzero,
    // but not tied to chunk files.
    let mem = DistributedScd::new(&full, &config).unwrap();
    assert_eq!(mem.setup_cost().bytes_per_worker.len(), 4);
    assert!(mem.setup_cost().total_bytes() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn from_store_rejects_bad_configurations() {
    let dir = tmp("reject");
    let store = write_shards(&dir);
    let full = in_memory_problem();

    // Primal form: store partitions by example only.
    let primal = DistributedConfig::new(2, Form::Primal)
        .with_strategy(PartitionStrategy::Contiguous);
    assert!(matches!(
        DistributedScd::from_store(&full, &store, &primal),
        Err(BuildError::Config(_))
    ));

    // Non-contiguous strategy.
    let rr = DistributedConfig::new(2, Form::Dual).with_strategy(PartitionStrategy::RoundRobin);
    assert!(matches!(
        DistributedScd::from_store(&full, &store, &rr),
        Err(BuildError::Config(_))
    ));
    // The default (seed-derived random) strategy is rejected too.
    let default = DistributedConfig::new(2, Form::Dual);
    assert!(matches!(
        DistributedScd::from_store(&full, &store, &default),
        Err(BuildError::Config(_))
    ));

    // Shape mismatch: a problem with different dimensions.
    let other =
        RidgeProblem::from_labelled(&criteo_like(ROWS / 2, FIELDS, CARDINALITY, SEED), LAMBDA)
            .unwrap();
    let ok = contiguous_config(2);
    let Err(err) = DistributedScd::from_store(&other, &store, &ok) else {
        panic!("shape mismatch accepted");
    };
    assert!(matches!(err, BuildError::Config(_)));
    assert!(err.to_string().contains("does not match"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

//! The bounded-staleness event driver's contract with the synchronous
//! driver:
//!
//! * τ=0 is **bit-identical** to `DistributedScd` — same weights, same
//!   shared vector, same γ series — across forms, aggregations, worker
//!   counts, and wire formats (property-tested over random seeds);
//! * τ ∈ {1, ∞} still converges on the golden problems;
//! * τ>0 shortens the simulated wall-clock per epoch when the cluster
//!   has a straggler (the barrier's cost, removed);
//! * staleness histograms record what the bound permitted;
//! * the per-event trace is recorded on demand.

use proptest::prelude::*;
use scd_core::{Form, RidgeProblem, Solver};
use scd_datasets::webspam_like;
use scd_distributed::{
    Aggregation, AsyncScd, DistributedConfig, DistributedScd, FaultPlan, Staleness, WireFormat,
};

fn full_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-3).unwrap()
}

/// Better conditioned for the slower dual-form runs.
fn dual_problem() -> RidgeProblem {
    RidgeProblem::from_labelled(&webspam_like(240, 180, 10, 77), 1e-2).unwrap()
}

/// Run both drivers in lock-step and demand bit-identical trajectories.
fn assert_tau0_bit_identical(full: &RidgeProblem, config: &DistributedConfig, epochs: usize) {
    let mut sync = DistributedScd::new(full, config).unwrap();
    let mut asynch = AsyncScd::new(full, config, Staleness::Bounded(0)).unwrap();
    for e in 0..epochs {
        sync.epoch(full);
        asynch.epoch(full);
        assert_eq!(
            sync.last_gamma(),
            asynch.last_gamma(),
            "gamma diverged at epoch {e}"
        );
        assert_eq!(
            sync.shared_vector(),
            asynch.shared_vector(),
            "shared vector diverged at epoch {e}"
        );
    }
    assert_eq!(sync.weights(), asynch.weights());
}

#[test]
fn tau0_bit_identical_primal_averaging() {
    let full = full_problem();
    for k in [2, 4] {
        let config = DistributedConfig::new(k, Form::Primal).with_seed(5);
        assert_tau0_bit_identical(&full, &config, 10);
    }
}

#[test]
fn tau0_bit_identical_primal_adaptive() {
    let full = full_problem();
    let config = DistributedConfig::new(4, Form::Primal)
        .with_aggregation(Aggregation::Adaptive)
        .with_seed(11);
    assert_tau0_bit_identical(&full, &config, 10);
}

#[test]
fn tau0_bit_identical_dual_forms() {
    let full = dual_problem();
    for agg in [Aggregation::Averaging, Aggregation::Adaptive] {
        let config = DistributedConfig::new(3, Form::Dual)
            .with_aggregation(agg)
            .with_seed(7);
        assert_tau0_bit_identical(&full, &config, 8);
    }
}

#[test]
fn tau0_bit_identical_through_stateful_codec() {
    // Error-feedback top-k keeps per-worker residuals; both drivers must
    // advance them in the same order.
    let full = full_problem();
    let config = DistributedConfig::new(4, Form::Primal)
        .with_wire(WireFormat::TopKEf(16))
        .with_seed(5);
    assert_tau0_bit_identical(&full, &config, 10);
}

#[test]
fn tau0_bit_identical_under_rotating_drop() {
    // With max_retries = 0 the synchronous driver aggregates straight
    // around the lost worker — exactly what the async barrier does.
    let full = full_problem();
    let plan = FaultPlan {
        rotating_drop: true,
        ..FaultPlan::none()
    };
    let config = DistributedConfig::new(4, Form::Primal)
        .with_seed(3)
        .with_fault(plan);
    assert_tau0_bit_identical(&full, &config, 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tau0_bit_identical_over_random_seeds(seed in 0u64..10_000, k in 2usize..5) {
        let full = full_problem();
        let config = DistributedConfig::new(k, Form::Primal).with_seed(seed);
        let mut sync = DistributedScd::new(&full, &config).unwrap();
        let mut asynch = AsyncScd::new(&full, &config, Staleness::Bounded(0)).unwrap();
        for _ in 0..5 {
            sync.epoch(&full);
            asynch.epoch(&full);
        }
        prop_assert_eq!(sync.weights(), asynch.weights());
        prop_assert_eq!(sync.shared_vector(), asynch.shared_vector());
    }
}

#[test]
fn bounded_and_unbounded_staleness_converge() {
    let full = full_problem();
    for tau in [Staleness::Bounded(1), Staleness::Bounded(4), Staleness::Unbounded] {
        let config = DistributedConfig::new(4, Form::Primal).with_seed(9);
        let mut asynch = AsyncScd::new(&full, &config, tau).unwrap();
        for _ in 0..300 {
            asynch.epoch(&full);
        }
        let gap = asynch.duality_gap(&full);
        assert!(gap < 1e-3, "tau={tau} must converge, gap {gap}");
    }
}

#[test]
fn staleness_relaxation_shortens_epochs_under_a_straggler() {
    // The barrier charges every round at the straggler's pace; bounded
    // staleness lets the fast workers pipeline past it.
    let full = full_problem();
    let elapsed_for = |tau: Staleness| -> f64 {
        let config = DistributedConfig::new(4, Form::Primal)
            .with_worker_slowdowns(vec![1.0, 1.0, 1.0, 4.0])
            .with_seed(17);
        let mut asynch = AsyncScd::new(&full, &config, tau).unwrap();
        (0..12).map(|_| asynch.epoch(&full).breakdown.total()).sum()
    };
    let t0 = elapsed_for(Staleness::Bounded(0));
    let t1 = elapsed_for(Staleness::Bounded(1));
    let t4 = elapsed_for(Staleness::Bounded(4));
    let tinf = elapsed_for(Staleness::Unbounded);
    assert!(
        tinf < t0,
        "free-running ({tinf:.3e}s) must beat the barrier ({t0:.3e}s)"
    );
    assert!(t1 <= t0 * 1.001, "tau=1 ({t1:.3e}s) must not trail tau=0 ({t0:.3e}s)");
    assert!(t4 <= t1 * 1.001, "tau=4 ({t4:.3e}s) must not trail tau=1 ({t1:.3e}s)");
    assert!(tinf <= t4 * 1.001);
}

#[test]
fn staleness_histograms_respect_the_bound() {
    let full = full_problem();
    // τ=0: every epoch applies K deltas at staleness exactly 0.
    let config = DistributedConfig::new(4, Form::Primal).with_seed(21);
    let mut barrier = AsyncScd::new(&full, &config, Staleness::Bounded(0)).unwrap();
    for _ in 0..5 {
        barrier.epoch(&full);
    }
    for m in barrier.round_metrics() {
        assert_eq!(m.staleness_hist, vec![4]);
        assert_eq!(m.survivors, 4);
        assert_eq!(m.retries, 0);
    }

    // Unbounded with a straggler: fresh applies dominate but stale ones
    // appear; every applied delta lands in the histogram.
    let config = DistributedConfig::new(4, Form::Primal)
        .with_worker_slowdowns(vec![1.0, 1.0, 1.0, 4.0])
        .with_seed(21);
    let mut free = AsyncScd::new(&full, &config, Staleness::Unbounded).unwrap();
    let mut saw_stale = false;
    for _ in 0..12 {
        free.epoch(&full);
    }
    for m in free.round_metrics() {
        let applied: usize = m.staleness_hist.iter().sum();
        assert_eq!(applied, m.survivors, "histogram must cover every apply");
        if m.staleness_hist.len() > 1 {
            saw_stale = true;
        }
    }
    assert!(
        saw_stale,
        "a 4x straggler under unbounded staleness must produce stale applies"
    );
}

#[test]
fn trace_records_events_when_enabled() {
    let full = full_problem();
    let config = DistributedConfig::new(2, Form::Primal).with_seed(2);
    let mut silent = AsyncScd::new(&full, &config, Staleness::Bounded(0)).unwrap();
    silent.epoch(&full);
    assert!(silent.trace_lines().is_empty(), "tracing is off by default");

    let mut traced = AsyncScd::new(&full, &config, Staleness::Bounded(0)).unwrap();
    traced.set_trace(true);
    traced.epoch(&full);
    let lines = traced.trace_lines();
    assert!(!lines.is_empty());
    assert!(lines.iter().any(|l| l.contains("worker0")));
    assert!(lines.iter().any(|l| l.contains("master")));
    assert!(lines.iter().all(|l| l.starts_with("t=")));
}

#[test]
fn async_name_and_accessors() {
    let full = full_problem();
    let config = DistributedConfig::new(3, Form::Primal)
        .with_aggregation(Aggregation::Adaptive)
        .with_seed(4);
    let mut asynch = AsyncScd::new(&full, &config, Staleness::Unbounded).unwrap();
    assert_eq!(asynch.worker_count(), 3);
    assert_eq!(asynch.staleness(), Staleness::Unbounded);
    assert!(asynch.name().contains("tau=inf"));
    assert!(asynch.name().contains("K=3"));
    assert_eq!(Staleness::parse("inf").unwrap(), Staleness::Unbounded);
    assert_eq!(Staleness::parse("3").unwrap(), Staleness::Bounded(3));
    assert!(Staleness::parse("-1").is_err());
    asynch.epoch(&full);
    let (raw, encoded) = asynch.wire_bytes_total();
    assert!(raw > 0 && encoded > 0);
    assert_eq!(asynch.wire(), WireFormat::Raw);
    assert!(asynch.metrics_json().starts_with("[\n"));
}

//! Property tests for the event queue's determinism contract: a schedule
//! of `(time, seq)` keys has exactly one pop order — sorted by the total
//! `(time, seq)` order — no matter what order the events were inserted
//! in, including schedules dense with duplicate times.

use proptest::prelude::*;
use scd_events::{EventKey, EventQueue};

/// splitmix64 — the workspace's standard small deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates shuffle of indices `0..n`.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Schedules with deliberately clumpy times: a handful of distinct time
/// values spread over many events, so duplicate times are the common
/// case, not the corner case.
fn schedule_strategy() -> impl Strategy<Value = Vec<(f64, u64)>> {
    proptest::collection::vec((0u32..8, 0.0f64..10.0), 1..60).prop_map(|raw| {
        let buckets: Vec<f64> = (0..8).map(|b| b as f64 * 0.75).collect();
        raw.iter()
            .enumerate()
            .map(|(i, &(bucket, jitter))| {
                // Half the events share a bucket time exactly; the rest
                // get a jittered unique-ish time.
                let time = if i % 2 == 0 {
                    buckets[bucket as usize]
                } else {
                    jitter
                };
                (time, i as u64)
            })
            .collect()
    })
}

fn pop_all(queue: &mut EventQueue<usize>) -> Vec<(f64, u64, usize)> {
    std::iter::from_fn(|| queue.pop().map(|(k, p)| (k.time, k.seq, p))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pop_order_is_invariant_under_insertion_order(
        schedule in schedule_strategy(),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // Insert the same (time, seq) schedule in schedule order and in a
        // shuffled order; payload = original index.
        let mut in_order = EventQueue::new();
        for (i, &(time, seq)) in schedule.iter().enumerate() {
            in_order.push_at(EventKey { time, seq }, i);
        }
        let mut shuffled = EventQueue::new();
        for &i in &shuffled_indices(schedule.len(), shuffle_seed) {
            let (time, seq) = schedule[i];
            shuffled.push_at(EventKey { time, seq }, i);
        }
        let a = pop_all(&mut in_order);
        let b = pop_all(&mut shuffled);
        prop_assert_eq!(&a, &b);

        // And that one order is the (time, seq) sort of the schedule.
        let mut expected: Vec<(f64, u64, usize)> = schedule
            .iter()
            .enumerate()
            .map(|(i, &(t, s))| (t, s, i))
            .collect();
        expected.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        prop_assert_eq!(a, expected);
    }

    #[test]
    fn auto_assigned_seqs_preserve_insertion_order_at_equal_times(
        times in proptest::collection::vec(0u32..4, 1..40),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // With auto-assigned seqs, events pushed later at the same time
        // pop later — and the popped seq sequence records exactly the
        // insertion order, so replaying the popped keys with push_at
        // reproduces the run.
        let times: Vec<f64> = times.iter().map(|&t| t as f64).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let first = pop_all(&mut q);

        // Replay: same keys, inserted shuffled.
        let mut replay = EventQueue::new();
        for &i in &shuffled_indices(first.len(), shuffle_seed) {
            let (time, seq, payload) = first[i];
            replay.push_at(EventKey { time, seq }, payload);
        }
        let second = pop_all(&mut replay);
        prop_assert_eq!(first.clone(), second);

        // Within one time value, payloads (insertion indices) ascend.
        for w in first.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].2 < w[1].2, "ties must pop in insertion order");
            }
        }
    }
}

//! The simulation engine: a virtual clock driving an [`EventQueue`],
//! with optional per-event tracing attributed to actors.

use crate::queue::{EventKey, EventQueue};

/// A participant in the simulation (worker k, the master, a link…).
/// Plain index newtype — the engine attaches no behaviour to actors, it
/// only labels trace entries with them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ActorId(pub usize);

impl ActorId {
    /// Conventional id for the master/server actor.
    pub const MASTER: ActorId = ActorId(usize::MAX);

    /// Display label: `master` or `worker<k>`.
    pub fn label(self) -> String {
        if self == ActorId::MASTER {
            "master".to_string()
        } else {
            format!("worker{}", self.0)
        }
    }
}

/// One line of the per-event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Virtual time the event was recorded at.
    pub time: f64,
    /// Monotone record counter (the order entries were written).
    pub seq: u64,
    /// Who the event happened at.
    pub actor: ActorId,
    /// Free-form description.
    pub label: String,
}

impl TraceEntry {
    /// One-line rendering: `t=1.25e-3 seq=7 worker2 push applied`.
    pub fn render(&self) -> String {
        format!(
            "t={:.6e} seq={} {} {}",
            self.time,
            self.seq,
            self.actor.label(),
            self.label
        )
    }
}

/// A deterministic discrete-event engine over payloads of type `E`.
///
/// The clock only moves forward, and only by popping events: `next()`
/// advances `now` to the popped event's time. Scheduling into the past is
/// a bug and panics.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: f64,
    trace: Option<Vec<TraceEntry>>,
    trace_seq: u64,
}

impl<E> Engine<E> {
    /// A fresh engine at virtual time 0 with tracing off.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: 0.0,
            trace: None,
            trace_seq: 0,
        }
    }

    /// Enable (or disable) per-event trace recording.
    pub fn set_trace(&mut self, enabled: bool) {
        if enabled {
            self.trace.get_or_insert_with(Vec::new);
        } else {
            self.trace = None;
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute virtual time `time` (≥ `now`).
    pub fn schedule_at(&mut self, time: f64, event: E) -> EventKey {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time,
            self.now
        );
        self.queue.push(time, event)
    }

    /// Schedule `event` `delay` seconds from now (`delay` ≥ 0).
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventKey {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.queue.push(self.now + delay, event)
    }

    /// Pop the earliest event and advance the clock to its time.
    pub fn step(&mut self) -> Option<(EventKey, E)> {
        let (key, event) = self.queue.pop()?;
        self.now = key.time;
        Some((key, event))
    }

    /// Number of events still scheduled.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Append a trace entry at the current virtual time (no-op when
    /// tracing is off).
    pub fn record(&mut self, actor: ActorId, label: impl Into<String>) {
        let seq = self.trace_seq;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEntry {
                time: self.now,
                seq,
                actor,
                label: label.into(),
            });
            self.trace_seq += 1;
        }
    }

    /// The recorded trace (empty when tracing is off).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_on_pop_only() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(2.0, "b");
        e.schedule_in(1.0, "a");
        assert_eq!(e.now(), 0.0);
        assert_eq!(e.step().unwrap().1, "a");
        assert_eq!(e.now(), 1.0);
        assert_eq!(e.step().unwrap().1, "b");
        assert_eq!(e.now(), 2.0);
        assert!(e.step().is_none());
        assert_eq!(e.now(), 2.0, "draining leaves the clock put");
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_at(5.0, ());
        e.step();
        e.schedule_at(1.0, ());
    }

    #[test]
    fn trace_records_at_virtual_time() {
        let mut e: Engine<()> = Engine::new();
        e.record(ActorId(0), "ignored while tracing is off");
        e.set_trace(true);
        e.schedule_at(1.5, ());
        e.step();
        e.record(ActorId(3), "compute done");
        e.record(ActorId::MASTER, "apply");
        let t = e.trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].time, 1.5);
        assert_eq!(t[0].actor, ActorId(3));
        assert!(t[0].render().contains("worker3 compute done"));
        assert!(t[1].render().contains("master apply"));
        assert!(t[1].seq > t[0].seq);
    }
}

//! The event queue: a binary heap whose entries are totally ordered by
//! `(time, seq)`.
//!
//! Virtual times are `f64` seconds compared with [`f64::total_cmp`], and
//! `seq` is a monotone insertion counter, so two events can never be
//! "equal" — every schedule has exactly one pop order, regardless of the
//! order its events were inserted in. That total order is what makes the
//! simulation deterministic: when two messages land at the same instant
//! (symmetric workers finishing identical rounds), the one *scheduled*
//! first is delivered first, not the one an unstable heap happens to
//! surface.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// The total-order key of one scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct EventKey {
    /// Virtual time in seconds (finite; `NaN`/`inf` are rejected at
    /// insertion).
    pub time: f64,
    /// Insertion sequence number — the deterministic tie-breaker.
    pub seq: u64,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One heap entry; ordered by key alone so payloads need no bounds.
struct Entry<T> {
    key: EventKey,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic priority queue of timed events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue whose first auto-assigned `seq` is 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `time`, auto-assigning the next sequence
    /// number; returns the key under which it will pop.
    pub fn push(&mut self, time: f64, payload: T) -> EventKey {
        let key = EventKey {
            time,
            seq: self.next_seq,
        };
        self.push_at(key, payload);
        key
    }

    /// Schedule `payload` under an explicit key. The auto-assign counter
    /// jumps past `key.seq`, so mixing explicit and automatic insertion
    /// cannot produce duplicate keys.
    pub fn push_at(&mut self, key: EventKey, payload: T) {
        assert!(
            key.time.is_finite(),
            "event time must be finite, got {}",
            key.time
        );
        self.next_seq = self.next_seq.max(key.seq + 1);
        self.heap.push(Reverse(Entry { key, payload }));
    }

    /// Remove and return the earliest event: smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.payload))
    }

    /// The key the next [`Self::pop`] would return.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.push(1.5, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn explicit_keys_control_the_tie_break() {
        let mut q = EventQueue::new();
        q.push_at(EventKey { time: 1.0, seq: 9 }, "late");
        q.push_at(EventKey { time: 1.0, seq: 2 }, "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
        // The auto counter jumped past the explicit seqs.
        let key = q.push(1.0, "auto");
        assert!(key.seq >= 10);
    }

    #[test]
    fn negative_zero_and_zero_order_stably() {
        // total_cmp puts -0.0 before 0.0 — a fixed, documented order.
        let mut q = EventQueue::new();
        q.push(0.0, "positive");
        q.push(-0.0, "negative");
        assert_eq!(q.pop().unwrap().1, "negative");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(2.0, ());
        q.push(1.0, ());
        assert_eq!(q.len(), 2);
        let k = q.peek_key().unwrap();
        assert_eq!(k.time, 1.0);
        assert_eq!(k.seq, 1);
    }
}

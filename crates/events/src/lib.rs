//! # scd-events — deterministic discrete-event simulation
//!
//! The substrate for asynchronous distributed experiments: a virtual
//! clock, a binary-heap event queue with **total `(time, seq)`
//! ordering**, actor-labelled per-event traces, and channels whose
//! delivery times come from the calibrated [`scd_perf_model`] link
//! profiles.
//!
//! Design rules:
//!
//! * **Determinism is total ordering.** Times are compared with
//!   [`f64::total_cmp`] and ties are broken by a monotone insertion
//!   counter, so a schedule of `(time, seq)` pairs has exactly one pop
//!   order no matter what order it was inserted in (property-tested in
//!   `tests/proptests.rs`).
//! * **The clock moves only by popping events.** `Engine::next()`
//!   advances `now` to the popped event's time; scheduling into the past
//!   panics. Simulated time is therefore monotone by construction.
//! * **Timing comes from the perf model.** [`Channel`] charges
//!   `latency + bytes/bandwidth` per message; [`FifoLink`] additionally
//!   serializes messages that contend for one endpoint (a parameter
//!   server's ingress). Compute durations are supplied by the caller
//!   from `CpuProfile`/GPU cost models, fault delays from its fault
//!   plan — the engine only orders what it is given.
//!
//! Built on top of this (in `scd-distributed`): `AsyncScd`, the
//! bounded-staleness asynchronous driver whose τ=0 mode reproduces the
//! synchronous barrier bit-identically, and the event-timed parameter
//! server.

pub mod channel;
pub mod engine;
pub mod queue;

pub use channel::{Channel, FifoLink};
pub use engine::{ActorId, Engine, TraceEntry};
pub use queue::{EventKey, EventQueue};

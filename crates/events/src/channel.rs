//! Timed message channels: delivery times computed from a
//! [`LinkProfile`], so that what arrives *when* in the simulation follows
//! the same calibrated network model the synchronous driver charges.

use crate::engine::Engine;
use scd_perf_model::LinkProfile;

/// A contention-free point-to-point channel: every message takes
/// `latency + bytes/bandwidth` regardless of what else is in flight
/// (the link model the synchronous reduce/broadcast trees also assume).
#[derive(Debug, Clone)]
pub struct Channel {
    link: LinkProfile,
}

impl Channel {
    /// Wrap a link profile.
    pub fn new(link: LinkProfile) -> Self {
        Channel { link }
    }

    /// The underlying link.
    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    /// Time a message of `bytes` spends on the wire.
    pub fn delivery_seconds(&self, bytes: usize) -> f64 {
        self.link.transfer_seconds(bytes)
    }

    /// Send `event` now: it pops out of the engine one transfer later.
    pub fn send<E>(&self, engine: &mut Engine<E>, bytes: usize, event: E) {
        engine.schedule_in(self.link.transfer_seconds(bytes), event);
    }

    /// Send `event` after `extra_delay` seconds of sender-side work
    /// (encoding, aggregation arithmetic) followed by one transfer.
    pub fn send_after<E>(&self, engine: &mut Engine<E>, extra_delay: f64, bytes: usize, event: E) {
        engine.schedule_in(extra_delay + self.link.transfer_seconds(bytes), event);
    }
}

/// A serializing link: messages queue FIFO and occupy the link back to
/// back — the server ingress of a parameter server, where K workers'
/// pushes contend for one NIC. Deterministic: callers must offer
/// messages in ready-time order (pop them off an [`Engine`], which
/// yields exactly that order).
#[derive(Debug, Clone)]
pub struct FifoLink {
    link: LinkProfile,
    busy_until: f64,
}

impl FifoLink {
    /// An idle link.
    pub fn new(link: LinkProfile) -> Self {
        FifoLink {
            link,
            busy_until: 0.0,
        }
    }

    /// A message of `bytes` ready to transmit at `ready` finishes
    /// arriving at the returned time; the link is busy until then.
    pub fn delivery(&mut self, ready: f64, bytes: usize) -> f64 {
        let start = self.busy_until.max(ready);
        let done = start + self.link.transfer_seconds(bytes);
        self.busy_until = done;
        done
    }

    /// When the link next falls idle.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_link() -> LinkProfile {
        LinkProfile {
            name: "test",
            latency_seconds: 0.5,
            bandwidth_bytes_per_s: 10.0,
        }
    }

    #[test]
    fn channel_delivers_after_one_transfer() {
        let ch = Channel::new(unit_link());
        let mut e: Engine<&str> = Engine::new();
        // 0.5 latency + 10 bytes / 10 B/s = 1.5 s.
        ch.send(&mut e, 10, "payload");
        let (key, ev) = e.step().unwrap();
        assert_eq!(ev, "payload");
        assert!((key.time - 1.5).abs() < 1e-12);
        assert_eq!(ch.link().name, "test");
        assert!((ch.delivery_seconds(10) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn send_after_adds_sender_side_work() {
        let ch = Channel::new(unit_link());
        let mut e: Engine<()> = Engine::new();
        ch.send_after(&mut e, 2.0, 0, ());
        let (key, _) = e.step().unwrap();
        assert!((key.time - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_link_serializes_overlapping_messages() {
        let mut fifo = FifoLink::new(unit_link());
        // Two messages ready at t=0: the second waits for the first.
        let a = fifo.delivery(0.0, 10); // 0.0 .. 1.5
        let b = fifo.delivery(0.0, 10); // 1.5 .. 3.0
        assert!((a - 1.5).abs() < 1e-12);
        assert!((b - 3.0).abs() < 1e-12);
        // A message ready after the link drains starts immediately.
        let c = fifo.delivery(10.0, 10);
        assert!((c - 11.5).abs() < 1e-12);
        assert!((fifo.busy_until() - 11.5).abs() < 1e-12);
    }
}

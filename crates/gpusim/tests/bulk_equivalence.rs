//! The tentpole invariant of the bulk memory API: every bulk accessor is
//! *observably identical* to the per-element loop it replaces — same buffer
//! and shared-memory contents bit-for-bit, and the same [`BlockCost`]
//! counters — so kernels ported to the bulk path keep their simulated
//! clocks and convergence series unchanged.

use gpu_sim::{BlockCost, BlockCtx, DeviceBuffer, MemSemantics};
use proptest::prelude::*;
use proptest::collection::vec;

const LANES: usize = 8;

fn ctx() -> BlockCtx {
    BlockCtx::new(0, LANES, LANES)
}

fn bits(buf: &DeviceBuffer) -> Vec<u32> {
    buf.to_host().iter().map(|v| v.to_bits()).collect()
}

/// Strategy: buffer contents plus an index set into them.
fn data_and_indices() -> impl Strategy<Value = (Vec<f32>, Vec<u32>)> {
    (1usize..80).prop_flat_map(|len| {
        (
            vec(-10.0f32..10.0, len..len + 1),
            vec(0u32..len as u32, 0..60),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn read_slice_matches_elementwise((data, _) in data_and_indices(),
                                      frac in 0.0f64..1.0) {
        let buf = DeviceBuffer::from_host(&data);
        let start = (frac * data.len() as f64) as usize % data.len();
        let n = data.len() - start;

        let mut a = ctx();
        let want: Vec<f32> = (0..n).map(|k| a.read(&buf, start + k)).collect();

        let mut b = ctx();
        let mut got = vec![0.0f32; n];
        b.read_slice(&buf, start, &mut got);

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn write_slice_matches_elementwise((data, _) in data_and_indices()) {
        let a_buf = DeviceBuffer::zeroed(data.len());
        let b_buf = DeviceBuffer::zeroed(data.len());

        let mut a = ctx();
        for (i, &v) in data.iter().enumerate() {
            a.write(&a_buf, i, v);
        }
        let mut b = ctx();
        b.write_slice(&b_buf, 0, &data);

        prop_assert_eq!(bits(&a_buf), bits(&b_buf));
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn gather_matches_elementwise((data, idx) in data_and_indices()) {
        let buf = DeviceBuffer::from_host(&data);

        let mut a = ctx();
        let want: Vec<f32> = idx.iter().map(|&i| a.read(&buf, i as usize)).collect();

        let mut b = ctx();
        let mut got = vec![0.0f32; idx.len()];
        b.gather(&buf, &idx, &mut got);

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn scatter_add_matches_elementwise_both_semantics(
        (data, idx) in data_and_indices(),
        vals in vec(-2.0f32..2.0, 0..60),
        scale in -3.0f32..3.0,
    ) {
        let n = idx.len().min(vals.len());
        let (idx, vals) = (&idx[..n], &vals[..n]);
        for sem in [MemSemantics::Atomic, MemSemantics::Wild] {
            let a_buf = DeviceBuffer::from_host(&data);
            let b_buf = DeviceBuffer::from_host(&data);

            let mut a = ctx();
            for (&i, &v) in idx.iter().zip(vals) {
                a.add(sem, &a_buf, i as usize, v * scale);
            }
            let mut b = ctx();
            b.scatter_add(sem, &b_buf, idx, vals, scale);

            prop_assert_eq!(bits(&a_buf), bits(&b_buf));
            prop_assert_eq!(a.cost(), b.cost());
        }
    }

    #[test]
    fn scatter_atomic_add_is_the_atomic_spelling(
        (data, idx) in data_and_indices(),
        vals in vec(-2.0f32..2.0, 0..60),
    ) {
        let n = idx.len().min(vals.len());
        let a_buf = DeviceBuffer::from_host(&data);
        let b_buf = DeviceBuffer::from_host(&data);
        let mut a = ctx();
        a.scatter_add(MemSemantics::Atomic, &a_buf, &idx[..n], &vals[..n], 1.5);
        let mut b = ctx();
        b.scatter_atomic_add(&b_buf, &idx[..n], &vals[..n], 1.5);
        prop_assert_eq!(bits(&a_buf), bits(&b_buf));
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn lane_dot_phase_matches_elementwise((data, idx) in data_and_indices(),
                                          coeffs in vec(-2.0f32..2.0, 0..60)) {
        let n = idx.len().min(coeffs.len());
        let (idx, coeffs) = (&idx[..n], &coeffs[..n]);
        let buf = DeviceBuffer::from_host(&data);

        // Reference: the exact per-lane strided loop the TPA kernels used.
        let mut a = ctx();
        let mut partials = vec![0.0f32; LANES];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut dp = 0.0f32;
            let mut k = u;
            while k < n {
                dp += a.read(&buf, idx[k] as usize) * coeffs[k];
                k += LANES;
            }
            *p = dp;
        }
        a.shared()[..LANES].copy_from_slice(&partials);

        let mut b = ctx();
        b.lane_dot_phase(&buf, idx, |k, x| x * coeffs[k]);

        prop_assert_eq!(a.shared().to_vec(), b.shared().to_vec());
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn slot_phases_match_elementwise((data, idx) in data_and_indices(),
                                     present in vec(0u32..2, 0..40),
                                     delta in -2.0f32..2.0) {
        // A synthetic ELLPACK row: slot s holds (idx[s], value) or padding.
        let width = idx.len().min(present.len());
        let slot = |s: usize| -> Option<(usize, f32)> {
            (present[s] == 1).then(|| (idx[s] as usize, 0.5 + s as f32 * 0.25))
        };
        let buf_a = DeviceBuffer::from_host(&data);
        let buf_b = DeviceBuffer::from_host(&data);

        let mut a = ctx();
        let mut partials = vec![0.0f32; LANES];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut dp = 0.0f32;
            let mut s = u;
            while s < width {
                if let Some((j, v)) = slot(s) {
                    dp += a.read(&buf_a, j) * v;
                }
                s += LANES;
            }
            *p = dp;
        }
        a.shared()[..LANES].copy_from_slice(&partials);
        for s in 0..width {
            if let Some((j, v)) = slot(s) {
                a.add(MemSemantics::Atomic, &buf_a, j, v * delta);
            }
        }

        let mut b = ctx();
        b.lane_slot_dot_phase(&buf_b, width, slot);
        b.slot_scatter_add(MemSemantics::Atomic, &buf_b, width, slot, delta);

        prop_assert_eq!(a.shared().to_vec(), b.shared().to_vec());
        prop_assert_eq!(bits(&buf_a), bits(&buf_b));
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn strided_phases_match_elementwise(xv in vec(-4.0f32..4.0, 1..120),
                                        seed in 0u32..1000,
                                        blocks in 1usize..5) {
        let n = xv.len();
        let yv: Vec<f32> = xv.iter().enumerate()
            .map(|(i, &x)| x * 0.5 + (seed as f32 + i as f32) * 0.01)
            .collect();
        let stride = blocks * LANES;
        let base = (seed as usize % blocks) * LANES;

        // Dot phase.
        let xa = DeviceBuffer::from_host(&xv);
        let ya = DeviceBuffer::from_host(&yv);
        let mut a = ctx();
        let mut partials = vec![0.0f32; LANES];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            let mut i = base + u;
            while i < n {
                acc += a.read(&xa, i) * a.read(&ya, i);
                i += stride;
            }
            *p = acc;
        }
        a.shared()[..LANES].copy_from_slice(&partials);
        let mut b = ctx();
        b.strided_dot_phase(&xa, &ya, base, stride);
        prop_assert_eq!(a.shared().to_vec(), b.shared().to_vec());
        prop_assert_eq!(a.cost(), b.cost());

        // Axpy phase.
        let y_ref = DeviceBuffer::from_host(&yv);
        let y_bulk = DeviceBuffer::from_host(&yv);
        let mut a = ctx();
        for u in 0..LANES {
            let mut i = base + u;
            while i < n {
                let xi = a.read(&xa, i);
                let yi = a.read(&y_ref, i);
                a.write(&y_ref, i, yi + 2.5 * xi);
                i += stride;
            }
        }
        let mut b = ctx();
        b.strided_axpy_phase(2.5, &xa, &y_bulk, base, stride);
        prop_assert_eq!(bits(&y_ref), bits(&y_bulk));
        prop_assert_eq!(a.cost(), b.cost());
    }
}

#[test]
fn bulk_cost_totals_are_exact() {
    // Spot-check the documented charge schedule on a fixed case.
    let buf = DeviceBuffer::from_host(&[1.0; 16]);
    let mut c = BlockCtx::new(0, LANES, LANES);
    let mut out = [0.0f32; 10];
    c.read_slice(&buf, 2, &mut out); // 40 B, 10 ops
    c.write_slice(&buf, 0, &out[..4]); // 16 B, 4 ops
    c.gather(&buf, &[3, 3, 5], &mut out[..3]); // 12 B, 3 ops
    c.scatter_atomic_add(&buf, &[1, 2], &[1.0, 1.0], 1.0); // 2 atomics, 2 ops
    c.scatter_add(MemSemantics::Wild, &buf, &[0], &[1.0], 1.0); // 8 B, 1 op
    assert_eq!(
        c.cost(),
        BlockCost {
            bytes: 40 + 16 + 12 + 8,
            atomics: 2,
            lane_ops: 10 + 4 + 3 + 2 + 1,
            barriers: 0,
        }
    );
}

//! Bit-identity of deterministic launches under the shared scheduler:
//! `with_host_threads(1)` results must be unchanged no matter how wide a
//! scheduler the device is attached to — the regression oracle for the
//! scd-sched port (simulated clocks come from counted work, and the
//! deterministic path runs inline on the caller).

use gpu_sim::{BlockCtx, DeviceBuffer, Gpu, GpuProfile, Kernel};
use proptest::collection::vec;
use proptest::prelude::*;
use scd_sched::Scheduler;

/// An order-sensitive kernel: every block folds into one accumulator slot
/// with a non-associative update, so only a truly sequential launch
/// reproduces the series bit-for-bit; a second buffer takes disjoint
/// per-block writes to cover the data-parallel shape too.
struct FoldAndScale {
    acc: DeviceBuffer,
    out: DeviceBuffer,
    data: Vec<f32>,
}

impl Kernel for FoldAndScale {
    fn block(&self, ctx: &mut BlockCtx) {
        let b = ctx.block_id();
        let x = self.data[b % self.data.len()];
        let prev = ctx.read(&self.acc, 0);
        ctx.write(&self.acc, 0, prev * 1.0009f32 + x);
        ctx.write(&self.out, b, x * 0.5f32 + b as f32);
        ctx.charge_lane_ops(ctx.lanes() as u64);
    }
}

fn run_once(width: usize, data: &[f32], blocks: usize) -> (Vec<u32>, Vec<u32>, u64) {
    let gpu = Gpu::new(GpuProfile::quadro_m4000())
        .with_scheduler(Scheduler::new(width))
        .with_host_threads(1);
    let kernel = FoldAndScale {
        acc: DeviceBuffer::zeroed(1),
        out: DeviceBuffer::zeroed(blocks),
        data: data.to_vec(),
    };
    let stats = gpu.launch(&kernel, blocks, 8);
    let acc = kernel.acc.to_host().iter().map(|v| v.to_bits()).collect();
    let out = kernel.out.to_host().iter().map(|v| v.to_bits()).collect();
    (acc, out, stats.simulated_seconds.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn deterministic_results_independent_of_scheduler_width(
        data in vec(-100.0f32..100.0, 1..40),
        blocks in 1usize..96,
        width in 2usize..5,
    ) {
        let reference = run_once(1, &data, blocks);
        let wide = run_once(width, &data, blocks);
        prop_assert_eq!(reference, wide);
    }
}

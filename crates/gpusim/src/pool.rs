//! The persistent executor pool: host threads that play the role of the
//! device's SM array across kernel launches.
//!
//! The original executor spawned a fresh `crossbeam::scope` of worker
//! threads for **every** kernel launch and recorded every block's cost through a
//! shared `Mutex<Vec<BlockCost>>`. TPA-SCD launches one kernel per epoch
//! and thousands of epochs per experiment, so thread spawn/join and lock
//! traffic dominated real wall-clock. This module replaces that with:
//!
//! * a pool of workers owned by [`crate::Gpu`], created once on the first
//!   multi-threaded launch and reused for every subsequent one — a launch
//!   is "publish job, wait on a completion latch", no thread creation;
//! * one reusable [`BlockCtx`] scratchpad arena per worker per job (the
//!   shared-memory buffer is zeroed between blocks, not reallocated);
//! * lock-free cost recording: each claimed block index is owned by exactly
//!   one worker, which writes its [`BlockCost`] into a disjoint slot of a
//!   preallocated array — no mutex on the hot path.
//!
//! Safety model: `run` erases the kernel closure's lifetime to publish it
//! to the long-lived workers, exactly like a scoped-thread implementation.
//! Soundness holds because `run` does not return until every worker has
//! checked in for the job (the completion latch), after which no worker
//! touches the job again; the job slot itself holds the erased reference
//! only until the launch completes.

use crate::kernel::{BlockCost, BlockCtx};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The kernel body as the pool sees it: run block `b` in `ctx` (the worker
/// has already re-armed `ctx` for `b`).
type BlockFn<'a> = &'a (dyn Fn(&mut BlockCtx) + Sync);

/// One launch in flight: grid geometry, the erased kernel body, the block
/// cursor, the per-block cost slots, and the completion latch.
struct Job {
    /// Kernel body with its borrow lifetime erased; valid until the launch
    /// that published it returns.
    run: BlockFn<'static>,
    blocks: usize,
    lanes: usize,
    shared_len: usize,
    /// Next unclaimed block (dynamic dispatch, same policy as hardware
    /// grid schedulers and the old per-launch executor).
    next: AtomicUsize,
    /// Per-block cost slots; slot `b` is written only by the worker that
    /// claimed `b`, read by the launcher after the latch closes.
    costs: Box<[CostSlot]>,
    /// Set when a kernel block panicked; remaining blocks are abandoned.
    panicked: AtomicBool,
    /// Completion latch: workers that have finished this job.
    done: Mutex<usize>,
    all_done: Condvar,
}

/// A `BlockCost` cell written by exactly one worker (the one that claimed
/// its block index) and read only after the completion latch closes.
struct CostSlot(UnsafeCell<BlockCost>);

// SAFETY: disjoint-index writes (each block index is claimed by exactly one
// worker via fetch_add) plus latch-ordered reads — see module docs.
unsafe impl Sync for CostSlot {}

/// What the pool broadcasts to its workers.
enum Command {
    /// No job published yet (startup state).
    Idle,
    /// Run this job; the `u64` is the job generation.
    Run(u64, Arc<Job>),
    /// Pool is shutting down; workers exit.
    Shutdown,
}

struct PoolShared {
    command: Mutex<Command>,
    wake: Condvar,
}

/// A persistent worker pool executing kernel grids.
pub(crate) struct ExecutorPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes concurrent `run` calls on one device (a real GPU also
    /// serializes kernel grids on a stream).
    launch_lock: Mutex<()>,
}

impl ExecutorPool {
    /// Spin up `workers` host threads (the simulated SM array).
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers >= 1, "pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            command: Mutex::new(Command::Idle),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gpu-sim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning gpu-sim worker")
            })
            .collect();
        ExecutorPool {
            shared,
            workers: handles,
            launch_lock: Mutex::new(()),
        }
    }

    /// Number of worker threads.
    #[cfg(test)]
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Execute a grid of `blocks` blocks on the pool and return the
    /// per-block costs in block order.
    ///
    /// # Panics
    /// Panics if any kernel block panicked.
    pub(crate) fn run(
        &self,
        run_block: &(dyn Fn(&mut BlockCtx) + Sync),
        blocks: usize,
        lanes: usize,
        shared_len: usize,
    ) -> Vec<BlockCost> {
        // Recover from poisoning: a failed launch propagates its panic while
        // holding this lock, but it guards no data — only launch ordering.
        let _serial = self
            .launch_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: the erased reference outlives this call only inside the
        // job slot, and this call does not return until every worker has
        // checked in and can no longer touch it (see module docs).
        let run_static: BlockFn<'static> = unsafe { std::mem::transmute(run_block) };
        let job = Arc::new(Job {
            run: run_static,
            blocks,
            lanes,
            shared_len,
            next: AtomicUsize::new(0),
            costs: (0..blocks)
                .map(|_| CostSlot(UnsafeCell::new(BlockCost::default())))
                .collect(),
            panicked: AtomicBool::new(false),
            done: Mutex::new(0),
            all_done: Condvar::new(),
        });

        {
            let mut cmd = self.shared.command.lock().unwrap();
            let generation = match &*cmd {
                Command::Run(g, _) => g + 1,
                _ => 1,
            };
            *cmd = Command::Run(generation, Arc::clone(&job));
            self.shared.wake.notify_all();
        }

        let workers = self.workers.len();
        let mut done = job.done.lock().unwrap();
        while *done < workers {
            done = job.all_done.wait(done).unwrap();
        }
        drop(done);

        if job.panicked.load(Ordering::Relaxed) {
            panic!("kernel block panicked");
        }
        job.costs
            .iter()
            // SAFETY: all workers have checked in; no concurrent access.
            .map(|slot| unsafe { *slot.0.get() })
            .collect()
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut cmd = self.shared.command.lock().unwrap();
            *cmd = Command::Shutdown;
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen: u64 = 0;
    loop {
        let job = {
            let mut cmd = shared.command.lock().unwrap();
            loop {
                match &*cmd {
                    Command::Shutdown => return,
                    Command::Run(generation, job) if *generation != seen => {
                        seen = *generation;
                        break Arc::clone(job);
                    }
                    _ => cmd = shared.wake.wait(cmd).unwrap(),
                }
            }
        };

        // One scratchpad arena per worker per job, re-armed (not
        // reallocated) for every block this worker claims.
        let mut ctx = BlockCtx::new(0, job.lanes, job.shared_len);
        loop {
            let b = job.next.fetch_add(1, Ordering::Relaxed);
            if b >= job.blocks || job.panicked.load(Ordering::Relaxed) {
                break;
            }
            ctx.reinit(b);
            let outcome = catch_unwind(AssertUnwindSafe(|| (job.run)(&mut ctx)));
            match outcome {
                // SAFETY: this worker claimed `b`, so slot `b` is its
                // exclusive property (see CostSlot).
                Ok(()) => unsafe { *job.costs[b].0.get() = ctx.cost() },
                Err(_) => job.panicked.store(true, Ordering::Relaxed),
            }
        }

        let mut done = job.done.lock().unwrap();
        *done += 1;
        job.all_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_block_once_and_is_reusable() {
        let pool = ExecutorPool::new(4);
        for round in 0..5 {
            let counter = AtomicUsize::new(0);
            let run = |ctx: &mut BlockCtx| {
                counter.fetch_add(1, Ordering::Relaxed);
                ctx.charge_lane_ops(1 + round as u64);
            };
            let costs = pool.run(&run, 100, 32, 0);
            assert_eq!(counter.load(Ordering::Relaxed), 100);
            assert_eq!(costs.len(), 100);
            assert!(costs.iter().all(|c| c.lane_ops == 1 + round as u64));
        }
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn pool_reports_costs_in_block_order() {
        let pool = ExecutorPool::new(3);
        let run = |ctx: &mut BlockCtx| {
            let id = ctx.block_id() as u64;
            ctx.charge_read_bytes(id * 8);
        };
        let costs = pool.run(&run, 64, 32, 0);
        for (b, c) in costs.iter().enumerate() {
            assert_eq!(c.bytes, b as u64 * 8, "block {b}");
        }
    }

    #[test]
    fn panicking_block_fails_the_launch() {
        let pool = ExecutorPool::new(2);
        let run = |ctx: &mut BlockCtx| {
            if ctx.block_id() == 7 {
                panic!("boom");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| pool.run(&run, 16, 32, 0)));
        assert!(result.is_err());
        // The pool survives a failed launch.
        let ok = pool.run(&|_ctx: &mut BlockCtx| {}, 4, 32, 0);
        assert_eq!(ok.len(), 4);
    }

    #[test]
    fn empty_grid_completes() {
        let pool = ExecutorPool::new(2);
        let costs = pool.run(&|_ctx: &mut BlockCtx| {}, 0, 32, 0);
        assert!(costs.is_empty());
    }
}

//! Grid execution on the shared host scheduler: the simulated SM array.
//!
//! Historically this module owned a dedicated pool of worker threads per
//! [`crate::Gpu`]. That made a K-worker distributed run whose local
//! solver is TPA-SCD spawn K independent pools and oversubscribe the
//! host K× (the ROADMAP "Pool sharing" item). The pool is now a thin
//! per-device facade over the process-wide work-stealing scheduler
//! (`scd-sched`): a launch submits the grid as one task group capped at
//! the device's `host_threads`, so K devices share one set of host
//! threads and nested distributed-over-TPA-SCD runs schedule
//! cooperatively.
//!
//! What the port preserves from the dedicated pool:
//!
//! * **Scratchpad arena reuse** — each host thread keeps one [`BlockCtx`]
//!   in a thread-local slot, re-armed (`reinit`) for every block it
//!   claims and reused across launches while the geometry matches; no
//!   per-block allocation.
//! * **Lock-free cost recording** — each claimed block index is owned by
//!   exactly one thread, which writes its [`BlockCost`] into a disjoint
//!   slot of a preallocated array; the group join orders the reads.
//! * **Launch serialization** — concurrent `run` calls on one device
//!   still queue behind a per-device lock, as kernel grids serialize on
//!   a real GPU stream. (Progress is guaranteed even when a *pool
//!   worker* blocks on this lock, because the scheduler's submitting
//!   thread always drains its own group inline.)
//!
//! Simulated time is untouched by any of this: block costs come from
//! counted work, so wall-clock scheduling changes never move the
//! simulated clock.

use crate::kernel::{BlockCost, BlockCtx};
use scd_sched::Scheduler;
use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex};

/// A `BlockCost` cell written by exactly one thread (the one that claimed
/// its block index) and read only after the launch's task group joins.
struct CostSlot(UnsafeCell<BlockCost>);

// SAFETY: disjoint-index writes (each block index is claimed by exactly
// one thread via the group's claim cursor) plus join-ordered reads — see
// module docs.
unsafe impl Sync for CostSlot {}

thread_local! {
    /// Per-host-thread scratchpad arena: `(lanes, shared_len, ctx)`,
    /// reused across blocks and launches while the geometry matches.
    static ARENA: RefCell<Option<(usize, usize, BlockCtx)>> = const { RefCell::new(None) };
}

/// Per-device handle onto the shared scheduler.
pub(crate) struct ExecutorPool {
    sched: Arc<Scheduler>,
    /// Parallelism cap for this device's launches (`Gpu::host_threads`).
    width: usize,
    /// Serializes concurrent `run` calls on one device (a real GPU also
    /// serializes kernel grids on a stream).
    launch_lock: Mutex<()>,
}

impl ExecutorPool {
    pub(crate) fn new(sched: Arc<Scheduler>, width: usize) -> Self {
        assert!(width >= 1, "pool needs at least one worker");
        ExecutorPool {
            sched,
            width,
            launch_lock: Mutex::new(()),
        }
    }

    /// Parallelism cap for this device.
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Execute a grid of `blocks` blocks as one scheduler task group and
    /// return the per-block costs in block order.
    ///
    /// # Panics
    /// Panics if any kernel block panicked.
    pub(crate) fn run(
        &self,
        run_block: &(dyn Fn(&mut BlockCtx) + Sync),
        blocks: usize,
        lanes: usize,
        shared_len: usize,
    ) -> Vec<BlockCost> {
        // Recover from poisoning: a failed launch propagates its panic while
        // holding this lock, but it guards no data — only launch ordering.
        let _serial = self
            .launch_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let costs: Box<[CostSlot]> = (0..blocks)
            .map(|_| CostSlot(UnsafeCell::new(BlockCost::default())))
            .collect();
        self.sched.parallel_for_limited(blocks, self.width, &|b| {
            let mut ctx = match ARENA.with(|slot| slot.borrow_mut().take()) {
                // Arena hit: same geometry, re-arm in place.
                Some((l, s, ctx)) if l == lanes && s == shared_len => ctx,
                _ => BlockCtx::new(0, lanes, shared_len),
            };
            ctx.reinit(b);
            run_block(&mut ctx);
            // SAFETY: this thread claimed `b`, so slot `b` is its
            // exclusive property (see CostSlot).
            unsafe { *costs[b].0.get() = ctx.cost() };
            ARENA.with(|slot| *slot.borrow_mut() = Some((lanes, shared_len, ctx)));
        });
        costs
            .iter()
            // SAFETY: the task group has joined; no concurrent access.
            .map(|slot| unsafe { *slot.0.get() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(width: usize) -> ExecutorPool {
        ExecutorPool::new(Scheduler::new(width), width)
    }

    #[test]
    fn pool_runs_every_block_once_and_is_reusable() {
        let pool = pool(4);
        for round in 0..5 {
            let counter = AtomicUsize::new(0);
            let run = |ctx: &mut BlockCtx| {
                counter.fetch_add(1, Ordering::Relaxed);
                ctx.charge_lane_ops(1 + round as u64);
            };
            let costs = pool.run(&run, 100, 32, 0);
            assert_eq!(counter.load(Ordering::Relaxed), 100);
            assert_eq!(costs.len(), 100);
            assert!(costs.iter().all(|c| c.lane_ops == 1 + round as u64));
        }
        assert_eq!(pool.width(), 4);
    }

    #[test]
    fn pool_reports_costs_in_block_order() {
        let pool = pool(3);
        let run = |ctx: &mut BlockCtx| {
            let id = ctx.block_id() as u64;
            ctx.charge_read_bytes(id * 8);
        };
        let costs = pool.run(&run, 64, 32, 0);
        for (b, c) in costs.iter().enumerate() {
            assert_eq!(c.bytes, b as u64 * 8, "block {b}");
        }
    }

    #[test]
    fn panicking_block_fails_the_launch() {
        let pool = pool(2);
        let run = |ctx: &mut BlockCtx| {
            if ctx.block_id() == 7 {
                panic!("boom");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| pool.run(&run, 16, 32, 0)));
        assert!(result.is_err());
        // The pool survives a failed launch.
        let ok = pool.run(&|_ctx: &mut BlockCtx| {}, 4, 32, 0);
        assert_eq!(ok.len(), 4);
    }

    #[test]
    fn empty_grid_completes() {
        let pool = pool(2);
        let costs = pool.run(&|_ctx: &mut BlockCtx| {}, 0, 32, 0);
        assert!(costs.is_empty());
    }

    /// Two devices sharing one scheduler: launches on both complete and
    /// the host never runs more threads than the scheduler owns.
    #[test]
    fn two_devices_share_one_scheduler() {
        let sched = Scheduler::new(3);
        let a = ExecutorPool::new(Arc::clone(&sched), 2);
        let b = ExecutorPool::new(Arc::clone(&sched), 3);
        sched.reset_peak();
        for _ in 0..4 {
            let hits = AtomicUsize::new(0);
            let run = |_ctx: &mut BlockCtx| {
                hits.fetch_add(1, Ordering::Relaxed);
            };
            let ca = a.run(&run, 20, 8, 0);
            let cb = b.run(&run, 30, 8, 0);
            assert_eq!(hits.load(Ordering::Relaxed), 50);
            assert_eq!(ca.len(), 20);
            assert_eq!(cb.len(), 30);
        }
        assert!(sched.peak_parallelism() <= 3);
    }

    /// The cap keeps a narrow device from fanning out across a wide
    /// shared scheduler.
    #[test]
    fn width_one_device_on_wide_scheduler_is_sequential() {
        let sched = Scheduler::new(4);
        let pool = ExecutorPool::new(sched, 1);
        let order = Mutex::new(Vec::new());
        let run = |ctx: &mut BlockCtx| {
            order.lock().unwrap().push(ctx.block_id());
        };
        pool.run(&run, 12, 8, 0);
        assert_eq!(*order.lock().unwrap(), (0..12).collect::<Vec<_>>());
    }
}

//! Block-to-SM scheduling for the simulated clock.
//!
//! A CUDA grid launch hands thread blocks to SMs greedily: whenever an SM
//! finishes a block it receives the next unscheduled one. Replaying the
//! measured per-block times through the same greedy policy yields the
//! kernel's makespan — the simulated kernel duration.

use scd_perf_model::Seconds;

/// Result of scheduling a kernel's blocks onto `sm_count` SMs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Busy time accumulated by each SM.
    pub per_sm_seconds: Vec<Seconds>,
    /// Kernel makespan: the latest SM finish time.
    pub makespan_seconds: Seconds,
}

/// Greedy in-order list scheduling: block `i` goes to the SM that frees up
/// earliest (a binary heap keyed on finish time). This is the classic
/// 2-approximation of optimal makespan and matches hardware behaviour for
/// in-order grid dispatch.
pub fn schedule_blocks(block_seconds: &[Seconds], sm_count: usize) -> Schedule {
    assert!(sm_count > 0, "need at least one SM");
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // f64 is not Ord; simulated times are always finite and non-negative, so
    // order by bits of the canonical non-negative representation.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Key(u64, usize); // (time bits, sm index)

    let mut per_sm = vec![0.0f64; sm_count];
    let mut heap: BinaryHeap<Reverse<Key>> = (0..sm_count)
        .map(|sm| Reverse(Key(0u64, sm)))
        .collect();
    for &t in block_seconds {
        assert!(t.is_finite() && t >= 0.0, "block time must be finite and non-negative");
        let Reverse(Key(_, sm)) = heap.pop().expect("heap never empty");
        per_sm[sm] += t;
        heap.push(Reverse(Key(per_sm[sm].to_bits(), sm)));
    }
    let makespan = per_sm.iter().copied().fold(0.0f64, f64::max);
    Schedule {
        per_sm_seconds: per_sm,
        makespan_seconds: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sm_serializes() {
        let s = schedule_blocks(&[1.0, 2.0, 3.0], 1);
        assert_eq!(s.makespan_seconds, 6.0);
        assert_eq!(s.per_sm_seconds, vec![6.0]);
    }

    #[test]
    fn equal_blocks_balance_perfectly() {
        let blocks = vec![1.0; 8];
        let s = schedule_blocks(&blocks, 4);
        assert_eq!(s.makespan_seconds, 2.0);
        assert!(s.per_sm_seconds.iter().all(|&t| (t - 2.0).abs() < 1e-12));
    }

    #[test]
    fn more_sms_than_blocks() {
        let s = schedule_blocks(&[3.0, 1.0], 8);
        assert_eq!(s.makespan_seconds, 3.0);
        let busy: Vec<f64> = s
            .per_sm_seconds
            .iter()
            .copied()
            .filter(|&t| t > 0.0)
            .collect();
        assert_eq!(busy.len(), 2);
    }

    #[test]
    fn makespan_bounded_by_total_and_max() {
        let blocks = [0.5, 0.25, 1.5, 0.75, 0.125, 2.0, 0.3];
        let total: f64 = blocks.iter().sum();
        let longest = 2.0;
        for sm in 1..6 {
            let s = schedule_blocks(&blocks, sm);
            assert!(s.makespan_seconds >= longest);
            assert!(s.makespan_seconds >= total / sm as f64 - 1e-12);
            assert!(s.makespan_seconds <= total + 1e-12);
            let busy_sum: f64 = s.per_sm_seconds.iter().sum();
            assert!((busy_sum - total).abs() < 1e-9, "work must be conserved");
        }
    }

    #[test]
    fn empty_grid_is_instant() {
        let s = schedule_blocks(&[], 4);
        assert_eq!(s.makespan_seconds, 0.0);
    }

    #[test]
    fn makespan_never_increases_with_more_sms() {
        let blocks: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 * 0.01 + 0.001).collect();
        let mut prev = f64::INFINITY;
        for sm in [1, 2, 4, 8, 13, 24, 64] {
            let s = schedule_blocks(&blocks, sm);
            assert!(s.makespan_seconds <= prev + 1e-12);
            prev = s.makespan_seconds;
        }
    }
}

//! Device global memory: f32 buffers with atomic and "wild" addition.
//!
//! CUDA's `atomicAdd(float*, float)` is modeled exactly: a compare-and-swap
//! loop over the 32-bit word, so concurrent updates from racing thread
//! blocks are never lost ("these operations ensure that all updates to the
//! shared vector are applied without any blocking occurring"). The *wild*
//! variant deliberately reproduces the PASSCoDe-Wild behaviour the paper
//! compares against — a plain read-modify-write where concurrent updates can
//! be overwritten — while remaining data-race-free in the Rust sense
//! (relaxed atomic load + store; the *lost update* is semantic, not UB).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// How shared-vector updates are applied to device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSemantics {
    /// CUDA `atomicAdd`: every update lands (CAS loop).
    Atomic,
    /// Racy read-modify-write: concurrent updates may be lost.
    Wild,
}

/// A shared, mutable f32 buffer in (simulated) device global memory.
///
/// Cloning is cheap and shares storage, like passing a device pointer to a
/// kernel.
///
/// ```
/// use gpu_sim::DeviceBuffer;
/// let w = DeviceBuffer::from_host(&[1.0, 2.0]);
/// let alias = w.clone();            // a device pointer, not a copy
/// w.atomic_add(0, 0.5);             // CUDA atomicAdd semantics
/// assert_eq!(alias.to_host(), vec![1.5, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    words: Arc<[AtomicU32]>,
}

impl DeviceBuffer {
    /// Allocate a zero-initialized buffer. (Use [`crate::Gpu::alloc_f32`] to
    /// have the allocation counted against device capacity.)
    pub fn zeroed(len: usize) -> Self {
        let words: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0f32.to_bits())).collect();
        DeviceBuffer {
            words: words.into(),
        }
    }

    /// Allocate and fill from host data (the `cudaMemcpy` H2D of the shared
    /// vector in Algorithm 2's prologue).
    pub fn from_host(data: &[f32]) -> Self {
        let words: Vec<AtomicU32> = data.iter().map(|v| AtomicU32::new(v.to_bits())).collect();
        DeviceBuffer {
            words: words.into(),
        }
    }

    /// Number of f32 elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the buffer has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read one element (relaxed; racing writers may or may not be visible,
    /// exactly like an un-fenced global-memory read on the GPU).
    #[inline]
    pub fn load(&self, i: usize) -> f32 {
        f32::from_bits(self.words[i].load(Ordering::Relaxed))
    }

    /// Overwrite one element.
    #[inline]
    pub fn store(&self, i: usize, v: f32) {
        self.words[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// `buf[i] += v` with CUDA-`atomicAdd` semantics: a CAS loop that
    /// guarantees the update is applied. Returns the previous value.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: f32) -> f32 {
        let cell = &self.words[i];
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let old = f32::from_bits(current);
            let new = (old + v).to_bits();
            match cell.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => current = actual,
            }
        }
    }

    /// `buf[i] += v` with *wild* semantics: separate load and store, so a
    /// concurrent writer between them is overwritten and its update lost.
    #[inline]
    pub fn wild_add(&self, i: usize, v: f32) {
        let old = self.load(i);
        self.store(i, old + v);
    }

    /// Apply an addition with the chosen semantics.
    #[inline]
    pub fn add(&self, sem: MemSemantics, i: usize, v: f32) {
        match sem {
            MemSemantics::Atomic => {
                self.atomic_add(i, v);
            }
            MemSemantics::Wild => self.wild_add(i, v),
        }
    }

    /// Read `out.len()` consecutive elements starting at `start` into
    /// `out`. Semantically identical to `out.len()` calls of [`load`];
    /// iterating the words in one tight loop lets the compiler keep the
    /// address math and bounds checks out of the body.
    ///
    /// [`load`]: DeviceBuffer::load
    pub fn load_slice(&self, start: usize, out: &mut [f32]) {
        let words = &self.words[start..start + out.len()];
        for (o, w) in out.iter_mut().zip(words) {
            *o = f32::from_bits(w.load(Ordering::Relaxed));
        }
    }

    /// Overwrite `src.len()` consecutive elements starting at `start`.
    /// Semantically identical to `src.len()` calls of [`store`].
    ///
    /// [`store`]: DeviceBuffer::store
    pub fn store_slice(&self, start: usize, src: &[f32]) {
        let words = &self.words[start..start + src.len()];
        for (w, &v) in words.iter().zip(src) {
            w.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Gather `out[k] = self[idx[k]]` for every `k`. Semantically identical
    /// to `idx.len()` calls of [`load`] in index order.
    ///
    /// [`load`]: DeviceBuffer::load
    pub fn gather_into(&self, idx: &[u32], out: &mut [f32]) {
        let words = &self.words;
        for (o, &i) in out.iter_mut().zip(idx) {
            *o = f32::from_bits(words[i as usize].load(Ordering::Relaxed));
        }
    }

    /// Scatter-add `self[idx[k]] += vals[k] * scale` for every `k`, with the
    /// chosen semantics, in index order — identical to `idx.len()` calls of
    /// [`add`].
    ///
    /// # Panics
    /// Panics if `idx` and `vals` lengths differ.
    ///
    /// [`add`]: DeviceBuffer::add
    pub fn scatter_add(&self, sem: MemSemantics, idx: &[u32], vals: &[f32], scale: f32) {
        assert_eq!(idx.len(), vals.len(), "scatter_add: length mismatch");
        match sem {
            MemSemantics::Atomic => {
                for (&i, &v) in idx.iter().zip(vals) {
                    self.atomic_add(i as usize, v * scale);
                }
            }
            MemSemantics::Wild => {
                for (&i, &v) in idx.iter().zip(vals) {
                    self.wild_add(i as usize, v * scale);
                }
            }
        }
    }

    /// Transfers below this many elements stay on the calling thread;
    /// above it the copy is chunked across the shared host scheduler.
    /// Each element is an independent relaxed word access, so the split
    /// is bit-exact regardless of chunking or thread count.
    const PAR_COPY_MIN: usize = 1 << 15;

    /// Chunk size that splits `len` elements into roughly one task per
    /// scheduler thread (clamped so tiny tails don't become tasks).
    fn copy_chunk(len: usize, threads: usize) -> usize {
        len.div_ceil(threads).max(4096)
    }

    /// Copy the buffer back to host memory (`cudaMemcpy` D2H).
    ///
    /// Large transfers run as one scoped task group on the shared host
    /// scheduler — a persistent pool, so the transfer hot path spawns no
    /// threads per call.
    pub fn to_host(&self) -> Vec<f32> {
        let read = |w: &AtomicU32| f32::from_bits(w.load(Ordering::Relaxed));
        if self.len() < Self::PAR_COPY_MIN {
            return self.words.iter().map(read).collect();
        }
        let sched = scd_sched::global();
        let mut out = vec![0f32; self.len()];
        let chunk = Self::copy_chunk(self.len(), sched.threads());
        sched.scope(|s| {
            for (dst, src) in out.chunks_mut(chunk).zip(self.words.chunks(chunk)) {
                s.spawn(move || {
                    for (d, w) in dst.iter_mut().zip(src) {
                        *d = read(w);
                    }
                });
            }
        });
        out
    }

    /// Overwrite the whole buffer from host memory (H2D refresh of the
    /// shared vector at the start of a distributed epoch). Large
    /// transfers are chunked across the shared host scheduler like
    /// [`DeviceBuffer::to_host`].
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn copy_from_host(&self, data: &[f32]) {
        assert_eq!(data.len(), self.len(), "copy_from_host: length mismatch");
        if self.len() < Self::PAR_COPY_MIN {
            for (w, &v) in self.words.iter().zip(data) {
                w.store(v.to_bits(), Ordering::Relaxed);
            }
            return;
        }
        let sched = scd_sched::global();
        let chunk = Self::copy_chunk(self.len(), sched.threads());
        sched.scope(|s| {
            for (src, dst) in data.chunks(chunk).zip(self.words.chunks(chunk)) {
                s.spawn(move || {
                    for (&v, w) in src.iter().zip(dst) {
                        w.store(v.to_bits(), Ordering::Relaxed);
                    }
                });
            }
        });
    }

    /// Bytes of device memory held by this buffer.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sched::Scheduler;

    #[test]
    fn zeroed_and_from_host() {
        let z = DeviceBuffer::zeroed(4);
        assert_eq!(z.to_host(), vec![0.0; 4]);
        let b = DeviceBuffer::from_host(&[1.0, -2.5, 3.0]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.to_host(), vec![1.0, -2.5, 3.0]);
        assert_eq!(b.bytes(), 12);
    }

    #[test]
    fn load_store_roundtrip() {
        let b = DeviceBuffer::zeroed(2);
        b.store(1, 7.25);
        assert_eq!(b.load(1), 7.25);
        assert_eq!(b.load(0), 0.0);
    }

    #[test]
    fn atomic_add_returns_previous() {
        let b = DeviceBuffer::from_host(&[10.0]);
        let prev = b.atomic_add(0, 2.5);
        assert_eq!(prev, 10.0);
        assert_eq!(b.load(0), 12.5);
    }

    #[test]
    fn clones_share_storage() {
        let a = DeviceBuffer::zeroed(1);
        let b = a.clone();
        a.atomic_add(0, 1.0);
        assert_eq!(b.load(0), 1.0);
    }

    #[test]
    fn concurrent_atomic_adds_are_never_lost() {
        let buf = DeviceBuffer::zeroed(1);
        let threads = 4;
        let per_thread = 10_000;
        // An explicit scheduler pins real concurrency regardless of the
        // host's core count.
        let sched = Scheduler::new(threads);
        sched.parallel_for(threads, &|_| {
            for _ in 0..per_thread {
                buf.atomic_add(0, 1.0);
            }
        });
        assert_eq!(buf.load(0), (threads * per_thread) as f32);
    }

    /// Transfers that cross the parallel-copy threshold round-trip
    /// bit-exactly (the chunked path must be indistinguishable from the
    /// elementwise one).
    #[test]
    fn large_copies_roundtrip_bit_exactly() {
        let n = DeviceBuffer::PAR_COPY_MIN + 1234;
        let data: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 1e3).collect();
        let buf = DeviceBuffer::zeroed(n);
        buf.copy_from_host(&data);
        let back = buf.to_host();
        assert_eq!(data.len(), back.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn copy_from_host_overwrites() {
        let b = DeviceBuffer::zeroed(3);
        b.copy_from_host(&[1.0, 2.0, 3.0]);
        assert_eq!(b.to_host(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_host_checks_length() {
        DeviceBuffer::zeroed(3).copy_from_host(&[1.0]);
    }

    #[test]
    fn bulk_ops_match_elementwise() {
        let b = DeviceBuffer::from_host(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut out = [0.0f32; 3];
        b.load_slice(1, &mut out);
        assert_eq!(out, [2.0, 3.0, 4.0]);
        b.store_slice(2, &[30.0, 40.0]);
        assert_eq!(b.to_host(), vec![1.0, 2.0, 30.0, 40.0, 5.0]);
        let mut gathered = [0.0f32; 4];
        b.gather_into(&[4, 0, 0, 2], &mut gathered);
        assert_eq!(gathered, [5.0, 1.0, 1.0, 30.0]);
        b.scatter_add(MemSemantics::Atomic, &[0, 0, 1], &[1.0, 2.0, 3.0], 2.0);
        assert_eq!(b.load(0), 7.0);
        assert_eq!(b.load(1), 8.0);
        b.scatter_add(MemSemantics::Wild, &[4], &[0.5], 2.0);
        assert_eq!(b.load(4), 6.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scatter_add_checks_lengths() {
        DeviceBuffer::zeroed(3).scatter_add(MemSemantics::Atomic, &[0, 1], &[1.0], 1.0);
    }

    #[test]
    fn wild_add_applies_when_uncontended() {
        let b = DeviceBuffer::from_host(&[1.0]);
        b.wild_add(0, 2.0);
        assert_eq!(b.load(0), 3.0);
        b.add(MemSemantics::Wild, 0, 1.0);
        b.add(MemSemantics::Atomic, 0, 1.0);
        assert_eq!(b.load(0), 5.0);
    }
}

//! A software GPU for executing TPA-SCD-style kernels.
//!
//! The paper runs Algorithm 2 on real CUDA hardware. This crate substitutes
//! a *behavioural* GPU: kernels are written against a CUDA-like execution
//! model — a grid of thread blocks, each with `lanes` SIMT lanes, block-wide
//! barriers, per-block shared memory, and global device memory supporting
//! f32 **atomic additions** — and the simulator executes them with real
//! concurrency (blocks run asynchronously on a host thread pool, atomics are
//! real compare-and-swap loops), so the *numerical* behaviour the paper
//! relies on (shared vector kept consistent by atomics; blocks racing on
//! overlapping coordinates) genuinely happens.
//!
//! Timing does not come from the host clock (the host is not a GPU): every
//! block's global-memory traffic, atomics, and lane operations are counted
//! during execution, converted to seconds by the roofline model of
//! [`scd_perf_model::GpuProfile`], and the blocks are replayed through a
//! greedy block-to-SM scheduler to obtain the kernel's simulated wall-clock
//! — the quantity the reproduced figures plot.
//!
//! Two write-back semantics mirror the paper's discussion:
//! * [`MemSemantics::Atomic`] — Algorithm 2's `atomicAdd` write-back.
//! * [`MemSemantics::Wild`] — PASSCoDe-Wild-style racy read-modify-write
//!   (used for ablation; real TPA-SCD always uses atomics).

pub mod buffer;
pub mod exec;
pub mod kernel;
pub mod kernels;
pub(crate) mod pool;
pub mod schedule;

pub use buffer::{DeviceBuffer, MemSemantics};
pub use exec::{Gpu, GpuError, LaunchStats};
pub use kernel::{BlockCost, BlockCtx, Kernel};
pub use schedule::schedule_blocks;

pub use scd_perf_model::GpuProfile;

//! The device object: memory capacity accounting and kernel launch.

use crate::buffer::DeviceBuffer;
use crate::kernel::{BlockCost, BlockCtx, Kernel};
use crate::pool::ExecutorPool;
use crate::schedule::schedule_blocks;
use scd_perf_model::{GpuProfile, Seconds};
use scd_sched::Scheduler;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Errors raised by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// An allocation would exceed device memory — the constraint that, on
    /// real hardware, forces datasets like criteo out of a single GPU.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes already allocated.
        allocated: usize,
        /// Device capacity in bytes.
        capacity: usize,
    },
    /// [`Gpu::try_with_host_threads`] after the first pooled launch: the
    /// executor pool is already sized and running.
    HostThreadsAfterLaunch {
        /// The width the pool is already running with.
        current: usize,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                allocated,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {allocated} B \
                 already allocated of {capacity} B capacity"
            ),
            GpuError::HostThreadsAfterLaunch { current } => write!(
                f,
                "host thread count cannot change after the first launch \
                 (executor pool already running with {current} thread(s))"
            ),
        }
    }
}

impl std::error::Error for GpuError {}

/// Result of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Grid size (thread blocks executed).
    pub blocks: usize,
    /// Lanes per block.
    pub lanes: usize,
    /// Summed cost counters across all blocks.
    pub total: BlockCost,
    /// Simulated busy time per SM.
    pub per_sm_seconds: Vec<Seconds>,
    /// Simulated kernel duration: block makespan + launch overhead.
    pub simulated_seconds: Seconds,
}

impl LaunchStats {
    /// The longest per-SM busy time — the kernel's critical path through the
    /// block schedule (simulated launch overhead excluded).
    pub fn makespan(&self) -> Seconds {
        self.per_sm_seconds.iter().copied().fold(0.0f64, f64::max)
    }

    /// Mean SM busy fraction over the kernel's makespan: 1.0 means every SM
    /// streamed work for the whole launch, small values mean the grid was
    /// too shallow or too skewed to fill the device.
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan();
        if makespan == 0.0 {
            return 0.0;
        }
        let busy: f64 = self.per_sm_seconds.iter().sum();
        busy / (makespan * self.per_sm_seconds.len() as f64)
    }

    /// Load imbalance: makespan over mean per-SM busy time (1.0 = perfectly
    /// balanced; large values mean one SM serialized the kernel).
    pub fn imbalance(&self) -> f64 {
        let busy: f64 = self.per_sm_seconds.iter().sum();
        if busy == 0.0 {
            return 1.0;
        }
        let mean = busy / self.per_sm_seconds.len() as f64;
        self.makespan() / mean
    }
}

/// A simulated GPU device.
///
/// ```
/// use gpu_sim::{Gpu, GpuProfile, Kernel, BlockCtx};
/// struct Double(gpu_sim::DeviceBuffer);
/// impl Kernel for Double {
///     fn block(&self, ctx: &mut BlockCtx) {
///         let i = ctx.block_id();
///         let v = ctx.read(&self.0, i);
///         ctx.write(&self.0, i, 2.0 * v);
///     }
/// }
/// let gpu = Gpu::new(GpuProfile::quadro_m4000());
/// let buf = gpu.upload_f32(&[1.0, 2.0, 3.0]).unwrap();
/// let stats = gpu.launch(&Double(buf.clone()), 3, 32);
/// assert_eq!(buf.to_host(), vec![2.0, 4.0, 6.0]);
/// assert!(stats.simulated_seconds > 0.0);
/// ```
pub struct Gpu {
    profile: GpuProfile,
    allocated_bytes: AtomicUsize,
    host_threads: usize,
    /// Host scheduler this device's launches run on. Set explicitly via
    /// [`Gpu::with_scheduler`] (tests, benchmarks), otherwise the
    /// process-wide shared pool is adopted at the first pooled launch —
    /// so K devices in one process share one set of host threads.
    sched: OnceLock<Arc<Scheduler>>,
    /// Per-device handle onto the scheduler (launch serialization plus
    /// the `host_threads` parallelism cap), created at the first
    /// multi-threaded launch.
    pool: OnceLock<ExecutorPool>,
}

impl Gpu {
    /// Create a device with the given profile. Kernel blocks execute on
    /// the shared host scheduler, capped at
    /// `min(sm_count, available_parallelism)` threads for this device.
    pub fn new(profile: GpuProfile) -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let host_threads = host.min(profile.sm_count).max(1);
        Gpu {
            profile,
            allocated_bytes: AtomicUsize::new(0),
            host_threads,
            sched: OnceLock::new(),
            pool: OnceLock::new(),
        }
    }

    /// Run this device's launches on an explicit scheduler instead of the
    /// process-wide one. Must be called before the first launch. Tests
    /// and benchmarks use this to pin a width regardless of the host;
    /// production code should let the device adopt the shared pool.
    pub fn with_scheduler(self, sched: Arc<Scheduler>) -> Self {
        assert!(
            self.pool.get().is_none(),
            "with_scheduler must be called before the first launch"
        );
        assert!(
            self.sched.set(sched).is_ok(),
            "a scheduler is already attached to this device"
        );
        self
    }

    /// Fix the host-side parallelism cap for this device's launches. `1`
    /// makes launches fully deterministic (blocks run sequentially in
    /// launch order) — useful for reproducible figure generation and
    /// tests; the simulated clock is unaffected because timing comes from
    /// counted work, not host time.
    ///
    /// The sequential path additionally assumes the launching thread is the
    /// only writer to device buffers for the duration of a launch, which
    /// lets counted atomic adds use plain read-modify-write mechanics
    /// (bit-identical on one thread, and still charged as atomics). Do not
    /// mutate a launch's buffers from other host threads mid-launch in this
    /// mode; with `n > 1` launches use real CAS atomics throughout.
    ///
    /// # Panics
    /// Panics if called after the first launch — use
    /// [`Gpu::try_with_host_threads`] to handle that case as an error.
    pub fn with_host_threads(self, n: usize) -> Self {
        self.try_with_host_threads(n)
            .expect("with_host_threads must be called before the first launch")
    }

    /// Fallible form of [`Gpu::with_host_threads`]: returns
    /// [`GpuError::HostThreadsAfterLaunch`] instead of panicking when the
    /// executor pool already exists, so callers like the CLI can surface
    /// a clean error.
    pub fn try_with_host_threads(mut self, n: usize) -> Result<Self, GpuError> {
        assert!(n >= 1, "need at least one host thread");
        if let Some(pool) = self.pool.get() {
            return Err(GpuError::HostThreadsAfterLaunch {
                current: pool.width(),
            });
        }
        self.host_threads = n;
        Ok(self)
    }

    /// The device's performance profile.
    #[inline]
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Bytes currently accounted against device memory.
    #[inline]
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` of device memory for data that lives outside a
    /// [`DeviceBuffer`] (the sparse matrix arrays kernels borrow from host
    /// structures). Fails when capacity would be exceeded.
    pub fn reserve_bytes(&self, bytes: usize) -> Result<(), GpuError> {
        let mut current = self.allocated_bytes.load(Ordering::Relaxed);
        loop {
            let new = current + bytes;
            if new > self.profile.mem_capacity_bytes {
                return Err(GpuError::OutOfMemory {
                    requested: bytes,
                    allocated: current,
                    capacity: self.profile.mem_capacity_bytes,
                });
            }
            match self.allocated_bytes.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Release previously reserved bytes.
    pub fn release_bytes(&self, bytes: usize) {
        self.allocated_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Allocate a zeroed f32 buffer in device memory, counted against
    /// capacity.
    pub fn alloc_f32(&self, len: usize) -> Result<DeviceBuffer, GpuError> {
        self.reserve_bytes(len * 4)?;
        Ok(DeviceBuffer::zeroed(len))
    }

    /// Allocate a buffer initialized from host data (H2D copy), counted
    /// against capacity.
    pub fn upload_f32(&self, data: &[f32]) -> Result<DeviceBuffer, GpuError> {
        self.reserve_bytes(data.len() * 4)?;
        Ok(DeviceBuffer::from_host(data))
    }

    /// Launch `blocks` thread blocks of `lanes` lanes each.
    ///
    /// Blocks are dispatched dynamically as one task group on the shared
    /// host scheduler (capped at this device's `host_threads`) and execute
    /// concurrently; the returned simulated duration
    /// replays the measured per-block costs through the greedy block-to-SM
    /// scheduler of the device profile. With `host_threads == 1` blocks run
    /// sequentially on the calling thread in launch order (deterministic
    /// mode); the simulated clock is identical either way because timing
    /// comes from counted work, not host time.
    pub fn launch<K: Kernel>(&self, kernel: &K, blocks: usize, lanes: usize) -> LaunchStats {
        let shared_len = kernel.shared_len(lanes);
        assert!(
            shared_len * 4 <= self.profile.shared_mem_per_block_bytes,
            "kernel requests {} B of shared memory per block; {} provides {} B",
            shared_len * 4,
            self.profile.name,
            self.profile.shared_mem_per_block_bytes
        );

        let costs: Vec<BlockCost> = if self.host_threads <= 1 {
            // Deterministic path: sequential on the calling thread, one
            // re-armed scratchpad arena for the whole grid. With a single
            // writer, counted atomic adds may use plain read-modify-write
            // (bit-identical result, same atomic charge).
            let mut costs = Vec::with_capacity(blocks);
            let mut ctx = BlockCtx::new(0, lanes, shared_len);
            ctx.set_exclusive(true);
            for b in 0..blocks {
                ctx.reinit(b);
                kernel.block(&mut ctx);
                costs.push(ctx.cost());
            }
            costs
        } else {
            let pool = self.pool.get_or_init(|| {
                let sched = Arc::clone(self.sched.get_or_init(scd_sched::global));
                ExecutorPool::new(sched, self.host_threads)
            });
            pool.run(&|ctx| kernel.block(ctx), blocks, lanes, shared_len)
        };

        let mut total = BlockCost::default();
        let block_seconds: Vec<Seconds> = costs
            .iter()
            .map(|c| {
                total.accumulate(c);
                self.profile.block_seconds(c.lane_ops, c.bytes, c.atomics)
            })
            .collect();
        let schedule = schedule_blocks(&block_seconds, self.profile.sm_count);
        LaunchStats {
            blocks,
            lanes,
            total,
            per_sm_seconds: schedule.per_sm_seconds,
            simulated_seconds: schedule.makespan_seconds + self.profile.kernel_launch_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;
    use std::sync::atomic::AtomicU64;

    struct CountingKernel {
        out: DeviceBuffer,
        executed: AtomicU64,
    }

    impl Kernel for CountingKernel {
        fn block(&self, ctx: &mut BlockCtx) {
            // Each block atomically bumps slot (block_id % len).
            let i = ctx.block_id() % self.out.len();
            ctx.atomic_add(&self.out, i, 1.0);
            ctx.charge_lane_ops(ctx.lanes() as u64);
            self.executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn gpu() -> Gpu {
        Gpu::new(GpuProfile::quadro_m4000())
    }

    #[test]
    fn launch_runs_every_block_exactly_once() {
        let g = gpu();
        let k = CountingKernel {
            out: DeviceBuffer::zeroed(7),
            executed: AtomicU64::new(0),
        };
        let stats = g.launch(&k, 100, 32);
        assert_eq!(k.executed.load(Ordering::Relaxed), 100);
        assert_eq!(stats.blocks, 100);
        assert_eq!(stats.lanes, 32);
        let total: f32 = k.out.to_host().iter().sum();
        assert_eq!(total, 100.0);
        assert_eq!(stats.total.atomics, 100);
    }

    #[test]
    fn deterministic_single_thread_launch() {
        let g = gpu().with_host_threads(1);
        let k = CountingKernel {
            out: DeviceBuffer::zeroed(3),
            executed: AtomicU64::new(0),
        };
        let s1 = g.launch(&k, 10, 4);
        assert_eq!(k.executed.load(Ordering::Relaxed), 10);
        assert!(s1.simulated_seconds > 0.0);
    }

    #[test]
    fn simulated_time_includes_launch_overhead() {
        let g = gpu();
        struct Noop;
        impl Kernel for Noop {
            fn block(&self, _ctx: &mut BlockCtx) {}
        }
        let stats = g.launch(&Noop, 0, 32);
        assert_eq!(stats.simulated_seconds, g.profile().kernel_launch_seconds);
        assert_eq!(stats.total, BlockCost::default());
    }

    #[test]
    fn allocation_respects_capacity() {
        let g = gpu();
        let cap = g.profile().mem_capacity_bytes;
        assert!(g.alloc_f32(16).is_ok());
        assert_eq!(g.allocated_bytes(), 64);
        let err = g.reserve_bytes(cap).unwrap_err();
        match err {
            GpuError::OutOfMemory {
                requested,
                allocated,
                capacity,
            } => {
                assert_eq!(requested, cap);
                assert_eq!(allocated, 64);
                assert_eq!(capacity, cap);
            }
            other => panic!("unexpected error {other}"),
        }
        g.release_bytes(64);
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn upload_roundtrip() {
        let g = gpu();
        let buf = g.upload_f32(&[1.0, 2.0]).unwrap();
        assert_eq!(buf.to_host(), vec![1.0, 2.0]);
        assert_eq!(g.allocated_bytes(), 8);
    }

    #[test]
    fn more_work_means_more_simulated_time() {
        let g = gpu();
        struct Busy(u64);
        impl Kernel for Busy {
            fn block(&self, ctx: &mut BlockCtx) {
                ctx.charge_read_bytes(self.0);
                ctx.charge_lane_ops(self.0);
            }
        }
        let light = g.launch(&Busy(1_000), 50, 32).simulated_seconds;
        let heavy = g.launch(&Busy(1_000_000), 50, 32).simulated_seconds;
        assert!(heavy > light);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn oversized_shared_memory_rejected_at_launch() {
        struct Greedy;
        impl Kernel for Greedy {
            fn shared_len(&self, _lanes: usize) -> usize {
                1 << 20 // 4 MB — far beyond Maxwell's 48 KB per block
            }
            fn block(&self, _ctx: &mut BlockCtx) {}
        }
        let g = gpu();
        let _ = g.launch(&Greedy, 1, 32);
    }

    #[test]
    fn utilization_and_imbalance_metrics() {
        let g = gpu();
        struct Busy(u64);
        impl Kernel for Busy {
            fn block(&self, ctx: &mut BlockCtx) {
                ctx.charge_read_bytes(self.0);
            }
        }
        // Deep uniform grid: near-perfect utilization, imbalance ≈ 1.
        let deep = g.launch(&Busy(100_000), 1300, 32);
        assert!(deep.utilization() > 0.9, "deep grid util {}", deep.utilization());
        assert!(deep.imbalance() < 1.1, "deep grid imbalance {}", deep.imbalance());
        // One block: a single SM busy, the rest idle.
        let shallow = g.launch(&Busy(100_000), 1, 32);
        assert!(
            shallow.utilization() < 0.2,
            "one-block util {}",
            shallow.utilization()
        );
        assert!(shallow.imbalance() > 5.0);
        // Empty grid degenerates gracefully.
        struct Noop2;
        impl Kernel for Noop2 {
            fn block(&self, _ctx: &mut BlockCtx) {}
        }
        let empty = g.launch(&Noop2, 0, 32);
        assert_eq!(empty.utilization(), 0.0);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn try_with_host_threads_errors_after_first_pooled_launch() {
        let g = gpu().with_scheduler(Scheduler::new(2)).with_host_threads(2);
        let k = CountingKernel {
            out: DeviceBuffer::zeroed(3),
            executed: AtomicU64::new(0),
        };
        let _ = g.launch(&k, 8, 4);
        let Err(err) = g.try_with_host_threads(4) else {
            panic!("expected HostThreadsAfterLaunch");
        };
        assert_eq!(err, GpuError::HostThreadsAfterLaunch { current: 2 });
        assert!(err.to_string().contains("after the first launch"));
    }

    #[test]
    fn try_with_host_threads_ok_before_launch() {
        let g = gpu().try_with_host_threads(1).unwrap();
        let k = CountingKernel {
            out: DeviceBuffer::zeroed(3),
            executed: AtomicU64::new(0),
        };
        let _ = g.launch(&k, 8, 4);
        assert_eq!(k.executed.load(Ordering::Relaxed), 8);
    }

    /// `with_host_threads(1)` must produce the same bits no matter how
    /// wide a scheduler is attached: the deterministic path runs inline
    /// on the caller and never touches the pool.
    #[test]
    fn deterministic_launch_ignores_attached_scheduler_width() {
        struct Sweep(DeviceBuffer);
        impl Kernel for Sweep {
            fn block(&self, ctx: &mut BlockCtx) {
                let i = ctx.block_id();
                // Order-sensitive accumulation into one slot: only a truly
                // sequential execution reproduces it bit-for-bit.
                let v = ctx.read(&self.0, 0);
                ctx.write(&self.0, 0, v * 1.0001 + i as f32);
            }
        }
        let mut reference = None;
        for width in [1, 2, 4] {
            let g = gpu()
                .with_scheduler(Scheduler::new(width))
                .with_host_threads(1);
            let k = Sweep(DeviceBuffer::zeroed(1));
            let stats = g.launch(&k, 64, 4);
            let bits = k.0.to_host()[0].to_bits();
            let sim = stats.simulated_seconds.to_bits();
            match reference {
                None => reference = Some((bits, sim)),
                Some(r) => assert_eq!(r, (bits, sim), "width {width}"),
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = GpuError::OutOfMemory {
            requested: 10,
            allocated: 5,
            capacity: 12,
        };
        let s = e.to_string();
        assert!(s.contains("requested 10"));
        assert!(s.contains("12 B capacity"));
    }
}

//! The kernel programming model: thread blocks, lanes, shared memory,
//! barriers, and cost counters.
//!
//! A kernel implements [`Kernel::block`], the body executed once per thread
//! block (the paper launches one block per coordinate update). Inside the
//! body, the [`BlockCtx`] provides the CUDA-like facilities Algorithm 2
//! uses:
//!
//! * `lanes()` — the block's thread count (`nthreads`);
//! * `shared()` — the per-block shared-memory scratchpad (`cache[u]`);
//! * `barrier()` — `synchronizeThreads()`;
//! * counted global-memory accessors that wrap [`DeviceBuffer`];
//! * [`BlockCtx::tree_reduce`] — the log₂(nthreads) shared-memory reduction
//!   from Algorithm 2.
//!
//! ### Lane execution semantics
//!
//! Within one block, lanes execute *phase by phase*: everything between two
//! barriers is a data-parallel phase in which lanes may not communicate
//! except through disjoint shared-memory slots (the same discipline valid
//! CUDA code must follow, since warp scheduling order is unspecified). The
//! simulator is free to run a phase's lanes in any order on one host
//! thread — any program that is correct under CUDA's model is correct here.
//! Blocks, in contrast, run genuinely concurrently on the executor's thread
//! pool and interact only through atomic global memory, which is exactly
//! the asynchrony the "twice parallel, asynchronous" name refers to.

use crate::buffer::{DeviceBuffer, MemSemantics};

/// Measured cost of one executed thread block, fed to the roofline model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Bytes of global memory moved (reads + non-atomic writes).
    pub bytes: u64,
    /// Atomic additions issued.
    pub atomics: u64,
    /// Lane-operations executed (one per elementary per-lane step).
    pub lane_ops: u64,
    /// Block-wide barriers crossed.
    pub barriers: u64,
}

impl BlockCost {
    /// Accumulate another block's cost (used for kernel totals).
    pub fn accumulate(&mut self, other: &BlockCost) {
        self.bytes += other.bytes;
        self.atomics += other.atomics;
        self.lane_ops += other.lane_ops;
        self.barriers += other.barriers;
    }
}

/// Per-block execution context handed to [`Kernel::block`].
pub struct BlockCtx {
    block_id: usize,
    lanes: usize,
    shared: Vec<f32>,
    cost: BlockCost,
}

impl BlockCtx {
    /// Build a context for one block. `shared_len` is the shared-memory
    /// scratchpad size in f32 elements (Algorithm 2 needs `nthreads`).
    pub fn new(block_id: usize, lanes: usize, shared_len: usize) -> Self {
        assert!(lanes > 0, "a block needs at least one lane");
        assert!(
            lanes.is_power_of_two(),
            "tree reduction requires a power-of-two lane count, got {lanes}"
        );
        BlockCtx {
            block_id,
            lanes,
            shared: vec![0.0; shared_len],
            cost: BlockCost::default(),
        }
    }

    /// This block's index within the grid (`j` in Algorithm 2).
    #[inline]
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Threads per block (`nthreads`).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared-memory scratchpad (`cache`).
    #[inline]
    pub fn shared(&mut self) -> &mut [f32] {
        &mut self.shared
    }

    /// `synchronizeThreads()`. Within the simulator a phase boundary; also
    /// counted for the cost model.
    #[inline]
    pub fn barrier(&mut self) {
        self.cost.barriers += 1;
    }

    /// Counted read of one f32 from global memory.
    #[inline]
    pub fn read(&mut self, buf: &DeviceBuffer, i: usize) -> f32 {
        self.cost.bytes += 4;
        self.cost.lane_ops += 1;
        buf.load(i)
    }

    /// Counted non-atomic write of one f32 to global memory.
    #[inline]
    pub fn write(&mut self, buf: &DeviceBuffer, i: usize, v: f32) {
        self.cost.bytes += 4;
        self.cost.lane_ops += 1;
        buf.store(i, v);
    }

    /// Counted atomic addition to global memory (Algorithm 2's
    /// `wi = wi + Ai,m Δβm {Atomic addition}`).
    #[inline]
    pub fn atomic_add(&mut self, buf: &DeviceBuffer, i: usize, v: f32) {
        self.cost.atomics += 1;
        self.cost.lane_ops += 1;
        buf.atomic_add(i, v);
    }

    /// Counted addition with selectable semantics (atomic vs wild ablation).
    #[inline]
    pub fn add(&mut self, sem: MemSemantics, buf: &DeviceBuffer, i: usize, v: f32) {
        match sem {
            MemSemantics::Atomic => self.atomic_add(buf, i, v),
            MemSemantics::Wild => {
                self.cost.bytes += 8; // racy load + store
                self.cost.lane_ops += 1;
                buf.wild_add(i, v);
            }
        }
    }

    /// Charge `bytes` of global traffic read through captured host-side
    /// read-only data (the sparse matrix arrays, which kernels borrow
    /// directly rather than through a [`DeviceBuffer`]).
    #[inline]
    pub fn charge_read_bytes(&mut self, bytes: u64) {
        self.cost.bytes += bytes;
    }

    /// Charge `n` pure-compute lane operations (FLOPs, index arithmetic).
    #[inline]
    pub fn charge_lane_ops(&mut self, n: u64) {
        self.cost.lane_ops += n;
    }

    /// The shared-memory tree reduction of Algorithm 2: assumes each lane
    /// `u` has deposited its partial value in `shared()[u]`; after the call,
    /// `shared()[0]` holds the block-wide sum. Crosses log₂(lanes) barriers.
    ///
    /// Mirrors the paper's loop, including its additive form
    /// (`cache[u] = cache[u] + cache[u+v]`).
    pub fn tree_reduce(&mut self) -> f32 {
        let mut v = self.lanes / 2;
        while v != 0 {
            for u in 0..v {
                if u + v < self.shared.len() {
                    self.shared[u] += self.shared[u + v];
                }
            }
            self.charge_lane_ops(v as u64);
            self.barrier();
            v /= 2;
        }
        self.shared.first().copied().unwrap_or(0.0)
    }

    /// Snapshot of the accumulated cost.
    #[inline]
    pub fn cost(&self) -> BlockCost {
        self.cost
    }
}

/// A device kernel: the body run once per thread block.
///
/// Implementations must be `Sync` — blocks execute concurrently and share
/// the kernel object, exactly as CUDA kernels share their parameters.
pub trait Kernel: Sync {
    /// Shared-memory f32 elements each block needs.
    fn shared_len(&self, lanes: usize) -> usize {
        lanes
    }

    /// Execute one thread block.
    fn block(&self, ctx: &mut BlockCtx);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_sums_all_lanes() {
        for lanes in [1usize, 2, 4, 8, 32, 256] {
            let mut ctx = BlockCtx::new(0, lanes, lanes);
            for u in 0..lanes {
                ctx.shared()[u] = (u + 1) as f32;
            }
            let sum = ctx.tree_reduce();
            let expected = (lanes * (lanes + 1) / 2) as f32;
            assert_eq!(sum, expected, "lanes={lanes}");
        }
    }

    #[test]
    fn tree_reduce_counts_barriers() {
        let mut ctx = BlockCtx::new(0, 8, 8);
        ctx.tree_reduce();
        assert_eq!(ctx.cost().barriers, 3); // log2(8)
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_lanes_rejected() {
        let _ = BlockCtx::new(0, 6, 6);
    }

    #[test]
    fn counters_track_accesses() {
        let buf = DeviceBuffer::from_host(&[1.0, 2.0]);
        let mut ctx = BlockCtx::new(3, 2, 2);
        assert_eq!(ctx.block_id(), 3);
        assert_eq!(ctx.lanes(), 2);
        let v = ctx.read(&buf, 0);
        assert_eq!(v, 1.0);
        ctx.write(&buf, 1, 5.0);
        ctx.atomic_add(&buf, 0, 1.0);
        ctx.charge_read_bytes(16);
        ctx.charge_lane_ops(7);
        let c = ctx.cost();
        assert_eq!(c.bytes, 4 + 4 + 16);
        assert_eq!(c.atomics, 1);
        assert_eq!(c.lane_ops, 1 + 1 + 1 + 7);
        assert_eq!(buf.load(0), 2.0);
        assert_eq!(buf.load(1), 5.0);
    }

    #[test]
    fn add_semantics_cost_differs() {
        let buf = DeviceBuffer::zeroed(1);
        let mut a = BlockCtx::new(0, 1, 1);
        a.add(MemSemantics::Atomic, &buf, 0, 1.0);
        assert_eq!(a.cost().atomics, 1);
        assert_eq!(a.cost().bytes, 0);
        let mut w = BlockCtx::new(0, 1, 1);
        w.add(MemSemantics::Wild, &buf, 0, 1.0);
        assert_eq!(w.cost().atomics, 0);
        assert_eq!(w.cost().bytes, 8);
        assert_eq!(buf.load(0), 2.0);
    }

    #[test]
    fn block_cost_accumulates() {
        let mut total = BlockCost::default();
        total.accumulate(&BlockCost {
            bytes: 10,
            atomics: 2,
            lane_ops: 5,
            barriers: 1,
        });
        total.accumulate(&BlockCost {
            bytes: 1,
            atomics: 1,
            lane_ops: 1,
            barriers: 1,
        });
        assert_eq!(
            total,
            BlockCost {
                bytes: 11,
                atomics: 3,
                lane_ops: 6,
                barriers: 2
            }
        );
    }
}

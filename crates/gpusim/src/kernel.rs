//! The kernel programming model: thread blocks, lanes, shared memory,
//! barriers, and cost counters.
//!
//! A kernel implements [`Kernel::block`], the body executed once per thread
//! block (the paper launches one block per coordinate update). Inside the
//! body, the [`BlockCtx`] provides the CUDA-like facilities Algorithm 2
//! uses:
//!
//! * `lanes()` — the block's thread count (`nthreads`);
//! * `shared()` — the per-block shared-memory scratchpad (`cache[u]`);
//! * `barrier()` — `synchronizeThreads()`;
//! * counted global-memory accessors that wrap [`DeviceBuffer`];
//! * [`BlockCtx::tree_reduce`] — the log₂(nthreads) shared-memory reduction
//!   from Algorithm 2.
//!
//! ### Lane execution semantics
//!
//! Within one block, lanes execute *phase by phase*: everything between two
//! barriers is a data-parallel phase in which lanes may not communicate
//! except through disjoint shared-memory slots (the same discipline valid
//! CUDA code must follow, since warp scheduling order is unspecified). The
//! simulator is free to run a phase's lanes in any order on one host
//! thread — any program that is correct under CUDA's model is correct here.
//! Blocks, in contrast, run genuinely concurrently on the executor's thread
//! pool and interact only through atomic global memory, which is exactly
//! the asynchrony the "twice parallel, asynchronous" name refers to.
//!
//! ### Executor architecture
//!
//! Blocks are executed on the **shared work-stealing host scheduler**
//! (`scd-sched`): a launch submits the grid as one task group, capped at
//! the device's `host_threads`, and participating threads claim block
//! indices from the group's cursor (dynamic dispatch, like the hardware
//! grid scheduler) until the grid is drained. Every device in the
//! process shares one pool sized to the host, so K distributed workers
//! launching TPA-SCD grids schedule cooperatively instead of spawning K
//! pools. Each host thread reuses one `BlockCtx` scratchpad arena — the
//! shared-memory buffer is zeroed between blocks, never reallocated —
//! and records each block's [`BlockCost`] into a disjoint per-block
//! slot, so the hot path takes no locks and performs no per-block heap
//! allocation. With `Gpu::with_host_threads(1)` the scheduler is
//! bypassed and blocks run sequentially in launch order on the calling
//! thread (deterministic mode).
//!
//! ### Bulk accessors and the cost-accounting invariant
//!
//! Besides the per-element accessors ([`BlockCtx::read`],
//! [`BlockCtx::write`], [`BlockCtx::atomic_add`]), `BlockCtx` offers bulk
//! accessors ([`BlockCtx::read_slice`], [`BlockCtx::gather`],
//! [`BlockCtx::write_slice`], [`BlockCtx::scatter_atomic_add`]) and fused
//! phase helpers ([`BlockCtx::lane_dot_phase`],
//! [`BlockCtx::strided_dot_phase`], [`BlockCtx::strided_axpy_phase`]) that
//! touch the same memory in the same order but account their
//! [`BlockCost`] **once per call** instead of once per element. The hard
//! invariant — enforced by the bulk-equivalence property tests and the
//! TPA-SCD golden test — is that a bulk call is *observably identical* to
//! the element-wise loop it replaces: same values moved, in the same
//! order, and bit-identical cost counters (bytes, atomics, lane_ops,
//! barriers), so the simulated clock and every convergence series are
//! unchanged. The bulk path is purely a host-wall-clock optimization of
//! the simulator, never a change to what it simulates.
//!
//! The same invariant covers the sequential executor's **single-writer
//! fast path**: under `with_host_threads(1)` no concurrent writer can
//! exist during a launch, so counted atomic adds perform a plain
//! read-modify-write — bit-identical to the winning CAS on one thread,
//! roughly an order of magnitude cheaper on the host — while the cost
//! model still charges them as atomics. Multi-threaded launches always
//! use real CAS atomics.

use crate::buffer::{DeviceBuffer, MemSemantics};

/// Measured cost of one executed thread block, fed to the roofline model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Bytes of global memory moved (reads + non-atomic writes).
    pub bytes: u64,
    /// Atomic additions issued.
    pub atomics: u64,
    /// Lane-operations executed (one per elementary per-lane step).
    pub lane_ops: u64,
    /// Block-wide barriers crossed.
    pub barriers: u64,
}

impl BlockCost {
    /// Accumulate another block's cost (used for kernel totals).
    pub fn accumulate(&mut self, other: &BlockCost) {
        self.bytes += other.bytes;
        self.atomics += other.atomics;
        self.lane_ops += other.lane_ops;
        self.barriers += other.barriers;
    }
}

/// Per-block execution context handed to [`Kernel::block`].
pub struct BlockCtx {
    block_id: usize,
    lanes: usize,
    shared: Vec<f32>,
    cost: BlockCost,
    /// True when the executor guarantees this context runs with no
    /// concurrent writers (the deterministic `with_host_threads(1)` path).
    /// Atomic adds then use plain read-modify-write mechanics — on a
    /// single thread the result is bit-identical to the CAS loop — while
    /// the cost model still charges them as atomics.
    exclusive: bool,
}

impl BlockCtx {
    /// Build a context for one block. `shared_len` is the shared-memory
    /// scratchpad size in f32 elements (Algorithm 2 needs `nthreads`).
    pub fn new(block_id: usize, lanes: usize, shared_len: usize) -> Self {
        assert!(lanes > 0, "a block needs at least one lane");
        assert!(
            lanes.is_power_of_two(),
            "tree reduction requires a power-of-two lane count, got {lanes}"
        );
        BlockCtx {
            block_id,
            lanes,
            shared: vec![0.0; shared_len],
            cost: BlockCost::default(),
            exclusive: false,
        }
    }

    /// Promise that no other thread touches the device buffers while this
    /// context runs. Only the sequential executor path may set this.
    pub(crate) fn set_exclusive(&mut self, exclusive: bool) {
        self.exclusive = exclusive;
    }

    /// Re-arm this context for another block of the same launch: reset the
    /// cost counters and zero the shared-memory scratchpad in place. This
    /// is how the executor pool reuses one arena per worker instead of
    /// allocating per block; observable state equals a fresh
    /// [`BlockCtx::new`].
    pub(crate) fn reinit(&mut self, block_id: usize) {
        self.block_id = block_id;
        self.shared.fill(0.0);
        self.cost = BlockCost::default();
    }

    /// This block's index within the grid (`j` in Algorithm 2).
    #[inline]
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Threads per block (`nthreads`).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared-memory scratchpad (`cache`).
    #[inline]
    pub fn shared(&mut self) -> &mut [f32] {
        &mut self.shared
    }

    /// `synchronizeThreads()`. Within the simulator a phase boundary; also
    /// counted for the cost model.
    #[inline]
    pub fn barrier(&mut self) {
        self.cost.barriers += 1;
    }

    /// Counted read of one f32 from global memory.
    #[inline]
    pub fn read(&mut self, buf: &DeviceBuffer, i: usize) -> f32 {
        self.cost.bytes += 4;
        self.cost.lane_ops += 1;
        buf.load(i)
    }

    /// Counted non-atomic write of one f32 to global memory.
    #[inline]
    pub fn write(&mut self, buf: &DeviceBuffer, i: usize, v: f32) {
        self.cost.bytes += 4;
        self.cost.lane_ops += 1;
        buf.store(i, v);
    }

    /// Counted atomic addition to global memory (Algorithm 2's
    /// `wi = wi + Ai,m Δβm {Atomic addition}`).
    #[inline]
    pub fn atomic_add(&mut self, buf: &DeviceBuffer, i: usize, v: f32) {
        self.cost.atomics += 1;
        self.cost.lane_ops += 1;
        if self.exclusive {
            // Single-writer launch: `load + store` computes the exact same
            // f32 sum the successful CAS would, without the lock-prefixed
            // instruction. The charge above is unchanged.
            buf.wild_add(i, v);
        } else {
            buf.atomic_add(i, v);
        }
    }

    /// Counted addition with selectable semantics (atomic vs wild ablation).
    #[inline]
    pub fn add(&mut self, sem: MemSemantics, buf: &DeviceBuffer, i: usize, v: f32) {
        match sem {
            MemSemantics::Atomic => self.atomic_add(buf, i, v),
            MemSemantics::Wild => {
                self.cost.bytes += 8; // racy load + store
                self.cost.lane_ops += 1;
                buf.wild_add(i, v);
            }
        }
    }

    /// Counted bulk read of `out.len()` consecutive elements: identical
    /// memory traffic and cost to `out.len()` calls of [`BlockCtx::read`],
    /// accounted once.
    pub fn read_slice(&mut self, buf: &DeviceBuffer, start: usize, out: &mut [f32]) {
        self.cost.bytes += 4 * out.len() as u64;
        self.cost.lane_ops += out.len() as u64;
        buf.load_slice(start, out);
    }

    /// Counted bulk write of `src.len()` consecutive elements: identical
    /// to `src.len()` calls of [`BlockCtx::write`], accounted once.
    pub fn write_slice(&mut self, buf: &DeviceBuffer, start: usize, src: &[f32]) {
        self.cost.bytes += 4 * src.len() as u64;
        self.cost.lane_ops += src.len() as u64;
        buf.store_slice(start, src);
    }

    /// Counted gather `out[k] = buf[idx[k]]`: identical to `idx.len()`
    /// calls of [`BlockCtx::read`] in index order, accounted once.
    pub fn gather(&mut self, buf: &DeviceBuffer, idx: &[u32], out: &mut [f32]) {
        self.cost.bytes += 4 * idx.len() as u64;
        self.cost.lane_ops += idx.len() as u64;
        buf.gather_into(idx, out);
    }

    /// Counted scatter `buf[idx[k]] += vals[k] * scale` with CUDA
    /// `atomicAdd` semantics: identical to `idx.len()` calls of
    /// [`BlockCtx::atomic_add`] in index order, accounted once.
    pub fn scatter_atomic_add(&mut self, buf: &DeviceBuffer, idx: &[u32], vals: &[f32], scale: f32) {
        self.scatter_add(MemSemantics::Atomic, buf, idx, vals, scale);
    }

    /// Counted scatter-add with selectable semantics: identical to
    /// `idx.len()` calls of [`BlockCtx::add`] in index order, accounted
    /// once (Algorithm 2's rank-one shared-vector write-back).
    pub fn scatter_add(
        &mut self,
        sem: MemSemantics,
        buf: &DeviceBuffer,
        idx: &[u32],
        vals: &[f32],
        scale: f32,
    ) {
        let n = idx.len() as u64;
        match sem {
            MemSemantics::Atomic => self.cost.atomics += n,
            MemSemantics::Wild => self.cost.bytes += 8 * n,
        }
        self.cost.lane_ops += n;
        // On a single-writer launch plain adds are bit-identical to CAS;
        // the charge keyed on `sem` above is what the simulated clock sees.
        let mech = if self.exclusive { MemSemantics::Wild } else { sem };
        buf.scatter_add(mech, idx, vals, scale);
    }

    /// Fused gather-dot phase (Algorithm 2, phase 1): for each lane `u`,
    /// accumulate `Σ_{k ≡ u (mod lanes)} f(k, buf[idx[k]])` in f32 and
    /// deposit the partial into `shared()[u]`. Identical values, iteration
    /// order, and cost to the per-lane strided loop over
    /// [`BlockCtx::read`] it replaces (`4·idx.len()` bytes,
    /// `idx.len()` lane-ops), accounted once. The caller charges its own
    /// FLOPs, exactly as the element-wise kernels did.
    pub fn lane_dot_phase<F: FnMut(usize, f32) -> f32>(
        &mut self,
        buf: &DeviceBuffer,
        idx: &[u32],
        mut f: F,
    ) {
        let lanes = self.lanes;
        let n = idx.len();
        for u in 0..lanes {
            let mut dp = 0.0f32;
            let mut k = u;
            while k < n {
                dp += f(k, buf.load(idx[k] as usize));
                k += lanes;
            }
            self.shared[u] = dp;
        }
        self.cost.bytes += 4 * n as u64;
        self.cost.lane_ops += n as u64;
    }

    /// Fused gather-dot phase over a slotted (ELLPACK-style) row: like
    /// [`BlockCtx::lane_dot_phase`], but `slot(s)` yields the optional
    /// `(global index, coefficient)` of slot `s ∈ 0..width`; padding slots
    /// yield `None` and move no counted global memory, matching the
    /// element-wise loop. Cost: 4 bytes and one lane-op per *present*
    /// slot, accounted once.
    pub fn lane_slot_dot_phase<F: FnMut(usize) -> Option<(usize, f32)>>(
        &mut self,
        buf: &DeviceBuffer,
        width: usize,
        mut slot: F,
    ) {
        let lanes = self.lanes;
        let mut present: u64 = 0;
        for u in 0..lanes {
            let mut dp = 0.0f32;
            let mut s = u;
            while s < width {
                if let Some((j, v)) = slot(s) {
                    dp += buf.load(j) * v;
                    present += 1;
                }
                s += lanes;
            }
            self.shared[u] = dp;
        }
        self.cost.bytes += 4 * present;
        self.cost.lane_ops += present;
    }

    /// Counted scatter-add over a slotted (ELLPACK-style) row:
    /// `buf[j] += v * scale` for every present slot `(j, v)`, with the
    /// chosen semantics, in slot order — identical to the element-wise
    /// loop over [`BlockCtx::add`], accounted once.
    pub fn slot_scatter_add<F: FnMut(usize) -> Option<(usize, f32)>>(
        &mut self,
        sem: MemSemantics,
        buf: &DeviceBuffer,
        width: usize,
        mut slot: F,
        scale: f32,
    ) {
        let mech = if self.exclusive { MemSemantics::Wild } else { sem };
        let mut present: u64 = 0;
        for s in 0..width {
            if let Some((j, v)) = slot(s) {
                buf.add(mech, j, v * scale);
                present += 1;
            }
        }
        match sem {
            MemSemantics::Atomic => self.cost.atomics += present,
            MemSemantics::Wild => self.cost.bytes += 8 * present,
        }
        self.cost.lane_ops += present;
    }

    /// Fused grid-stride dot phase: for each lane `u`, accumulate
    /// `Σ x[i]·y[i]` over `i = base + u, base + u + stride, …` in f32 and
    /// deposit the partial into `shared()[u]`. Identical to the
    /// element-wise loop of two [`BlockCtx::read`]s per element (8 bytes,
    /// 2 lane-ops each), accounted once.
    pub fn strided_dot_phase(
        &mut self,
        x: &DeviceBuffer,
        y: &DeviceBuffer,
        base: usize,
        stride: usize,
    ) {
        let lanes = self.lanes;
        let n = x.len();
        let mut touched: u64 = 0;
        for u in 0..lanes {
            let mut acc = 0.0f32;
            let mut i = base + u;
            while i < n {
                acc += x.load(i) * y.load(i);
                touched += 1;
                i += stride;
            }
            self.shared[u] = acc;
        }
        self.cost.bytes += 8 * touched;
        self.cost.lane_ops += 2 * touched;
    }

    /// Fused grid-stride axpy phase: `y[i] += a·x[i]` over each lane's
    /// grid-stride slice. Identical to the element-wise loop (read x, read
    /// y, write y: 12 bytes, 3 lane-ops per element), accounted once.
    pub fn strided_axpy_phase(
        &mut self,
        a: f32,
        x: &DeviceBuffer,
        y: &DeviceBuffer,
        base: usize,
        stride: usize,
    ) {
        let lanes = self.lanes;
        let n = x.len();
        let mut touched: u64 = 0;
        for u in 0..lanes {
            let mut i = base + u;
            while i < n {
                y.store(i, y.load(i) + a * x.load(i));
                touched += 1;
                i += stride;
            }
        }
        self.cost.bytes += 12 * touched;
        self.cost.lane_ops += 3 * touched;
    }

    /// Charge `bytes` of global traffic read through captured host-side
    /// read-only data (the sparse matrix arrays, which kernels borrow
    /// directly rather than through a [`DeviceBuffer`]).
    #[inline]
    pub fn charge_read_bytes(&mut self, bytes: u64) {
        self.cost.bytes += bytes;
    }

    /// Charge `n` pure-compute lane operations (FLOPs, index arithmetic).
    #[inline]
    pub fn charge_lane_ops(&mut self, n: u64) {
        self.cost.lane_ops += n;
    }

    /// The shared-memory tree reduction of Algorithm 2: assumes each lane
    /// `u` has deposited its partial value in `shared()[u]`; after the call,
    /// `shared()[0]` holds the block-wide sum. Crosses log₂(lanes) barriers.
    ///
    /// Mirrors the paper's loop, including its additive form
    /// (`cache[u] = cache[u] + cache[u+v]`).
    pub fn tree_reduce(&mut self) -> f32 {
        let mut v = self.lanes / 2;
        while v != 0 {
            for u in 0..v {
                if u + v < self.shared.len() {
                    self.shared[u] += self.shared[u + v];
                }
            }
            self.charge_lane_ops(v as u64);
            self.barrier();
            v /= 2;
        }
        self.shared.first().copied().unwrap_or(0.0)
    }

    /// Snapshot of the accumulated cost.
    #[inline]
    pub fn cost(&self) -> BlockCost {
        self.cost
    }
}

/// A device kernel: the body run once per thread block.
///
/// Implementations must be `Sync` — blocks execute concurrently and share
/// the kernel object, exactly as CUDA kernels share their parameters.
pub trait Kernel: Sync {
    /// Shared-memory f32 elements each block needs.
    fn shared_len(&self, lanes: usize) -> usize {
        lanes
    }

    /// Execute one thread block.
    fn block(&self, ctx: &mut BlockCtx);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_sums_all_lanes() {
        for lanes in [1usize, 2, 4, 8, 32, 256] {
            let mut ctx = BlockCtx::new(0, lanes, lanes);
            for u in 0..lanes {
                ctx.shared()[u] = (u + 1) as f32;
            }
            let sum = ctx.tree_reduce();
            let expected = (lanes * (lanes + 1) / 2) as f32;
            assert_eq!(sum, expected, "lanes={lanes}");
        }
    }

    #[test]
    fn tree_reduce_counts_barriers() {
        let mut ctx = BlockCtx::new(0, 8, 8);
        ctx.tree_reduce();
        assert_eq!(ctx.cost().barriers, 3); // log2(8)
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_lanes_rejected() {
        let _ = BlockCtx::new(0, 6, 6);
    }

    #[test]
    fn counters_track_accesses() {
        let buf = DeviceBuffer::from_host(&[1.0, 2.0]);
        let mut ctx = BlockCtx::new(3, 2, 2);
        assert_eq!(ctx.block_id(), 3);
        assert_eq!(ctx.lanes(), 2);
        let v = ctx.read(&buf, 0);
        assert_eq!(v, 1.0);
        ctx.write(&buf, 1, 5.0);
        ctx.atomic_add(&buf, 0, 1.0);
        ctx.charge_read_bytes(16);
        ctx.charge_lane_ops(7);
        let c = ctx.cost();
        assert_eq!(c.bytes, 4 + 4 + 16);
        assert_eq!(c.atomics, 1);
        assert_eq!(c.lane_ops, 1 + 1 + 1 + 7);
        assert_eq!(buf.load(0), 2.0);
        assert_eq!(buf.load(1), 5.0);
    }

    #[test]
    fn add_semantics_cost_differs() {
        let buf = DeviceBuffer::zeroed(1);
        let mut a = BlockCtx::new(0, 1, 1);
        a.add(MemSemantics::Atomic, &buf, 0, 1.0);
        assert_eq!(a.cost().atomics, 1);
        assert_eq!(a.cost().bytes, 0);
        let mut w = BlockCtx::new(0, 1, 1);
        w.add(MemSemantics::Wild, &buf, 0, 1.0);
        assert_eq!(w.cost().atomics, 0);
        assert_eq!(w.cost().bytes, 8);
        assert_eq!(buf.load(0), 2.0);
    }

    #[test]
    fn block_cost_accumulates() {
        let mut total = BlockCost::default();
        total.accumulate(&BlockCost {
            bytes: 10,
            atomics: 2,
            lane_ops: 5,
            barriers: 1,
        });
        total.accumulate(&BlockCost {
            bytes: 1,
            atomics: 1,
            lane_ops: 1,
            barriers: 1,
        });
        assert_eq!(
            total,
            BlockCost {
                bytes: 11,
                atomics: 3,
                lane_ops: 6,
                barriers: 2
            }
        );
    }

    /// The exclusive (single-writer) fast path must be bit-identical to the
    /// CAS path in values AND charge the identical cost, element-wise and
    /// through every bulk scatter spelling.
    #[test]
    fn exclusive_atomics_match_cas_bitwise_and_in_cost() {
        let init: Vec<f32> = (0..16).map(|i| 0.1 + i as f32 * 0.3).collect();
        let idx: Vec<u32> = vec![3, 7, 3, 0, 15, 7, 7];
        let vals: Vec<f32> = vec![0.25, -1.5, 3.0, 0.125, -0.75, 2.0, 0.5];
        let slot = |s: usize| (s % 3 != 2).then(|| (idx[s] as usize, vals[s]));

        let run = |exclusive: bool| {
            let buf = crate::DeviceBuffer::from_host(&init);
            let mut ctx = BlockCtx::new(0, 4, 4);
            ctx.set_exclusive(exclusive);
            for (&i, &v) in idx.iter().zip(&vals) {
                ctx.atomic_add(&buf, i as usize, v);
                ctx.add(MemSemantics::Atomic, &buf, i as usize, v * 0.5);
            }
            ctx.scatter_atomic_add(&buf, &idx, &vals, -0.3);
            ctx.slot_scatter_add(MemSemantics::Atomic, &buf, idx.len(), slot, 1.7);
            let bits: Vec<u32> = buf.to_host().iter().map(|v| v.to_bits()).collect();
            (bits, ctx.cost())
        };

        assert_eq!(run(true), run(false));
    }
}

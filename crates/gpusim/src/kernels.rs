//! A small library of reusable device kernels.
//!
//! TPA-SCD (in `scd-core`) is the headline kernel, but the execution model
//! is general; these building blocks exercise the classic CUDA idioms —
//! grid-stride loops, per-block tree reductions, atomic result
//! accumulation — and double as executable documentation of the
//! [`Kernel`]/[`BlockCtx`] API.

use crate::buffer::DeviceBuffer;
use crate::exec::Gpu;
use crate::kernel::{BlockCtx, Kernel};

/// `y ← y + a·x` with a grid-stride loop: block b's lanes cover the
/// elements `b·lanes + u + k·grid_stride`.
pub struct AxpyKernel {
    /// Scalar multiplier.
    pub a: f32,
    /// Operand vector (read).
    pub x: DeviceBuffer,
    /// Accumulator vector (read-modify-write; no contention, each element
    /// has exactly one owner lane).
    pub y: DeviceBuffer,
    /// Grid size this kernel will be launched with (needed to compute the
    /// stride).
    pub grid_blocks: usize,
}

impl Kernel for AxpyKernel {
    fn block(&self, ctx: &mut BlockCtx) {
        let lanes = ctx.lanes();
        let stride = self.grid_blocks * lanes;
        let base = ctx.block_id() * lanes;
        // Fused bulk phase: same element order, values, and counted cost
        // (12 B + 3 lane-ops per element) as the per-element loop, charged
        // once per block instead of once per element.
        ctx.strided_axpy_phase(self.a, &self.x, &self.y, base, stride);
        ctx.charge_lane_ops((self.x.len() / self.grid_blocks.max(1)) as u64);
    }
}

/// Launch helper: `y ← y + a·x` on the device, returning simulated seconds.
pub fn device_axpy(gpu: &Gpu, a: f32, x: &DeviceBuffer, y: &DeviceBuffer) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let blocks = gpu.profile().sm_count * 4;
    let kernel = AxpyKernel {
        a,
        x: x.clone(),
        y: y.clone(),
        grid_blocks: blocks,
    };
    gpu.launch(&kernel, blocks, 64).simulated_seconds
}

/// Block-parallel dot product: each block computes a partial inner product
/// over its grid-stride slice, tree-reduces it in shared memory, and lane 0
/// adds the block total into `result[0]` atomically.
pub struct DotKernel {
    /// Left operand.
    pub x: DeviceBuffer,
    /// Right operand.
    pub y: DeviceBuffer,
    /// Single-element output accumulator (zero it before launch).
    pub result: DeviceBuffer,
    /// Grid size this kernel will be launched with.
    pub grid_blocks: usize,
}

impl Kernel for DotKernel {
    fn block(&self, ctx: &mut BlockCtx) {
        let lanes = ctx.lanes();
        let stride = self.grid_blocks * lanes;
        let base = ctx.block_id() * lanes;
        // Fused bulk phase: per-lane partials land directly in shared
        // memory with the same accumulation order and counted cost (8 B +
        // 2 lane-ops per element) as the per-element loop.
        ctx.strided_dot_phase(&self.x, &self.y, base, stride);
        ctx.barrier();
        let block_total = ctx.tree_reduce();
        ctx.atomic_add(&self.result, 0, block_total);
    }
}

/// Launch helper: device dot product, returning (value, simulated seconds).
pub fn device_dot(gpu: &Gpu, x: &DeviceBuffer, y: &DeviceBuffer) -> (f32, f64) {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let blocks = gpu.profile().sm_count * 4;
    let result = DeviceBuffer::zeroed(1);
    let kernel = DotKernel {
        x: x.clone(),
        y: y.clone(),
        result: result.clone(),
        grid_blocks: blocks,
    };
    let stats = gpu.launch(&kernel, blocks, 64);
    (result.load(0), stats.simulated_seconds)
}

/// Histogram with atomic bin updates — the classic contended-atomics
/// pattern (every lane may hit the same bin).
pub struct HistogramKernel {
    /// Input values.
    pub values: DeviceBuffer,
    /// Bin accumulators (counts stored as f32 — the device's atomic unit).
    pub bins: DeviceBuffer,
    /// Inclusive lower bound of the histogram range.
    pub lo: f32,
    /// Exclusive upper bound of the histogram range.
    pub hi: f32,
    /// Grid size this kernel will be launched with.
    pub grid_blocks: usize,
}

impl Kernel for HistogramKernel {
    fn block(&self, ctx: &mut BlockCtx) {
        let lanes = ctx.lanes();
        let stride = self.grid_blocks * lanes;
        let n = self.values.len();
        let nbins = self.bins.len();
        for u in 0..lanes {
            let mut i = ctx.block_id() * lanes + u;
            while i < n {
                let v = ctx.read(&self.values, i);
                if v >= self.lo && v < self.hi {
                    let bin = ((v - self.lo) / (self.hi - self.lo) * nbins as f32) as usize;
                    ctx.atomic_add(&self.bins, bin.min(nbins - 1), 1.0);
                }
                i += stride;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_perf_model::GpuProfile;

    fn gpu() -> Gpu {
        Gpu::new(GpuProfile::quadro_m4000())
    }

    #[test]
    fn axpy_matches_host() {
        let g = gpu();
        let n = 10_000;
        let xv: Vec<f32> = (0..n).map(|i| (i as f32) * 0.001).collect();
        let yv: Vec<f32> = (0..n).map(|i| 1.0 - (i as f32) * 0.0005).collect();
        let x = DeviceBuffer::from_host(&xv);
        let y = DeviceBuffer::from_host(&yv);
        let secs = device_axpy(&g, 2.5, &x, &y);
        assert!(secs > 0.0);
        let out = y.to_host();
        for i in [0usize, 1, 999, 9_999] {
            let want = yv[i] + 2.5 * xv[i];
            assert!((out[i] - want).abs() < 1e-5, "{} vs {want}", out[i]);
        }
    }

    #[test]
    fn dot_matches_host_reduction() {
        let g = gpu();
        let n = 50_000;
        let xv: Vec<f32> = (0..n).map(|i| ((i % 13) as f32 - 6.0) * 0.01).collect();
        let yv: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) * 0.01).collect();
        let want: f64 = xv.iter().zip(&yv).map(|(&a, &b)| a as f64 * b as f64).sum();
        let (got, secs) = device_dot(
            &g,
            &DeviceBuffer::from_host(&xv),
            &DeviceBuffer::from_host(&yv),
        );
        assert!(secs > 0.0);
        assert!(
            (got as f64 - want).abs() < 1e-3 * want.abs().max(1.0),
            "device {got} vs host {want}"
        );
    }

    #[test]
    fn dot_is_deterministic_single_thread() {
        let g = Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1);
        let xv: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let x = DeviceBuffer::from_host(&xv);
        let (a, _) = device_dot(&g, &x, &x);
        let (b, _) = device_dot(&g, &x, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_counts_everything_despite_contention() {
        let g = gpu();
        let n = 20_000;
        let values: Vec<f32> = (0..n).map(|i| (i % 100) as f32 / 100.0).collect();
        let bins = DeviceBuffer::zeroed(10);
        let blocks = g.profile().sm_count * 4;
        let kernel = HistogramKernel {
            values: DeviceBuffer::from_host(&values),
            bins: bins.clone(),
            lo: 0.0,
            hi: 1.0,
            grid_blocks: blocks,
        };
        let stats = g.launch(&kernel, blocks, 64);
        // Atomics: one per in-range value — none lost.
        assert_eq!(stats.total.atomics, n as u64);
        let counts = bins.to_host();
        let total: f32 = counts.iter().sum();
        assert_eq!(total, n as f32);
        // Uniform input → uniform bins.
        for &c in &counts {
            assert_eq!(c, (n / 10) as f32);
        }
    }

    #[test]
    fn out_of_range_values_are_dropped() {
        let g = gpu().with_host_threads(1);
        let values = DeviceBuffer::from_host(&[-1.0, 0.5, 2.0]);
        let bins = DeviceBuffer::zeroed(4);
        let kernel = HistogramKernel {
            values,
            bins: bins.clone(),
            lo: 0.0,
            hi: 1.0,
            grid_blocks: 2,
        };
        g.launch(&kernel, 2, 32);
        assert_eq!(bins.to_host().iter().sum::<f32>(), 1.0);
    }
}

//! Train/test splitting.
//!
//! The paper's webspam sample "was obtained by sampling the training
//! examples uniformly at random to create a 75%/25% train/test split of the
//! full dataset" — this module reproduces that operation for any labelled
//! dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scd_sparse::io::LabelledData;
use scd_sparse::CooMatrix;

/// Split a dataset by example: each row lands in the train side with
/// probability `train_fraction`, uniformly at random from `seed`.
/// Feature-space width is preserved on both sides.
///
/// # Panics
/// Panics if `train_fraction` is outside `[0, 1]`.
pub fn train_test_split(
    data: &LabelledData,
    train_fraction: f64,
    seed: u64,
) -> (LabelledData, LabelledData) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must be in [0, 1], got {train_fraction}"
    );
    let n = data.matrix.rows();
    let m = data.matrix.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < train_fraction).collect();

    // New row index on its side, per original row.
    let mut train_row = vec![usize::MAX; n];
    let mut test_row = vec![usize::MAX; n];
    let mut train_labels = Vec::new();
    let mut test_labels = Vec::new();
    for (r, &is_train) in assignment.iter().enumerate() {
        if is_train {
            train_row[r] = train_labels.len();
            train_labels.push(data.labels[r]);
        } else {
            test_row[r] = test_labels.len();
            test_labels.push(data.labels[r]);
        }
    }

    let mut train_matrix = CooMatrix::new(train_labels.len(), m);
    let mut test_matrix = CooMatrix::new(test_labels.len(), m);
    for (r, c, v) in data.matrix.iter() {
        if assignment[r] {
            train_matrix
                .push(train_row[r], c, v)
                .expect("train row index in range");
        } else {
            test_matrix
                .push(test_row[r], c, v)
                .expect("test row index in range");
        }
    }
    (
        LabelledData {
            matrix: train_matrix,
            labels: train_labels,
        },
        LabelledData {
            matrix: test_matrix,
            labels: test_labels,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webspam_like;

    #[test]
    fn split_preserves_rows_and_nnz() {
        let d = webspam_like(200, 100, 8, 1);
        let (train, test) = train_test_split(&d, 0.75, 9);
        assert_eq!(train.matrix.rows() + test.matrix.rows(), 200);
        assert_eq!(train.labels.len(), train.matrix.rows());
        assert_eq!(test.labels.len(), test.matrix.rows());
        assert_eq!(train.matrix.nnz() + test.matrix.nnz(), d.matrix.nnz());
        assert_eq!(train.matrix.cols(), 100);
        assert_eq!(test.matrix.cols(), 100);
    }

    #[test]
    fn split_fraction_roughly_honoured() {
        let d = webspam_like(1000, 50, 5, 2);
        let (train, _test) = train_test_split(&d, 0.75, 3);
        let frac = train.matrix.rows() as f64 / 1000.0;
        assert!((0.70..0.80).contains(&frac), "got {frac}");
    }

    #[test]
    fn split_is_deterministic() {
        let d = webspam_like(100, 50, 5, 4);
        let (a, _) = train_test_split(&d, 0.5, 7);
        let (b, _) = train_test_split(&d, 0.5, 7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.matrix.to_dense(), b.matrix.to_dense());
    }

    #[test]
    fn extreme_fractions() {
        let d = webspam_like(50, 30, 4, 5);
        let (train, test) = train_test_split(&d, 1.0, 1);
        assert_eq!(train.matrix.rows(), 50);
        assert_eq!(test.matrix.rows(), 0);
        let (train, test) = train_test_split(&d, 0.0, 1);
        assert_eq!(train.matrix.rows(), 0);
        assert_eq!(test.matrix.rows(), 50);
    }

    #[test]
    fn rows_keep_their_labels() {
        let d = webspam_like(100, 40, 4, 6);
        let (train, test) = train_test_split(&d, 0.6, 8);
        // Every (label, row-signature) pair in the output exists in the input.
        let sig = |m: &CooMatrix, rows: usize| -> Vec<Vec<(usize, f32)>> {
            let mut per = vec![Vec::new(); rows];
            for (r, c, v) in m.iter() {
                per[r].push((c, v));
            }
            per
        };
        let orig = sig(&d.matrix, 100);
        let tr = sig(&train.matrix, train.matrix.rows());
        let te = sig(&test.matrix, test.matrix.rows());
        for (rows, labels) in [(&tr, &train.labels), (&te, &test.labels)] {
            for (r, row_sig) in rows.iter().enumerate() {
                let found = orig
                    .iter()
                    .enumerate()
                    .any(|(o, s)| s == row_sig && d.labels[o] == labels[r]);
                assert!(found, "row {r} lost its label or content");
            }
        }
    }
}

//! Dataset summary statistics.
//!
//! The experiment harness prints these alongside every figure so the scale
//! of the synthetic stand-ins (versus the paper's webspam/criteo) is always
//! visible in the output.

use scd_sparse::io::LabelledData;

/// Structural summary of a labelled sparse dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Examples (N).
    pub rows: usize,
    /// Features (M).
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// nnz / (rows × cols).
    pub density: f64,
    /// Mean nonzeros per example.
    pub avg_nnz_per_row: f64,
    /// Mean nonzeros per feature.
    pub avg_nnz_per_col: f64,
    /// Fraction of +1 labels (for ±1 labelled sets; NaN-free otherwise).
    pub positive_fraction: f64,
    /// CSR memory footprint in bytes (4 B values + 4 B indices + offsets).
    pub csr_bytes: usize,
}

impl DatasetStats {
    /// Compute the summary for a dataset.
    pub fn of(data: &LabelledData) -> Self {
        let rows = data.matrix.rows();
        let cols = data.matrix.cols();
        let nnz = data.matrix.nnz();
        let positives = data.labels.iter().filter(|&&y| y > 0.0).count();
        DatasetStats {
            rows,
            cols,
            nnz,
            density: nnz as f64 / (rows.max(1) as f64 * cols.max(1) as f64),
            avg_nnz_per_row: nnz as f64 / rows.max(1) as f64,
            avg_nnz_per_col: nnz as f64 / cols.max(1) as f64,
            positive_fraction: positives as f64 / data.labels.len().max(1) as f64,
            csr_bytes: nnz * 8 + (rows + 1) * 8,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N={} M={} nnz={} density={:.2e} nnz/row={:.1} nnz/col={:.1} pos={:.1}% csr={:.1} MB",
            self.rows,
            self.cols,
            self.nnz,
            self.density,
            self.avg_nnz_per_row,
            self.avg_nnz_per_col,
            100.0 * self.positive_fraction,
            self.csr_bytes as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{criteo_like, webspam_like};

    #[test]
    fn stats_of_webspam_like() {
        let d = webspam_like(100, 400, 10, 1);
        let s = DatasetStats::of(&d);
        assert_eq!(s.rows, 100);
        assert_eq!(s.cols, 400);
        assert_eq!(s.nnz, d.matrix.nnz());
        assert!((s.avg_nnz_per_row - s.nnz as f64 / 100.0).abs() < 1e-12);
        assert!(s.density > 0.0 && s.density < 1.0);
        assert!(s.positive_fraction > 0.0 && s.positive_fraction < 1.0);
    }

    #[test]
    fn stats_of_criteo_like_fixed_row_nnz() {
        let d = criteo_like(50, 6, 20, 2);
        let s = DatasetStats::of(&d);
        assert_eq!(s.nnz, 300);
        assert!((s.avg_nnz_per_row - 6.0).abs() < 1e-12);
        assert_eq!(s.csr_bytes, 300 * 8 + 51 * 8);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let d = criteo_like(10, 2, 5, 3);
        let text = DatasetStats::of(&d).to_string();
        assert!(text.contains("N=10"));
        assert!(text.contains("M=10"));
        assert!(text.contains("nnz=20"));
    }
}

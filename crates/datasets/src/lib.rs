//! Synthetic dataset generators for the TPA-SCD reproduction.
//!
//! The paper evaluates on two real datasets that cannot ship with this
//! repository (webspam: 262,938 examples × 680,715 distinct features,
//! ≈7.3 GB; criteo 1-day sample: ≈200 M examples × 75 M features, ≈40 GB).
//! These generators produce scaled-down matrices with the same *salient
//! statistics* — the properties SCD convergence actually depends on:
//!
//! * [`webspam_like`] — many more features than examples, power-law feature
//!   popularity (a few dense columns, a long sparse tail), positive
//!   tf-idf-style values, ±1 labels from a sparse ground-truth model.
//! * [`criteo_like`] — one-hot categorical rows whose nonzero values are all
//!   exactly 1.0 (the paper's footnote 2), fixed nonzeros per row (one per
//!   categorical field), heavily skewed feature frequencies, ±1 labels.
//! * [`dense_gaussian`] — a small dense design matrix for unit tests and
//!   closed-form cross-checks.
//! * [`dense_random`] — a dense design matrix with ±1 labels, valid for
//!   every objective (ridge, logistic, SVM, lasso); the shared fixture of
//!   the cross-objective convergence tests.
//!
//! All generators are deterministic in their seed. Real datasets in LIBSVM
//! format can be loaded instead via [`scd_sparse::io::read_libsvm`].

pub mod rowgen;
pub mod split;
pub mod stats;

pub use rowgen::{CriteoSpec, WebspamStreamSpec, ZipfTable};
pub use split::train_test_split;
pub use stats::DatasetStats;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scd_sparse::io::LabelledData;
use scd_sparse::CooMatrix;

/// Draw one standard normal deviate via Box–Muller (keeps `rand_distr` out
/// of the dependency tree).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw from a [`ZipfTable`] with a sequential RNG. Routes through the
/// same [`ZipfTable::locate`] interval arithmetic as the hash-derived
/// generators in [`rowgen`], and consumes exactly one `gen_range` call —
/// preserving the frozen byte stream of [`webspam_like`].
fn zipf_sample(zipf: &ZipfTable, rng: &mut StdRng) -> usize {
    zipf.locate(rng.gen_range(0.0..zipf.total()))
}

/// Generate a webspam-shaped problem: `n` examples, `m` features
/// (`m` should exceed `n` to match webspam's geometry), an average of
/// `avg_nnz_per_row` nonzeros per example.
///
/// Feature popularity follows a Zipf(1.1) law, values are |N(0,1)| + 0.1
/// (positive, tf-idf-like), and labels are the sign of a sparse
/// ground-truth linear model's response plus 10% label noise — so ridge
/// regression on the output is a well-posed classification surrogate, like
/// the paper's webspam task.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn webspam_like(n: usize, m: usize, avg_nnz_per_row: usize, seed: u64) -> LabelledData {
    webspam_like_custom(n, m, avg_nnz_per_row, 1.1, seed)
}

/// [`webspam_like`] with an explicit Zipf exponent for the feature
/// popularity law. Larger exponents concentrate mass on a few head
/// features (denser columns, more cross-worker contention in the
/// distributed experiments); the default 1.1 mimics webspam's trigram
/// skew.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn webspam_like_custom(
    n: usize,
    m: usize,
    avg_nnz_per_row: usize,
    zipf_exponent: f64,
    seed: u64,
) -> LabelledData {
    assert!(n > 0 && m > 0 && avg_nnz_per_row > 0, "empty dataset requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ZipfTable::new(m, zipf_exponent);

    // Sparse ground truth over the popular features.
    let truth_support = (m / 10).max(1);
    let mut truth = vec![0.0f64; m];
    for slot in truth.iter_mut().take(truth_support) {
        *slot = normal(&mut rng);
    }

    let mut matrix = CooMatrix::with_capacity(n, m, n * avg_nnz_per_row);
    let mut labels = Vec::with_capacity(n);
    let mut cols_scratch: Vec<usize> = Vec::new();
    for row in 0..n {
        // Row lengths vary geometrically around the mean (webspam's document
        // lengths are broad-tailed).
        let len_factor = 0.5 + rng.gen::<f64>() * 1.5;
        let row_nnz = ((avg_nnz_per_row as f64 * len_factor) as usize).clamp(1, m);
        cols_scratch.clear();
        for _ in 0..row_nnz {
            cols_scratch.push(zipf_sample(&zipf, &mut rng));
        }
        cols_scratch.sort_unstable();
        cols_scratch.dedup();
        let mut response = 0.0f64;
        for &c in &cols_scratch {
            let v = (normal(&mut rng).abs() + 0.1) as f32;
            matrix.push(row, c, v).expect("indices in range by construction");
            response += v as f64 * truth[c];
        }
        let noisy = response + 0.1 * normal(&mut rng);
        labels.push(if noisy >= 0.0 { 1.0 } else { -1.0 });
    }
    LabelledData { matrix, labels }
}

/// Generate a criteo-shaped problem: `n` examples over `fields` categorical
/// fields with `cardinality` possible values each (so `m = fields ×
/// cardinality` features). Every row has exactly one active feature per
/// field and **every stored value is exactly 1.0**, matching the paper's
/// note that "the values in the training data matrix are always 1".
/// Field-value frequencies follow Zipf(1.05), reproducing criteo's heavy
/// head/tail skew. Labels are ±1 from a dense-on-support ground truth.
///
/// Rows come from the hash-derived [`CriteoSpec`] — the identical routine
/// the out-of-core streaming writer in `scd-store` uses, so a shard
/// directory written with the same parameters loads back **bit-identical**
/// to this in-memory dataset.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn criteo_like(n: usize, fields: usize, cardinality: usize, seed: u64) -> LabelledData {
    let spec = CriteoSpec::new(n, fields, cardinality, seed);
    let m = spec.cols();
    let mut matrix = CooMatrix::with_capacity(n, m, n * fields);
    let mut labels = Vec::with_capacity(n);
    let mut indices = Vec::with_capacity(fields);
    let mut values = Vec::with_capacity(fields);
    for row in 0..n {
        labels.push(spec.row(row, &mut indices, &mut values));
        for (&c, &v) in indices.iter().zip(&values) {
            matrix.push(row, c as usize, v).expect("indices in range by construction");
        }
    }
    LabelledData { matrix, labels }
}

/// Scale every stored matrix value by `factor` in place (labels are left
/// untouched). Used by the figure harness to tune the effective
/// regularization ratio Nλ/‖a‖² of scaled-down stand-ins to the paper's
/// regime.
pub fn scale_values(data: &LabelledData, factor: f32) -> LabelledData {
    let mut matrix = CooMatrix::with_capacity(data.matrix.rows(), data.matrix.cols(), data.matrix.nnz());
    for (r, c, v) in data.matrix.iter() {
        matrix.push(r, c, v * factor).expect("same shape");
    }
    LabelledData {
        matrix,
        labels: data.labels.clone(),
    }
}

/// Generate a small dense Gaussian regression problem: A ~ N(0,1)^{n×m},
/// y = Aβ* + 0.01·noise with β* ~ N(0,1). Used by unit tests that compare
/// SCD against the closed-form ridge solution.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn dense_gaussian(n: usize, m: usize, seed: u64) -> LabelledData {
    assert!(n > 0 && m > 0, "empty dataset requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<f64> = (0..m).map(|_| normal(&mut rng)).collect();
    let mut matrix = CooMatrix::with_capacity(n, m, n * m);
    let mut labels = Vec::with_capacity(n);
    for row in 0..n {
        let mut response = 0.0f64;
        for (col, &t) in truth.iter().enumerate() {
            let v = normal(&mut rng) as f32;
            matrix.push(row, col, v).expect("in range");
            response += v as f64 * t;
        }
        labels.push((response + 0.01 * normal(&mut rng)) as f32);
    }
    LabelledData { matrix, labels }
}

/// Generate a dense random *classification* problem: A ~ N(0,1)^{n×m},
/// labels y = sign(Aβ* + 0.3·noise) ∈ {−1, +1} with β* ~ N(0,1). The
/// ±1 labels make it valid for every objective (ridge treats them as a
/// regression target, SVM/logistic as classes), so it is the shared
/// fixture for the cross-objective convergence tests.
///
/// # Panics
/// Panics if any dimension is zero or `n < 2` (both classes must be
/// representable).
pub fn dense_random(n: usize, m: usize, seed: u64) -> LabelledData {
    assert!(n >= 2 && m > 0, "dense_random needs n ≥ 2 and m ≥ 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<f64> = (0..m).map(|_| normal(&mut rng)).collect();
    let mut matrix = CooMatrix::with_capacity(n, m, n * m);
    let mut labels = Vec::with_capacity(n);
    for row in 0..n {
        let mut response = 0.0f64;
        for (col, &t) in truth.iter().enumerate() {
            let v = normal(&mut rng) as f32;
            matrix.push(row, col, v).expect("in range");
            response += v as f64 * t;
        }
        let noisy = response + 0.3 * normal(&mut rng);
        labels.push(if noisy >= 0.0 { 1.0 } else { -1.0 });
    }
    // Guarantee both classes so classification duals are never degenerate:
    // flip the last rows if one class is missing.
    if labels.iter().all(|&y| y == 1.0) {
        labels[n - 1] = -1.0;
    } else if labels.iter().all(|&y| y == -1.0) {
        labels[n - 1] = 1.0;
    }
    LabelledData { matrix, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webspam_like_is_deterministic() {
        let a = webspam_like(50, 200, 10, 7);
        let b = webspam_like(50, 200, 10, 7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.matrix.to_dense(), b.matrix.to_dense());
        let c = webspam_like(50, 200, 10, 8);
        assert_ne!(a.matrix.to_dense(), c.matrix.to_dense());
    }

    #[test]
    fn webspam_like_shape_and_labels() {
        let d = webspam_like(100, 400, 12, 1);
        assert_eq!(d.matrix.rows(), 100);
        assert_eq!(d.matrix.cols(), 400);
        assert_eq!(d.labels.len(), 100);
        assert!(d.labels.iter().all(|&y| y == 1.0 || y == -1.0));
        // Both classes present.
        assert!(d.labels.iter().any(|&y| y == 1.0));
        assert!(d.labels.iter().any(|&y| y == -1.0));
        // Mean nnz per row near requested (dedup trims a little).
        let per_row = d.matrix.nnz() as f64 / 100.0;
        assert!((6.0..16.0).contains(&per_row), "got {per_row}");
    }

    #[test]
    fn webspam_values_positive() {
        let d = webspam_like(30, 100, 8, 3);
        for (_, _, v) in d.matrix.iter() {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn webspam_popularity_is_skewed() {
        let d = webspam_like(200, 300, 20, 5);
        let csc = d.matrix.to_csc();
        let mut col_counts: Vec<usize> =
            (0..300).map(|c| csc.col(c).nnz()).collect();
        col_counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = col_counts[..30].iter().sum();
        let total: usize = col_counts.iter().sum();
        // Zipf(1.1): top-10% of features should carry a large share.
        assert!(
            head as f64 > 0.4 * total as f64,
            "head share {} of {total}",
            head
        );
    }

    #[test]
    fn criteo_like_values_are_all_one() {
        let d = criteo_like(100, 5, 50, 11);
        assert_eq!(d.matrix.cols(), 250);
        for (_, _, v) in d.matrix.iter() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn criteo_like_one_feature_per_field() {
        let d = criteo_like(80, 4, 25, 2);
        let csr = d.matrix.to_csr();
        for row in csr.iter_rows() {
            assert_eq!(row.nnz(), 4, "exactly one nonzero per field");
            for (k, &c) in row.indices.iter().enumerate() {
                let field = c as usize / 25;
                assert_eq!(field, k, "field order preserved");
            }
        }
    }

    #[test]
    fn criteo_like_deterministic() {
        let a = criteo_like(40, 3, 10, 9);
        let b = criteo_like(40, 3, 10, 9);
        assert_eq!(a.matrix.to_dense(), b.matrix.to_dense());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn dense_gaussian_is_fully_dense() {
        let d = dense_gaussian(10, 6, 4);
        assert_eq!(d.matrix.nnz(), 60);
        assert_eq!(d.labels.len(), 10);
        // Labels are real-valued responses, not ±1.
        assert!(d.labels.iter().any(|&y| y != 1.0 && y != -1.0));
    }

    #[test]
    fn dense_random_has_binary_labels_and_both_classes() {
        let d = dense_random(40, 8, 13);
        assert_eq!(d.matrix.nnz(), 320);
        assert!(d.labels.iter().all(|&y| y == 1.0 || y == -1.0));
        assert!(d.labels.iter().any(|&y| y == 1.0));
        assert!(d.labels.iter().any(|&y| y == -1.0));
        let e = dense_random(40, 8, 13);
        assert_eq!(d.labels, e.labels);
        assert_eq!(d.matrix.to_dense(), e.matrix.to_dense());
    }

    #[test]
    fn normal_moments_sane() {
        let mut rng = StdRng::seed_from_u64(123);
        let draws: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / draws.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn scale_values_scales_only_matrix() {
        let d = webspam_like(20, 30, 5, 1);
        let s = scale_values(&d, 0.5);
        assert_eq!(s.labels, d.labels);
        let (orig, scaled) = (d.matrix.to_dense(), s.matrix.to_dense());
        for (ro, rs) in orig.iter().zip(&scaled) {
            for (a, b) in ro.iter().zip(rs) {
                assert!((a * 0.5 - b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn zipf_head_is_heaviest() {
        let z = ZipfTable::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(55);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[zipf_sample(&z, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
    }
}

//! Row-addressable generation: the shared core of the in-memory
//! [`crate::criteo_like`] generator and the out-of-core streaming writer
//! in `scd-store`.
//!
//! The sequential-RNG generators ([`crate::webspam_like`]) draw a single
//! stream, so producing row `r` requires producing rows `0..r` first, and
//! the ground-truth model costs O(m) memory. A criteo-scale stream cannot
//! afford either. Here every random quantity is *hash-derived* from
//! `(seed, purpose-tag, row, column)` via splitmix64, so
//!
//! * any row can be generated independently, in any order, in O(nnz)
//!   memory — the property the bounded-RSS streaming writer needs; and
//! * the in-memory path and the streaming path call the exact same
//!   [`CriteoSpec::row`], making shard files **bit-identical** to the
//!   in-memory dataset on the same seed.
//!
//! [`ZipfTable`] is shared with the sequential generators: its
//! [`ZipfTable::locate`] serves both the legacy `StdRng` path (preserving
//! `webspam_like`'s frozen byte stream) and the hash path.

/// The Zipf exponent of [`CriteoSpec`] field-value frequencies (criteo's
/// heavy head/tail skew; also the constant `criteo_like` always used).
pub const CRITEO_ZIPF_EXPONENT: f64 = 1.05;

/// The Zipf exponent of [`WebspamStreamSpec`] feature popularity.
pub const WEBSPAM_ZIPF_EXPONENT: f64 = 1.1;

// Purpose tags keeping the hash streams of distinct quantities disjoint.
const TAG_CRITEO_TRUTH: u64 = 0x43_52_49_54_52_55_54_48; // "CRITRUTH"
const TAG_CRITEO_COL: u64 = 0x43_52_49_54_43_4F_4C_53; // "CRITCOLS"
const TAG_CRITEO_NOISE: u64 = 0x43_52_49_54_4E_4F_49_53; // "CRITNOIS"
const TAG_WEB_TRUTH: u64 = 0x57_45_42_53_54_52_55_54; // "WEBSTRUT"
const TAG_WEB_LEN: u64 = 0x57_45_42_53_4C_45_4E_53; // "WEBSLENS"
const TAG_WEB_COL: u64 = 0x57_45_42_53_43_4F_4C_53; // "WEBSCOLS"
const TAG_WEB_VAL: u64 = 0x57_45_42_53_56_41_4C_53; // "WEBSVALS"
const TAG_WEB_NOISE: u64 = 0x57_45_42_53_4E_4F_49_53; // "WEBSNOIS"

/// SplitMix64: the finalizer used for all hash-derived randomness. Full
/// 64-bit avalanche, so consecutive inputs give statistically independent
/// outputs.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash `(seed, tag, a, b)` to one well-mixed u64: a three-round
/// splitmix64 chain absorbing each input between rounds.
fn mix(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let mut x = splitmix64(seed ^ tag);
    x = splitmix64(x ^ a);
    splitmix64(x ^ b)
}

/// Map a hash to f64 in `[0, 1)` (53 uniform mantissa bits).
fn unit_co(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a hash to f64 in `(0, 1]` — safe as a logarithm argument.
fn unit_oc(h: u64) -> f64 {
    ((h >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard normal deviate derived from `(seed, tag, a, b)` via
/// Box–Muller over two independent hashes.
pub fn hash_normal(seed: u64, tag: u64, a: u64, b: u64) -> f64 {
    let u1 = unit_oc(mix(seed, tag, a, b.wrapping_mul(2)));
    let u2 = unit_co(mix(seed, tag, a, b.wrapping_mul(2) ^ 1));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Precomputed cumulative weights for Zipf-like sampling: P(i) ∝ 1/(i+1)^s.
/// O(domain) memory — domains here are per-field cardinalities or feature
/// counts of scaled-down problems, not the full dataset.
pub struct ZipfTable {
    cumulative: Vec<f64>,
}

impl ZipfTable {
    /// Table over `{0, .., n-1}` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfTable needs a non-empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        ZipfTable { cumulative }
    }

    /// Sum of all weights (the upper bound of [`ZipfTable::locate`]'s
    /// domain).
    pub fn total(&self) -> f64 {
        *self.cumulative.last().expect("non-empty by construction")
    }

    /// The index whose cumulative-weight interval contains `u ∈ [0,
    /// total)`. Both the sequential-RNG path (`locate(rng.gen_range(0.0..
    /// total))`) and the hash path route through here, so the two agree on
    /// the interval arithmetic by construction.
    pub fn locate(&self, u: f64) -> usize {
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }

    /// Sample from a uniform deviate `unit ∈ [0, 1)`.
    pub fn sample_unit(&self, unit: f64) -> usize {
        self.locate(unit * self.total())
    }
}

/// A criteo-shaped dataset, described (not materialized): `rows` examples
/// over `fields` categorical fields of `cardinality` values each, all
/// stored values exactly 1.0, Zipf(1.05) value popularity, ±1 labels from
/// a hash-derived ground truth. [`CriteoSpec::row`] produces any row
/// independently — the contract that makes streaming-to-disk and
/// in-memory generation bit-identical.
pub struct CriteoSpec {
    /// Number of examples N.
    pub rows: usize,
    /// Categorical fields per example (= nnz per row).
    pub fields: usize,
    /// Values per field; the feature space is `fields × cardinality` wide.
    pub cardinality: usize,
    /// Generator seed.
    pub seed: u64,
    zipf: ZipfTable,
}

impl CriteoSpec {
    /// Describe a dataset; precomputes only the per-field Zipf table.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, fields: usize, cardinality: usize, seed: u64) -> Self {
        assert!(
            rows > 0 && fields > 0 && cardinality > 0,
            "empty dataset requested"
        );
        CriteoSpec {
            rows,
            fields,
            cardinality,
            seed,
            zipf: ZipfTable::new(cardinality, CRITEO_ZIPF_EXPONENT),
        }
    }

    /// Feature-space width M = fields × cardinality.
    pub fn cols(&self) -> usize {
        self.fields * self.cardinality
    }

    /// Ground-truth model weight of feature `c` (hash-derived: no O(M)
    /// weight vector is ever materialized).
    pub fn truth(&self, c: usize) -> f64 {
        0.3 * hash_normal(self.seed, TAG_CRITEO_TRUTH, c as u64, 0)
    }

    /// Generate row `r` into `indices`/`values` (cleared first; indices
    /// strictly increasing, one per field; values all 1.0) and return its
    /// ±1 label.
    pub fn row(&self, r: usize, indices: &mut Vec<u32>, values: &mut Vec<f32>) -> f32 {
        indices.clear();
        values.clear();
        let mut response = 0.0f64;
        for field in 0..self.fields {
            let u = unit_co(mix(self.seed, TAG_CRITEO_COL, r as u64, field as u64));
            let c = field * self.cardinality + self.zipf.sample_unit(u);
            indices.push(c as u32);
            values.push(1.0);
            response += self.truth(c);
        }
        let noisy = response + 0.2 * hash_normal(self.seed, TAG_CRITEO_NOISE, r as u64, 0);
        if noisy >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// A webspam-shaped dataset for streaming: `rows` examples, `cols`
/// features, Zipf(1.1) feature popularity, positive |N(0,1)|+0.1 values,
/// ±1 labels from a sparse ground truth over the head features. Same
/// *statistics* as [`crate::webspam_like`] but hash-derived per row — its
/// byte stream intentionally differs from the sequential generator, whose
/// output is frozen by golden files.
pub struct WebspamStreamSpec {
    /// Number of examples N.
    pub rows: usize,
    /// Number of features M.
    pub cols: usize,
    /// Average nonzeros per example (actual rows vary ×[0.5, 2)).
    pub avg_nnz_per_row: usize,
    /// Generator seed.
    pub seed: u64,
    zipf: ZipfTable,
    truth_support: usize,
}

impl WebspamStreamSpec {
    /// Describe a dataset; precomputes only the feature Zipf table.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, cols: usize, avg_nnz_per_row: usize, seed: u64) -> Self {
        assert!(
            rows > 0 && cols > 0 && avg_nnz_per_row > 0,
            "empty dataset requested"
        );
        WebspamStreamSpec {
            rows,
            cols,
            avg_nnz_per_row,
            seed,
            zipf: ZipfTable::new(cols, WEBSPAM_ZIPF_EXPONENT),
            truth_support: (cols / 10).max(1),
        }
    }

    /// Ground-truth weight of feature `c`: nonzero only on the popular
    /// head (first tenth of the feature space).
    pub fn truth(&self, c: usize) -> f64 {
        if c < self.truth_support {
            hash_normal(self.seed, TAG_WEB_TRUTH, c as u64, 0)
        } else {
            0.0
        }
    }

    /// Generate row `r` (cleared into `indices`/`values`; indices strictly
    /// increasing after dedup) and return its ±1 label. Values are keyed
    /// on `(row, column)` so deduplication cannot shift them.
    pub fn row(&self, r: usize, indices: &mut Vec<u32>, values: &mut Vec<f32>) -> f32 {
        indices.clear();
        values.clear();
        let len_factor = 0.5 + unit_co(mix(self.seed, TAG_WEB_LEN, r as u64, 0)) * 1.5;
        let row_nnz =
            ((self.avg_nnz_per_row as f64 * len_factor) as usize).clamp(1, self.cols);
        for k in 0..row_nnz {
            let u = unit_co(mix(self.seed, TAG_WEB_COL, r as u64, k as u64));
            indices.push(self.zipf.sample_unit(u) as u32);
        }
        indices.sort_unstable();
        indices.dedup();
        let mut response = 0.0f64;
        for &c in indices.iter() {
            let v = (hash_normal(self.seed, TAG_WEB_VAL, r as u64, c as u64).abs() + 0.1) as f32;
            values.push(v);
            response += v as f64 * self.truth(c as usize);
        }
        let noisy = response + 0.1 * hash_normal(self.seed, TAG_WEB_NOISE, r as u64, 0);
        if noisy >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // First three outputs of a splitmix64 stream seeded with 0
        // (reference values from the canonical C implementation).
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(0x9E3779B97F4A7C15), 0x6E789E6AA1B965F4);
        assert_eq!(
            splitmix64(0x9E3779B97F4A7C15u64.wrapping_mul(2)),
            0x06C45D188009454F
        );
    }

    #[test]
    fn units_stay_in_range() {
        for i in 0..10_000u64 {
            let h = splitmix64(i);
            let co = unit_co(h);
            let oc = unit_oc(h);
            assert!((0.0..1.0).contains(&co), "{co}");
            assert!(co < 1.0);
            assert!(oc > 0.0 && oc <= 1.0, "{oc}");
        }
    }

    #[test]
    fn hash_normal_moments_sane() {
        let draws: Vec<f64> = (0..20_000)
            .map(|i| hash_normal(42, 7, i, 0))
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var =
            draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn hash_streams_with_distinct_tags_differ() {
        let a: Vec<u64> = (0..100).map(|i| mix(1, TAG_CRITEO_COL, i, 0)).collect();
        let b: Vec<u64> = (0..100).map(|i| mix(1, TAG_CRITEO_NOISE, i, 0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_table_locate_covers_domain() {
        let z = ZipfTable::new(100, 1.1);
        assert_eq!(z.locate(0.0), 0);
        // Just below total lands on the last index.
        assert_eq!(z.locate(z.total() * (1.0 - 1e-12)), 99);
        // sample_unit's head is heaviest.
        let mut counts = [0usize; 100];
        for i in 0..20_000u64 {
            counts[z.sample_unit(unit_co(splitmix64(i)))] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn criteo_rows_are_order_independent() {
        let spec = CriteoSpec::new(50, 4, 16, 9);
        let (mut i1, mut v1) = (Vec::new(), Vec::new());
        let (mut i2, mut v2) = (Vec::new(), Vec::new());
        // Generate row 30 twice: cold, and after generating other rows.
        let y1 = spec.row(30, &mut i1, &mut v1);
        for r in 0..50 {
            spec.row(r, &mut i2, &mut v2);
        }
        let y2 = spec.row(30, &mut i2, &mut v2);
        assert_eq!(y1, y2);
        assert_eq!(i1, i2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn criteo_row_shape() {
        let spec = CriteoSpec::new(10, 6, 32, 3);
        assert_eq!(spec.cols(), 192);
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for r in 0..10 {
            let y = spec.row(r, &mut idx, &mut val);
            assert!(y == 1.0 || y == -1.0);
            assert_eq!(idx.len(), 6, "one feature per field");
            assert!(val.iter().all(|&v| v == 1.0));
            for (field, &c) in idx.iter().enumerate() {
                assert_eq!(c as usize / 32, field, "field order");
            }
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        }
    }

    #[test]
    fn webspam_stream_row_shape() {
        let spec = WebspamStreamSpec::new(100, 500, 12, 5);
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        let mut total_nnz = 0usize;
        let mut pos = 0usize;
        for r in 0..100 {
            let y = spec.row(r, &mut idx, &mut val);
            assert!(y == 1.0 || y == -1.0);
            if y == 1.0 {
                pos += 1;
            }
            assert_eq!(idx.len(), val.len());
            assert!(!idx.is_empty());
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
            assert!(idx.iter().all(|&c| (c as usize) < 500));
            assert!(val.iter().all(|&v| v > 0.0), "positive values");
            total_nnz += idx.len();
        }
        // Mean nnz near requested (dedup trims a little).
        let per_row = total_nnz as f64 / 100.0;
        assert!((7.0..18.0).contains(&per_row), "got {per_row}");
        // Both classes present.
        assert!(pos > 0 && pos < 100, "pos {pos}");
    }

    #[test]
    fn webspam_stream_rows_are_order_independent() {
        let spec = WebspamStreamSpec::new(40, 300, 8, 77);
        let (mut i1, mut v1) = (Vec::new(), Vec::new());
        let (mut i2, mut v2) = (Vec::new(), Vec::new());
        let y1 = spec.row(17, &mut i1, &mut v1);
        for r in (0..40).rev() {
            spec.row(r, &mut i2, &mut v2);
        }
        let y2 = spec.row(17, &mut i2, &mut v2);
        assert_eq!((y1, &i1, &v1), (y2, &i2, &v2));
    }
}

//! Golden equivalence: the TPA-SCD kernels ported to the bulk memory API
//! must be *bit-identical* to the original element-wise kernels — same
//! weight and shared-vector trajectories, and the same simulated clock —
//! when blocks run deterministically (`with_host_threads(1)`).
//!
//! The reference kernels below are verbatim copies of the pre-port
//! element-wise implementations; they exercise only the per-element
//! `BlockCtx` API (`read`/`write`/`add` plus explicit charges).

use gpu_sim::{BlockCtx, DeviceBuffer, Gpu, GpuProfile, Kernel, MemSemantics};
use scd_core::problem::{Form, RidgeProblem};
use scd_core::solver::Solver;
use scd_core::tpa::{TpaScd, DEFAULT_LANES, ELL_COALESCED_COST_FRACTION};
use scd_core::updates::{dual_delta, primal_delta};
use scd_datasets::{scale_values, webspam_like};
use scd_sparse::perm::Permutation;
use scd_sparse::{CscMatrix, CsrMatrix, EllMatrix};
use std::sync::Arc;

struct RefPrimalKernel<'a> {
    csc: &'a CscMatrix,
    y: &'a [f32],
    col_sq_norms: &'a [f64],
    perm: &'a Permutation,
    beta: &'a DeviceBuffer,
    w: &'a DeviceBuffer,
    n_lambda: f64,
}

impl Kernel for RefPrimalKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let m = self.perm.apply(ctx.block_id());
        let col = self.csc.col(m);
        let nnz = col.nnz();
        let lanes = ctx.lanes();

        let mut partials = vec![0.0f32; lanes];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut dp = 0.0f32;
            let mut k = u;
            while k < nnz {
                let i = col.indices[k] as usize;
                let wi = ctx.read(self.w, i);
                dp += (self.y[i] - wi) * col.values[k];
                k += lanes;
            }
            *p = dp;
        }
        ctx.charge_read_bytes(12 * nnz as u64);
        ctx.charge_lane_ops(nnz as u64);
        ctx.shared()[..lanes].copy_from_slice(&partials);
        ctx.barrier();

        let dot = ctx.tree_reduce() as f64;

        let beta_m = ctx.read(self.beta, m);
        let delta =
            primal_delta(dot, beta_m as f64, self.col_sq_norms[m], self.n_lambda) as f32;
        ctx.write(self.beta, m, beta_m + delta);
        ctx.barrier();

        for k in 0..nnz {
            ctx.add(
                MemSemantics::Atomic,
                self.w,
                col.indices[k] as usize,
                col.values[k] * delta,
            );
        }
        ctx.charge_read_bytes(8 * nnz as u64);
    }
}

struct RefDualKernel<'a> {
    csr: &'a CsrMatrix,
    y: &'a [f32],
    row_sq_norms: &'a [f64],
    perm: &'a Permutation,
    alpha: &'a DeviceBuffer,
    w_bar: &'a DeviceBuffer,
    lambda: f64,
    n_lambda: f64,
}

impl Kernel for RefDualKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let n = self.perm.apply(ctx.block_id());
        let row = self.csr.row(n);
        let nnz = row.nnz();
        let lanes = ctx.lanes();

        let mut partials = vec![0.0f32; lanes];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut dp = 0.0f32;
            let mut k = u;
            while k < nnz {
                let j = row.indices[k] as usize;
                dp += ctx.read(self.w_bar, j) * row.values[k];
                k += lanes;
            }
            *p = dp;
        }
        ctx.charge_read_bytes(8 * nnz as u64);
        ctx.charge_lane_ops(nnz as u64);
        ctx.shared()[..lanes].copy_from_slice(&partials);
        ctx.barrier();

        let dot = ctx.tree_reduce() as f64;

        let alpha_n = ctx.read(self.alpha, n);
        let delta = dual_delta(
            dot,
            self.y[n] as f64,
            alpha_n as f64,
            self.row_sq_norms[n],
            self.lambda,
            self.n_lambda,
        ) as f32;
        ctx.write(self.alpha, n, alpha_n + delta);
        ctx.barrier();

        for k in 0..nnz {
            ctx.add(
                MemSemantics::Atomic,
                self.w_bar,
                row.indices[k] as usize,
                row.values[k] * delta,
            );
        }
        ctx.charge_read_bytes(8 * nnz as u64);
    }
}

struct RefDualEllKernel<'a> {
    ell: &'a EllMatrix,
    y: &'a [f32],
    row_sq_norms: &'a [f64],
    perm: &'a Permutation,
    alpha: &'a DeviceBuffer,
    w_bar: &'a DeviceBuffer,
    lambda: f64,
    n_lambda: f64,
}

impl Kernel for RefDualEllKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let n = self.perm.apply(ctx.block_id());
        let width = self.ell.width();
        let lanes = ctx.lanes();

        let mut partials = vec![0.0f32; lanes];
        for (u, p) in partials.iter_mut().enumerate() {
            let mut dp = 0.0f32;
            let mut s = u;
            while s < width {
                if let Some((j, v)) = self.ell.slot(s, n) {
                    dp += ctx.read(self.w_bar, j) * v;
                }
                s += lanes;
            }
            *p = dp;
        }
        ctx.charge_read_bytes((8.0 * width as f64 * ELL_COALESCED_COST_FRACTION) as u64);
        ctx.charge_lane_ops(width as u64);
        ctx.shared()[..lanes].copy_from_slice(&partials);
        ctx.barrier();

        let dot = ctx.tree_reduce() as f64;

        let alpha_n = ctx.read(self.alpha, n);
        let delta = dual_delta(
            dot,
            self.y[n] as f64,
            alpha_n as f64,
            self.row_sq_norms[n],
            self.lambda,
            self.n_lambda,
        ) as f32;
        ctx.write(self.alpha, n, alpha_n + delta);
        ctx.barrier();

        for s in 0..width {
            if let Some((j, v)) = self.ell.slot(s, n) {
                ctx.add(MemSemantics::Atomic, self.w_bar, j, v * delta);
            }
        }
        ctx.charge_read_bytes((8.0 * width as f64 * ELL_COALESCED_COST_FRACTION) as u64);
    }
}

/// An element-wise re-implementation of `TpaScd`'s epoch loop: same seed
/// schedule, same launch geometry, same update math — only the memory
/// access spelling differs.
struct ReferenceTpa {
    gpu: Gpu,
    weights: DeviceBuffer,
    shared: DeviceBuffer,
    ell: Option<EllMatrix>,
    form: Form,
    seed: u64,
    epoch_index: u64,
}

impl ReferenceTpa {
    fn new(problem: &RidgeProblem, form: Form, seed: u64, ell: bool) -> Self {
        ReferenceTpa {
            gpu: Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1),
            weights: DeviceBuffer::zeroed(problem.coords(form)),
            shared: DeviceBuffer::zeroed(problem.shared_len(form)),
            ell: ell.then(|| EllMatrix::from_csr(problem.csr())),
            form,
            seed,
            epoch_index: 0,
        }
    }

    /// Run one epoch; returns the simulated kernel seconds.
    fn epoch(&mut self, problem: &RidgeProblem) -> f64 {
        let coords = problem.coords(self.form);
        let perm =
            Permutation::random(coords, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        let stats = match self.form {
            Form::Primal => self.gpu.launch(
                &RefPrimalKernel {
                    csc: problem.csc(),
                    y: problem.labels(),
                    col_sq_norms: problem.col_sq_norms(),
                    perm: &perm,
                    beta: &self.weights,
                    w: &self.shared,
                    n_lambda: problem.n_lambda(),
                },
                coords,
                DEFAULT_LANES,
            ),
            Form::Dual => match &self.ell {
                Some(ell) => self.gpu.launch(
                    &RefDualEllKernel {
                        ell,
                        y: problem.labels(),
                        row_sq_norms: problem.row_sq_norms(),
                        perm: &perm,
                        alpha: &self.weights,
                        w_bar: &self.shared,
                        lambda: problem.lambda(),
                        n_lambda: problem.n_lambda(),
                    },
                    coords,
                    DEFAULT_LANES,
                ),
                None => self.gpu.launch(
                    &RefDualKernel {
                        csr: problem.csr(),
                        y: problem.labels(),
                        row_sq_norms: problem.row_sq_norms(),
                        perm: &perm,
                        alpha: &self.weights,
                        w_bar: &self.shared,
                        lambda: problem.lambda(),
                        n_lambda: problem.n_lambda(),
                    },
                    coords,
                    DEFAULT_LANES,
                ),
            },
        };
        stats.simulated_seconds
    }
}

fn problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(150, 120, 10, 55), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_bit_identical(form: Form, ell: bool, seed: u64, epochs: usize) {
    let p = problem();
    let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
    let mut ported = TpaScd::new(&p, form, gpu, seed).unwrap();
    if ell {
        ported = ported.with_ell_layout(&p).unwrap();
    }
    let mut reference = ReferenceTpa::new(&p, form, seed, ell);

    for e in 0..epochs {
        let stats = ported.epoch(&p);
        let ref_gpu_seconds = reference.epoch(&p);
        assert_eq!(
            stats.breakdown.gpu, ref_gpu_seconds,
            "simulated clock diverged at epoch {e} ({form:?}, ell={ell})"
        );
        assert_eq!(
            bits(&ported.weights()),
            bits(&reference.weights.to_host()),
            "weights diverged at epoch {e} ({form:?}, ell={ell})"
        );
        assert_eq!(
            bits(&ported.shared_vector()),
            bits(&reference.shared.to_host()),
            "shared vector diverged at epoch {e} ({form:?}, ell={ell})"
        );
    }
}

#[test]
fn primal_bulk_path_is_bit_identical_to_elementwise() {
    assert_bit_identical(Form::Primal, false, 7, 6);
}

#[test]
fn dual_bulk_path_is_bit_identical_to_elementwise() {
    assert_bit_identical(Form::Dual, false, 11, 6);
}

#[test]
fn dual_ell_bulk_path_is_bit_identical_to_elementwise() {
    assert_bit_identical(Form::Dual, true, 13, 6);
}

//! Property tests of the Objective layer: every coordinate update is the
//! exact optimizer of its 1-d subproblem, weak duality holds for random
//! feasible dual iterates, ridge through the trait stays bit-identical to
//! the legacy closed forms, and all four objectives actually converge
//! under the sequential and SySCD engines.

use proptest::prelude::*;
use scd_core::{Form, ObjectiveKind, RidgeProblem, SequentialScd, Solver, SyscdScd};
use scd_datasets::dense_random;

/// The SVM coordinate subproblem (signed-α convention, a = y·α ∈ [0, 1]):
/// ψ(a) = a(1 − margin) − (a − a_old)²·coupling/2, maximized by the
/// box-clipped closed form.
fn svm_psi(a: f64, a_old: f64, margin: f64, coupling: f64) -> f64 {
    a * (1.0 - margin) - (a - a_old) * (a - a_old) * coupling / 2.0
}

/// The logistic coordinate subproblem adds the entropy of (a, 1 − a).
fn logistic_psi(a: f64, a_old: f64, margin: f64, coupling: f64) -> f64 {
    let xlogx = |x: f64| if x <= 0.0 { 0.0 } else { x * x.ln() };
    -xlogx(a) - xlogx(1.0 - a) - a * margin - (a - a_old) * (a - a_old) * coupling / 2.0
}

/// The lasso coordinate subproblem: f(v) = denom·v²/2 − ρ·v + λ|v|,
/// minimized by the soft threshold.
fn lasso_f(v: f64, denom: f64, rho_dot: f64, lambda: f64) -> f64 {
    denom * v * v / 2.0 - rho_dot * v + lambda * v.abs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The box-clipped SVM update beats every candidate in [0, 1] on its
    /// own subproblem.
    #[test]
    fn svm_delta_maximizes_the_coordinate_subproblem(
        margin in -3.0f64..3.0,
        a_old in 0.0f64..1.0,
        sq in 0.01f64..10.0,
        nl in 0.1f64..5.0,
        y_sel in 0usize..2,
    ) {
        let y = if y_sel == 0 { 1.0 } else { -1.0 };
        let alpha = y * a_old;
        let dot = y * margin * nl; // margin = y·⟨w̄, ā⟩/Nλ inverted
        let d = ObjectiveKind::Svm.dual_delta(dot, y, alpha, sq, 1e-3, nl);
        let a_new = y * (alpha + d);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&a_new), "a_new {a_new} outside the box");
        let coupling = sq / nl;
        let best = svm_psi(a_new, a_old, margin, coupling);
        for i in 0..=64 {
            let c = i as f64 / 64.0;
            prop_assert!(
                best >= svm_psi(c, a_old, margin, coupling) - 1e-9,
                "candidate a = {c} beats the update a = {a_new}"
            );
        }
    }

    /// The logistic bisection lands on the unique interior maximizer of
    /// the entropy-regularized subproblem.
    #[test]
    fn logistic_delta_maximizes_the_coordinate_subproblem(
        margin in -3.0f64..3.0,
        a_old in 0.0f64..1.0,
        sq in 0.01f64..10.0,
        nl in 0.1f64..5.0,
        y_sel in 0usize..2,
    ) {
        let y = if y_sel == 0 { 1.0 } else { -1.0 };
        let alpha = y * a_old;
        let dot = y * margin * nl;
        let d = ObjectiveKind::Logistic.dual_delta(dot, y, alpha, sq, 1e-3, nl);
        let a_new = y * (alpha + d);
        prop_assert!(a_new > 0.0 && a_new < 1.0, "logistic iterate must stay interior");
        let coupling = sq / nl;
        let best = logistic_psi(a_new, a_old, margin, coupling);
        for i in 1..64 {
            let c = i as f64 / 64.0;
            prop_assert!(
                best >= logistic_psi(c, a_old, margin, coupling) - 1e-9,
                "candidate a = {c} beats the update a = {a_new}"
            );
        }
    }

    /// The lasso soft-threshold update beats every candidate on the
    /// ℓ1-composite subproblem, including v = 0 (the kink).
    #[test]
    fn lasso_delta_minimizes_the_coordinate_subproblem(
        dot in -5.0f64..5.0,
        beta in -2.0f64..2.0,
        sq in 0.01f64..10.0,
        n in 1usize..50,
        lambda in 0.001f64..1.0,
    ) {
        let d = ObjectiveKind::Lasso.primal_delta(dot, beta, sq, n, lambda, lambda * n as f64);
        let v_new = beta + d;
        let denom = sq / n as f64;
        let rho_dot = dot / n as f64 + denom * beta;
        let best = lasso_f(v_new, denom, rho_dot, lambda);
        let span = v_new.abs() + 3.0;
        for i in 0..=128 {
            let c = -span + 2.0 * span * i as f64 / 128.0;
            prop_assert!(
                best <= lasso_f(c, denom, rho_dot, lambda) + 1e-9,
                "candidate v = {c} beats the update v = {v_new}"
            );
        }
        prop_assert!(best <= lasso_f(0.0, denom, rho_dot, lambda) + 1e-12);
    }

    /// Weak duality: D(α) ≤ P(β(α)) for any feasible dual point of the
    /// classification objectives, so their gap is honestly non-negative
    /// (not just clamped to zero).
    #[test]
    fn weak_duality_holds_for_random_feasible_duals(seed in 0u64..500) {
        let problem = RidgeProblem::from_labelled(&dense_random(30, 6, seed), 1e-2).unwrap();
        // a ∈ [0, 1] per example, stored signed as α = y·a.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let alpha: Vec<f32> = problem
            .labels()
            .iter()
            .map(|&y| y * next() as f32)
            .collect();
        for kind in [ObjectiveKind::Svm, ObjectiveKind::Logistic] {
            let beta = kind.induced_primal(&problem, &alpha);
            let p = kind.primal_value(&problem, &beta);
            let d = kind.dual_value(&problem, &alpha);
            prop_assert!(d <= p + 1e-9, "{kind}: D = {d} exceeds P = {p}");
            prop_assert!(kind.duality_gap(&problem, Form::Dual, &alpha) >= 0.0);
        }
    }
}

/// Ridge routed through the Objective trait must replay the legacy
/// engines bit for bit, on both forms and both engines.
#[test]
fn ridge_through_the_trait_is_bit_identical() {
    let problem = RidgeProblem::from_labelled(&dense_random(60, 10, 11), 1e-3).unwrap();
    for form in [Form::Primal, Form::Dual] {
        let mut legacy = match form {
            Form::Primal => SequentialScd::primal(&problem, 7),
            Form::Dual => SequentialScd::dual(&problem, 7),
        };
        let mut traited = match form {
            Form::Primal => SequentialScd::primal(&problem, 7),
            Form::Dual => SequentialScd::dual(&problem, 7),
        }
        .with_objective(ObjectiveKind::Ridge);
        let mut legacy_sys = SyscdScd::new(&problem, form, 4, 7);
        let mut traited_sys =
            SyscdScd::new(&problem, form, 4, 7).with_objective(ObjectiveKind::Ridge);
        for _ in 0..5 {
            legacy.epoch(&problem);
            traited.epoch(&problem);
            legacy_sys.epoch(&problem);
            traited_sys.epoch(&problem);
        }
        assert_eq!(legacy.weights(), traited.weights(), "{form:?} sequential");
        assert_eq!(legacy_sys.weights(), traited_sys.weights(), "{form:?} syscd");
    }
}

/// All four objectives make real progress on their natural form under
/// both the sequential engine and the SySCD CPU backend: the gap never
/// increases, shrinks strictly while above the float floor, and at least
/// halves over ten epochs.
#[test]
fn every_objective_converges_on_seq_and_syscd() {
    // λ = 5e-2 keeps the problem well-conditioned enough that every
    // objective's gap decreases strictly per epoch (the hinge duals
    // bounce under weaker regularization — the dual ascends monotonically
    // but the induced primal need not).
    let problem = RidgeProblem::from_labelled(&dense_random(200, 40, 7), 5e-2).unwrap();
    for kind in ObjectiveKind::ALL {
        let form = kind.default_form();
        let gaps_of = |mut s: Box<dyn Solver>| -> Vec<f64> {
            let mut gaps = vec![s.duality_gap(&problem)];
            for _ in 0..10 {
                s.epoch(&problem);
                gaps.push(s.duality_gap(&problem));
            }
            gaps
        };
        let seq: Box<dyn Solver> = Box::new(
            match form {
                Form::Primal => SequentialScd::primal(&problem, 3),
                Form::Dual => SequentialScd::dual(&problem, 3),
            }
            .with_objective(kind),
        );
        let sys: Box<dyn Solver> =
            Box::new(SyscdScd::new(&problem, form, 4, 3).with_objective(kind));
        for (engine, gaps) in [("seq", gaps_of(seq)), ("syscd", gaps_of(sys))] {
            assert!(
                gaps[0].is_finite() && gaps[0] > 0.0,
                "{kind}/{engine}: bad initial gap {}",
                gaps[0]
            );
            for w in gaps.windows(2) {
                assert!(w[1] >= 0.0, "{kind}/{engine}: negative gap {}", w[1]);
                assert!(
                    w[1] < w[0] || w[1] <= 1e-10,
                    "{kind}/{engine}: gap stalled above the floor: {} -> {}",
                    w[0],
                    w[1]
                );
            }
            let last = gaps[gaps.len() - 1];
            assert!(
                last < 0.5 * gaps[0],
                "{kind}/{engine}: gap {last} did not halve from {}",
                gaps[0]
            );
        }
    }
}

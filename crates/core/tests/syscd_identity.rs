//! Deterministic-replay guarantees of the SySCD backend, mirroring
//! `crates/gpusim/tests/sched_identity.rs`:
//!
//! 1. With one worker the engine degenerates to Algorithm 1 exactly —
//!    bit-identical weights and shared vector to [`SequentialScd`] for
//!    any problem, form, seed, and epoch count, regardless of how wide
//!    a scheduler is attached.
//! 2. With any worker count the shuffled-static schedule plus the
//!    worker-id-ordered merge make the trajectory a pure function of
//!    `(seed, epoch)`: running the same configuration on schedulers of
//!    different widths produces bit-identical state.

use proptest::prelude::*;
use scd_core::{Form, RidgeProblem, Solver, SequentialScd, SyscdScd};
use scd_datasets::webspam_like;
use scd_sched::Scheduler;

fn problem(rows: usize, cols: usize, nnz: usize, seed: u64) -> RidgeProblem {
    RidgeProblem::from_labelled(&webspam_like(rows, cols, nnz, seed), 1e-3).unwrap()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_worker_is_bitwise_sequential_scd(
        rows in 10usize..60,
        cols in 8usize..50,
        data_seed in 0u64..1000,
        solver_seed in 0u64..1000,
        epochs in 1usize..5,
        sched_width in 1usize..5,
        dual in 0u64..2,
    ) {
        let nnz = (cols / 2).clamp(1, 8);
        let p = problem(rows, cols, nnz, data_seed);
        let form = if dual == 1 { Form::Dual } else { Form::Primal };

        let mut reference = match form {
            Form::Primal => SequentialScd::primal(&p, solver_seed),
            Form::Dual => SequentialScd::dual(&p, solver_seed),
        };
        let mut syscd = SyscdScd::new(&p, form, 1, solver_seed)
            .with_scheduler(Scheduler::new(sched_width));
        for _ in 0..epochs {
            reference.epoch(&p);
            syscd.epoch(&p);
        }
        prop_assert_eq!(bits(&reference.weights()), bits(&syscd.weights()));
        prop_assert_eq!(bits(&reference.shared_vector()), bits(&syscd.shared_vector()));
    }

    #[test]
    fn replay_is_bit_identical_across_scheduler_widths(
        rows in 10usize..60,
        cols in 8usize..50,
        data_seed in 0u64..1000,
        solver_seed in 0u64..1000,
        workers in 2usize..6,
        bucket in 1usize..9,
        merge_every in 1usize..4,
        epochs in 1usize..4,
        wide in 2usize..5,
        dual in 0u64..2,
    ) {
        let nnz = (cols / 2).clamp(1, 8);
        let p = problem(rows, cols, nnz, data_seed);
        let form = if dual == 1 { Form::Dual } else { Form::Primal };

        let run = |width: usize| {
            let mut s = SyscdScd::new(&p, form, workers, solver_seed)
                .with_buckets(&p, bucket)
                .with_merge_every(merge_every)
                .with_scheduler(Scheduler::new(width));
            for _ in 0..epochs {
                s.epoch(&p);
            }
            (bits(&s.weights()), bits(&s.shared_vector()))
        };

        let narrow = run(1);
        prop_assert_eq!(&narrow, &run(wide));
        // And run-to-run on the same width (replay, not luck).
        prop_assert_eq!(&narrow, &run(1));
    }
}

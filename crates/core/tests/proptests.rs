//! Property-based tests of the solver engines: all engines are
//! trajectory-equivalent where theory says they must be, and the update
//! rules' conservation laws hold for arbitrary data.

use proptest::prelude::*;
use scd_core::{AsyncCpuMode, AsyncSimScd, Form, RidgeProblem, SequentialScd, Solver};
use scd_datasets::{scale_values, webspam_like};
use scd_sparse::dense;

fn arb_problem() -> impl Strategy<Value = RidgeProblem> {
    (20usize..60, 15usize..50, 3usize..8, 0u64..10_000, 1u32..50).prop_map(
        |(n, m, nnz, seed, lam)| {
            let data = scale_values(&webspam_like(n, m, nnz, seed), 0.4);
            RidgeProblem::from_labelled(&data, lam as f64 / 1000.0).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential SCD keeps the shared vector exactly consistent with the
    /// weights (up to f32 accumulation) on any problem.
    #[test]
    fn sequential_shared_vector_consistency(problem in arb_problem()) {
        let mut s = SequentialScd::primal(&problem, 5);
        for _ in 0..4 {
            s.epoch(&problem);
        }
        let w_true = problem.csc().matvec(&s.weights()).unwrap();
        let scale = w_true.iter().fold(1.0f32, |a, &b| a.max(b.abs()));
        prop_assert!(dense::max_abs_diff(&s.shared_vector(), &w_true) < 1e-4 * scale);
    }

    /// The atomic async simulator with window 0 and the sequential solver
    /// are bit-identical under the same seed, for both forms. (Wild is
    /// *not*: even with a zero staleness window, 16 racing threads still
    /// lose writes with the collision probability — that is exactly how
    /// Fig. 1's plateau arises at paper-scaled staleness. Wild only
    /// collapses to sequential when the collision rate is zeroed, covered
    /// by `wild_without_collisions_is_atomic`.)
    #[test]
    fn zero_window_atomic_equals_sequential(problem in arb_problem(), seed in 0u64..100) {
        for form in [Form::Primal, Form::Dual] {
            let mut seq = match form {
                Form::Primal => SequentialScd::primal(&problem, seed),
                Form::Dual => SequentialScd::dual(&problem, seed),
            };
            let mut sim = AsyncSimScd::new(&problem, form, AsyncCpuMode::Atomic, 16, seed)
                .with_staleness(0);
            for _ in 0..2 {
                seq.epoch(&problem);
                sim.epoch(&problem);
            }
            prop_assert_eq!(seq.weights(), sim.weights());
        }
    }

    /// Dual objective increases monotonically under exact dual coordinate
    /// maximization (sequential engine).
    #[test]
    fn dual_objective_monotone(problem in arb_problem()) {
        let mut s = SequentialScd::dual(&problem, 9);
        let mut prev = problem.dual_objective(&s.weights());
        for _ in 0..10 {
            s.epoch(&problem);
            let cur = problem.dual_objective(&s.weights());
            prop_assert!(cur >= prev - 1e-5 * prev.abs().max(1e-9), "{prev} -> {cur}");
            prev = cur;
        }
    }

    /// Gaps from both formulations certify the same optimum: running both
    /// to convergence, each form's certified objective matches.
    #[test]
    fn both_forms_certify_one_optimum(problem in arb_problem()) {
        let mut p = SequentialScd::primal(&problem, 2);
        let mut d = SequentialScd::dual(&problem, 2);
        for _ in 0..80 {
            p.epoch(&problem);
            d.epoch(&problem);
        }
        let p_obj = problem.primal_objective(&p.weights());
        let d_obj = problem.dual_objective(&d.weights());
        prop_assert!(
            (p_obj - d_obj).abs() < 1e-3 * p_obj.abs().max(1e-9),
            "P* {p_obj} vs D* {d_obj}"
        );
    }

    /// Wild mode with collision rate 0 equals atomic mode exactly.
    #[test]
    fn wild_without_collisions_is_atomic(problem in arb_problem(), seed in 0u64..100) {
        let mut atomic = AsyncSimScd::new(&problem, Form::Primal, AsyncCpuMode::Atomic, 8, seed);
        let mut wild = AsyncSimScd::new(&problem, Form::Primal, AsyncCpuMode::Wild, 8, seed)
            .with_collision_rate(0.0);
        for _ in 0..3 {
            atomic.epoch(&problem);
            wild.epoch(&problem);
        }
        prop_assert_eq!(atomic.weights(), wild.weights());
        prop_assert_eq!(atomic.shared_vector(), wild.shared_vector());
    }
}

//! Genuinely multi-threaded asynchronous SCD (A-SCD [13] and
//! PASSCoDe-Wild [14]) on real OS threads.
//!
//! This is the faithful counterpart of the paper's OpenMP implementations:
//! worker threads pull coordinates off the epoch permutation with an atomic
//! cursor, read the shared vector *without locks* while other threads are
//! writing it, and push their updates back either with atomic additions
//! (A-SCD) or with racy read-modify-writes (PASSCoDe-Wild, lost updates and
//! all). All shared state lives in lock-free `f32`-in-`AtomicU32` cells —
//! the same primitive the GPU simulator uses for device memory — so the
//! code is data-race-free in the Rust sense while still exhibiting the
//! algorithmic races the paper studies.
//!
//! Because real interleavings depend on the host's core count and
//! scheduler, figures are generated with the deterministic
//! [`crate::async_sim::AsyncSimScd`] instead; this engine exists to prove
//! the algorithm under true concurrency, and its tests assert properties
//! that hold for *any* interleaving. Simulated epoch time comes from the
//! calibrated CPU model, never from host wall-clock.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use gpu_sim::{DeviceBuffer, MemSemantics};
use scd_perf_model::{AsyncCpuMode, CpuProfile};
use scd_sched::Scheduler;
use scd_sparse::kernels;
use scd_sparse::perm::Permutation;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Lock-free shared `f32` array (bit-cast atomics). Re-uses the GPU
/// simulator's buffer type: the semantics required here — relaxed loads,
/// CAS-loop atomic adds, racy wild adds — are identical to device global
/// memory.
pub type AtomicF32Vec = DeviceBuffer;

/// Asynchronous multi-threaded SCD on OS threads.
pub struct AsyncCpuScd {
    form: Form,
    mode: AsyncCpuMode,
    threads: usize,
    weights: AtomicF32Vec,
    shared: AtomicF32Vec,
    /// Scalar update rule + gap oracle (ridge by default).
    objective: ObjectiveKind,
    cpu: CpuProfile,
    seed: u64,
    epoch_index: u64,
    /// Epoch permutation, re-shuffled in place each epoch (bit-identical
    /// to a fresh `Permutation::random`) so steady-state epochs never
    /// allocate.
    perm: Option<Permutation>,
    /// Host scheduler the epoch's worker tasks run on; `None` (the
    /// default) resolves to the process-wide shared scheduler at epoch
    /// time. The *modeled* thread count stays `threads` either way — if
    /// the scheduler is narrower, each host thread drains more of the
    /// cursor, which changes interleavings but never the algorithm.
    sched: Option<Arc<Scheduler>>,
}

impl AsyncCpuScd {
    /// Build an engine for the given form and write-back mode.
    pub fn new(
        problem: &RidgeProblem,
        form: Form,
        mode: AsyncCpuMode,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(threads >= 1, "need at least one thread");
        AsyncCpuScd {
            form,
            mode,
            threads,
            weights: AtomicF32Vec::zeroed(problem.coords(form)),
            shared: AtomicF32Vec::zeroed(problem.shared_len(form)),
            objective: ObjectiveKind::Ridge,
            cpu: CpuProfile::xeon_e5_2640(),
            seed,
            epoch_index: 0,
            perm: None,
            sched: None,
        }
    }

    /// Override the CPU profile used for simulated timing.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Run epochs on an explicit scheduler instead of the process-wide
    /// one (tests use this to pin real parallelism).
    pub fn with_scheduler(mut self, sched: Arc<Scheduler>) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Swap the scalar update rule for a non-ridge objective; the racy
    /// write-back machinery is objective-agnostic.
    ///
    /// # Panics
    /// Panics if the objective has no coordinate update for this form.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        assert!(
            objective.supports(self.form),
            "objective {} does not support the {} form",
            objective.label(),
            self.form.label()
        );
        self.objective = objective;
        self
    }

    fn write_semantics(&self) -> MemSemantics {
        match self.mode {
            AsyncCpuMode::Atomic => MemSemantics::Atomic,
            AsyncCpuMode::Wild => MemSemantics::Wild,
        }
    }

    fn run_epoch(&mut self, problem: &RidgeProblem) -> (usize, usize) {
        let coords = problem.coords(self.form);
        let epoch_seed = self.seed ^ (self.epoch_index.wrapping_mul(0x9E37));
        self.epoch_index += 1;
        // Persistent permutation, re-shuffled in place: steady-state
        // epochs allocate nothing.
        match self.perm.as_mut() {
            Some(p) => p.refill_random(coords, epoch_seed),
            None => self.perm = Some(Permutation::random(coords, epoch_seed)),
        }
        let perm = self.perm.take().expect("just ensured");
        let cursor = AtomicUsize::new(0);
        let nnz_total = AtomicUsize::new(0);
        let sem = self.write_semantics();
        let n_lambda = problem.n_lambda();
        let lambda = problem.lambda();

        // One task per modeled thread, all draining the same cursor; the
        // shared scheduler may run them on fewer host threads, which only
        // changes interleavings, never the claim-exactly-once contract.
        let sched = match &self.sched {
            Some(s) => Arc::clone(s),
            None => scd_sched::global(),
        };
        let worker = |_t: usize| {
            let mut local_nnz = 0usize;
            loop {
                let j = cursor.fetch_add(1, Ordering::Relaxed);
                if j >= coords {
                    break;
                }
                let c = perm.apply(j);
                match self.form {
                    Form::Primal => {
                        let col = problem.csc().col(c);
                        local_nnz += col.nnz();
                        let y = problem.labels();
                        // Same unrolled lanes as the sequential engine,
                        // reading the shared vector through relaxed loads.
                        let dot = kernels::dot_residual_gather(col.indices, col.values, y, |i| {
                            self.shared.load(i)
                        });
                        let beta_c = self.weights.load(c);
                        let delta = self.objective.primal_delta(
                            dot,
                            beta_c as f64,
                            problem.col_sq_norms()[c],
                            problem.n(),
                            lambda,
                            n_lambda,
                        ) as f32;
                        // Single owner per coordinate within an epoch:
                        // a plain store is enough.
                        self.weights.store(c, beta_c + delta);
                        for (&i, &v) in col.indices.iter().zip(col.values) {
                            self.shared.add(sem, i as usize, v * delta);
                        }
                    }
                    Form::Dual => {
                        let row = problem.csr().row(c);
                        local_nnz += row.nnz();
                        let dot = kernels::dot_gather(row.indices, row.values, |i| {
                            self.shared.load(i)
                        });
                        let alpha_c = self.weights.load(c);
                        let delta = self.objective.dual_delta(
                            dot,
                            problem.labels()[c] as f64,
                            alpha_c as f64,
                            problem.row_sq_norms()[c],
                            lambda,
                            n_lambda,
                        ) as f32;
                        self.weights.store(c, alpha_c + delta);
                        for (&i, &v) in row.indices.iter().zip(row.values) {
                            self.shared.add(sem, i as usize, v * delta);
                        }
                    }
                }
            }
            nnz_total.fetch_add(local_nnz, Ordering::Relaxed);
        };
        sched.parallel_for_limited(self.threads, self.threads, &worker);
        self.perm = Some(perm);

        (coords, nnz_total.into_inner())
    }
}

impl Solver for AsyncCpuScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        match self.mode {
            AsyncCpuMode::Atomic => format!("A-SCD ({} threads)", self.threads),
            AsyncCpuMode::Wild => format!("PASSCoDe-Wild ({} threads)", self.threads),
        }
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let (coords, nnz) = self.run_epoch(problem);
        EpochStats {
            updates: coords,
            breakdown: TimeBreakdown {
                host: self
                    .cpu
                    .async_epoch_seconds(self.mode, self.threads, nnz, coords),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.weights.to_host()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.to_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::webspam_like;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(150, 120, 10, 8), 1e-3).unwrap()
    }

    #[test]
    fn atomic_converges_under_real_threads() {
        // Holds for any interleaving: atomic write-back preserves the
        // optimality conditions, so the gap must keep shrinking.
        let p = problem();
        let mut s = AsyncCpuScd::new(&p, Form::Primal, AsyncCpuMode::Atomic, 4, 1);
        for _ in 0..100 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn dual_atomic_converges_under_real_threads() {
        let p = problem();
        let mut s = AsyncCpuScd::new(&p, Form::Dual, AsyncCpuMode::Atomic, 4, 2);
        for _ in 0..120 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < 1e-3, "gap {gap}");
    }

    #[test]
    fn wild_reaches_low_objective_even_if_biased() {
        let p = problem();
        let mut s = AsyncCpuScd::new(&p, Form::Primal, AsyncCpuMode::Wild, 4, 3);
        let start = p.primal_objective(&s.weights());
        for _ in 0..40 {
            s.epoch(&p);
        }
        let end = p.primal_objective(&s.weights());
        assert!(end < start * 0.9, "objective {start} -> {end}");
    }

    #[test]
    fn single_thread_behaves_like_sequential() {
        use crate::seq::SequentialScd;
        let p = problem();
        let mut seq = SequentialScd::primal(&p, 5);
        let mut one = AsyncCpuScd::new(&p, Form::Primal, AsyncCpuMode::Atomic, 1, 5);
        for _ in 0..3 {
            seq.epoch(&p);
            one.epoch(&p);
        }
        // Same permutations, fully serialized execution: identical floats up
        // to the atomic CAS ordering, which with one thread is exact.
        let (a, b) = (seq.weights(), one.weights());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn epoch_time_uses_cost_model_not_wall_clock() {
        let p = problem();
        let mut s = AsyncCpuScd::new(&p, Form::Primal, AsyncCpuMode::Atomic, 16, 1);
        let t16 = s.epoch(&p).seconds();
        let mut s1 = AsyncCpuScd::new(&p, Form::Primal, AsyncCpuMode::Atomic, 1, 1);
        let t1 = s1.epoch(&p).seconds();
        let speedup = t1 / t16;
        assert!(
            (1.8..2.2).contains(&speedup),
            "A-SCD simulated 16-thread speedup should be ≈2x, got {speedup}"
        );
    }
}

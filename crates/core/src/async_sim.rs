//! Deterministic simulation of the asynchronous multi-threaded CPU solvers
//! (A-SCD with atomic additions [13] and PASSCoDe-Wild [14]).
//!
//! The real engines (see [`crate::async_cpu`]) run genuine OS threads, but
//! their races depend on the host's core count and scheduler — useless for
//! reproducible figures, and this reproduction may run on a single-core
//! host where races almost never materialize. This engine instead *models*
//! T-thread asynchrony deterministically with a **bounded-staleness sliding
//! window**, the standard model for asynchronous coordinate descent:
//!
//! * Updates are computed in permutation order, but an update only becomes
//!   visible in the shared vector after the T−1 subsequent updates have
//!   been *computed* — i.e. every update is computed against a shared
//!   vector missing the T−1 most recent writes, exactly the staleness an
//!   update suffers while T−1 peer threads are mid-flight.
//! * Model weights are always fresh: each coordinate has a single owner
//!   thread within an epoch (as in PASSCoDe), and owners read their own
//!   weight directly.
//! * Write-back semantics differ by mode:
//!   - **Atomic** (A-SCD): every delayed update is applied in full — atomic
//!     additions never lose a write, so the shared vector is exactly
//!     consistent with the weights at epoch boundaries.
//!   - **Wild** (PASSCoDe-Wild): with peers continuously racing, each
//!     element write is *lost* (overwritten by a concurrent
//!     read-modify-write) with a calibrated probability `collision_rate`.
//!     Lost writes make the shared vector drift permanently from Aβ, which
//!     is why the wild solver "converges to a solution that violates the
//!     optimality conditions (5) and (6)" and its duality gap plateaus in
//!     Figs. 1–2.
//!
//! ### Scaling the staleness window
//!
//! The physical window is T−1 updates, but what governs stability is the
//! staleness *fraction* (T−1)/coords: the paper runs 16 threads against
//! 10⁵–10⁶ coordinates (fraction ≈ 10⁻⁵), while a scaled-down synthetic
//! problem with hundreds of coordinates would see a fraction thousands of
//! times larger — deep inside the regime where asynchronous coordinate
//! descent genuinely diverges (cf. the step-size conditions of AsySCD
//! [15]). [`scaled_staleness`] maps the paper's fraction onto a smaller
//! problem so that figure-scale runs reproduce the paper's observation
//! that A-SCD matches sequential SCD epoch-for-epoch; the unscaled window
//! remains available to *study* the instability (see the
//! `excessive_staleness_destabilizes_small_problems` test).
//!
//! With T = 1 (or a zero window) and a zero collision rate the engine
//! reduces bit-for-bit to Algorithm 1.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use scd_perf_model::{AsyncCpuMode, CpuProfile};
use scd_sparse::perm::{Permutation, SplitMix64};
use std::collections::VecDeque;

/// Default probability that a wild element-write is lost to a concurrent
/// read-modify-write.
///
/// Calibrated so the duality-gap plateau sits orders of magnitude above the
/// converging solvers, as in Figs. 1–2.
pub const DEFAULT_COLLISION_RATE: f64 = 0.0005;

/// Map the paper's staleness *fraction* onto a smaller problem: the window
/// that `threads` hardware threads would impose on a problem with
/// `reference_coords` coordinates, scaled down to `coords`.
///
/// The paper's single-node experiments run 16 threads against webspam's
/// 680,715 features (primal) or 262,938 examples (dual), so the reference
/// fraction is ≈ 2–6 × 10⁻⁵ and the scaled window on figure-size problems
/// is 0 or 1 — consistent with the paper's finding that A-SCD converges
/// exactly like sequential SCD per epoch.
pub fn scaled_staleness(threads: usize, coords: usize, reference_coords: usize) -> usize {
    assert!(reference_coords > 0, "reference coordinate count must be positive");
    ((threads.saturating_sub(1)) as f64 * coords as f64 / reference_coords as f64).round()
        as usize
}

/// An update that has been computed but is not yet visible to readers.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    coord: usize,
    delta: f32,
}

/// Deterministic simulator of asynchronous multi-threaded SCD.
#[derive(Debug, Clone)]
pub struct AsyncSimScd {
    form: Form,
    mode: AsyncCpuMode,
    threads: usize,
    staleness: usize,
    collision_rate: f64,
    /// σ′ multiplier on the coordinate quadratic term (CoCoA+ [24]).
    quadratic_scale: f64,
    weights: Vec<f32>,
    shared: Vec<f32>,
    /// In-flight touch count per shared-vector element.
    touch: Vec<u32>,
    /// Scalar update rule + gap oracle (ridge by default).
    objective: ObjectiveKind,
    cpu: CpuProfile,
    seed: u64,
    epoch_index: u64,
}

impl AsyncSimScd {
    /// Build an engine for the given form and write-back mode.
    pub fn new(
        problem: &RidgeProblem,
        form: Form,
        mode: AsyncCpuMode,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(threads >= 1, "need at least one virtual thread");
        AsyncSimScd {
            form,
            mode,
            threads,
            staleness: threads - 1,
            collision_rate: DEFAULT_COLLISION_RATE,
            quadratic_scale: 1.0,
            weights: vec![0.0; problem.coords(form)],
            shared: vec![0.0; problem.shared_len(form)],
            touch: vec![0; problem.shared_len(form)],
            objective: ObjectiveKind::Ridge,
            cpu: CpuProfile::xeon_e5_2640(),
            seed,
            epoch_index: 0,
        }
    }

    /// A-SCD: atomic write-back, paper default of 16 threads.
    pub fn a_scd(problem: &RidgeProblem, form: Form, seed: u64) -> Self {
        Self::new(problem, form, AsyncCpuMode::Atomic, 16, seed)
    }

    /// PASSCoDe-Wild: racy write-back, paper default of 16 threads.
    pub fn wild(problem: &RidgeProblem, form: Form, seed: u64) -> Self {
        Self::new(problem, form, AsyncCpuMode::Wild, 16, seed)
    }

    /// Override the CPU profile used for simulated timing.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Override the wild-mode collision probability (no effect on atomic).
    ///
    /// # Panics
    /// Panics if the rate is outside [0, 1].
    pub fn with_collision_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "collision rate in [0,1]");
        self.collision_rate = rate;
        self
    }

    /// Override the staleness window (defaults to the physical T−1; see
    /// [`scaled_staleness`] for matching the paper's staleness fraction on
    /// scaled-down problems).
    pub fn with_staleness(mut self, window: usize) -> Self {
        self.staleness = window;
        self
    }

    /// Scale the quadratic term of every coordinate subproblem by σ′ ≥ 1
    /// (CoCoA+ safe local subproblem [24]).
    pub fn with_quadratic_scale(mut self, sigma_prime: f64) -> Self {
        assert!(sigma_prime >= 1.0, "sigma' must be >= 1 for safety");
        self.quadratic_scale = sigma_prime;
        self
    }

    /// Swap the scalar update rule for a non-ridge objective; the delayed
    /// write-back / collision machinery is objective-agnostic.
    ///
    /// # Panics
    /// Panics if the objective has no coordinate update for this form.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        assert!(
            objective.supports(self.form),
            "objective {} does not support the {} form",
            objective.label(),
            self.form.label()
        );
        self.objective = objective;
        self
    }

    /// Overwrite the shared vector (distributed broadcast step).
    pub fn set_shared(&mut self, shared: &[f32]) {
        assert_eq!(shared.len(), self.shared.len(), "shared length mismatch");
        self.shared.copy_from_slice(shared);
    }

    /// Overwrite the model weights (distributed consistency rescale).
    pub fn set_weights(&mut self, weights: &[f32]) {
        assert_eq!(weights.len(), self.weights.len(), "weights length mismatch");
        self.weights.copy_from_slice(weights);
    }

    /// Compute the update for one coordinate against the *currently
    /// visible* (delayed) shared state.
    fn compute_delta(&self, problem: &RidgeProblem, coord: usize) -> f32 {
        let n_lambda = problem.n_lambda();
        match self.form {
            Form::Primal => {
                let col = problem.csc().col(coord);
                let y = problem.labels();
                let mut dot = 0.0f64;
                for (&i, &v) in col.indices.iter().zip(col.values) {
                    let i = i as usize;
                    dot += (y[i] as f64 - self.shared[i] as f64) * v as f64;
                }
                self.objective.primal_delta(
                    dot,
                    self.weights[coord] as f64,
                    self.quadratic_scale * problem.col_sq_norms()[coord],
                    problem.n(),
                    problem.lambda(),
                    n_lambda,
                ) as f32
            }
            Form::Dual => {
                let row = problem.csr().row(coord);
                let dot = row.dot_dense(&self.shared);
                self.objective.dual_delta(
                    dot,
                    problem.labels()[coord] as f64,
                    self.weights[coord] as f64,
                    self.quadratic_scale * problem.row_sq_norms()[coord],
                    problem.lambda(),
                    n_lambda,
                ) as f32
            }
        }
    }

    fn coord_view<'a>(
        &self,
        problem: &'a RidgeProblem,
        coord: usize,
    ) -> scd_sparse::SparseVecView<'a> {
        match self.form {
            Form::Primal => problem.csc().col(coord),
            Form::Dual => problem.csr().row(coord),
        }
    }

    /// Retire the oldest in-flight update: decrement touch counts and apply
    /// the write-back under the engine's semantics.
    fn retire(&mut self, problem: &RidgeProblem, u: InFlight, rng: &mut SplitMix64) {
        let view = self.coord_view(problem, u.coord);
        match self.mode {
            AsyncCpuMode::Atomic => {
                for (&i, &v) in view.indices.iter().zip(view.values) {
                    let i = i as usize;
                    self.touch[i] -= 1;
                    self.shared[i] += v * u.delta;
                }
            }
            AsyncCpuMode::Wild => {
                let racing = self.threads > 1;
                for (&i, &v) in view.indices.iter().zip(view.values) {
                    let i = i as usize;
                    self.touch[i] -= 1;
                    // With peers continuously issuing racy read-modify-writes,
                    // each write is clobbered with the calibrated probability.
                    let lost = racing && rng.next_f64() < self.collision_rate;
                    if !lost {
                        self.shared[i] += v * u.delta;
                    }
                }
            }
        }
    }

    fn run_epoch(&mut self, problem: &RidgeProblem) -> (usize, usize) {
        let coords = problem.coords(self.form);
        let perm = Permutation::random(coords, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        let mut rng = SplitMix64::new(self.seed ^ (self.epoch_index.wrapping_mul(0xC2B2)));
        self.epoch_index += 1;
        let window = self.staleness;
        let mut queue: VecDeque<InFlight> = VecDeque::with_capacity(window + 1);
        let mut nnz_touched = 0usize;

        for j in 0..coords {
            let c = perm.apply(j);
            let delta = self.compute_delta(problem, c);
            self.weights[c] += delta;
            let view = self.coord_view(problem, c);
            nnz_touched += view.nnz();
            for &i in view.indices {
                self.touch[i as usize] += 1;
            }
            queue.push_back(InFlight { coord: c, delta });
            if queue.len() > window {
                let u = queue.pop_front().expect("non-empty");
                self.retire(problem, u, &mut rng);
            }
        }
        // Epoch boundary: threads join; flush the window.
        while let Some(u) = queue.pop_front() {
            self.retire(problem, u, &mut rng);
        }
        debug_assert!(self.touch.iter().all(|&t| t == 0), "touch counts balanced");
        (coords, nnz_touched)
    }
}

impl Solver for AsyncSimScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        match self.mode {
            AsyncCpuMode::Atomic => format!("A-SCD ({} threads)", self.threads),
            AsyncCpuMode::Wild => format!("PASSCoDe-Wild ({} threads)", self.threads),
        }
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let (coords, nnz) = self.run_epoch(problem);
        EpochStats {
            updates: coords,
            breakdown: TimeBreakdown {
                host: self
                    .cpu
                    .async_epoch_seconds(self.mode, self.threads, nnz, coords),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.weights.clone()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.clone()
    }

    fn weights_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.weights);
    }

    fn shared_vector_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialScd;
    use scd_datasets::{dense_gaussian, webspam_like};
    use scd_sparse::dense;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(200, 150, 12, 4), 1e-3).unwrap()
    }

    #[test]
    fn single_thread_sim_matches_sequential_exactly() {
        // With T=1 the window is empty and the engine reduces to Algorithm 1;
        // identical seeds ⇒ identical permutations ⇒ bit-identical runs.
        let p = problem();
        let mut seq = SequentialScd::primal(&p, 9);
        let mut sim = AsyncSimScd::new(&p, Form::Primal, AsyncCpuMode::Atomic, 1, 9);
        for _ in 0..3 {
            seq.epoch(&p);
            sim.epoch(&p);
        }
        assert_eq!(seq.weights(), sim.weights());
        assert_eq!(seq.shared_vector(), sim.shared_vector());
    }

    #[test]
    fn wild_single_thread_also_matches_sequential() {
        // No concurrency ⇒ no contention ⇒ wild cannot lose anything.
        let p = problem();
        let mut seq = SequentialScd::dual(&p, 11);
        let mut sim = AsyncSimScd::new(&p, Form::Dual, AsyncCpuMode::Wild, 1, 11);
        for _ in 0..3 {
            seq.epoch(&p);
            sim.epoch(&p);
        }
        assert_eq!(seq.weights(), sim.weights());
    }

    #[test]
    fn atomic_converges_like_sequential() {
        // Fig. 1a: "the atomic implementation (A-SCD) has exactly the same
        // convergence properties as the sequential algorithm as a function
        // of epochs" — the T−1 staleness window is negligible per epoch.
        let p = problem();
        let mut seq = SequentialScd::primal(&p, 2);
        let mut atomic = AsyncSimScd::a_scd(&p, Form::Primal, 2);
        for _ in 0..100 {
            seq.epoch(&p);
            atomic.epoch(&p);
        }
        let (g_seq, g_atomic) = (seq.duality_gap(&p), atomic.duality_gap(&p));
        assert!(g_atomic < 1e-6, "atomic must converge, gap {g_atomic}");
        assert!(
            g_atomic < g_seq * 100.0 + 1e-7,
            "atomic ({g_atomic}) should track sequential ({g_seq})"
        );
    }

    #[test]
    fn atomic_shared_vector_never_drifts() {
        let p = problem();
        let mut s = AsyncSimScd::a_scd(&p, Form::Primal, 3);
        for _ in 0..5 {
            s.epoch(&p);
        }
        let w_true = p.csc().matvec(&s.weights()).unwrap();
        assert!(dense::max_abs_diff(&s.shared_vector(), &w_true) < 1e-3);
    }

    #[test]
    fn wild_shared_vector_drifts_from_weights() {
        let p = problem();
        let mut s = AsyncSimScd::wild(&p, Form::Primal, 3);
        for _ in 0..20 {
            s.epoch(&p);
        }
        let w_true = p.csc().matvec(&s.weights()).unwrap();
        let drift = dense::max_abs_diff(&s.shared_vector(), &w_true);
        assert!(
            drift > 1e-5,
            "wild write-back must lose updates on overlapping coordinates, drift {drift}"
        );
    }

    #[test]
    fn wild_gap_plateaus_above_atomic() {
        // Fig. 1a: PASSCoDe-Wild "converges to a solution that violates the
        // optimality conditions" — its duality gap stalls while A-SCD's
        // keeps falling.
        let p = problem();
        let mut atomic = AsyncSimScd::a_scd(&p, Form::Primal, 5);
        let mut wild = AsyncSimScd::wild(&p, Form::Primal, 5);
        for _ in 0..100 {
            atomic.epoch(&p);
            wild.epoch(&p);
        }
        let (g_atomic, g_wild) = (atomic.duality_gap(&p), wild.duality_gap(&p));
        assert!(g_wild.is_finite(), "wild must not diverge");
        assert!(
            g_wild > 10.0 * g_atomic,
            "wild gap {g_wild} should plateau far above atomic {g_atomic}"
        );
    }

    #[test]
    fn wild_still_reaches_a_useful_solution() {
        // §V-B: "the solution that it has found may still be useful" — the
        // wild model stays in the optimum's neighbourhood.
        let p = problem();
        let mut seq = SequentialScd::primal(&p, 6);
        let mut wild = AsyncSimScd::wild(&p, Form::Primal, 6);
        for _ in 0..60 {
            seq.epoch(&p);
            wild.epoch(&p);
        }
        let rel = dense::max_abs_diff(&seq.weights(), &wild.weights());
        let scale = seq
            .weights()
            .iter()
            .fold(0.0f32, |acc, &w| acc.max(w.abs()));
        assert!(
            rel < scale,
            "wild solution should stay in the optimum's neighbourhood: diff {rel}, scale {scale}"
        );
        assert!(wild.duality_gap(&p).is_finite());
    }

    #[test]
    fn dual_form_converges_with_scaled_staleness() {
        // At paper scale 16 threads are a ~6e-5 staleness fraction; map that
        // onto this 200-example problem.
        let p = problem();
        let window = scaled_staleness(16, p.n(), 262_938);
        let mut s = AsyncSimScd::a_scd(&p, Form::Dual, 8).with_staleness(window);
        for _ in 0..120 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap.is_finite() && gap < 5e-3, "gap {gap}");
    }

    #[test]
    fn excessive_staleness_destabilizes_small_problems() {
        // The scale artifact documented in the module docs: a 15-update
        // window against only 200 dual coordinates is far outside the
        // stability regime of asynchronous coordinate descent, while the
        // paper-scaled window converges cleanly. This is why figure-scale
        // runs use `scaled_staleness`.
        let p = problem();
        let mut unstable = AsyncSimScd::a_scd(&p, Form::Dual, 8); // window 15
        let mut stable = AsyncSimScd::a_scd(&p, Form::Dual, 8).with_staleness(0);
        for _ in 0..60 {
            unstable.epoch(&p);
            stable.epoch(&p);
        }
        let (gu, gs) = (unstable.duality_gap(&p), stable.duality_gap(&p));
        assert!(gs < 1e-2, "scaled window must converge, gap {gs}");
        assert!(
            gu.is_nan() || gu > 10.0 * gs,
            "unscaled window should visibly destabilize: {gu} vs {gs}"
        );
    }

    #[test]
    fn scaled_staleness_maps_paper_fractions() {
        // 16 threads on full webspam: window stays 15.
        assert_eq!(scaled_staleness(16, 680_715, 680_715), 15);
        // Same fraction on a 5,000-coordinate synthetic: effectively 0.
        assert_eq!(scaled_staleness(16, 5_000, 680_715), 0);
        assert_eq!(scaled_staleness(1, 100, 100), 0);
    }

    #[test]
    fn zero_collision_rate_makes_wild_exact() {
        let p = problem();
        let mut atomic = AsyncSimScd::a_scd(&p, Form::Primal, 4);
        let mut wild0 = AsyncSimScd::wild(&p, Form::Primal, 4).with_collision_rate(0.0);
        for _ in 0..10 {
            atomic.epoch(&p);
            wild0.epoch(&p);
        }
        assert_eq!(atomic.weights(), wild0.weights());
        assert_eq!(atomic.shared_vector(), wild0.shared_vector());
    }

    #[test]
    fn higher_collision_rate_means_more_drift() {
        let p = problem();
        let drift = |rate: f64| {
            let mut s = AsyncSimScd::wild(&p, Form::Primal, 7).with_collision_rate(rate);
            for _ in 0..20 {
                s.epoch(&p);
            }
            let w_true = p.csc().matvec(&s.weights()).unwrap();
            dense::squared_distance(&s.shared_vector(), &w_true)
        };
        let low = drift(0.02);
        let high = drift(0.5);
        assert!(
            high > low,
            "collision rate 0.5 drift {high} should exceed 0.02 drift {low}"
        );
    }

    #[test]
    fn names_match_paper_legends() {
        let p = RidgeProblem::from_labelled(&dense_gaussian(5, 3, 1), 0.1).unwrap();
        assert_eq!(
            AsyncSimScd::a_scd(&p, Form::Primal, 0).name(),
            "A-SCD (16 threads)"
        );
        assert_eq!(
            AsyncSimScd::wild(&p, Form::Primal, 0).name(),
            "PASSCoDe-Wild (16 threads)"
        );
    }

    #[test]
    fn wild_epoch_is_faster_than_atomic_epoch() {
        let p = problem();
        let mut atomic = AsyncSimScd::a_scd(&p, Form::Primal, 1);
        let mut wild = AsyncSimScd::wild(&p, Form::Primal, 1);
        let ta = atomic.epoch(&p).seconds();
        let tw = wild.epoch(&p).seconds();
        assert!(
            tw < ta,
            "PASSCoDe-Wild ({tw}s) must beat A-SCD ({ta}s) per epoch in simulated time"
        );
    }
}

//! Mini-batch SDCA (Takáč, Richtárik & Srebro [19]) — the batch-parallel
//! point in the design space between sequential SDCA and the fully
//! asynchronous engines.
//!
//! Each step draws the next `b` coordinates of the epoch permutation,
//! computes all `b` dual updates **from the same state** (they could run on
//! b parallel threads with no communication), and applies them scaled by an
//! aggregation parameter θ. θ = 1/b is unconditionally safe but cancels the
//! parallel gain (b× fewer effective steps per epoch); θ = 1 ("adding")
//! makes full steps but overshoots on correlated batches — exactly the
//! conservatism-vs-progress dial that [19]'s analysis tightens with
//! data-dependent safe step sizes, and that the paper's Algorithm 4
//! resolves with a closed form at the cluster level. The θ knob here lets
//! the bench sweep that dial.
//!
//! Simulated time credits the idealized b-way parallelism: an epoch costs
//! the sequential epoch divided by b (plus the per-batch synchronization).

use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use crate::updates::dual_delta;
use scd_perf_model::CpuProfile;
use scd_sparse::perm::Permutation;

/// Mini-batch stochastic dual coordinate ascent for ridge regression.
#[derive(Debug, Clone)]
pub struct MiniBatchSdca {
    alpha: Vec<f32>,
    /// w̄ = Aᵀα.
    w_bar: Vec<f32>,
    batch: usize,
    /// Aggregation parameter θ applied to every update in a batch.
    theta: f64,
    cpu: CpuProfile,
    seed: u64,
    epoch_index: u64,
}

impl MiniBatchSdca {
    /// New solver with zero weights and the safe θ = 1/b.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn new(problem: &RidgeProblem, batch: usize, seed: u64) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        MiniBatchSdca {
            alpha: vec![0.0; problem.n()],
            w_bar: vec![0.0; problem.m()],
            batch,
            theta: 1.0 / batch as f64,
            cpu: CpuProfile::xeon_e5_2640(),
            seed,
            epoch_index: 0,
        }
    }

    /// Override the aggregation parameter θ (1/b = safe averaging, 1 =
    /// aggressive adding).
    ///
    /// # Panics
    /// Panics unless 0 < θ ≤ 1.
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta in (0, 1]");
        self.theta = theta;
        self
    }

    /// The configured batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl Solver for MiniBatchSdca {
    fn form(&self) -> Form {
        Form::Dual
    }

    fn name(&self) -> String {
        format!("Mini-batch SDCA (b={}, theta={:.3})", self.batch, self.theta)
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let n = problem.n();
        let lambda = problem.lambda();
        let n_lambda = problem.n_lambda();
        let perm = Permutation::random(n, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        let mut nnz_touched = 0usize;
        let mut deltas: Vec<(usize, f32)> = Vec::with_capacity(self.batch);

        for start in (0..n).step_by(self.batch) {
            let end = (start + self.batch).min(n);
            deltas.clear();
            // Compute the whole batch against the batch-start state.
            for j in start..end {
                let i = perm.apply(j);
                let row = problem.csr().row(i);
                nnz_touched += row.nnz();
                let dot = row.dot_dense(&self.w_bar);
                let delta = dual_delta(
                    dot,
                    problem.labels()[i] as f64,
                    self.alpha[i] as f64,
                    problem.row_sq_norms()[i],
                    lambda,
                    n_lambda,
                ) as f32;
                deltas.push((i, delta));
            }
            // Apply, scaled by θ.
            for &(i, d) in &deltas {
                let scaled = self.theta as f32 * d;
                self.alpha[i] += scaled;
                problem.csr().row(i).axpy_into(scaled, &mut self.w_bar);
            }
        }

        // Idealized b-way parallel batch: compute time divides by b; each
        // batch pays one barrier's worth of host synchronization.
        let sequential = self.cpu.sequential_epoch_seconds(nnz_touched, n);
        let batches = n.div_ceil(self.batch);
        EpochStats {
            updates: n,
            breakdown: TimeBreakdown {
                host: sequential / self.batch as f64
                    + batches as f64 * self.cpu.host_vector_op_seconds(self.batch),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.alpha.clone()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.w_bar.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialScd;
    use scd_datasets::{scale_values, webspam_like};
    use scd_sparse::dense;

    fn problem() -> RidgeProblem {
        let data = scale_values(&webspam_like(250, 180, 15, 41), 0.3);
        RidgeProblem::from_labelled(&data, 1e-3).unwrap()
    }

    #[test]
    fn batch_one_equals_sequential_dual() {
        let p = problem();
        let mut mb = MiniBatchSdca::new(&p, 1, 9);
        let mut seq = SequentialScd::dual(&p, 9);
        for _ in 0..3 {
            mb.epoch(&p);
            seq.epoch(&p);
        }
        assert_eq!(mb.weights(), seq.weights());
        assert!(dense::max_abs_diff(&mb.shared_vector(), &seq.shared_vector()) < 1e-5);
    }

    #[test]
    fn safe_theta_converges_for_all_batch_sizes() {
        let p = problem();
        for b in [4usize, 16, 64] {
            let mut mb = MiniBatchSdca::new(&p, b, 3);
            // θ = 1/b costs roughly b× the epochs — run proportionally.
            for _ in 0..(100 + 16 * b) {
                mb.epoch(&p);
            }
            let gap = p.dual_duality_gap(&mb.weights());
            assert!(gap < 1e-3, "b={b}: gap {gap}");
        }
    }

    #[test]
    fn shared_vector_stays_consistent() {
        let p = problem();
        let mut mb = MiniBatchSdca::new(&p, 16, 5);
        for _ in 0..5 {
            mb.epoch(&p);
        }
        let w_true = p.csr().matvec_t(&mb.weights()).unwrap();
        assert!(dense::max_abs_diff(&mb.shared_vector(), &w_true) < 1e-3);
    }

    #[test]
    fn bigger_batches_need_more_epochs() {
        let p = problem();
        let epochs_to = |b: usize| {
            let mut mb = MiniBatchSdca::new(&p, b, 7);
            for e in 1..=500 {
                mb.epoch(&p);
                if p.dual_duality_gap(&mb.weights()) <= 1e-4 {
                    return e;
                }
            }
            501
        };
        let small = epochs_to(2);
        let big = epochs_to(64);
        assert!(
            big > small,
            "b=64 ({big} epochs) should need more epochs than b=2 ({small})"
        );
    }

    #[test]
    fn tuned_theta_turns_parallelism_into_time_speedup() {
        // θ = 1/b is safe but gainless (b× fewer effective steps cancels
        // the b× parallelism); a θ tuned above 1/b — the tightened safe
        // steps of [19] — converts the parallelism into wall-clock.
        let p = problem();
        let time_to = |b: usize, theta: f64| {
            let mut mb = MiniBatchSdca::new(&p, b, 11).with_theta(theta);
            let mut secs = 0.0;
            for _ in 1..=800 {
                secs += mb.epoch(&p).seconds();
                if p.dual_duality_gap(&mb.weights()) <= 1e-4 {
                    return Some(secs);
                }
            }
            None
        };
        let t1 = time_to(1, 1.0).expect("b=1 converges");
        let t8_safe = time_to(8, 1.0 / 8.0).expect("safe b=8 converges");
        let t8_tuned = time_to(8, 0.5).expect("tuned b=8 converges");
        assert!(
            t8_tuned < t1,
            "tuned 8-way mini-batch ({t8_tuned}s) should beat sequential ({t1}s)"
        );
        assert!(
            t8_tuned < t8_safe,
            "tuned theta ({t8_tuned}s) should beat 1/b ({t8_safe}s)"
        );
    }

    #[test]
    fn aggressive_theta_on_big_batches_misbehaves() {
        let p = problem();
        let mut safe = MiniBatchSdca::new(&p, 64, 13);
        let mut aggressive = MiniBatchSdca::new(&p, 64, 13).with_theta(1.0);
        for _ in 0..60 {
            safe.epoch(&p);
            aggressive.epoch(&p);
        }
        let gs = p.dual_duality_gap(&safe.weights());
        let ga = p.dual_duality_gap(&aggressive.weights());
        assert!(
            ga.is_nan() || ga > gs,
            "theta=1 on b=64 (gap {ga}) should trail theta=1/b (gap {gs})"
        );
    }

    #[test]
    fn name_reports_configuration() {
        let p = problem();
        let mb = MiniBatchSdca::new(&p, 16, 0);
        assert!(mb.name().contains("b=16"));
        assert_eq!(mb.batch(), 16);
        assert_eq!(mb.form(), Form::Dual);
    }
}

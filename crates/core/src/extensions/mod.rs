//! Beyond ridge: the other problems the paper points at.
//!
//! §I: "stochastic coordinate methods are used in the field of machine
//! learning to solve other problems such as regression with elastic net
//! regularization as well as support vector machines." These modules carry
//! the same coordinate-descent machinery to those objectives:
//!
//! * [`elastic_net`] — coordinate descent with soft-thresholding for
//!   L1+L2-regularized least squares (the lasso at ρ=1, ridge at ρ=0).
//! * [`svm`] — stochastic dual coordinate ascent for the hinge-loss SVM
//!   (Shalev-Shwartz & Zhang [9], the same reference the paper's dual
//!   update rule builds on).
//! * [`logistic`] — SDCA for L2-regularized logistic regression; the
//!   coordinate subproblem has no closed form and is solved by bisection.

pub mod elastic_net;
pub mod logistic;
pub mod svm;

pub use elastic_net::ElasticNetCd;
pub use logistic::LogisticSdca;
pub use svm::SdcaSvm;

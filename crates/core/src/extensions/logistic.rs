//! L2-regularized logistic regression by stochastic dual coordinate ascent.
//!
//! The third member of the GLM family the paper's introduction situates
//! ridge regression in. SDCA formulation (Shalev-Shwartz & Zhang [9]):
//!
//! primal: P(β) = (1/N)Σₙ log(1 + exp(−yₙ⟨āₙ, β⟩)) + (λ/2)‖β‖²
//! dual:   D(α) = (1/N)Σₙ [−αₙ log αₙ − (1−αₙ)log(1−αₙ)] − (λ/2)‖β(α)‖²,
//! with αₙ ∈ (0, 1) and β(α) = (1/λN) Σₙ αₙ yₙ āₙ maintained incrementally
//! — the same shared-vector pattern as the ridge dual.
//!
//! Unlike ridge (Eq. 4) the coordinate subproblem has no closed form; the
//! optimality condition
//!
//!   log((1−α)/α) = yₙ⟨āₙ, β⟩ + (α − α_old)‖āₙ‖²/(λN)
//!
//! is solved by bisection (the left side is strictly decreasing in α, the
//! right side increasing, so the root is unique in (0, 1)).

use crate::problem::RidgeProblem;
use scd_sparse::perm::Permutation;

/// x·log(x) with the 0·log 0 = 0 convention.
#[inline]
fn xlogx(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// Logistic regression trained by SDCA over a [`RidgeProblem`]'s data
/// (labels must be ±1; λ is taken from the problem).
#[derive(Debug, Clone)]
pub struct LogisticSdca {
    alpha: Vec<f32>,
    /// β(α), maintained incrementally.
    beta: Vec<f32>,
    /// Bisection iterations per coordinate subproblem.
    bisection_iters: usize,
    seed: u64,
    epoch_index: u64,
}

impl LogisticSdca {
    /// New solver with α = 1/2 everywhere (the entropy term's maximizer, a
    /// strictly interior start).
    ///
    /// # Panics
    /// Panics if any label is not ±1.
    pub fn new(problem: &RidgeProblem, seed: u64) -> Self {
        assert!(
            problem.labels().iter().all(|&y| y == 1.0 || y == -1.0),
            "logistic regression requires ±1 labels"
        );
        let alpha = vec![0.5f32; problem.n()];
        // β(α) for the uniform start: (1/λN) Σ 0.5·yₙ·āₙ.
        let scaled: Vec<f32> = problem
            .labels()
            .iter()
            .map(|&y| 0.5 * y / problem.n_lambda() as f32)
            .collect();
        let beta = problem
            .csr()
            .matvec_t(&scaled)
            .expect("labels length matches rows");
        LogisticSdca {
            alpha,
            beta,
            bisection_iters: 40,
            seed,
            epoch_index: 0,
        }
    }

    /// Current primal weights β(α).
    pub fn weights(&self) -> &[f32] {
        &self.beta
    }

    /// Current dual variables α ∈ (0, 1)ᴺ.
    pub fn dual_variables(&self) -> &[f32] {
        &self.alpha
    }

    /// The primal logistic objective.
    pub fn primal_objective(&self, problem: &RidgeProblem) -> f64 {
        let n = problem.n() as f64;
        let mut loss = 0.0f64;
        for (i, row) in problem.csr().iter_rows().enumerate() {
            let margin = problem.labels()[i] as f64 * row.dot_dense(&self.beta);
            // ln(1 + e^{-margin}) computed stably.
            loss += if margin > 0.0 {
                (-margin).exp().ln_1p()
            } else {
                -margin + margin.exp().ln_1p()
            };
        }
        let reg: f64 = self.beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        loss / n + problem.lambda() / 2.0 * reg
    }

    /// The SDCA dual objective.
    pub fn dual_objective(&self, problem: &RidgeProblem) -> f64 {
        let n = problem.n() as f64;
        let entropy: f64 = self
            .alpha
            .iter()
            .map(|&a| {
                let a = a as f64;
                -xlogx(a) - xlogx(1.0 - a)
            })
            .sum();
        let reg: f64 = self.beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        entropy / n - problem.lambda() / 2.0 * reg
    }

    /// Duality gap P − D (≥ 0; → 0 at the optimum).
    pub fn duality_gap(&self, problem: &RidgeProblem) -> f64 {
        self.primal_objective(problem) - self.dual_objective(problem)
    }

    /// Fraction of training examples classified correctly.
    pub fn train_accuracy(&self, problem: &RidgeProblem) -> f64 {
        let mut correct = 0usize;
        for (i, row) in problem.csr().iter_rows().enumerate() {
            let pred = if row.dot_dense(&self.beta) >= 0.0 { 1.0 } else { -1.0 };
            if pred == problem.labels()[i] as f64 {
                correct += 1;
            }
        }
        correct as f64 / problem.n() as f64
    }

    /// One permuted SDCA pass over all examples.
    pub fn epoch(&mut self, problem: &RidgeProblem) {
        let n = problem.n();
        let lambda_n = problem.n_lambda();
        let perm = Permutation::random(n, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        for j in 0..n {
            let i = perm.apply(j);
            let row = problem.csr().row(i);
            let sq = problem.row_sq_norms()[i];
            if sq == 0.0 {
                continue;
            }
            let y = problem.labels()[i] as f64;
            let margin = y * row.dot_dense(&self.beta);
            let old = self.alpha[i] as f64;
            let coupling = sq / lambda_n;
            // Root of f(a) = ln((1−a)/a) − margin − (a − old)·coupling,
            // strictly decreasing from +∞ (a→0) to −∞ (a→1).
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            for _ in 0..self.bisection_iters {
                let mid = (lo + hi) / 2.0;
                let f = ((1.0 - mid) / mid).ln() - margin - (mid - old) * coupling;
                if f > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let new = (lo + hi) / 2.0;
            let delta = new - old;
            if delta != 0.0 {
                self.alpha[i] = new as f32;
                let scale = (delta * y / lambda_n) as f32;
                row.axpy_into(scale, &mut self.beta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::webspam_like;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(150, 100, 10, 31), 1e-2).unwrap()
    }

    #[test]
    fn alpha_stays_strictly_interior() {
        let p = problem();
        let mut lr = LogisticSdca::new(&p, 1);
        for _ in 0..15 {
            lr.epoch(&p);
        }
        assert!(lr
            .dual_variables()
            .iter()
            .all(|&a| a > 0.0 && a < 1.0));
    }

    #[test]
    fn beta_tracks_alpha_exactly() {
        let p = problem();
        let mut lr = LogisticSdca::new(&p, 2);
        for _ in 0..5 {
            lr.epoch(&p);
        }
        let scaled: Vec<f32> = lr
            .dual_variables()
            .iter()
            .zip(p.labels())
            .map(|(&a, &y)| a * y / p.n_lambda() as f32)
            .collect();
        let beta_ref = p.csr().matvec_t(&scaled).unwrap();
        for (a, b) in lr.weights().iter().zip(&beta_ref) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn duality_gap_shrinks_toward_zero() {
        let p = problem();
        let mut lr = LogisticSdca::new(&p, 3);
        let g0 = lr.duality_gap(&p);
        assert!(g0 >= -1e-9, "weak duality at the start");
        for _ in 0..60 {
            lr.epoch(&p);
        }
        let g = lr.duality_gap(&p);
        assert!(g >= -1e-6, "weak duality preserved");
        assert!(g < g0 * 0.05, "gap {g0} -> {g}");
        assert!(g < 1e-3, "final gap {g}");
    }

    #[test]
    fn learns_to_classify() {
        let p = problem();
        let mut lr = LogisticSdca::new(&p, 4);
        for _ in 0..40 {
            lr.epoch(&p);
        }
        let acc = lr.train_accuracy(&p);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn bisection_solves_the_coordinate_exactly() {
        // Re-running a coordinate immediately must leave it (nearly) fixed.
        let p = problem();
        let mut lr = LogisticSdca::new(&p, 5);
        lr.epoch(&p);
        let before = lr.dual_variables().to_vec();
        // One more epoch changes things, but the total movement shrinks
        // epoch over epoch (contraction toward the fixed point).
        lr.epoch(&p);
        let move1: f64 = lr
            .dual_variables()
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs() as f64)
            .sum();
        let mid = lr.dual_variables().to_vec();
        lr.epoch(&p);
        let move2: f64 = lr
            .dual_variables()
            .iter()
            .zip(&mid)
            .map(|(a, b)| (a - b).abs() as f64)
            .sum();
        assert!(move2 < move1, "updates must contract: {move1} then {move2}");
    }

    #[test]
    #[should_panic(expected = "±1 labels")]
    fn rejects_regression_labels() {
        let p = RidgeProblem::from_labelled(&scd_datasets::dense_gaussian(10, 4, 1), 0.1).unwrap();
        let _ = LogisticSdca::new(&p, 0);
    }

    #[test]
    fn xlogx_convention() {
        assert_eq!(xlogx(0.0), 0.0);
        assert!((xlogx(1.0)).abs() < 1e-15);
        assert!((xlogx(0.5) - 0.5 * 0.5f64.ln()).abs() < 1e-15);
    }
}

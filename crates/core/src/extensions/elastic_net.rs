//! Elastic-net regression by stochastic coordinate descent.
//!
//! Objective (Friedman, Hastie & Tibshirani [4] — the same reference as the
//! paper's Algorithm 1):
//!
//! F(β) = 1/(2N)‖Aβ − y‖² + λ(ρ‖β‖₁ + (1−ρ)/2·‖β‖²)
//!
//! The coordinate subproblem has the soft-threshold closed form
//! β_m ← S(⟨r, a_m⟩/N, λρ) / (‖a_m‖²/N + λ(1−ρ)) with r = y − w + a_m β_m;
//! at ρ = 0 this reduces exactly to the paper's ridge update (Eq. 2).

use crate::problem::RidgeProblem;
use scd_sparse::perm::Permutation;

/// Soft-threshold operator S(z, t) = sign(z)·max(|z| − t, 0).
#[inline]
pub fn soft_threshold(z: f64, t: f64) -> f64 {
    if z > t {
        z - t
    } else if z < -t {
        z + t
    } else {
        0.0
    }
}

/// Coordinate-descent solver for the elastic net, driven over the same
/// [`RidgeProblem`] data (λ is taken from the problem; `l1_ratio` = ρ
/// selects the mix).
#[derive(Debug, Clone)]
pub struct ElasticNetCd {
    /// ρ ∈ [0, 1]: 0 = ridge, 1 = lasso.
    l1_ratio: f64,
    beta: Vec<f32>,
    /// w = Aβ.
    w: Vec<f32>,
    seed: u64,
    epoch_index: u64,
}

impl ElasticNetCd {
    /// New solver with zero weights.
    ///
    /// # Panics
    /// Panics if `l1_ratio` is outside [0, 1].
    pub fn new(problem: &RidgeProblem, l1_ratio: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&l1_ratio),
            "l1_ratio must be in [0,1], got {l1_ratio}"
        );
        ElasticNetCd {
            l1_ratio,
            beta: vec![0.0; problem.m()],
            w: vec![0.0; problem.n()],
            seed,
            epoch_index: 0,
        }
    }

    /// Current weights β.
    pub fn weights(&self) -> &[f32] {
        &self.beta
    }

    /// Number of exactly-zero weights (the sparsity the L1 term buys).
    pub fn zero_count(&self) -> usize {
        self.beta.iter().filter(|&&b| b == 0.0).count()
    }

    /// The elastic-net objective at the current iterate.
    pub fn objective(&self, problem: &RidgeProblem) -> f64 {
        let n = problem.n() as f64;
        let fit: f64 = self
            .w
            .iter()
            .zip(problem.labels())
            .map(|(&wi, &yi)| {
                let d = wi as f64 - yi as f64;
                d * d
            })
            .sum();
        let l1: f64 = self.beta.iter().map(|&b| (b as f64).abs()).sum();
        let l2: f64 = self.beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        fit / (2.0 * n) + problem.lambda() * (self.l1_ratio * l1 + (1.0 - self.l1_ratio) / 2.0 * l2)
    }

    /// One permuted pass over all features.
    pub fn epoch(&mut self, problem: &RidgeProblem) {
        let m = problem.m();
        let n = problem.n() as f64;
        let lambda = problem.lambda();
        let perm = Permutation::random(m, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        for j in 0..m {
            let c = perm.apply(j);
            let col = problem.csc().col(c);
            let sq = problem.col_sq_norms()[c];
            let denom = sq / n + lambda * (1.0 - self.l1_ratio);
            if denom == 0.0 {
                // Empty column under pure lasso: optimal weight is 0.
                let old = self.beta[c];
                if old != 0.0 {
                    col.axpy_into(-old, &mut self.w);
                    self.beta[c] = 0.0;
                }
                continue;
            }
            let old = self.beta[c] as f64;
            // ⟨y − w + a_c β_c, a_c⟩ = ⟨y − w, a_c⟩ + ‖a_c‖²·β_c
            let mut dot = 0.0f64;
            for (&i, &v) in col.indices.iter().zip(col.values) {
                let i = i as usize;
                dot += (problem.labels()[i] as f64 - self.w[i] as f64) * v as f64;
            }
            let rho_dot = dot / n + sq / n * old;
            let new = soft_threshold(rho_dot, lambda * self.l1_ratio) / denom;
            let delta = (new - old) as f32;
            if delta != 0.0 {
                self.beta[c] += delta;
                col.axpy_into(delta, &mut self.w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_primal;
    use scd_datasets::dense_gaussian;
    use scd_sparse::dense;

    fn problem(lambda: f64) -> RidgeProblem {
        RidgeProblem::from_labelled(&dense_gaussian(40, 12, 9), lambda).unwrap()
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(1.0, 1.0), 0.0);
    }

    #[test]
    fn rho_zero_reduces_to_ridge() {
        let p = problem(0.05);
        let mut en = ElasticNetCd::new(&p, 0.0, 3);
        for _ in 0..200 {
            en.epoch(&p);
        }
        let exact = exact_primal(&p);
        assert!(
            dense::max_abs_diff(en.weights(), &exact) < 1e-3,
            "elastic net at ρ=0 must solve ridge"
        );
    }

    #[test]
    fn objective_decreases_monotonically() {
        let p = problem(0.02);
        let mut en = ElasticNetCd::new(&p, 0.5, 1);
        let mut prev = en.objective(&p);
        for _ in 0..30 {
            en.epoch(&p);
            let cur = en.objective(&p);
            // Allow f32 shared-vector rounding noise.
            assert!(
                cur <= prev + 1e-6 * prev.abs().max(1e-9),
                "exact CD never increases the objective: {prev} -> {cur}"
            );
            prev = cur;
        }
    }

    #[test]
    fn l1_produces_sparsity() {
        let p = problem(0.5);
        let mut ridge_like = ElasticNetCd::new(&p, 0.0, 2);
        let mut lasso = ElasticNetCd::new(&p, 1.0, 2);
        for _ in 0..100 {
            ridge_like.epoch(&p);
            lasso.epoch(&p);
        }
        assert!(
            lasso.zero_count() > ridge_like.zero_count(),
            "lasso ({}) should zero more weights than ridge ({})",
            lasso.zero_count(),
            ridge_like.zero_count()
        );
        assert!(lasso.zero_count() > 0);
    }

    #[test]
    fn heavy_l1_kills_all_weights() {
        // λρ above max|⟨y, a⟩|/N forces the all-zero solution.
        let p = problem(1e6);
        let mut en = ElasticNetCd::new(&p, 1.0, 4);
        for _ in 0..5 {
            en.epoch(&p);
        }
        assert_eq!(en.zero_count(), p.m());
    }

    #[test]
    #[should_panic(expected = "l1_ratio")]
    fn invalid_ratio_rejected() {
        let p = problem(0.1);
        let _ = ElasticNetCd::new(&p, 1.5, 0);
    }
}

//! Support vector machine training by stochastic dual coordinate ascent.
//!
//! Hinge-loss SVM in the SDCA formulation of Shalev-Shwartz & Zhang [9]
//! (the paper's reference for the dual ridge update):
//!
//! primal: P(β) = (1/N)Σₙ max(0, 1 − yₙ⟨āₙ, β⟩) + (λ/2)‖β‖²
//! dual:   D(α) = (1/N)Σₙ αₙ − (λ/2)‖β(α)‖²,  αₙ ∈ [0, 1],
//! with β(α) = (1/(λN)) Σₙ αₙ yₙ āₙ maintained incrementally as the shared
//! vector — the same pattern as the ridge dual's w̄ = Aᵀα.
//!
//! The closed-form box-constrained coordinate update is
//! Δαₙ = clip(αₙ + (1 − yₙ⟨āₙ, β⟩)·λN/‖āₙ‖², 0, 1) − αₙ.

use crate::problem::RidgeProblem;
use scd_sparse::perm::Permutation;

/// Hinge-loss SVM trained by SDCA over a [`RidgeProblem`]'s data (labels
/// must be ±1; λ is taken from the problem).
#[derive(Debug, Clone)]
pub struct SdcaSvm {
    alpha: Vec<f32>,
    /// β(α), maintained incrementally.
    beta: Vec<f32>,
    seed: u64,
    epoch_index: u64,
}

impl SdcaSvm {
    /// New solver with α = 0 (so β = 0).
    ///
    /// # Panics
    /// Panics if any label is not ±1.
    pub fn new(problem: &RidgeProblem, seed: u64) -> Self {
        assert!(
            problem.labels().iter().all(|&y| y == 1.0 || y == -1.0),
            "SVM requires ±1 labels"
        );
        SdcaSvm {
            alpha: vec![0.0; problem.n()],
            beta: vec![0.0; problem.m()],
            seed,
            epoch_index: 0,
        }
    }

    /// Current primal weights β(α).
    pub fn weights(&self) -> &[f32] {
        &self.beta
    }

    /// Current dual variables α.
    pub fn dual_variables(&self) -> &[f32] {
        &self.alpha
    }

    /// Primal hinge objective.
    pub fn primal_objective(&self, problem: &RidgeProblem) -> f64 {
        let n = problem.n() as f64;
        let mut hinge = 0.0f64;
        for (i, row) in problem.csr().iter_rows().enumerate() {
            let margin = problem.labels()[i] as f64 * row.dot_dense(&self.beta);
            hinge += (1.0 - margin).max(0.0);
        }
        let reg: f64 = self
            .beta
            .iter()
            .map(|&b| (b as f64) * (b as f64))
            .sum();
        hinge / n + problem.lambda() / 2.0 * reg
    }

    /// Dual SDCA objective.
    pub fn dual_objective(&self, problem: &RidgeProblem) -> f64 {
        let n = problem.n() as f64;
        let sum_alpha: f64 = self.alpha.iter().map(|&a| a as f64).sum();
        let reg: f64 = self
            .beta
            .iter()
            .map(|&b| (b as f64) * (b as f64))
            .sum();
        sum_alpha / n - problem.lambda() / 2.0 * reg
    }

    /// Duality gap P − D (non-negative by weak duality; → 0 at optimality).
    pub fn duality_gap(&self, problem: &RidgeProblem) -> f64 {
        self.primal_objective(problem) - self.dual_objective(problem)
    }

    /// Fraction of training examples classified correctly by sign(⟨ā, β⟩).
    pub fn train_accuracy(&self, problem: &RidgeProblem) -> f64 {
        let mut correct = 0usize;
        for (i, row) in problem.csr().iter_rows().enumerate() {
            let pred = if row.dot_dense(&self.beta) >= 0.0 { 1.0 } else { -1.0 };
            if pred == problem.labels()[i] as f64 {
                correct += 1;
            }
        }
        correct as f64 / problem.n() as f64
    }

    /// One permuted SDCA pass over all examples.
    pub fn epoch(&mut self, problem: &RidgeProblem) {
        let n = problem.n();
        let lambda_n = problem.n_lambda();
        let perm = Permutation::random(n, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        for j in 0..n {
            let i = perm.apply(j);
            let row = problem.csr().row(i);
            let sq = problem.row_sq_norms()[i];
            if sq == 0.0 {
                continue;
            }
            let y = problem.labels()[i] as f64;
            let margin = y * row.dot_dense(&self.beta);
            let old = self.alpha[i] as f64;
            let candidate = old + (1.0 - margin) * lambda_n / sq;
            let new = candidate.clamp(0.0, 1.0);
            let delta = new - old;
            if delta != 0.0 {
                self.alpha[i] = new as f32;
                let scale = (delta * y / lambda_n) as f32;
                row.axpy_into(scale, &mut self.beta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::webspam_like;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(150, 100, 10, 21), 1e-2).unwrap()
    }

    #[test]
    fn alpha_stays_in_box() {
        let p = problem();
        let mut svm = SdcaSvm::new(&p, 1);
        for _ in 0..20 {
            svm.epoch(&p);
        }
        assert!(svm
            .dual_variables()
            .iter()
            .all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn beta_tracks_alpha_exactly() {
        let p = problem();
        let mut svm = SdcaSvm::new(&p, 2);
        for _ in 0..5 {
            svm.epoch(&p);
        }
        // β(α) = (1/λN) Σ αₙ yₙ āₙ recomputed from scratch.
        let scaled: Vec<f32> = svm
            .dual_variables()
            .iter()
            .zip(p.labels())
            .map(|(&a, &y)| a * y / p.n_lambda() as f32)
            .collect();
        let beta_ref = p.csr().matvec_t(&scaled).unwrap();
        for (a, b) in svm.weights().iter().zip(&beta_ref) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn duality_gap_shrinks() {
        let p = problem();
        let mut svm = SdcaSvm::new(&p, 3);
        let g0 = svm.duality_gap(&p);
        for _ in 0..50 {
            svm.epoch(&p);
        }
        let g = svm.duality_gap(&p);
        assert!(g >= -1e-9, "weak duality");
        assert!(g < g0 * 0.05, "gap {g0} -> {g}");
    }

    #[test]
    fn learns_to_classify_training_data() {
        let p = problem();
        let mut svm = SdcaSvm::new(&p, 4);
        for _ in 0..50 {
            svm.epoch(&p);
        }
        let acc = svm.train_accuracy(&p);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "±1 labels")]
    fn rejects_regression_labels() {
        let p = RidgeProblem::from_labelled(&scd_datasets::dense_gaussian(10, 4, 1), 0.1).unwrap();
        let _ = SdcaSvm::new(&p, 0);
    }
}

//! SySCD-style system-aware parallel SCD on the host CPU.
//!
//! The paper's CPU baselines leave a lot on the table: A-SCD hammers one
//! shared vector with CAS-loop atomic adds, and every thread's working
//! set is the whole model. SySCD (Ioannou, Mendler-Dünner, Parnell —
//! same group as this paper) restructures the algorithm around the
//! memory hierarchy instead:
//!
//! * **Buckets.** Coordinates are grouped into cache-line-sized buckets
//!   (default [`DEFAULT_BUCKET_SIZE`]); a bucket is the unit of work
//!   assignment, so a worker streams a contiguous block of coordinates
//!   (and, in the dual form, a small ELL block whose slot-major layout
//!   keeps the bucket's rows in cache).
//! * **Shuffled static partitioning.** Each epoch draws one random
//!   permutation of the *buckets* and deals them round-robin to the
//!   `workers` threads. Assignment is decided before any work runs — no
//!   atomic cursor, no work stealing races — so the schedule is a pure
//!   function of `(seed, epoch)`.
//! * **Replicated shared vector.** Every worker updates a private
//!   replica of `v`; after each worker has processed `merge_every`
//!   buckets the replicas are reduced back into the global vector in
//!   worker-id order: `v ← base + Σ_w (replica_w − base)`. A fixed
//!   reduction order makes the merge — and therefore the whole epoch —
//!   **bit-identical across scheduler widths** (the PR 2 / PR 5
//!   determinism idiom). Deterministic replay is not a mode here; it is
//!   the only behaviour.
//!
//! With `workers == 1` the engine degenerates exactly to Algorithm 1:
//! one replica *is* the shared vector, no merges happen, and the epoch
//! uses the flat coordinate permutation — bit-identical to
//! [`SequentialScd`](crate::seq::SequentialScd) because both run the
//! same unrolled kernels (property-tested in `tests/syscd_identity.rs`).
//!
//! Convergence-wise the replicas introduce bounded staleness: within a
//! merge window workers do not see each other's updates. The window is
//! `workers × merge_every × bucket_size` coordinates — the same knob as
//! PASSCoDe's bounded-asynchrony analysis, and small enough by default
//! that the trajectories track sequential SCD closely.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use scd_perf_model::CpuProfile;
use scd_sparse::kernels;
use scd_sparse::perm::Permutation;
use scd_sparse::EllMatrix;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Default coordinates per bucket: 16 × 4-byte weights = one 64-byte
/// cache line of model state per bucket.
pub const DEFAULT_BUCKET_SIZE: usize = 16;

/// Default merge windows per epoch when `--merge-every` is not set: the
/// merge interval auto-sizes to `⌈buckets-per-worker / 4⌉` so an epoch
/// pays ~4 merges regardless of problem size. Merging is two scheduler
/// group launches plus a (W+1)-stream pass over the shared vector, so a
/// per-bucket cadence would drown large problems in synchronization,
/// while the σ′ = W safe subproblem keeps convergence essentially flat
/// in the window size (see the module docs).
pub const DEFAULT_MERGE_WINDOWS: usize = 4;

/// Elements per claimable chunk of the parallel merge.
const MERGE_CHUNK: usize = 4096;

/// Only use a bucket's ELL block when padding stays below this ratio;
/// beyond it the padded stream costs more than CSR's irregularity.
const ELL_MAX_PADDING: f64 = 2.0;

/// Per-worker mutable state.
struct WorkerState {
    /// Private replica of the shared vector.
    replica: Vec<f32>,
    /// `(coordinate, new weight)` staged this window; applied by the
    /// merge step so the model vector has a single writer.
    staged: Vec<(u32, f32)>,
    /// Nonzeros streamed this epoch (cost-model input).
    nnz: usize,
}

/// Per-worker state slot. During a window's scheduler group only worker
/// `w` touches slot `w` (distinct indices ⇒ disjoint slots); between the
/// group barriers only the master thread reads the slots, and the barrier
/// provides the happens-before edge. No lock is needed — and none of the
/// merge-path scratch (guard vectors, replica view vectors) has to be
/// re-collected, i.e. allocated, every window.
struct StateSlot(UnsafeCell<WorkerState>);

// SAFETY: access is partitioned by worker index inside a group and by the
// group barrier outside it (see the type docs).
unsafe impl Sync for StateSlot {}

/// Raw pointer to the shared vector, handed to the merge closure: each
/// chunk writes a disjoint `range`, so the derived mutable slices never
/// alias.
struct SharedPtr(*mut f32);

impl SharedPtr {
    /// # Safety
    /// Callers must hand out non-overlapping `(start, len)` ranges that
    /// stay within the underlying allocation — that disjointness is what
    /// makes the `&self → &mut` lifetime laundering sound.
    #[allow(clippy::mut_from_ref)]
    unsafe fn chunk(&self, start: usize, len: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

// SAFETY: chunk ranges are disjoint (see the type docs).
unsafe impl Sync for SharedPtr {}

/// SySCD-style parallel SCD: bucketized coordinates, shuffled static
/// partitioning, per-worker shared-vector replicas with deterministic
/// worker-id-ordered merges.
pub struct SyscdScd {
    form: Form,
    workers: usize,
    bucket_size: usize,
    /// Buckets per worker between merges; `None` auto-sizes to
    /// ~[`DEFAULT_MERGE_WINDOWS`] merge windows per epoch.
    merge_every: Option<usize>,
    /// β (len M) or α (len N).
    weights: Vec<f32>,
    /// w = Aβ (len N) or w̄ = Aᵀα (len M), rebuilt from replicas at merge
    /// boundaries. Doubles as the window's base snapshot: it is not
    /// mutated while workers run, and the merge folds into it in place.
    shared: Vec<f32>,
    states: Vec<StateSlot>,
    /// Epoch permutation, re-shuffled in place each epoch (bit-identical
    /// to a fresh `Permutation::random`) so steady-state epochs never
    /// allocate.
    perm: Option<Permutation>,
    /// Dual form only: per-bucket ELL blocks (`None` where padding is too
    /// skewed — those buckets stream CSR rows; the kernels are
    /// bit-identical either way).
    ell_blocks: Vec<Option<EllMatrix>>,
    /// Scalar update rule + gap oracle (ridge by default).
    objective: ObjectiveKind,
    cpu: CpuProfile,
    sched: Option<Arc<scd_sched::Scheduler>>,
    seed: u64,
    epoch_index: u64,
}

impl SyscdScd {
    /// Build an engine with `workers` replicas for the given form.
    pub fn new(problem: &RidgeProblem, form: Form, workers: usize, seed: u64) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let shared_len = problem.shared_len(form);
        let mut engine = SyscdScd {
            form,
            workers,
            bucket_size: DEFAULT_BUCKET_SIZE,
            merge_every: None,
            weights: vec![0.0; problem.coords(form)],
            shared: vec![0.0; shared_len],
            states: (0..workers)
                .map(|_| {
                    StateSlot(UnsafeCell::new(WorkerState {
                        replica: vec![0.0; shared_len],
                        staged: Vec::new(),
                        nnz: 0,
                    }))
                })
                .collect(),
            perm: None,
            ell_blocks: Vec::new(),
            objective: ObjectiveKind::Ridge,
            cpu: CpuProfile::xeon_e5_2640(),
            sched: None,
            seed,
            epoch_index: 0,
        };
        engine.build_ell_blocks(problem);
        engine
    }

    /// Coordinates per bucket (≥ 1). Rebuilds the bucket ELL blocks.
    pub fn with_buckets(mut self, problem: &RidgeProblem, bucket_size: usize) -> Self {
        assert!(bucket_size >= 1, "bucket size must be >= 1");
        self.bucket_size = bucket_size;
        self.build_ell_blocks(problem);
        self
    }

    /// Buckets each worker processes between merges (≥ 1), overriding
    /// the auto-sized default of ~[`DEFAULT_MERGE_WINDOWS`] merges/epoch.
    pub fn with_merge_every(mut self, merge_every: usize) -> Self {
        assert!(merge_every >= 1, "merge interval must be >= 1");
        self.merge_every = Some(merge_every);
        self
    }

    /// Override the CPU profile used for simulated timing.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Run epochs on an explicit scheduler instead of the process-wide
    /// one.
    pub fn with_scheduler(mut self, sched: Arc<scd_sched::Scheduler>) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Swap the scalar update rule for a non-ridge objective. The
    /// bucket/replica/merge machinery is objective-agnostic: the σ′ = W
    /// safe subproblem reaches the objective through the σ′-scaled
    /// squared-norm argument.
    ///
    /// # Panics
    /// Panics if the objective has no coordinate update for this form.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        assert!(
            objective.supports(self.form),
            "objective {} does not support the {} form",
            objective.label(),
            self.form.label()
        );
        self.objective = objective;
        self
    }

    fn n_buckets(&self, coords: usize) -> usize {
        coords.div_ceil(self.bucket_size)
    }

    /// σ′ of the CoCoA+ safe subproblem each worker solves (see
    /// [`Self::run_worker_window`]); the merge divides contributions by
    /// the same factor.
    fn sigma_prime(&self) -> f64 {
        self.workers as f64
    }

    /// Dual form: cut the CSR matrix into per-bucket ELL blocks so a
    /// worker's inner loop walks a dense slot-major tile instead of
    /// striding the global row arrays.
    fn build_ell_blocks(&mut self, problem: &RidgeProblem) {
        self.ell_blocks.clear();
        if self.form != Form::Dual {
            return;
        }
        let coords = problem.coords(self.form);
        let csr = problem.csr();
        for b in 0..self.n_buckets(coords) {
            let lo = b * self.bucket_size;
            let hi = (lo + self.bucket_size).min(coords);
            let rows: Vec<usize> = (lo..hi).collect();
            let block = EllMatrix::from_csr(&csr.select_rows(&rows));
            self.ell_blocks
                .push((block.padding_ratio() <= ELL_MAX_PADDING).then_some(block));
        }
    }

    /// The degenerate single-worker epoch: Algorithm 1 on the flat
    /// coordinate permutation, updating `shared` in place — the code
    /// path the bit-identity tests compare against `SequentialScd`.
    fn run_epoch_sequential(&mut self, problem: &RidgeProblem, perm: &Permutation) -> usize {
        let coords = problem.coords(self.form);
        let n_lambda = problem.n_lambda();
        let mut nnz = 0usize;
        match self.form {
            Form::Primal => {
                let y = problem.labels();
                for j in 0..coords {
                    let m = perm.apply(j);
                    let col = problem.csc().col(m);
                    nnz += col.nnz();
                    let dot = kernels::dot_residual(col.indices, col.values, y, &self.shared);
                    let delta = self.objective.primal_delta(
                        dot,
                        self.weights[m] as f64,
                        problem.col_sq_norms()[m],
                        problem.n(),
                        problem.lambda(),
                        n_lambda,
                    ) as f32;
                    self.weights[m] += delta;
                    col.axpy_into(delta, &mut self.shared);
                }
            }
            Form::Dual => {
                let lambda = problem.lambda();
                for j in 0..coords {
                    let n = perm.apply(j);
                    let row = problem.csr().row(n);
                    nnz += row.nnz();
                    let dot = kernels::dot_dense(row.indices, row.values, &self.shared);
                    let delta = self.objective.dual_delta(
                        dot,
                        problem.labels()[n] as f64,
                        self.weights[n] as f64,
                        problem.row_sq_norms()[n],
                        lambda,
                        n_lambda,
                    ) as f32;
                    self.weights[n] += delta;
                    row.axpy_into(delta, &mut self.shared);
                }
            }
        }
        nnz
    }

    /// One worker's share of a merge window: process the buckets at
    /// shuffled slots `w, w+W, w+2W, …` restricted to the window, on the
    /// worker's private replica, staging weight updates for the merge.
    // The coordinate loops index several parallel arrays (weights, matrix
    // slices, squared norms) by the same coordinate id, so a range loop is
    // the clearest spelling.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn run_worker_window(
        &self,
        problem: &RidgeProblem,
        perm: &Permutation,
        weights: &[f32],
        base: &[f32],
        state: &mut WorkerState,
        w: usize,
        window: usize,
        merge_every: usize,
        n_buckets: usize,
    ) {
        let coords = problem.coords(self.form);
        let n_lambda = problem.n_lambda();
        // CoCoA+ safe subproblem: every merge *adds* W workers' local
        // contributions, each computed from the same base snapshot, so a
        // worker must solve the σ′-scaled subproblem with σ′ = W — the
        // γ = 1 adding bound the distributed driver applies per partition
        // (σ′ = K). Concretely each coordinate delta divides by
        // σ′·‖a‖² instead of ‖a‖², and the replica accumulates
        // σ′ × the local update (`r = base + σ′·AΔ`) so the *next*
        // coordinate in the window sees its own worker's contribution
        // with the same σ′ coupling the denominator assumes. The merge
        // then folds `(r_w − base)/σ′` — with σ′ = W, an average of the
        // replica deltas. This is stable for any bucket size or merge
        // interval (an inconsistent local solve — replica coupling 1,
        // denominator σ′ — diverges at wide windows on overlapping data).
        let sigma_prime = self.sigma_prime();
        state.replica.copy_from_slice(base);
        state.staged.clear();
        for k in window * merge_every..(window + 1) * merge_every {
            let slot = k * self.workers + w;
            if slot >= n_buckets {
                break;
            }
            let b = perm.apply(slot);
            let lo = b * self.bucket_size;
            let hi = (lo + self.bucket_size).min(coords);
            match self.form {
                Form::Primal => {
                    let y = problem.labels();
                    for m in lo..hi {
                        let col = problem.csc().col(m);
                        state.nnz += col.nnz();
                        let dot =
                            kernels::dot_residual(col.indices, col.values, y, &state.replica);
                        let delta = self.objective.primal_delta(
                            dot,
                            weights[m] as f64,
                            sigma_prime * problem.col_sq_norms()[m],
                            problem.n(),
                            problem.lambda(),
                            n_lambda,
                        ) as f32;
                        state.staged.push((m as u32, weights[m] + delta));
                        col.axpy_into((sigma_prime * delta as f64) as f32, &mut state.replica);
                    }
                }
                Form::Dual => {
                    let lambda = problem.lambda();
                    let ell = self.ell_blocks[b].as_ref();
                    for n in lo..hi {
                        let row = problem.csr().row(n);
                        state.nnz += row.nnz();
                        let dot = match ell {
                            Some(block) => block.row_dot(n - lo, &state.replica),
                            None => kernels::dot_dense(row.indices, row.values, &state.replica),
                        };
                        let delta = self.objective.dual_delta(
                            dot,
                            problem.labels()[n] as f64,
                            weights[n] as f64,
                            sigma_prime * problem.row_sq_norms()[n],
                            lambda,
                            n_lambda,
                        ) as f32;
                        state.staged.push((n as u32, weights[n] + delta));
                        let scaled = (sigma_prime * delta as f64) as f32;
                        match ell {
                            Some(block) => block.row_axpy(n - lo, scaled, &mut state.replica),
                            None => row.axpy_into(scaled, &mut state.replica),
                        }
                    }
                }
            }
        }
    }

    /// Parallel epoch: shuffled static partitioning of buckets, replica
    /// windows, deterministic merges. Returns `(nnz touched, merges)`.
    fn run_epoch_parallel(
        &mut self,
        problem: &RidgeProblem,
        perm: &Permutation,
    ) -> (usize, usize) {
        let coords = problem.coords(self.form);
        let n_buckets = self.n_buckets(coords);
        let per_worker = n_buckets.div_ceil(self.workers);
        let merge_every = self
            .merge_every
            .unwrap_or_else(|| per_worker.div_ceil(DEFAULT_MERGE_WINDOWS))
            .max(1);
        let windows = per_worker.div_ceil(merge_every);
        let sched = match &self.sched {
            Some(s) => Arc::clone(s),
            None => scd_sched::global(),
        };

        // Move the dense state into locals so the worker closure can
        // borrow `self` shared while the master mutates them between
        // windows.
        let mut weights = std::mem::take(&mut self.weights);
        let mut shared = std::mem::take(&mut self.shared);

        for window in 0..windows {
            {
                // `shared` is the window's base: untouched while the
                // workers run (each copies it into its replica first).
                let weights = &weights;
                let base: &[f32] = &shared;
                sched.parallel_for_limited(self.workers, self.workers, &|w| {
                    // SAFETY: distinct group indices ⇒ disjoint slots; the
                    // group barrier orders these writes before the reads
                    // in the merge below.
                    let state = unsafe { &mut *self.states[w].0.get() };
                    self.run_worker_window(
                        problem, perm, weights, base, state, w, window, merge_every, n_buckets,
                    );
                });
            }
            // Deterministic reduce: fold worker deltas into `shared` in
            // place, in worker-id order (scaled by 1/σ′ to undo the
            // safe-subproblem replica scaling), chunked over the pool.
            // Each chunk owns a disjoint slice of `shared`; each element
            // reads its pre-merge value before writing it (the
            // `merge_replicas_in_place` fold), and the fold order is
            // fixed by the slot list — the result does not depend on how
            // chunks land on threads. Nothing here allocates.
            {
                let merge_scale = (1.0 / self.sigma_prime()) as f32;
                let states = &self.states;
                let out = SharedPtr(shared.as_mut_ptr());
                sched.parallel_for_chunked(shared.len(), MERGE_CHUNK, self.workers, &|range| {
                    // SAFETY: chunk ranges are disjoint, so the mutable
                    // slices never alias; the replica reads are ordered
                    // after the worker writes by the group barrier above.
                    let chunk = unsafe { out.chunk(range.start, range.len()) };
                    for (i, slot) in range.clone().zip(chunk.iter_mut()) {
                        let base = *slot;
                        let mut delta = 0.0f32;
                        for s in states {
                            delta += unsafe { &(*s.0.get()).replica }[i] - base;
                        }
                        *slot = base + merge_scale * delta;
                    }
                });
            }
            // Weight updates: coordinates are partitioned across workers,
            // so the staged writes are disjoint; worker order kept anyway.
            for s in &self.states {
                // SAFETY: workers are quiescent between group barriers;
                // only the master touches the slots here.
                let staged = unsafe { &(*s.0.get()).staged };
                for &(c, value) in staged {
                    weights[c as usize] = value;
                }
            }
        }

        self.weights = weights;
        self.shared = shared;
        let nnz = self
            .states
            .iter_mut()
            .map(|s| std::mem::take(&mut s.0.get_mut().nnz))
            .sum();
        (nnz, windows)
    }

    fn run_epoch(&mut self, problem: &RidgeProblem) -> (usize, usize, usize) {
        let coords = problem.coords(self.form);
        let epoch_seed = self.seed ^ (self.epoch_index.wrapping_mul(0x9E37));
        self.epoch_index += 1;
        // Re-shuffle the persistent permutation in place (bit-identical
        // to a fresh draw); move it out for the loop and restore after.
        let len = if self.workers == 1 {
            // Degenerate to Algorithm 1 exactly: flat coordinate
            // permutation, in-place shared vector, zero merges.
            coords
        } else {
            self.n_buckets(coords)
        };
        match self.perm.as_mut() {
            Some(p) => p.refill_random(len, epoch_seed),
            None => self.perm = Some(Permutation::random(len, epoch_seed)),
        }
        let perm = self.perm.take().expect("just ensured");
        let stats = if self.workers == 1 {
            let nnz = self.run_epoch_sequential(problem, &perm);
            (coords, nnz, 0)
        } else {
            let (nnz, merges) = self.run_epoch_parallel(problem, &perm);
            (coords, nnz, merges)
        };
        self.perm = Some(perm);
        stats
    }
}

impl Solver for SyscdScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        format!("SySCD ({} threads)", self.workers)
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let (coords, nnz, merges) = self.run_epoch(problem);
        EpochStats {
            updates: coords,
            breakdown: TimeBreakdown {
                host: self.cpu.syscd_epoch_seconds(
                    self.workers,
                    nnz,
                    coords,
                    merges,
                    self.shared.len(),
                ),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.weights.clone()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.clone()
    }

    fn weights_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.weights);
    }

    fn shared_vector_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::{dense_gaussian, webspam_like};
    use scd_sparse::dense;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(150, 120, 10, 8), 1e-3).unwrap()
    }

    #[test]
    fn primal_converges_with_multiple_workers() {
        let p = problem();
        let mut s = SyscdScd::new(&p, Form::Primal, 4, 1);
        // σ′ = W damps each update 4×, so the epoch budget is ~W× the
        // sequential solver's; the swept rate reaches ~1e-5 by 300.
        for _ in 0..300 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn dual_converges_with_multiple_workers() {
        let p = problem();
        let mut s = SyscdScd::new(&p, Form::Dual, 4, 2);
        for _ in 0..800 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < 1e-3, "gap {gap}");
    }

    #[test]
    fn matches_closed_form_on_dense_problem() {
        let p = RidgeProblem::from_labelled(&dense_gaussian(30, 10, 3), 0.1).unwrap();
        let mut s = SyscdScd::new(&p, Form::Primal, 3, 7);
        for _ in 0..250 {
            s.epoch(&p);
        }
        let exact = crate::exact::exact_primal(&p);
        assert!(dense::max_abs_diff(&s.weights(), &exact) < 1e-3);
    }

    #[test]
    fn deterministic_run_to_run() {
        let p = problem();
        let run = |workers| {
            let mut s = SyscdScd::new(&p, Form::Primal, workers, 5);
            for _ in 0..4 {
                s.epoch(&p);
            }
            (s.weights(), s.shared_vector())
        };
        assert_eq!(run(3), run(3));
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn shared_vector_tracks_weights_through_merges() {
        // The merged shared vector may drift from Aβ only by f32 rounding
        // accumulated across merges — not by lost updates.
        let p = problem();
        let mut s = SyscdScd::new(&p, Form::Primal, 4, 3);
        for _ in 0..10 {
            s.epoch(&p);
        }
        let true_shared = p.csc().matvec(&s.weights()).unwrap();
        assert!(
            dense::max_abs_diff(&s.shared_vector(), &true_shared) < 1e-3,
            "merged shared vector must track Aβ"
        );
    }

    #[test]
    fn bucket_and_merge_knobs_still_converge() {
        let p = problem();
        let mut s = SyscdScd::new(&p, Form::Dual, 2, 9)
            .with_buckets(&p, 4)
            .with_merge_every(1);
        for _ in 0..400 {
            s.epoch(&p);
        }
        assert!(s.duality_gap(&p) < 1e-3);
    }

    #[test]
    fn more_workers_cost_less_simulated_time() {
        let p = problem();
        let t1 = SyscdScd::new(&p, Form::Primal, 1, 1).epoch(&p).seconds();
        let t8 = SyscdScd::new(&p, Form::Primal, 8, 1).epoch(&p).seconds();
        assert!(
            t1 / t8 > 4.0,
            "8 workers should be ≥4x faster in the model, got {}",
            t1 / t8
        );
    }

    #[test]
    fn name_reports_workers() {
        let p = problem();
        assert_eq!(SyscdScd::new(&p, Form::Primal, 4, 0).name(), "SySCD (4 threads)");
    }
}

//! AsySCD (Liu, Wright, Ré, Bittorf & Sridhar [15]) — the third
//! asynchronous baseline §III-B discusses, reimplemented to reproduce the
//! paper's criticism of it.
//!
//! AsySCD differs from Algorithm 1 "in two important respects. Firstly,
//! instead of optimizing for each coordinate exactly, a small gradient
//! descent step is taken thus introducing an additional step size parameter
//! that must be tuned. Secondly, the algorithm is implemented without the
//! use of a shared vector. Instead, the computation of a Hessian matrix is
//! required. This takes a considerable amount of time and significantly
//! increases the memory requirements" — and, per [14]'s reproduction, ends
//! up "slower than even a single threaded implementation of Algorithm 1".
//!
//! This engine is the faithful sequential core of that scheme for ridge
//! regression:
//!
//! * Precompute the Hessian H = AᵀA + NλI (dense M×M — the memory blow-up;
//!   [`AsyScd::hessian_bytes`] reports it, and construction fails above a
//!   configurable cap so nobody accidentally materializes a 680,715²
//!   matrix).
//! * Maintain the full gradient g = Aᵀ(Aβ − y) + Nλβ incrementally: each
//!   coordinate step β_m ← β_m − η·g_m/H_mm costs a dense length-M gradient
//!   refresh through H's m-th row — the "considerable amount of time".
//! * The step size η must be tuned: η = 1 recovers exact coordinate
//!   minimization (per-coordinate Newton), η > 2 diverges.
//!
//! Simulated time charges M dense ops per update versus Algorithm 1's
//! nnz-per-column, which is how the reproduction exhibits the paper's
//! "slower than sequential SCD" conclusion (see the `asyscd` bench group
//! and the ablation binary).

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use scd_perf_model::CpuProfile;
use scd_sparse::perm::Permutation;
use scd_sparse::DenseMatrix;

/// Errors raised when setting up AsySCD.
#[derive(Debug, Clone, PartialEq)]
pub enum AsyScdError {
    /// The dense Hessian would exceed the configured memory cap — the
    /// scalability wall the paper points at.
    HessianTooLarge {
        /// Features in the problem.
        features: usize,
        /// Bytes the dense Hessian would need.
        required_bytes: usize,
        /// The configured cap.
        cap_bytes: usize,
    },
    /// AsySCD's Hessian-based primal iteration only generalizes to
    /// objectives with a (possibly prox-composed) quadratic primal —
    /// ridge and lasso. The classification duals have no primal
    /// coordinate form to run it on.
    UnsupportedObjective {
        /// The rejected objective's label.
        objective: &'static str,
    },
}

impl std::fmt::Display for AsyScdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsyScdError::HessianTooLarge {
                features,
                required_bytes,
                cap_bytes,
            } => write!(
                f,
                "AsySCD needs a dense {features}x{features} Hessian \
                 ({required_bytes} B) exceeding the {cap_bytes} B cap"
            ),
            AsyScdError::UnsupportedObjective { objective } => write!(
                f,
                "AsySCD supports only the ridge and lasso objectives, not {objective}"
            ),
        }
    }
}

impl std::error::Error for AsyScdError {}

/// Default Hessian memory cap: 256 MB (an 8,192-feature problem).
pub const DEFAULT_HESSIAN_CAP_BYTES: usize = 256 << 20;

/// The AsySCD engine (primal form only; the dual variant is symmetric and
/// suffers the same N×N blow-up).
#[derive(Debug, Clone)]
pub struct AsyScd {
    /// Dense Hessian H = AᵀA + NλI (f64 for the incremental gradient's
    /// stability).
    hessian: DenseMatrix,
    /// Gradient g = Aᵀ(Aβ − y) + Nλβ, maintained incrementally.
    gradient: Vec<f64>,
    beta: Vec<f32>,
    step: f64,
    m: usize,
    /// Ridge (H = AᵀA + NλI, plain gradient step) or lasso (H = AᵀA,
    /// prox-gradient step); the classification duals are rejected at
    /// construction.
    objective: ObjectiveKind,
    cpu: CpuProfile,
    seed: u64,
    epoch_index: u64,
}

impl AsyScd {
    /// Build the engine, materializing the Hessian. Fails when the dense
    /// Hessian exceeds `DEFAULT_HESSIAN_CAP_BYTES`.
    pub fn new(problem: &RidgeProblem, step: f64, seed: u64) -> Result<Self, AsyScdError> {
        Self::with_hessian_cap(problem, step, seed, DEFAULT_HESSIAN_CAP_BYTES)
    }

    /// [`Self::new`] with an explicit Hessian memory cap.
    pub fn with_hessian_cap(
        problem: &RidgeProblem,
        step: f64,
        seed: u64,
        cap_bytes: usize,
    ) -> Result<Self, AsyScdError> {
        assert!(step > 0.0, "step size must be positive");
        let m = problem.m();
        let required = m * m * 8;
        if required > cap_bytes {
            return Err(AsyScdError::HessianTooLarge {
                features: m,
                required_bytes: required,
                cap_bytes,
            });
        }
        // H = AᵀA + NλI.
        let mut hessian = DenseMatrix::gram_from_csc(problem.csc());
        hessian.add_diagonal(problem.n_lambda());
        // g(0) = −Aᵀy.
        let gradient: Vec<f64> = (0..m)
            .map(|c| -problem.csc().col(c).dot_dense(problem.labels()))
            .collect();
        Ok(AsyScd {
            hessian,
            gradient,
            beta: vec![0.0; m],
            step,
            m,
            objective: ObjectiveKind::Ridge,
            cpu: CpuProfile::xeon_e5_2640(),
            seed,
            epoch_index: 0,
        })
    }

    /// Retarget the engine at a non-ridge objective. Only ridge and lasso
    /// are representable (the Hessian-row iteration is primal); lasso
    /// drops the NλI diagonal (its regularizer is the ℓ1 prox, not a
    /// quadratic) and switches the step to a prox-gradient step. Call
    /// before the first epoch — the Hessian diagonal is rebuilt here.
    pub fn with_objective(
        mut self,
        problem: &RidgeProblem,
        objective: ObjectiveKind,
    ) -> Result<Self, AsyScdError> {
        assert_eq!(self.epoch_index, 0, "set the objective before training");
        match objective {
            ObjectiveKind::Ridge => {
                if self.objective == ObjectiveKind::Lasso {
                    self.hessian.add_diagonal(problem.n_lambda());
                }
            }
            ObjectiveKind::Lasso => {
                if self.objective == ObjectiveKind::Ridge {
                    // Undo `new`'s ridge diagonal: lasso's H is plain AᵀA.
                    self.hessian.add_diagonal(-problem.n_lambda());
                }
            }
            ObjectiveKind::Logistic | ObjectiveKind::Svm => {
                return Err(AsyScdError::UnsupportedObjective {
                    objective: objective.label(),
                });
            }
        }
        self.objective = objective;
        Ok(self)
    }

    /// Bytes consumed by the dense Hessian — the paper's memory complaint,
    /// quantified. (Webspam's 680,715 features would need ≈3.7 PB.)
    pub fn hessian_bytes(&self) -> usize {
        self.m * self.m * 8
    }

    /// The tuned step size η.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Override the CPU profile used for simulated timing.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }
}

impl Solver for AsyScd {
    fn form(&self) -> Form {
        Form::Primal
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        match self.objective {
            ObjectiveKind::Ridge => format!("AsySCD (step {})", self.step),
            other => format!("AsySCD (step {}, {})", self.step, other.label()),
        }
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let m = self.m;
        assert_eq!(problem.m(), m, "problem changed under the solver");
        let perm = Permutation::random(m, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        let n_lambda = problem.n_lambda();
        for j in 0..m {
            let c = perm.apply(j);
            let h_cc = self.hessian.get(c, c);
            let delta = match self.objective {
                ObjectiveKind::Lasso => {
                    let beta_c = self.beta[c] as f64;
                    if h_cc == 0.0 {
                        // Empty column: the ℓ1 prox pins the weight at 0.
                        -self.step * beta_c
                    } else {
                        // Prox-gradient step on the N-scaled objective
                        // (1/2)βᵀHβ − yᵀAβ + Nλ‖β‖₁, H = AᵀA: the 1-d
                        // coordinate minimizer is the soft threshold.
                        let target = crate::extensions::elastic_net::soft_threshold(
                            h_cc * beta_c - self.gradient[c],
                            n_lambda,
                        ) / h_cc;
                        self.step * (target - beta_c)
                    }
                }
                // Ridge: scaled gradient step (η = 1 ⇒ exact coordinate
                // Newton). `with_objective` rejects everything else.
                _ => {
                    if h_cc == 0.0 {
                        continue;
                    }
                    -self.step * self.gradient[c] / h_cc
                }
            };
            self.beta[c] += delta as f32;
            // Dense gradient refresh through H's row — the O(M) cost.
            for (g, &h) in self.gradient.iter_mut().zip(self.hessian.row(c)) {
                *g += delta * h;
            }
        }
        EpochStats {
            updates: m,
            breakdown: TimeBreakdown {
                // Each update streams a dense length-M Hessian row — charged
                // like M nonzeros — versus Algorithm 1's sparse column.
                host: self.cpu.sequential_epoch_seconds(m * m / 2, m),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.beta.clone()
    }

    fn shared_vector(&self) -> Vec<f32> {
        // AsySCD maintains no shared vector (the paper's point); reconstruct
        // w = Aβ for interface compatibility.
        problem_free_shared(&self.beta)
    }
}

/// AsySCD has no shared vector; the trait requires one, so return an empty
/// marker (callers needing w = Aβ should compute it from `weights()` and
/// the problem).
fn problem_free_shared(_beta: &[f32]) -> Vec<f32> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_primal;
    use crate::seq::SequentialScd;
    use scd_datasets::{dense_gaussian, scale_values, webspam_like};
    use scd_sparse::dense;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&scale_values(&webspam_like(120, 80, 10, 3), 0.4), 1e-2)
            .unwrap()
    }

    #[test]
    fn converges_with_unit_step_to_exact_optimum() {
        let p = problem();
        let mut s = AsyScd::new(&p, 1.0, 1).unwrap();
        for _ in 0..120 {
            s.epoch(&p);
        }
        let exact = exact_primal(&p);
        let diff = dense::max_abs_diff(&s.weights(), &exact);
        assert!(diff < 1e-3, "AsySCD must reach the optimum, diff {diff}");
        assert!(s.duality_gap(&p) < 1e-5);
    }

    #[test]
    fn small_steps_converge_slower_per_epoch() {
        let p = problem();
        let gap_after = |step: f64| {
            let mut s = AsyScd::new(&p, step, 2).unwrap();
            for _ in 0..20 {
                s.epoch(&p);
            }
            s.duality_gap(&p)
        };
        let full = gap_after(1.0);
        let half = gap_after(0.5);
        assert!(
            full < half,
            "η=1 ({full}) should converge faster than η=0.5 ({half})"
        );
    }

    #[test]
    fn oversized_steps_diverge() {
        // The step-size tuning burden the paper mentions.
        let p = problem();
        let mut s = AsyScd::new(&p, 2.5, 3).unwrap();
        for _ in 0..30 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(
            gap.is_nan() || gap > 1.0,
            "η=2.5 should destabilize the iteration, gap {gap}"
        );
    }

    #[test]
    fn simulated_epoch_slower_than_sequential_scd() {
        // [14]'s finding, quoted by the paper: AsySCD "is slower than even a
        // single threaded implementation of Algorithm 1".
        let p = problem();
        let mut asy = AsyScd::new(&p, 1.0, 4).unwrap();
        let mut seq = SequentialScd::primal(&p, 4);
        let t_asy = asy.epoch(&p).seconds();
        let t_seq = seq.epoch(&p).seconds();
        assert!(
            t_asy > t_seq,
            "AsySCD epoch ({t_asy}s) must cost more than Algorithm 1 ({t_seq}s)"
        );
    }

    #[test]
    fn hessian_cap_rejects_large_problems() {
        let p = problem();
        let err = AsyScd::with_hessian_cap(&p, 1.0, 1, 1024).unwrap_err();
        match err {
            AsyScdError::HessianTooLarge {
                features,
                required_bytes,
                cap_bytes,
            } => {
                assert_eq!(features, 80);
                assert_eq!(required_bytes, 80 * 80 * 8);
                assert_eq!(cap_bytes, 1024);
            }
            other => panic!("expected HessianTooLarge, got {other:?}"),
        }
        assert!(err.to_string().contains("Hessian"));
    }

    #[test]
    fn hessian_bytes_reported() {
        let p = RidgeProblem::from_labelled(&dense_gaussian(10, 6, 1), 0.1).unwrap();
        let s = AsyScd::new(&p, 1.0, 1).unwrap();
        assert_eq!(s.hessian_bytes(), 6 * 6 * 8);
        assert_eq!(s.step(), 1.0);
        assert!(s.name().contains("AsySCD"));
    }

    #[test]
    fn lasso_objective_converges_and_sparsifies() {
        use crate::objective::ObjectiveKind;
        let p = problem();
        let mut s = AsyScd::new(&p, 1.0, 6)
            .unwrap()
            .with_objective(&p, ObjectiveKind::Lasso)
            .unwrap();
        let g0 = s.duality_gap(&p);
        for _ in 0..80 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < g0 * 1e-2, "lasso gap {g0} -> {gap}");
        assert!(s.name().contains("lasso"));
        // Cross-check against the sequential trait path: same optimum.
        let mut seq = SequentialScd::primal(&p, 6).with_objective(ObjectiveKind::Lasso);
        for _ in 0..200 {
            seq.epoch(&p);
        }
        assert!(
            dense::max_abs_diff(&s.weights(), &seq.weights()) < 1e-3,
            "AsySCD-lasso and sequential lasso must agree"
        );
    }

    #[test]
    fn dual_objectives_are_rejected() {
        use crate::objective::ObjectiveKind;
        let p = problem();
        let err = AsyScd::new(&p, 1.0, 1)
            .unwrap()
            .with_objective(&p, ObjectiveKind::Svm)
            .unwrap_err();
        assert!(matches!(
            err,
            AsyScdError::UnsupportedObjective { objective: "svm" }
        ));
        assert!(err.to_string().contains("svm"));
    }

    #[test]
    fn incremental_gradient_stays_consistent() {
        // After a few epochs the maintained gradient must equal the true
        // gradient Aᵀ(Aβ − y) + Nλβ recomputed from scratch.
        let p = problem();
        let mut s = AsyScd::new(&p, 0.7, 5).unwrap();
        for _ in 0..3 {
            s.epoch(&p);
        }
        let beta = s.weights();
        let w = p.csc().matvec(&beta).unwrap();
        let residual: Vec<f32> = w
            .iter()
            .zip(p.labels())
            .map(|(&wi, &yi)| wi - yi)
            .collect();
        let mut true_grad = p.csc().matvec_t(&residual).unwrap();
        for (g, &b) in true_grad.iter_mut().zip(&beta) {
            *g += (p.n_lambda() as f32) * b;
        }
        for (maintained, truth) in s.gradient.iter().zip(&true_grad) {
            assert!(
                (maintained - *truth as f64).abs() < 1e-2,
                "{maintained} vs {truth}"
            );
        }
    }
}

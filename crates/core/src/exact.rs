//! Exact reference solutions for small problems.
//!
//! Ridge regression has a closed form: β* = (AᵀA + NλI)⁻¹Aᵀy. The test
//! suite uses this dense solver (normal equations + Gaussian elimination
//! with partial pivoting, all in f64) to verify that every SCD engine
//! converges to the true optimum, and the examples use it to show the
//! duality gap honestly measures distance from β*.
//!
//! Only suitable for small M (dense M×M solve); the iterative solvers are
//! the point of the library.

use crate::problem::RidgeProblem;
use scd_sparse::DenseMatrix;

/// The exact primal optimum β* = (AᵀA + NλI)⁻¹Aᵀy, computed densely in f64.
///
/// # Panics
/// Panics if the normal-equation system is singular (cannot happen for
/// λ > 0 with finite data).
pub fn exact_primal(problem: &RidgeProblem) -> Vec<f32> {
    let mut gram = DenseMatrix::gram_from_csc(problem.csc());
    gram.add_diagonal(problem.n_lambda());
    let rhs: Vec<f64> = (0..problem.m())
        .map(|c| problem.csc().col(c).dot_dense(problem.labels()))
        .collect();
    let beta = gram
        .solve(rhs)
        .expect("ridge normal equations are positive definite");
    beta.into_iter().map(|x| x as f32).collect()
}

/// The exact dual optimum through Eq. 6: α* = (y − Aβ*)/N.
pub fn exact_dual(problem: &RidgeProblem) -> Vec<f32> {
    let beta = exact_primal(problem);
    problem.induced_dual(&beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Form;
    use crate::seq::SequentialScd;
    use crate::solver::Solver;
    use scd_datasets::dense_gaussian;
    use scd_sparse::dense;
    use scd_sparse::CooMatrix;

    #[test]
    fn exact_primal_matches_hand_computation() {
        // 1×1: β* = ay/(a² + Nλ) = 6/4.5.
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0).unwrap();
        let p = RidgeProblem::new(coo.to_csr(), vec![3.0], 0.5).unwrap();
        let beta = exact_primal(&p);
        assert!((beta[0] - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn exact_solution_has_zero_gap() {
        let p = RidgeProblem::from_labelled(&dense_gaussian(25, 8, 2), 0.1).unwrap();
        let beta = exact_primal(&p);
        // f32 rounding of the f64 solution leaves a ~1e-7 gap floor.
        assert!(p.primal_duality_gap(&beta) < 1e-6);
        let alpha = exact_dual(&p);
        assert!(p.dual_duality_gap(&alpha) < 1e-6);
    }

    #[test]
    fn scd_converges_to_the_exact_solution() {
        let p = RidgeProblem::from_labelled(&dense_gaussian(25, 8, 6), 0.1).unwrap();
        let exact = exact_primal(&p);
        let mut s = SequentialScd::primal(&p, 4);
        for _ in 0..150 {
            s.epoch(&p);
        }
        assert!(
            dense::max_abs_diff(&s.weights(), &exact) < 1e-3,
            "SCD must land on the closed-form optimum"
        );
        assert_eq!(s.form(), Form::Primal);
    }
}

//! Trained-model persistence and prediction.
//!
//! The solvers produce weight vectors; this module packages them with their
//! provenance (formulation, λ, dimensions) so a model trained by any engine
//! can be saved, reloaded, and used for inference. The on-disk format is a
//! self-describing text file (one header line, one weight per line) —
//! trivially diffable and versioned by a magic string.

use crate::problem::{Form, RidgeProblem};
use scd_sparse::CsrMatrix;
use std::io::{BufRead, BufReader, Read, Write};

/// Format magic + version.
const MAGIC: &str = "tpa-scd-model v1";

/// A trained linear model with its provenance.
///
/// ```
/// use scd_core::{RidgeProblem, SequentialScd, Solver, TrainedModel};
/// use scd_datasets::{scale_values, webspam_like};
/// let data = scale_values(&webspam_like(60, 40, 6, 1), 0.3);
/// let problem = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
/// let mut solver = SequentialScd::primal(&problem, 1);
/// for _ in 0..30 { solver.epoch(&problem); }
///
/// let model = TrainedModel::from_primal(&problem, solver.weights());
/// let mut bytes = Vec::new();
/// model.save(&mut bytes).unwrap();
/// let back = TrainedModel::load(bytes.as_slice()).unwrap();
/// assert_eq!(back, model);
/// assert!(back.accuracy(problem.csr(), problem.labels()) > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// Which formulation produced the weights.
    pub form: Form,
    /// The regularizer the model was trained with.
    pub lambda: f64,
    /// Primal weights β (length = features). Dual solutions are converted
    /// through Eq. 5 at construction, so inference is always ⟨ā, β⟩.
    pub beta: Vec<f32>,
}

/// Errors raised while loading a model file.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The file does not start with the expected magic/version line.
    BadMagic(String),
    /// The header line is malformed.
    BadHeader(String),
    /// A weight line failed to parse.
    BadWeight {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Fewer/more weights than the header declared.
    WrongCount {
        /// Declared in the header.
        declared: usize,
        /// Actually present.
        found: usize,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadMagic(got) => {
                write!(f, "not a tpa-scd model file (first line {got:?})")
            }
            ModelError::BadHeader(line) => write!(f, "malformed model header {line:?}"),
            ModelError::BadWeight { line, token } => {
                write!(f, "bad weight {token:?} on line {line}")
            }
            ModelError::WrongCount { declared, found } => {
                write!(f, "header declares {declared} weights, file has {found}")
            }
            ModelError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl TrainedModel {
    /// Package primal weights.
    pub fn from_primal(problem: &RidgeProblem, beta: Vec<f32>) -> Self {
        assert_eq!(beta.len(), problem.m(), "beta length must be M");
        TrainedModel {
            form: Form::Primal,
            lambda: problem.lambda(),
            beta,
        }
    }

    /// Package a dual solution, converting α → β through Eq. 5
    /// (β = Aᵀα / λ).
    pub fn from_dual(problem: &RidgeProblem, alpha: &[f32]) -> Self {
        assert_eq!(alpha.len(), problem.n(), "alpha length must be N");
        TrainedModel {
            form: Form::Dual,
            lambda: problem.lambda(),
            beta: problem.induced_primal(alpha),
        }
    }

    /// Number of features the model scores.
    pub fn features(&self) -> usize {
        self.beta.len()
    }

    /// Raw scores ⟨āₙ, β⟩ for every row of a design matrix.
    ///
    /// # Panics
    /// Panics if the matrix width differs from the model's feature count.
    pub fn scores(&self, data: &CsrMatrix) -> Vec<f32> {
        assert_eq!(
            data.cols(),
            self.features(),
            "feature-space mismatch: model {} vs data {}",
            self.features(),
            data.cols()
        );
        data.matvec(&self.beta).expect("checked width")
    }

    /// ±1 classification by the sign of the score.
    pub fn classify(&self, data: &CsrMatrix) -> Vec<f32> {
        self.scores(data)
            .into_iter()
            .map(|s| if s >= 0.0 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Classification accuracy against ±1 labels.
    pub fn accuracy(&self, data: &CsrMatrix, labels: &[f32]) -> f64 {
        let preds = self.classify(data);
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(&p, &y)| p == y)
            .count();
        correct as f64 / labels.len().max(1) as f64
    }

    /// Mean squared error of the raw scores against real-valued labels.
    pub fn mse(&self, data: &CsrMatrix, labels: &[f32]) -> f64 {
        let scores = self.scores(data);
        let sse: f64 = scores
            .iter()
            .zip(labels)
            .map(|(&s, &y)| {
                let d = s as f64 - y as f64;
                d * d
            })
            .sum();
        sse / labels.len().max(1) as f64
    }

    /// Serialize to the text format.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "{MAGIC}")?;
        writeln!(
            w,
            "form={} lambda={} features={}",
            self.form.label(),
            self.lambda,
            self.features()
        )?;
        for &b in &self.beta {
            writeln!(w, "{b}")?;
        }
        Ok(())
    }

    /// Parse the text format.
    pub fn load<R: Read>(r: R) -> Result<Self, ModelError> {
        let mut lines = BufReader::new(r).lines();
        let magic = lines
            .next()
            .ok_or_else(|| ModelError::BadMagic("<empty file>".into()))?
            .map_err(|e| ModelError::Io(e.to_string()))?;
        if magic != MAGIC {
            return Err(ModelError::BadMagic(magic));
        }
        let header = lines
            .next()
            .ok_or_else(|| ModelError::BadHeader("<missing>".into()))?
            .map_err(|e| ModelError::Io(e.to_string()))?;
        let mut form = None;
        let mut lambda = None;
        let mut features = None;
        for token in header.split_ascii_whitespace() {
            match token.split_once('=') {
                Some(("form", "primal")) => form = Some(Form::Primal),
                Some(("form", "dual")) => form = Some(Form::Dual),
                Some(("lambda", v)) => lambda = v.parse::<f64>().ok(),
                Some(("features", v)) => features = v.parse::<usize>().ok(),
                _ => return Err(ModelError::BadHeader(header.clone())),
            }
        }
        let (form, lambda, features) = match (form, lambda, features) {
            (Some(f), Some(l), Some(m)) => (f, l, m),
            _ => return Err(ModelError::BadHeader(header)),
        };
        let mut beta = Vec::with_capacity(features);
        for (i, line) in lines.enumerate() {
            let line = line.map_err(|e| ModelError::Io(e.to_string()))?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let v: f32 = trimmed.parse().map_err(|_| ModelError::BadWeight {
                line: i + 3,
                token: trimmed.to_string(),
            })?;
            beta.push(v);
        }
        if beta.len() != features {
            return Err(ModelError::WrongCount {
                declared: features,
                found: beta.len(),
            });
        }
        Ok(TrainedModel { form, lambda, beta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialScd;
    use crate::solver::Solver;
    use scd_datasets::{scale_values, webspam_like};

    fn trained() -> (RidgeProblem, TrainedModel) {
        let data = scale_values(&webspam_like(120, 90, 10, 17), 0.3);
        let p = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
        let mut s = SequentialScd::primal(&p, 1);
        for _ in 0..40 {
            s.epoch(&p);
        }
        let model = TrainedModel::from_primal(&p, s.weights());
        (p, model)
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let (_, model) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let back = TrainedModel::load(buf.as_slice()).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn predictions_fit_training_data() {
        let (p, model) = trained();
        let acc = model.accuracy(p.csr(), p.labels());
        assert!(acc > 0.95, "training accuracy {acc}");
        let mse = model.mse(p.csr(), p.labels());
        assert!(mse < 0.5, "training MSE {mse}");
    }

    #[test]
    fn dual_solutions_convert_through_eq5() {
        let data = scale_values(&webspam_like(100, 80, 10, 23), 0.3);
        let p = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
        let mut primal = SequentialScd::primal(&p, 2);
        let mut dual = SequentialScd::dual(&p, 2);
        for _ in 0..80 {
            primal.epoch(&p);
            dual.epoch(&p);
        }
        let mp = TrainedModel::from_primal(&p, primal.weights());
        let md = TrainedModel::from_dual(&p, &dual.weights());
        for (a, b) in mp.beta.iter().zip(&md.beta) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert_eq!(md.form, Form::Dual);
    }

    #[test]
    fn load_rejects_corruption() {
        let (_, model) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Wrong magic.
        let bad = text.replacen("tpa-scd-model v1", "something else", 1);
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::BadMagic(_))
        ));
        // Corrupted weight.
        let bad = text.replacen(&model.beta[0].to_string(), "not-a-number", 1);
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::BadWeight { .. })
        ));
        // Truncated.
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            TrainedModel::load(truncated.as_bytes()),
            Err(ModelError::WrongCount { .. })
        ));
        // Broken header.
        let bad = text.replacen("form=primal", "shape=weird", 1);
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::BadHeader(_))
        ));
    }

    #[test]
    #[should_panic(expected = "feature-space mismatch")]
    fn width_mismatch_panics() {
        let (_, model) = trained();
        let other = scale_values(&webspam_like(10, 20, 3, 1), 0.3);
        let _ = model.scores(&other.matrix.to_csr());
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(ModelError::BadMagic("x".into()).to_string().contains("not a tpa-scd"));
        assert!(ModelError::WrongCount {
            declared: 5,
            found: 3
        }
        .to_string()
        .contains("declares 5"));
    }
}

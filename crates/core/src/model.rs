//! Trained-model persistence and prediction.
//!
//! The solvers produce weight vectors; this module packages them with their
//! provenance (objective, formulation, λ, dimensions) so a model trained by
//! any engine can be saved, reloaded, and used for inference. The on-disk
//! format is a self-describing text file — one header line, one weight per
//! line, a trailing FNV-1a checksum — trivially diffable and versioned by a
//! magic string.
//!
//! Format history:
//! * `v1` — `form`/`lambda`/`features` header, no objective (implicitly
//!   ridge), no checksum. Still loadable.
//! * `v2` — adds `objective=<label>` to the header and a final
//!   `checksum=fnv1a64:<16 hex>` line over every preceding byte (the same
//!   FNV-1a the dataset store uses), so truncation and bit rot fail loudly
//!   instead of scoring garbage.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use scd_sparse::CsrMatrix;
use scd_store::fnv1a64;
use std::io::{Read, Write};

/// Current format magic + version.
const MAGIC_V2: &str = "tpa-scd-model v2";
/// Legacy (pre-objective, pre-checksum) magic, accepted on load.
const MAGIC_V1: &str = "tpa-scd-model v1";

/// A trained linear model with its provenance.
///
/// ```
/// use scd_core::{RidgeProblem, SequentialScd, Solver, TrainedModel};
/// use scd_datasets::{scale_values, webspam_like};
/// let data = scale_values(&webspam_like(60, 40, 6, 1), 0.3);
/// let problem = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
/// let mut solver = SequentialScd::primal(&problem, 1);
/// for _ in 0..30 { solver.epoch(&problem); }
///
/// let model = TrainedModel::from_primal(&problem, solver.weights());
/// let mut bytes = Vec::new();
/// model.save(&mut bytes).unwrap();
/// let back = TrainedModel::load(bytes.as_slice()).unwrap();
/// assert_eq!(back, model);
/// assert!(back.accuracy(problem.csr(), problem.labels()) > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// The objective the model was trained for (decides the prediction
    /// rule a consumer should apply to the scores).
    pub objective: ObjectiveKind,
    /// Which formulation produced the weights.
    pub form: Form,
    /// The regularizer the model was trained with.
    pub lambda: f64,
    /// Primal weights β (length = features). Dual solutions are converted
    /// through the objective's optimality mapping at construction, so
    /// inference is always ⟨ā, β⟩.
    pub beta: Vec<f32>,
}

/// Errors raised while loading a model file.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The file does not start with a known magic/version line.
    BadMagic(String),
    /// The header line is malformed.
    BadHeader(String),
    /// The header names an objective this build does not know.
    UnknownObjective(String),
    /// A weight line failed to parse.
    BadWeight {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Fewer/more weights than the header declared.
    WrongCount {
        /// Declared in the header.
        declared: usize,
        /// Actually present.
        found: usize,
    },
    /// The trailing checksum line is malformed or absent (v2 files).
    MissingChecksum,
    /// The stored checksum does not match the file contents.
    BadChecksum {
        /// Hash recorded in the file.
        stored: u64,
        /// Hash of the bytes actually read.
        computed: u64,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadMagic(got) => {
                write!(f, "not a tpa-scd model file (first line {got:?})")
            }
            ModelError::BadHeader(line) => write!(f, "malformed model header {line:?}"),
            ModelError::UnknownObjective(name) => {
                write!(f, "model trained for unknown objective {name:?}")
            }
            ModelError::BadWeight { line, token } => {
                write!(f, "bad weight {token:?} on line {line}")
            }
            ModelError::WrongCount { declared, found } => {
                write!(f, "header declares {declared} weights, file has {found}")
            }
            ModelError::MissingChecksum => {
                write!(f, "v2 model file is missing its trailing checksum line")
            }
            ModelError::BadChecksum { stored, computed } => write!(
                f,
                "model file corrupt: checksum {stored:016x} recorded, contents hash to {computed:016x}"
            ),
            ModelError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl TrainedModel {
    /// Package the weights a solver produced for any objective/form pair,
    /// converting dual iterates through the objective's optimality
    /// mapping (β = w̄/λ for ridge, β = w̄/λN for the SDCA duals).
    pub fn from_weights(
        problem: &RidgeProblem,
        objective: ObjectiveKind,
        form: Form,
        weights: Vec<f32>,
    ) -> Self {
        let beta = match form {
            Form::Primal => {
                assert_eq!(weights.len(), problem.m(), "beta length must be M");
                weights
            }
            Form::Dual => {
                assert_eq!(weights.len(), problem.n(), "alpha length must be N");
                objective.induced_primal(problem, &weights)
            }
        };
        TrainedModel {
            objective,
            form,
            lambda: problem.lambda(),
            beta,
        }
    }

    /// Package ridge primal weights.
    pub fn from_primal(problem: &RidgeProblem, beta: Vec<f32>) -> Self {
        Self::from_weights(problem, ObjectiveKind::Ridge, Form::Primal, beta)
    }

    /// Package a ridge dual solution, converting α → β through Eq. 5
    /// (β = Aᵀα / λ).
    pub fn from_dual(problem: &RidgeProblem, alpha: &[f32]) -> Self {
        Self::from_weights(problem, ObjectiveKind::Ridge, Form::Dual, alpha.to_vec())
    }

    /// Number of features the model scores.
    pub fn features(&self) -> usize {
        self.beta.len()
    }

    /// Raw scores ⟨āₙ, β⟩ for every row of a design matrix.
    ///
    /// # Panics
    /// Panics if the matrix width differs from the model's feature count.
    pub fn scores(&self, data: &CsrMatrix) -> Vec<f32> {
        assert_eq!(
            data.cols(),
            self.features(),
            "feature-space mismatch: model {} vs data {}",
            self.features(),
            data.cols()
        );
        data.matvec(&self.beta).expect("checked width")
    }

    /// ±1 classification by the sign of the score.
    pub fn classify(&self, data: &CsrMatrix) -> Vec<f32> {
        self.scores(data)
            .into_iter()
            .map(|s| if s >= 0.0 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Classification accuracy against ±1 labels.
    pub fn accuracy(&self, data: &CsrMatrix, labels: &[f32]) -> f64 {
        let preds = self.classify(data);
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(&p, &y)| p == y)
            .count();
        correct as f64 / labels.len().max(1) as f64
    }

    /// Mean squared error of the raw scores against real-valued labels.
    pub fn mse(&self, data: &CsrMatrix, labels: &[f32]) -> f64 {
        let scores = self.scores(data);
        let sse: f64 = scores
            .iter()
            .zip(labels)
            .map(|(&s, &y)| {
                let d = s as f64 - y as f64;
                d * d
            })
            .sum();
        sse / labels.len().max(1) as f64
    }

    /// Serialize to the current (v2, checksummed) text format.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let mut body = String::new();
        body.push_str(MAGIC_V2);
        body.push('\n');
        body.push_str(&format!(
            "objective={} form={} lambda={} features={}\n",
            self.objective.label(),
            self.form.label(),
            self.lambda,
            self.features()
        ));
        for &b in &self.beta {
            body.push_str(&format!("{b}\n"));
        }
        let checksum = fnv1a64(body.as_bytes());
        w.write_all(body.as_bytes())?;
        writeln!(w, "checksum=fnv1a64:{checksum:016x}")
    }

    /// Parse either format version; v2 files must checksum-verify.
    pub fn load<R: Read>(mut r: R) -> Result<Self, ModelError> {
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| ModelError::Io(e.to_string()))?;
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or("<empty file>");
        let v2 = match magic {
            MAGIC_V2 => true,
            MAGIC_V1 => false,
            other => return Err(ModelError::BadMagic(other.to_string())),
        };
        let header = lines.next().ok_or(ModelError::BadHeader("<missing>".into()))?;

        let mut rest: Vec<&str> = lines.collect();
        if v2 {
            // Pop and verify the trailing checksum line before trusting
            // anything else in the file.
            let tail = loop {
                match rest.pop() {
                    Some(line) if line.trim().is_empty() => continue,
                    Some(line) => break line,
                    None => return Err(ModelError::MissingChecksum),
                }
            };
            let stored = tail
                .strip_prefix("checksum=fnv1a64:")
                .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
                .ok_or(ModelError::MissingChecksum)?;
            let body_len = text
                .rfind(tail)
                .expect("tail line came from text");
            let computed = fnv1a64(&text.as_bytes()[..body_len]);
            if stored != computed {
                return Err(ModelError::BadChecksum { stored, computed });
            }
        }

        let mut objective = None;
        let mut form = None;
        let mut lambda = None;
        let mut features = None;
        for token in header.split_ascii_whitespace() {
            match token.split_once('=') {
                Some(("objective", name)) => {
                    objective = Some(
                        ObjectiveKind::parse(name)
                            .map_err(|_| ModelError::UnknownObjective(name.to_string()))?,
                    )
                }
                Some(("form", "primal")) => form = Some(Form::Primal),
                Some(("form", "dual")) => form = Some(Form::Dual),
                Some(("lambda", v)) => lambda = v.parse::<f64>().ok(),
                Some(("features", v)) => features = v.parse::<usize>().ok(),
                _ => return Err(ModelError::BadHeader(header.to_string())),
            }
        }
        // v1 files predate the objective layer: everything was ridge.
        let objective = match (objective, v2) {
            (Some(o), _) => o,
            (None, false) => ObjectiveKind::Ridge,
            (None, true) => return Err(ModelError::BadHeader(header.to_string())),
        };
        let (form, lambda, features) = match (form, lambda, features) {
            (Some(f), Some(l), Some(m)) => (f, l, m),
            _ => return Err(ModelError::BadHeader(header.to_string())),
        };
        let mut beta = Vec::with_capacity(features);
        for (i, line) in rest.into_iter().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let v: f32 = trimmed.parse().map_err(|_| ModelError::BadWeight {
                line: i + 3,
                token: trimmed.to_string(),
            })?;
            beta.push(v);
        }
        if beta.len() != features {
            return Err(ModelError::WrongCount {
                declared: features,
                found: beta.len(),
            });
        }
        Ok(TrainedModel {
            objective,
            form,
            lambda,
            beta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialScd;
    use crate::solver::Solver;
    use scd_datasets::{scale_values, webspam_like};

    fn trained() -> (RidgeProblem, TrainedModel) {
        let data = scale_values(&webspam_like(120, 90, 10, 17), 0.3);
        let p = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
        let mut s = SequentialScd::primal(&p, 1);
        for _ in 0..40 {
            s.epoch(&p);
        }
        let model = TrainedModel::from_primal(&p, s.weights());
        (p, model)
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let (_, model) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let back = TrainedModel::load(buf.as_slice()).unwrap();
        assert_eq!(back, model);
        assert_eq!(back.objective, ObjectiveKind::Ridge);
    }

    #[test]
    fn every_objective_roundtrips_with_its_label() {
        let data = scale_values(&webspam_like(50, 30, 6, 9), 0.3);
        let p = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
        for kind in ObjectiveKind::ALL {
            let form = kind.default_form();
            let mut solver = match form {
                Form::Primal => SequentialScd::primal(&p, 3),
                Form::Dual => SequentialScd::dual(&p, 3),
            }
            .with_objective(kind);
            for _ in 0..5 {
                solver.epoch(&p);
            }
            let model = TrainedModel::from_weights(&p, kind, form, solver.weights());
            assert_eq!(model.features(), p.m(), "{kind}: always primal width");
            let mut buf = Vec::new();
            model.save(&mut buf).unwrap();
            let text = String::from_utf8(buf.clone()).unwrap();
            assert!(text.contains(&format!("objective={kind}")), "{text}");
            let back = TrainedModel::load(buf.as_slice()).unwrap();
            assert_eq!(back, model, "{kind}");
        }
    }

    #[test]
    fn v1_files_still_load_as_ridge() {
        let (_, model) = trained();
        let mut v1 = format!(
            "tpa-scd-model v1\nform={} lambda={} features={}\n",
            model.form.label(),
            model.lambda,
            model.features()
        );
        for &b in &model.beta {
            v1.push_str(&format!("{b}\n"));
        }
        let back = TrainedModel::load(v1.as_bytes()).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn predictions_fit_training_data() {
        let (p, model) = trained();
        let acc = model.accuracy(p.csr(), p.labels());
        assert!(acc > 0.95, "training accuracy {acc}");
        let mse = model.mse(p.csr(), p.labels());
        assert!(mse < 0.5, "training MSE {mse}");
    }

    #[test]
    fn dual_solutions_convert_through_eq5() {
        let data = scale_values(&webspam_like(100, 80, 10, 23), 0.3);
        let p = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
        let mut primal = SequentialScd::primal(&p, 2);
        let mut dual = SequentialScd::dual(&p, 2);
        for _ in 0..80 {
            primal.epoch(&p);
            dual.epoch(&p);
        }
        let mp = TrainedModel::from_primal(&p, primal.weights());
        let md = TrainedModel::from_dual(&p, &dual.weights());
        for (a, b) in mp.beta.iter().zip(&md.beta) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert_eq!(md.form, Form::Dual);
    }

    #[test]
    fn load_rejects_corruption() {
        let (_, model) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Wrong magic.
        let bad = text.replacen("tpa-scd-model v2", "something else", 1);
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::BadMagic(_))
        ));
        // Any flipped byte in the payload trips the checksum first.
        let bad = text.replacen(&model.beta[0].to_string(), "not-a-number", 1);
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::BadChecksum { .. })
        ));
        // Truncation loses the checksum line entirely.
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            TrainedModel::load(truncated.as_bytes()),
            Err(ModelError::MissingChecksum)
        ));
        // Broken header (checksum recomputed so it parses past verify).
        let bad = body_with(&text, |body| body.replacen("form=primal", "shape=weird", 1));
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::BadHeader(_))
        ));
        // Unknown objective name.
        let bad = body_with(&text, |body| {
            body.replacen("objective=ridge", "objective=huber", 1)
        });
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::UnknownObjective(_))
        ));
        // Wrong weight count.
        let bad = body_with(&text, |body| body.replacen("features=90", "features=91", 1));
        assert!(matches!(
            TrainedModel::load(bad.as_bytes()),
            Err(ModelError::WrongCount { declared: 91, .. })
        ));
    }

    /// Apply `edit` to the body of a saved file and re-checksum, so the
    /// edited file exercises the post-checksum validation paths.
    fn body_with(text: &str, edit: impl Fn(&str) -> String) -> String {
        let body_end = text.rfind("checksum=").unwrap();
        let body = edit(&text[..body_end]);
        format!("{body}checksum=fnv1a64:{:016x}\n", fnv1a64(body.as_bytes()))
    }

    #[test]
    #[should_panic(expected = "feature-space mismatch")]
    fn width_mismatch_panics() {
        let (_, model) = trained();
        let other = scale_values(&webspam_like(10, 20, 3, 1), 0.3);
        let _ = model.scores(&other.matrix.to_csr());
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(ModelError::BadMagic("x".into()).to_string().contains("not a tpa-scd"));
        assert!(ModelError::WrongCount {
            declared: 5,
            found: 3
        }
        .to_string()
        .contains("declares 5"));
        let msg = ModelError::BadChecksum {
            stored: 0xdead,
            computed: 0xbeef,
        }
        .to_string();
        assert!(msg.contains("000000000000dead") && msg.contains("000000000000beef"), "{msg}");
        assert!(ModelError::UnknownObjective("huber".into())
            .to_string()
            .contains("huber"));
        for e in [
            ModelError::MissingChecksum,
            ModelError::BadHeader("h".into()),
            ModelError::Io("boom".into()),
            ModelError::BadWeight { line: 4, token: "z".into() },
        ] {
            assert!(!e.to_string().contains('\n'));
        }
    }
}

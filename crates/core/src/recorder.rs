//! Convergence recording: the duality-gap-versus-epochs/seconds curves that
//! every figure in the paper plots, plus the "time to reach duality gap ε"
//! queries behind Figs. 6, 8 and 9.

use crate::solver::TimeBreakdown;
use scd_perf_model::Seconds;

/// One recorded point: the state after a completed epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochPoint {
    /// Epoch number, 1-based (0 is the initial state).
    pub epoch: usize,
    /// Cumulative simulated seconds up to and including this epoch.
    pub seconds: Seconds,
    /// Duality gap of the iterate after this epoch.
    pub gap: f64,
    /// Aggregation parameter used this epoch (distributed solvers; 0 for
    /// single-node engines that don't aggregate).
    pub gamma: f64,
    /// Cumulative time breakdown.
    pub breakdown: TimeBreakdown,
}

/// A convergence curve under construction.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceRecorder {
    points: Vec<EpochPoint>,
    cumulative: TimeBreakdown,
    epochs: usize,
}

impl ConvergenceRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the initial (epoch-0) gap so curves start at the untrained
    /// iterate, as the paper's do.
    pub fn record_initial(&mut self, gap: f64) {
        assert!(self.points.is_empty(), "initial point must come first");
        self.points.push(EpochPoint {
            epoch: 0,
            seconds: 0.0,
            gap,
            gamma: 0.0,
            breakdown: TimeBreakdown::default(),
        });
    }

    /// Record one completed epoch.
    pub fn record_epoch(&mut self, epoch_breakdown: TimeBreakdown, gap: f64, gamma: f64) {
        self.cumulative.accumulate(&epoch_breakdown);
        self.epochs += 1;
        self.points.push(EpochPoint {
            epoch: self.epochs,
            seconds: self.cumulative.total(),
            gap,
            gamma,
            breakdown: self.cumulative,
        });
    }

    /// All recorded points in epoch order.
    pub fn points(&self) -> &[EpochPoint] {
        &self.points
    }

    /// Number of completed epochs recorded.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Final cumulative simulated time.
    pub fn total_seconds(&self) -> Seconds {
        self.cumulative.total()
    }

    /// Final cumulative breakdown.
    pub fn total_breakdown(&self) -> TimeBreakdown {
        self.cumulative
    }

    /// First epoch whose gap is ≤ ε.
    pub fn epochs_to_gap(&self, epsilon: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.gap <= epsilon)
            .map(|p| p.epoch)
    }

    /// Simulated seconds until the gap first reaches ≤ ε (the y-axis of
    /// Figs. 6 and 8).
    pub fn seconds_to_gap(&self, epsilon: f64) -> Option<Seconds> {
        self.points
            .iter()
            .find(|p| p.gap <= epsilon)
            .map(|p| p.seconds)
    }

    /// Cumulative breakdown at the first epoch reaching gap ≤ ε (Fig. 9's
    /// stacked bars).
    pub fn breakdown_to_gap(&self, epsilon: f64) -> Option<TimeBreakdown> {
        self.points
            .iter()
            .find(|p| p.gap <= epsilon)
            .map(|p| p.breakdown)
    }

    /// The smallest gap seen (curves that plateau never reach small ε).
    pub fn best_gap(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.gap)
            .fold(f64::INFINITY, f64::min)
    }

    /// First epoch whose recorded gap is not a positive finite number —
    /// the iterate hit (numerical) zero, or the gap oracle produced a
    /// NaN/∞. Such points carry no log-scale information:
    /// [`Self::linear_rate`] drops them from the fit, and callers should
    /// report the epoch instead of feeding `log10(0) = −∞` into a
    /// regression.
    pub fn first_nonpositive_gap(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|p| !(p.gap.is_finite() && p.gap > 0.0))
            .map(|p| p.epoch)
    }

    /// Least-squares estimate of the linear convergence rate ρ from
    /// gap(t) ≈ C·ρᵗ, fit on log₁₀(gap) over the recorded epochs (dropping
    /// non-positive gaps and the noise floor below `floor`). Returns `None`
    /// when fewer than two usable points exist.
    ///
    /// The distributed slow-down of Fig. 3 is "approximately linear in K"
    /// precisely in the sense that log(ρ_K) ≈ log(ρ₁)/K.
    pub fn linear_rate(&self, floor: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| p.gap.is_finite() && p.gap > floor)
            .map(|p| (p.epoch as f64, p.gap.log10()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom == 0.0 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(10f64.powf(slope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(host: f64) -> TimeBreakdown {
        TimeBreakdown {
            host,
            ..TimeBreakdown::default()
        }
    }

    #[test]
    fn records_accumulate() {
        let mut r = ConvergenceRecorder::new();
        r.record_initial(1.0);
        r.record_epoch(bd(2.0), 0.1, 1.0);
        r.record_epoch(bd(3.0), 0.01, 0.9);
        assert_eq!(r.epochs(), 2);
        assert_eq!(r.points().len(), 3);
        assert_eq!(r.total_seconds(), 5.0);
        assert_eq!(r.points()[2].seconds, 5.0);
        assert_eq!(r.points()[2].epoch, 2);
    }

    #[test]
    fn time_to_gap_queries() {
        let mut r = ConvergenceRecorder::new();
        r.record_initial(1.0);
        r.record_epoch(bd(1.0), 0.5, 0.0);
        r.record_epoch(bd(1.0), 0.05, 0.0);
        r.record_epoch(bd(1.0), 0.001, 0.0);
        assert_eq!(r.epochs_to_gap(0.5), Some(1));
        assert_eq!(r.epochs_to_gap(0.06), Some(2));
        assert_eq!(r.seconds_to_gap(0.01), Some(3.0));
        assert_eq!(r.seconds_to_gap(1e-9), None);
        assert_eq!(r.epochs_to_gap(2.0), Some(0), "initial point counts");
    }

    #[test]
    fn best_gap_survives_plateaus() {
        let mut r = ConvergenceRecorder::new();
        r.record_initial(1.0);
        r.record_epoch(bd(1.0), 0.01, 0.0);
        r.record_epoch(bd(1.0), 0.02, 0.0); // wild-style bounce
        assert_eq!(r.best_gap(), 0.01);
    }

    #[test]
    fn breakdown_query_returns_cumulative_mix() {
        let mut r = ConvergenceRecorder::new();
        r.record_epoch(
            TimeBreakdown {
                gpu: 1.0,
                host: 0.5,
                pcie: 0.25,
                network: 0.25,
            },
            0.1,
            1.0,
        );
        r.record_epoch(
            TimeBreakdown {
                gpu: 1.0,
                host: 0.5,
                pcie: 0.25,
                network: 0.25,
            },
            0.001,
            1.0,
        );
        let b = r.breakdown_to_gap(0.01).unwrap();
        assert_eq!(b.gpu, 2.0);
        assert_eq!(b.total(), 4.0);
    }

    #[test]
    fn linear_rate_recovers_geometric_decay() {
        let mut r = ConvergenceRecorder::new();
        r.record_initial(1.0);
        let rho: f64 = 0.8;
        for e in 1..=40 {
            r.record_epoch(bd(1.0), rho.powi(e), 0.0);
        }
        let est = r.linear_rate(1e-12).unwrap();
        assert!((est - rho).abs() < 1e-6, "estimated {est}");
    }

    #[test]
    fn linear_rate_ignores_noise_floor() {
        let mut r = ConvergenceRecorder::new();
        r.record_initial(1.0);
        for e in 1..=20 {
            r.record_epoch(bd(1.0), 0.5f64.powi(e), 0.0);
        }
        // Plateau at the floor: excluded from the fit.
        for _ in 0..20 {
            r.record_epoch(bd(1.0), 1e-9, 0.0);
        }
        let est = r.linear_rate(1e-8).unwrap();
        assert!((est - 0.5).abs() < 0.01, "estimated {est}");
    }

    #[test]
    fn zero_gap_is_reported_not_fit() {
        // A gap that hits exactly 0 (tiny problems converge to the float
        // floor) must surface through first_nonpositive_gap, and the rate
        // fit must survive it — log10(0) = −∞ would otherwise poison the
        // least-squares sums into NaN.
        let mut r = ConvergenceRecorder::new();
        r.record_initial(1.0);
        r.record_epoch(bd(1.0), 0.1, 0.0);
        r.record_epoch(bd(1.0), 0.01, 0.0);
        r.record_epoch(bd(1.0), 0.0, 0.0);
        assert_eq!(r.first_nonpositive_gap(), Some(3));
        let est = r.linear_rate(0.0).unwrap();
        assert!(est.is_finite(), "zero gap poisoned the fit: {est}");
        assert!((est - 0.1).abs() < 1e-9, "estimated {est}");
        // NaN gaps are likewise reported, not fit.
        let mut r = ConvergenceRecorder::new();
        r.record_initial(f64::NAN);
        assert_eq!(r.first_nonpositive_gap(), Some(0));
    }

    #[test]
    fn linear_rate_needs_two_points() {
        let mut r = ConvergenceRecorder::new();
        assert!(r.linear_rate(0.0).is_none());
        r.record_initial(1.0);
        assert!(r.linear_rate(0.0).is_none());
        r.record_epoch(bd(1.0), 0.1, 0.0);
        assert!(r.linear_rate(0.0).is_some());
    }

    #[test]
    #[should_panic(expected = "initial point must come first")]
    fn initial_after_epochs_rejected() {
        let mut r = ConvergenceRecorder::new();
        r.record_epoch(bd(1.0), 0.1, 0.0);
        r.record_initial(1.0);
    }
}

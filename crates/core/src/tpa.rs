//! TPA-SCD (Algorithm 2): twice-parallel, asynchronous stochastic
//! coordinate descent on the (simulated) GPU.
//!
//! The two levels of parallelism, exactly as the paper lays them out:
//!
//! 1. **Across coordinates** — every coordinate update of an epoch is one
//!    thread block; the grid's blocks execute asynchronously on the SMs and
//!    interact only through float atomic additions to the shared vector in
//!    device global memory.
//! 2. **Within a coordinate** — a block's `nthreads` lanes stride over the
//!    sparse column/row in parallel: partial inner products accumulated per
//!    lane, combined with the shared-memory tree reduction, then the
//!    closed-form Δ computed by lane 0, and the rank-one shared-vector
//!    update written back by all lanes with `atomicAdd`.
//!
//! The dataset stays resident in device memory across epochs ("the dataset
//! ... is transferred into the GPU memory once at the beginning of
//! operation and does not move"); per-epoch host work is only the
//! permutation draw and the kernel launch.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use gpu_sim::{BlockCtx, DeviceBuffer, Gpu, GpuError, Kernel, MemSemantics};
use scd_perf_model::CpuProfile;
use scd_sparse::perm::Permutation;
use scd_sparse::{CscMatrix, CsrMatrix, EllMatrix};
use std::sync::Arc;

/// Default lanes per thread block (`nthreads`): two warps.
pub const DEFAULT_LANES: usize = 64;

/// Fraction of the scattered-access byte cost charged to ELLPACK streams:
/// slot-major reads are coalesced, achieving roughly twice the effective
/// bandwidth that the device profile's `mem_efficiency` assumes for
/// scattered CSR/CSC access. The padding slots are still streamed (and
/// charged), which is the format's trade-off.
pub const ELL_COALESCED_COST_FRACTION: f64 = 0.5;

/// The primal TPA-SCD kernel: one block per feature m, shared vector
/// w = Aβ updated atomically.
struct PrimalKernel<'a> {
    csc: &'a CscMatrix,
    y: &'a [f32],
    col_sq_norms: &'a [f64],
    perm: &'a Permutation,
    beta: &'a DeviceBuffer,
    w: &'a DeviceBuffer,
    n: usize,
    lambda: f64,
    n_lambda: f64,
    quad_scale: f64,
    objective: ObjectiveKind,
    sem: MemSemantics,
}

impl Kernel for PrimalKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let m = self.perm.apply(ctx.block_id());
        let col = self.csc.col(m);
        let nnz = col.nnz();

        // Phase 1: strided per-lane partial inner products
        // dp_u = Σ_{i ≡ u (mod nthreads)} (y_i − w_i)·A_{i,m}, fused into
        // one bulk gather-dot over the column's nonzeros (same order,
        // values, and counted w-read cost as the per-element loop).
        ctx.lane_dot_phase(self.w, col.indices, |k, wi| {
            (self.y[col.indices[k] as usize] - wi) * col.values[k]
        });
        // Matrix value+index (8 B) and label (4 B) per nonzero, plus the FMA.
        ctx.charge_read_bytes(12 * nnz as u64);
        ctx.charge_lane_ops(nnz as u64);
        ctx.barrier();

        // Phase 2: shared-memory tree reduction.
        let dot = ctx.tree_reduce() as f64;

        // Phase 3: lane 0 computes the exact coordinate update (Eq. 2 for
        // ridge; the objective's prox step otherwise).
        let beta_m = ctx.read(self.beta, m);
        let delta = self.objective.primal_delta(
            dot,
            beta_m as f64,
            self.quad_scale * self.col_sq_norms[m],
            self.n,
            self.lambda,
            self.n_lambda,
        ) as f32;
        ctx.write(self.beta, m, beta_m + delta);
        ctx.barrier();

        // Phase 4: all lanes write out w_i += A_{i,m}·Δβ with atomicAdd —
        // one bulk scatter, identical update order and counted cost.
        ctx.scatter_add(self.sem, self.w, col.indices, col.values, delta);
        ctx.charge_read_bytes(8 * nnz as u64); // re-stream value+index
    }
}

/// The dual TPA-SCD kernel: one block per example n, shared vector
/// w̄ = Aᵀα updated atomically.
struct DualKernel<'a> {
    csr: &'a CsrMatrix,
    y: &'a [f32],
    row_sq_norms: &'a [f64],
    perm: &'a Permutation,
    alpha: &'a DeviceBuffer,
    w_bar: &'a DeviceBuffer,
    lambda: f64,
    n_lambda: f64,
    quad_scale: f64,
    objective: ObjectiveKind,
    sem: MemSemantics,
}

impl Kernel for DualKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let n = self.perm.apply(ctx.block_id());
        let row = self.csr.row(n);
        let nnz = row.nnz();

        // Fused bulk gather-dot over the row's nonzeros: same order,
        // values, and counted w̄-read cost as the per-element loop.
        ctx.lane_dot_phase(self.w_bar, row.indices, |k, wj| wj * row.values[k]);
        ctx.charge_read_bytes(8 * nnz as u64);
        ctx.charge_lane_ops(nnz as u64);
        ctx.barrier();

        let dot = ctx.tree_reduce() as f64;

        let alpha_n = ctx.read(self.alpha, n);
        let delta = self.objective.dual_delta(
            dot,
            self.y[n] as f64,
            alpha_n as f64,
            self.quad_scale * self.row_sq_norms[n],
            self.lambda,
            self.n_lambda,
        ) as f32;
        ctx.write(self.alpha, n, alpha_n + delta);
        ctx.barrier();

        ctx.scatter_add(self.sem, self.w_bar, row.indices, row.values, delta);
        ctx.charge_read_bytes(8 * nnz as u64);
    }
}

/// The dual TPA-SCD kernel over an ELLPACK-resident matrix: identical
/// update semantics to [`DualKernel`], but lanes stride the row's fixed
/// `width` slots, whose slot-major storage makes every global read
/// coalesced.
struct DualEllKernel<'a> {
    ell: &'a EllMatrix,
    y: &'a [f32],
    row_sq_norms: &'a [f64],
    perm: &'a Permutation,
    alpha: &'a DeviceBuffer,
    w_bar: &'a DeviceBuffer,
    lambda: f64,
    n_lambda: f64,
    quad_scale: f64,
    objective: ObjectiveKind,
    sem: MemSemantics,
}

impl Kernel for DualEllKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let n = self.perm.apply(ctx.block_id());
        let width = self.ell.width();

        // Fused bulk gather-dot over the row's slots: same slot order,
        // values, and counted w̄-read cost (per *present* slot) as the
        // per-element loop.
        ctx.lane_slot_dot_phase(self.w_bar, width, |s| self.ell.slot(s, n));
        // Every slot is streamed (value + index), padding included, at the
        // coalesced cost fraction.
        ctx.charge_read_bytes((8.0 * width as f64 * ELL_COALESCED_COST_FRACTION) as u64);
        ctx.charge_lane_ops(width as u64);
        ctx.barrier();

        let dot = ctx.tree_reduce() as f64;

        let alpha_n = ctx.read(self.alpha, n);
        let delta = self.objective.dual_delta(
            dot,
            self.y[n] as f64,
            alpha_n as f64,
            self.quad_scale * self.row_sq_norms[n],
            self.lambda,
            self.n_lambda,
        ) as f32;
        ctx.write(self.alpha, n, alpha_n + delta);
        ctx.barrier();

        ctx.slot_scatter_add(self.sem, self.w_bar, width, |s| self.ell.slot(s, n), delta);
        ctx.charge_read_bytes((8.0 * width as f64 * ELL_COALESCED_COST_FRACTION) as u64);
    }
}

/// The TPA-SCD solver: owns the device, the resident dataset accounting,
/// and the model/shared vectors in device memory.
pub struct TpaScd {
    form: Form,
    gpu: Arc<Gpu>,
    weights: DeviceBuffer,
    shared: DeviceBuffer,
    lanes: usize,
    sem: MemSemantics,
    /// σ′ multiplier on the coordinate quadratic term (CoCoA+ [24]).
    quadratic_scale: f64,
    /// ELLPACK copy of the matrix for the dual kernel (None = CSR layout).
    ell: Option<EllMatrix>,
    /// Scalar update rule + gap oracle (ridge by default); dispatched by
    /// lane 0 after the tree reduction.
    objective: ObjectiveKind,
    cpu: CpuProfile,
    seed: u64,
    epoch_index: u64,
    resident_bytes: usize,
}

impl TpaScd {
    /// Place the problem on the device: reserves device memory for the
    /// resident matrix (CSC for the primal, CSR for the dual — the paper's
    /// layout choice), the labels, the weights, and the shared vector.
    /// Fails with [`GpuError::OutOfMemory`] when the dataset does not fit —
    /// the situation that motivates §IV.
    pub fn new(
        problem: &RidgeProblem,
        form: Form,
        gpu: Arc<Gpu>,
        seed: u64,
    ) -> Result<Self, GpuError> {
        let matrix_bytes = match form {
            Form::Primal => problem.csc().memory_bytes(),
            Form::Dual => problem.csr().memory_bytes(),
        };
        let resident_bytes = matrix_bytes + problem.labels().len() * 4;
        gpu.reserve_bytes(resident_bytes)?;
        let weights = match gpu.alloc_f32(problem.coords(form)) {
            Ok(b) => b,
            Err(e) => {
                gpu.release_bytes(resident_bytes);
                return Err(e);
            }
        };
        let shared = match gpu.alloc_f32(problem.shared_len(form)) {
            Ok(b) => b,
            Err(e) => {
                gpu.release_bytes(resident_bytes + weights.bytes());
                return Err(e);
            }
        };
        Ok(TpaScd {
            form,
            gpu,
            weights,
            shared,
            lanes: DEFAULT_LANES,
            sem: MemSemantics::Atomic,
            quadratic_scale: 1.0,
            ell: None,
            objective: ObjectiveKind::Ridge,
            cpu: CpuProfile::xeon_e5_2640(),
            seed,
            epoch_index: 0,
            resident_bytes,
        })
    }

    /// Set the lanes-per-block (`nthreads`). Must be a power of two.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes.is_power_of_two(), "lanes must be a power of two");
        self.lanes = lanes;
        self
    }

    /// Select the write-back semantics (atomic is Algorithm 2; wild exists
    /// for the ablation study).
    pub fn with_semantics(mut self, sem: MemSemantics) -> Self {
        self.sem = sem;
        self
    }

    /// Override the host CPU profile used for per-epoch host bookkeeping.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Scale the quadratic term of every coordinate subproblem by σ′ ≥ 1
    /// (CoCoA+ safe local subproblem [24]).
    pub fn with_quadratic_scale(mut self, sigma_prime: f64) -> Self {
        assert!(sigma_prime >= 1.0, "sigma' must be >= 1 for safety");
        self.quadratic_scale = sigma_prime;
        self
    }

    /// Swap the lane-0 scalar update for a non-ridge objective. The block
    /// structure — lane-strided dots, tree reduction, atomic rank-one
    /// write-back — is objective-agnostic.
    ///
    /// # Panics
    /// Panics if the objective has no coordinate update for this form.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        assert!(
            objective.supports(self.form),
            "objective {} does not support the {} form",
            objective.label(),
            self.form.label()
        );
        self.objective = objective;
        self
    }

    /// Switch the dual kernel to the ELLPACK layout: coalesced slot-major
    /// reads at the price of padding every row to the longest row's width.
    /// Re-reserves device memory for the padded footprint, so a skewed
    /// matrix can fail here even though its CSR form fit.
    ///
    /// # Panics
    /// Panics if the solver is not in the dual form.
    pub fn with_ell_layout(mut self, problem: &RidgeProblem) -> Result<Self, GpuError> {
        assert_eq!(
            self.form,
            Form::Dual,
            "the ELLPACK layout is implemented for the dual (row-walking) kernel"
        );
        let ell = EllMatrix::from_csr(problem.csr());
        let delta = ell.memory_bytes() as i64 - problem.csr().memory_bytes() as i64;
        if delta > 0 {
            self.gpu.reserve_bytes(delta as usize)?;
        } else {
            self.gpu.release_bytes((-delta) as usize);
        }
        self.resident_bytes = (self.resident_bytes as i64 + delta) as usize;
        self.ell = Some(ell);
        Ok(self)
    }

    /// Padding overhead of the resident ELLPACK copy (1.0 when using CSR).
    pub fn layout_padding_ratio(&self) -> f64 {
        self.ell.as_ref().map(|e| e.padding_ratio()).unwrap_or(1.0)
    }

    /// The device this solver runs on.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// D2H copy of the shared vector (the distributed driver sends this to
    /// the master). Bytes moved: `4 × shared_len`.
    pub fn download_shared(&self) -> Vec<f32> {
        self.shared.to_host()
    }

    /// H2D copy of an aggregated shared vector (the broadcast step).
    pub fn upload_shared(&self, data: &[f32]) {
        self.shared.copy_from_host(data);
    }

    /// Overwrite the device-resident weights (distributed consistency
    /// rescaling).
    pub fn upload_weights(&self, data: &[f32]) {
        self.weights.copy_from_host(data);
    }

    /// Bytes moved over PCIe for one down+up shared-vector exchange.
    pub fn pcie_bytes_per_exchange(&self) -> usize {
        2 * self.shared.bytes()
    }
}

impl Drop for TpaScd {
    fn drop(&mut self) {
        self.gpu.release_bytes(self.resident_bytes);
        // weights/shared buffers were counted by alloc_f32:
        self.gpu
            .release_bytes(self.weights.bytes() + self.shared.bytes());
    }
}

impl Solver for TpaScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        format!("TPA-SCD ({})", self.gpu.profile().name)
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let coords = problem.coords(self.form);
        let perm = Permutation::random(coords, self.seed ^ (self.epoch_index.wrapping_mul(0x9E37)));
        self.epoch_index += 1;
        let stats = match self.form {
            Form::Primal => {
                let kernel = PrimalKernel {
                    csc: problem.csc(),
                    y: problem.labels(),
                    col_sq_norms: problem.col_sq_norms(),
                    perm: &perm,
                    beta: &self.weights,
                    w: &self.shared,
                    n: problem.n(),
                    lambda: problem.lambda(),
                    n_lambda: problem.n_lambda(),
                    quad_scale: self.quadratic_scale,
                    objective: self.objective,
                    sem: self.sem,
                };
                self.gpu.launch(&kernel, coords, self.lanes)
            }
            Form::Dual => match &self.ell {
                Some(ell) => {
                    let kernel = DualEllKernel {
                        ell,
                        y: problem.labels(),
                        row_sq_norms: problem.row_sq_norms(),
                        perm: &perm,
                        alpha: &self.weights,
                        w_bar: &self.shared,
                        lambda: problem.lambda(),
                        n_lambda: problem.n_lambda(),
                        quad_scale: self.quadratic_scale,
                        objective: self.objective,
                        sem: self.sem,
                    };
                    self.gpu.launch(&kernel, coords, self.lanes)
                }
                None => {
                    let kernel = DualKernel {
                        csr: problem.csr(),
                        y: problem.labels(),
                        row_sq_norms: problem.row_sq_norms(),
                        perm: &perm,
                        alpha: &self.weights,
                        w_bar: &self.shared,
                        lambda: problem.lambda(),
                        n_lambda: problem.n_lambda(),
                        quad_scale: self.quadratic_scale,
                        objective: self.objective,
                        sem: self.sem,
                    };
                    self.gpu.launch(&kernel, coords, self.lanes)
                }
            },
        };
        EpochStats {
            updates: coords,
            breakdown: TimeBreakdown {
                gpu: stats.simulated_seconds,
                // Host draws the permutation and issues the launch.
                host: self.cpu.host_vector_op_seconds(coords),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.weights.to_host()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.to_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SequentialScd;
    use gpu_sim::GpuProfile;
    use scd_datasets::webspam_like;
    use scd_sparse::dense;

    fn problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&webspam_like(180, 220, 10, 12), 1e-3).unwrap()
    }

    fn m4000() -> Arc<Gpu> {
        Arc::new(Gpu::new(GpuProfile::quadro_m4000()))
    }

    #[test]
    fn primal_tpa_converges_to_optimum() {
        let p = problem();
        let mut s = TpaScd::new(&p, Form::Primal, m4000(), 1).unwrap();
        for _ in 0..80 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn dual_tpa_converges_to_optimum() {
        let p = problem();
        let mut s = TpaScd::new(&p, Form::Dual, m4000(), 2).unwrap();
        for _ in 0..120 {
            s.epoch(&p);
        }
        let gap = s.duality_gap(&p);
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn deterministic_tpa_matches_sequential_per_epoch() {
        // With a single host thread, blocks run in launch order, so
        // TPA-SCD's trajectory equals Algorithm 1's up to f32 reduction
        // order inside each coordinate.
        let p = problem();
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut tpa = TpaScd::new(&p, Form::Primal, gpu, 7).unwrap();
        let mut seq = SequentialScd::primal(&p, 7);
        for _ in 0..5 {
            tpa.epoch(&p);
            seq.epoch(&p);
        }
        let diff = dense::max_abs_diff(&tpa.weights(), &seq.weights());
        assert!(diff < 1e-3, "TPA vs sequential weight diff {diff}");
    }

    #[test]
    fn shared_vector_stays_consistent_with_atomics() {
        let p = problem();
        let mut s = TpaScd::new(&p, Form::Primal, m4000(), 3).unwrap();
        for _ in 0..5 {
            s.epoch(&p);
        }
        let w_true = p.csc().matvec(&s.weights()).unwrap();
        let drift = dense::max_abs_diff(&s.download_shared(), &w_true);
        assert!(drift < 1e-2, "atomic write-back must keep w ≈ Aβ, drift {drift}");
    }

    #[test]
    fn epoch_reports_gpu_time() {
        let p = problem();
        let mut s = TpaScd::new(&p, Form::Dual, m4000(), 4).unwrap();
        let stats = s.epoch(&p);
        assert_eq!(stats.updates, p.n());
        assert!(stats.breakdown.gpu > 0.0);
        assert!(stats.breakdown.host > 0.0);
        assert!(stats.breakdown.gpu > stats.breakdown.host);
        assert_eq!(stats.breakdown.network, 0.0);
    }

    #[test]
    fn titan_x_is_faster_than_m4000_per_epoch() {
        let p = problem();
        let mut m = TpaScd::new(&p, Form::Dual, m4000(), 5).unwrap();
        let mut t = TpaScd::new(&p, Form::Dual, Arc::new(Gpu::new(GpuProfile::titan_x_maxwell())), 5).unwrap();
        let tm = m.epoch(&p).breakdown.gpu;
        let tt = t.epoch(&p).breakdown.gpu;
        assert!(tt < tm, "Titan X epoch {tt} must beat M4000 epoch {tm}");
    }

    #[test]
    fn out_of_memory_is_reported() {
        // A device with tiny capacity cannot host the dataset.
        let p = problem();
        let mut profile = GpuProfile::quadro_m4000();
        profile.mem_capacity_bytes = 1024;
        let err = TpaScd::new(&p, Form::Primal, Arc::new(Gpu::new(profile)), 1);
        assert!(matches!(err, Err(GpuError::OutOfMemory { .. })));
    }

    #[test]
    fn device_memory_released_on_drop() {
        let p = problem();
        let gpu = m4000();
        assert_eq!(gpu.allocated_bytes(), 0);
        {
            let solver = TpaScd::new(&p, Form::Primal, gpu.clone(), 1).unwrap();
            assert!(solver.gpu().allocated_bytes() > 0);
        }
        assert_eq!(
            gpu.allocated_bytes(),
            0,
            "dropping the solver must return its device memory"
        );
        // And repeated construction must not leak capacity.
        for _ in 0..3 {
            let s = TpaScd::new(&p, Form::Primal, gpu.clone(), 1).unwrap();
            drop(s);
        }
        assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn lanes_sweep_preserves_solution() {
        let p = problem();
        for lanes in [16usize, 64, 256] {
            let mut s = TpaScd::new(
                &p,
                Form::Primal,
                Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1)),
                11,
            )
                .unwrap()
                .with_lanes(lanes);
            for _ in 0..40 {
                s.epoch(&p);
            }
            assert!(
                s.duality_gap(&p) < 5e-3,
                "lanes={lanes} gap {}",
                s.duality_gap(&p)
            );
        }
    }

    #[test]
    fn wild_semantics_degrade_consistency() {
        let p = problem();
        // Force real block concurrency if the host has it; even without,
        // wild write-back on the GPU with one host thread cannot lose
        // updates, so just assert it still runs and converges roughly.
        let mut s = TpaScd::new(&p, Form::Primal, m4000(), 13)
            .unwrap()
            .with_semantics(MemSemantics::Wild);
        for _ in 0..10 {
            s.epoch(&p);
        }
        assert!(s.duality_gap(&p).is_finite());
    }

    #[test]
    fn ell_layout_reaches_the_same_solution() {
        let p = problem();
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut csr = TpaScd::new(&p, Form::Dual, gpu.clone(), 9).unwrap();
        let mut ell = TpaScd::new(&p, Form::Dual, gpu, 9)
            .unwrap()
            .with_ell_layout(&p)
            .unwrap();
        for _ in 0..30 {
            csr.epoch(&p);
            ell.epoch(&p);
        }
        // Same permutations, same update rule, different storage: the
        // trajectories agree to f32 reduction-order noise.
        let diff = dense::max_abs_diff(&csr.weights(), &ell.weights());
        assert!(diff < 1e-4, "CSR vs ELL weight diff {diff}");
        assert!(ell.layout_padding_ratio() > 1.0, "webspam-like rows are skewed");
        assert_eq!(csr.layout_padding_ratio(), 1.0);
    }

    #[test]
    fn ell_speeds_up_uniform_rows_but_not_skewed_ones() {
        // criteo-shaped rows all have the same width: zero padding, the
        // coalescing discount is pure win. Webspam-shaped rows are skewed:
        // padding eats the discount.
        let uniform =
            RidgeProblem::from_labelled(&scd_datasets::criteo_like(400, 20, 40, 3), 1e-3)
                .unwrap();
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
        let mut u_csr = TpaScd::new(&uniform, Form::Dual, gpu.clone(), 5).unwrap();
        let mut u_ell = TpaScd::new(&uniform, Form::Dual, gpu.clone(), 5)
            .unwrap()
            .with_ell_layout(&uniform)
            .unwrap();
        assert_eq!(u_ell.layout_padding_ratio(), 1.0);
        let t_csr = u_csr.epoch(&uniform).breakdown.gpu;
        let t_ell = u_ell.epoch(&uniform).breakdown.gpu;
        assert!(
            t_ell < t_csr,
            "ELL ({t_ell}) must beat CSR ({t_csr}) on uniform rows"
        );

        // A pathologically skewed matrix: one long row forces every other
        // row to pad to its width.
        let mut coo = scd_sparse::CooMatrix::new(400, 300);
        for c in 0..200 {
            coo.push(0, c, 1.0).unwrap();
        }
        for r in 1..400 {
            for k in 0..10 {
                coo.push(r, (r * 7 + k * 31) % 300, 0.5).unwrap();
            }
        }
        let skewed = RidgeProblem::new(coo.to_csr(), vec![1.0; 400], 1e-2).unwrap();
        let mut s_csr = TpaScd::new(&skewed, Form::Dual, gpu.clone(), 5).unwrap();
        let mut s_ell = TpaScd::new(&skewed, Form::Dual, gpu, 5)
            .unwrap()
            .with_ell_layout(&skewed)
            .unwrap();
        assert!(s_ell.layout_padding_ratio() > 5.0, "skew check");
        let t_csr = s_csr.epoch(&skewed).breakdown.gpu;
        let t_ell = s_ell.epoch(&skewed).breakdown.gpu;
        assert!(
            t_ell > t_csr,
            "padding should cost ELL ({t_ell}) more than CSR ({t_csr}) on skewed rows"
        );
    }

    #[test]
    fn ell_padding_can_exhaust_device_memory() {
        let p = problem();
        let mut profile = GpuProfile::quadro_m4000();
        // Capacity that fits the CSR form but not the padded ELL form.
        profile.mem_capacity_bytes = p.csr().memory_bytes()
            + (p.n() + p.m()) * 4
            + p.labels().len() * 4
            + 1024;
        let gpu = Arc::new(Gpu::new(profile));
        let solver = TpaScd::new(&p, Form::Dual, gpu, 1).unwrap();
        assert!(matches!(
            solver.with_ell_layout(&p),
            Err(GpuError::OutOfMemory { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dual")]
    fn ell_layout_rejects_primal() {
        let p = problem();
        let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()));
        let _ = TpaScd::new(&p, Form::Primal, gpu, 1)
            .unwrap()
            .with_ell_layout(&p);
    }

    #[test]
    fn name_includes_device() {
        let p = problem();
        let s = TpaScd::new(&p, Form::Primal, m4000(), 0).unwrap();
        assert_eq!(s.name(), "TPA-SCD (Quadro M4000)");
    }
}

//! The scalar coordinate update rules (Eqs. 2 and 4) shared by every engine
//! — sequential, asynchronous CPU, and the GPU kernels.
//!
//! Keeping the closed forms in one place guarantees that all
//! implementations optimize exactly the same subproblem; the engines differ
//! only in *how* they evaluate the inner product and apply the shared-vector
//! update.

/// Primal update (Eq. 2): given the inner product ⟨y − w, a_m⟩, the current
/// weight β_m, the column norm ‖a_m‖², and Nλ, return Δβ_m.
///
/// A coordinate with an empty column (‖a_m‖² = 0) still has a well-defined
/// update: Δβ = −Nλβ/(Nλ) = −β, zeroing the weight in one step.
#[inline]
pub fn primal_delta(dot_y_minus_w_a: f64, beta_m: f64, col_sq_norm: f64, n_lambda: f64) -> f64 {
    (dot_y_minus_w_a - n_lambda * beta_m) / (col_sq_norm + n_lambda)
}

/// Dual update (Eq. 4): given ⟨w̄, ā_n⟩, the label y_n, the current weight
/// α_n, the row norm ‖ā_n‖², λ and Nλ, return Δα_n.
#[inline]
pub fn dual_delta(
    dot_wbar_a: f64,
    y_n: f64,
    alpha_n: f64,
    row_sq_norm: f64,
    lambda: f64,
    n_lambda: f64,
) -> f64 {
    (lambda * y_n - dot_wbar_a - n_lambda * alpha_n) / (n_lambda + row_sq_norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primal_delta_exactly_minimizes_coordinate() {
        // 1-d problem: N=1, a=2, y=3, λ=0.5 ⇒ β* = 6/4.5 starting from 0,
        // w=0: Δβ = (⟨y, a⟩ − 0)/(4 + 0.5) = 6/4.5.
        let d = primal_delta(6.0, 0.0, 4.0, 0.5);
        assert!((d - 6.0 / 4.5).abs() < 1e-12);
        // Second application from the optimum must be zero: w = aβ = 8/3,
        // ⟨y−w, a⟩ = (3 − 8/3)·2 = 2/3; Nλβ = 0.5·4/3 = 2/3.
        let d2 = primal_delta(2.0 / 3.0, 4.0 / 3.0, 4.0, 0.5);
        assert!(d2.abs() < 1e-12);
    }

    #[test]
    fn dual_delta_exactly_maximizes_coordinate() {
        // Same 1-d problem: α* = λy/(λ + a²) = 1.5/4.5 = 1/3.
        // From α=0, w̄=0: Δα = (λy − 0 − 0)/(λN + a²) = 1.5/4.5.
        let d = dual_delta(0.0, 3.0, 0.0, 4.0, 0.5, 0.5);
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
        // At the optimum: w̄ = a·α = 2/3, ⟨w̄, ā⟩ = 4/3;
        // λy − 4/3 − λα = 1.5 − 4/3 − 1/6 = 0.
        let d2 = dual_delta(4.0 / 3.0, 3.0, 1.0 / 3.0, 4.0, 0.5, 0.5);
        assert!(d2.abs() < 1e-12);
    }

    #[test]
    fn empty_coordinate_zeroes_weight() {
        let d = primal_delta(0.0, 5.0, 0.0, 2.0);
        assert!((d + 5.0).abs() < 1e-12);
    }

    #[test]
    fn deltas_are_finite_for_extreme_inputs() {
        let d = primal_delta(1e30, -1e20, 1e-30, 1e-6);
        assert!(d.is_finite());
        let d = dual_delta(-1e30, 1e10, 1e20, 1e-20, 1e-9, 1e-3);
        assert!(d.is_finite());
    }
}

//! Regularization paths via warm-started coordinate descent.
//!
//! The paper's Algorithm 1 comes from Friedman, Hastie & Tibshirani [4] —
//! a paper titled *"Regularization paths for generalized linear models via
//! coordinate descent"*: in practice one rarely solves for a single λ but
//! for a descending grid of them, warm-starting each solve from the
//! previous solution. Coordinate descent is the method of choice exactly
//! because warm starts make the whole path barely more expensive than the
//! hardest single solve.
//!
//! [`RegularizationPath`] runs that protocol with any Λ grid over the ridge
//! problem, reporting per-λ solutions, duality gaps, epochs spent, and the
//! measured warm-start advantage.

use crate::problem::RidgeProblem;
use crate::seq::SequentialScd;
use crate::solver::Solver;

/// One solved point on the path.
#[derive(Debug, Clone)]
pub struct PathPoint {
    /// The regularizer solved at this point.
    pub lambda: f64,
    /// The primal solution β*(λ).
    pub beta: Vec<f32>,
    /// The duality gap certified at termination.
    pub gap: f64,
    /// Epochs this point cost (with warm starting, later points get
    /// cheaper).
    pub epochs: usize,
}

/// A solved regularization path.
#[derive(Debug, Clone)]
pub struct RegularizationPath {
    /// Points in the order solved (λ descending is the canonical protocol).
    pub points: Vec<PathPoint>,
}

impl RegularizationPath {
    /// Solve the ridge problem across `lambdas`, warm-starting each solve
    /// from the previous solution, running each to duality gap ≤ `tol`
    /// (capped at `max_epochs` per point).
    ///
    /// The problem's own λ is ignored; each grid point re-regularizes.
    ///
    /// # Panics
    /// Panics if the grid is empty or any λ is not strictly positive.
    pub fn solve(
        base: &RidgeProblem,
        lambdas: &[f64],
        tol: f64,
        max_epochs: usize,
        seed: u64,
    ) -> Self {
        assert!(!lambdas.is_empty(), "empty lambda grid");
        assert!(
            lambdas.iter().all(|&l| l > 0.0),
            "every lambda must be strictly positive"
        );
        let mut points = Vec::with_capacity(lambdas.len());
        let mut warm: Option<(Vec<f32>, Vec<f32>)> = None;
        for &lambda in lambdas {
            let problem = RidgeProblem::new(base.csr().clone(), base.labels().to_vec(), lambda)
                .expect("same data, new lambda");
            let mut solver = SequentialScd::primal(&problem, seed);
            if let Some((beta, shared)) = &warm {
                solver.set_state(beta.clone(), shared.clone());
            }
            let mut epochs = 0;
            let mut gap = solver.duality_gap(&problem);
            while gap > tol && epochs < max_epochs {
                solver.epoch(&problem);
                epochs += 1;
                gap = solver.duality_gap(&problem);
            }
            warm = Some((solver.weights(), solver.shared_vector()));
            points.push(PathPoint {
                lambda,
                beta: solver.weights(),
                gap,
                epochs,
            });
        }
        RegularizationPath { points }
    }

    /// The canonical descending log-spaced grid from `lambda_max` down to
    /// `lambda_max * ratio`, with `count` points.
    ///
    /// # Panics
    /// Panics unless `count ≥ 2`, `lambda_max > 0` and `0 < ratio < 1`.
    pub fn log_grid(lambda_max: f64, ratio: f64, count: usize) -> Vec<f64> {
        assert!(count >= 2, "need at least two grid points");
        assert!(lambda_max > 0.0 && ratio > 0.0 && ratio < 1.0, "bad grid");
        (0..count)
            .map(|i| lambda_max * ratio.powf(i as f64 / (count - 1) as f64))
            .collect()
    }

    /// Total epochs across the whole path.
    pub fn total_epochs(&self) -> usize {
        self.points.iter().map(|p| p.epochs).sum()
    }

    /// The point whose solution minimizes mean squared error on a held-out
    /// set (the standard model-selection read-out of a path).
    pub fn best_by_validation(
        &self,
        data: &scd_sparse::CsrMatrix,
        labels: &[f32],
    ) -> Option<&PathPoint> {
        self.points.iter().min_by(|a, b| {
            let mse = |p: &PathPoint| {
                let scores = data.matvec(&p.beta).expect("width matches");
                scores
                    .iter()
                    .zip(labels)
                    .map(|(&s, &y)| {
                        let d = s as f64 - y as f64;
                        d * d
                    })
                    .sum::<f64>()
            };
            mse(a).partial_cmp(&mse(b)).expect("finite MSE")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_primal;
    use scd_datasets::{scale_values, train_test_split, webspam_like};
    use scd_sparse::dense;

    fn base() -> RidgeProblem {
        let data = scale_values(&webspam_like(150, 100, 10, 33), 0.3);
        RidgeProblem::from_labelled(&data, 1.0).unwrap()
    }

    #[test]
    fn log_grid_shape() {
        let g = RegularizationPath::log_grid(1.0, 1e-3, 4);
        assert_eq!(g.len(), 4);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[3] - 1e-3).abs() < 1e-12);
        // Log-spaced: constant ratio between neighbours.
        let r1 = g[1] / g[0];
        let r2 = g[2] / g[1];
        assert!((r1 - r2).abs() < 1e-9);
        for w in g.windows(2) {
            assert!(w[1] < w[0], "grid must descend");
        }
    }

    #[test]
    fn every_point_is_the_exact_solution_for_its_lambda() {
        let base = base();
        let grid = RegularizationPath::log_grid(0.1, 0.01, 4);
        let path = RegularizationPath::solve(&base, &grid, 1e-7, 400, 1);
        assert_eq!(path.points.len(), 4);
        for pt in &path.points {
            let problem =
                RidgeProblem::new(base.csr().clone(), base.labels().to_vec(), pt.lambda).unwrap();
            let exact = exact_primal(&problem);
            let diff = dense::max_abs_diff(&pt.beta, &exact);
            assert!(diff < 1e-2, "lambda {}: diff {diff}", pt.lambda);
            assert!(pt.gap <= 1e-7 || pt.epochs == 400);
        }
    }

    #[test]
    fn warm_starts_beat_cold_starts() {
        let base = base();
        let grid = RegularizationPath::log_grid(0.1, 0.01, 8);
        let warm = RegularizationPath::solve(&base, &grid, 1e-6, 500, 2);
        // Cold: each point solved independently (one-point paths).
        let cold_epochs: usize = grid
            .iter()
            .map(|&l| RegularizationPath::solve(&base, &[l], 1e-6, 500, 2).total_epochs())
            .sum();
        assert!(
            warm.total_epochs() < cold_epochs,
            "warm path ({}) must beat cold solves ({})",
            warm.total_epochs(),
            cold_epochs
        );
    }

    #[test]
    fn smaller_lambda_fits_training_data_better() {
        let base = base();
        let grid = RegularizationPath::log_grid(1.0, 1e-4, 5);
        let path = RegularizationPath::solve(&base, &grid, 1e-6, 400, 3);
        let mse_of = |beta: &[f32]| {
            let scores = base.csr().matvec(beta).unwrap();
            scores
                .iter()
                .zip(base.labels())
                .map(|(&s, &y)| (s as f64 - y as f64).powi(2))
                .sum::<f64>()
        };
        let first = mse_of(&path.points[0].beta);
        let last = mse_of(&path.points[4].beta);
        assert!(last < first, "training fit must improve as λ shrinks");
    }

    #[test]
    fn validation_selects_an_interior_or_boundary_point() {
        let data = scale_values(&webspam_like(300, 120, 10, 44), 0.3);
        let (train, test) = train_test_split(&data, 0.7, 5);
        let base = RidgeProblem::from_labelled(&train, 1.0).unwrap();
        let grid = RegularizationPath::log_grid(1.0, 1e-4, 6);
        let path = RegularizationPath::solve(&base, &grid, 1e-6, 300, 4);
        let test_csr = test.matrix.to_csr();
        let best = path.best_by_validation(&test_csr, &test.labels).unwrap();
        assert!(grid.contains(&best.lambda));
    }

    #[test]
    #[should_panic(expected = "empty lambda grid")]
    fn empty_grid_rejected() {
        let base = base();
        let _ = RegularizationPath::solve(&base, &[], 1e-6, 100, 0);
    }
}

//! The paper's primary contribution: stochastic coordinate descent engines
//! for ridge regression — sequential (Algorithm 1), asynchronous
//! multi-threaded CPU (A-SCD, PASSCoDe-Wild), and **TPA-SCD** (Algorithm 2)
//! on the simulated GPU — plus the adaptive-aggregation closed form that
//! §IV-B contributes for the distributed setting.
//!
//! Layout:
//! * [`problem`] — primal/dual objectives, duality gap (§II).
//! * [`updates`] — the scalar coordinate update rules (Eqs. 2 and 4).
//! * [`objective`] — the pluggable objective layer (ridge, logistic,
//!   hinge/SVM, lasso) every engine dispatches through.
//! * [`seq`] — Algorithm 1, the single-thread baseline.
//! * [`async_cpu`] — real-thread A-SCD / PASSCoDe-Wild (§III-B).
//! * [`async_sim`] — deterministic T-thread asynchrony simulation used for
//!   reproducible figures.
//! * [`syscd`] — SySCD-style system-aware parallel SCD: bucketized
//!   coordinates, shuffled static partitioning, per-worker replicas with
//!   deterministic merges.
//! * [`asyscd`] — the AsySCD [15] baseline §III-B criticizes (Hessian
//!   blow-up, step-size tuning, slower than Algorithm 1).
//! * [`tpa`] — TPA-SCD kernels and solver (§III-C).
//! * [`aggregation`] — optimal γ* for distributed aggregation (§IV-B).
//! * [`recorder`] — duality-gap/time curves and time-to-ε queries.
//! * [`exact`] — closed-form reference solutions for verification.
//! * [`minibatch`] — mini-batch SDCA [19], the batch-parallel middle
//!   ground.
//! * [`model`] — trained-model persistence and inference.
//! * [`path`] — warm-started regularization paths over a λ grid [4].
//! * [`extensions`] — elastic net and SVM, the other problems §I names.

pub mod aggregation;
pub mod async_cpu;
pub mod asyscd;
pub mod async_sim;
pub mod exact;
pub mod extensions;
pub mod minibatch;
pub mod model;
pub mod objective;
pub mod path;
pub mod problem;
pub mod recorder;
pub mod seq;
pub mod solver;
pub mod syscd;
pub mod tpa;
pub mod updates;

pub use aggregation::{optimal_gamma_dual, optimal_gamma_primal, WorkerScalars};
pub use async_cpu::AsyncCpuScd;
pub use asyscd::{AsyScd, AsyScdError};
pub use async_sim::AsyncSimScd;
pub use exact::{exact_dual, exact_primal};
pub use minibatch::MiniBatchSdca;
pub use model::{ModelError, TrainedModel};
pub use objective::{
    LassoObjective, LogisticObjective, Objective, ObjectiveError, ObjectiveKind, RidgeObjective,
    SvmObjective,
};
pub use path::{PathPoint, RegularizationPath};
pub use problem::{Form, ProblemError, RidgeProblem};
pub use recorder::{ConvergenceRecorder, EpochPoint};
pub use seq::SequentialScd;
pub use solver::{EpochStats, Solver, TimeBreakdown};
pub use syscd::SyscdScd;
pub use tpa::{TpaScd, DEFAULT_LANES};

pub use scd_perf_model::AsyncCpuMode;

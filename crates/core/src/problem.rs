//! The ridge regression problem (§II of the paper): primal and dual
//! objectives, the coordinate update rules' ingredients, optimality
//! mappings, and the duality gap.
//!
//! Primal (Eq. 1):  P(β) = 1/(2N)‖Aβ − y‖² + (λ/2)‖β‖²
//! Dual   (Eq. 3):  D(α) = −(N/2)‖α‖² − 1/(2λ)‖Aᵀα‖² + αᵀy
//!
//! Fenchel–Rockafellar (Eqs. 5–6): β* = (1/λ)Aᵀα*, α* = (1/N)(y − Aβ*),
//! and P(β*) = D(α*). The duality gap GP/GD of §II-C is the convergence
//! metric every figure in the paper plots.

use scd_sparse::dense;
use scd_sparse::io::LabelledData;
use scd_sparse::{CscMatrix, CsrMatrix};

/// Which formulation a solver optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Form {
    /// Minimize P(β); coordinates are features (columns), the shared vector
    /// is w = Aβ ∈ ℝᴺ.
    Primal,
    /// Maximize D(α); coordinates are examples (rows), the shared vector is
    /// w̄ = Aᵀα ∈ ℝᴹ.
    Dual,
}

impl Form {
    /// Short lowercase name for reports.
    pub fn label(self) -> &'static str {
        match self {
            Form::Primal => "primal",
            Form::Dual => "dual",
        }
    }
}

/// Errors raised when assembling a [`RidgeProblem`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// Label vector length differs from the number of examples.
    LabelMismatch { rows: usize, labels: usize },
    /// λ must be strictly positive for strong convexity.
    NonPositiveLambda(f64),
    /// The data matrix has no rows or no columns.
    EmptyProblem,
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::LabelMismatch { rows, labels } => {
                write!(f, "{labels} labels for {rows} examples")
            }
            ProblemError::NonPositiveLambda(l) => write!(f, "lambda must be > 0, got {l}"),
            ProblemError::EmptyProblem => write!(f, "data matrix has no rows or no columns"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// An immutable ridge regression training problem.
///
/// Holds the data in **both** CSR and CSC (the paper keeps CSC on the GPU
/// for the primal and CSR for the dual; we keep both so any solver can run
/// on the same problem object), the labels, λ, and the precomputed
/// per-coordinate squared norms that appear in the update-rule denominators.
#[derive(Debug, Clone)]
pub struct RidgeProblem {
    csr: CsrMatrix,
    csc: CscMatrix,
    y: Vec<f32>,
    lambda: f64,
    /// N used in the regularization constant Nλ. Equals `rows` for a full
    /// problem; a by-example partition overrides it with the *global*
    /// example count so every worker optimizes the same global objective.
    regularization_examples: usize,
    col_sq_norms: Vec<f64>,
    row_sq_norms: Vec<f64>,
}

impl RidgeProblem {
    /// Build a problem from a CSR matrix, labels, and regularizer λ.
    pub fn new(csr: CsrMatrix, labels: Vec<f32>, lambda: f64) -> Result<Self, ProblemError> {
        if csr.rows() == 0 || csr.cols() == 0 {
            return Err(ProblemError::EmptyProblem);
        }
        if labels.len() != csr.rows() {
            return Err(ProblemError::LabelMismatch {
                rows: csr.rows(),
                labels: labels.len(),
            });
        }
        if lambda.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ProblemError::NonPositiveLambda(lambda));
        }
        let csc = csr.to_csc();
        let col_sq_norms = csc.col_squared_norms();
        let row_sq_norms = csr.row_squared_norms();
        Ok(RidgeProblem {
            regularization_examples: csr.rows(),
            csr,
            csc,
            y: labels,
            lambda,
            col_sq_norms,
            row_sq_norms,
        })
    }

    /// Convenience constructor from a labelled COO dataset.
    pub fn from_labelled(data: &LabelledData, lambda: f64) -> Result<Self, ProblemError> {
        Self::new(data.matrix.to_csr(), data.labels.clone(), lambda)
    }

    /// Number of training examples N.
    #[inline]
    pub fn n(&self) -> usize {
        self.csr.rows()
    }

    /// Number of features M.
    #[inline]
    pub fn m(&self) -> usize {
        self.csr.cols()
    }

    /// The regularization parameter λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// N·λ — the constant in both update-rule denominators, with N the
    /// regularization example count (global N on partitioned problems).
    #[inline]
    pub fn n_lambda(&self) -> f64 {
        self.regularization_examples as f64 * self.lambda
    }

    /// Override the example count used in Nλ. The distributed driver sets
    /// this to the *global* N on each worker's by-example partition so that
    /// local dual updates optimize the global objective (local rows ≠ N).
    pub fn with_regularization_examples(mut self, n: usize) -> Self {
        assert!(n > 0, "regularization example count must be positive");
        self.regularization_examples = n;
        self
    }

    /// The labels y.
    #[inline]
    pub fn labels(&self) -> &[f32] {
        &self.y
    }

    /// Row-major view of the data (dual coordinates ā_n).
    #[inline]
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// Column-major view of the data (primal coordinates a_m).
    #[inline]
    pub fn csc(&self) -> &CscMatrix {
        &self.csc
    }

    /// ‖a_m‖² per feature.
    #[inline]
    pub fn col_sq_norms(&self) -> &[f64] {
        &self.col_sq_norms
    }

    /// ‖ā_n‖² per example.
    #[inline]
    pub fn row_sq_norms(&self) -> &[f64] {
        &self.row_sq_norms
    }

    /// Coordinate count for a form: M for the primal, N for the dual. One
    /// epoch is one permuted pass over this many coordinates.
    #[inline]
    pub fn coords(&self, form: Form) -> usize {
        match form {
            Form::Primal => self.m(),
            Form::Dual => self.n(),
        }
    }

    /// Shared-vector length for a form: N for the primal (w = Aβ), M for
    /// the dual (w̄ = Aᵀα).
    #[inline]
    pub fn shared_len(&self, form: Form) -> usize {
        match form {
            Form::Primal => self.n(),
            Form::Dual => self.m(),
        }
    }

    /// The primal objective P(β), computing w = Aβ from scratch.
    pub fn primal_objective(&self, beta: &[f32]) -> f64 {
        let w = self.csc.matvec(beta).expect("beta length must be M");
        self.primal_objective_given_shared(beta, &w)
    }

    /// P(β) when the shared vector w = Aβ is already available.
    pub fn primal_objective_given_shared(&self, beta: &[f32], w: &[f32]) -> f64 {
        let fit = dense::squared_distance(w, &self.y);
        let reg = dense::squared_norm(beta);
        fit / (2.0 * self.n() as f64) + self.lambda / 2.0 * reg
    }

    /// The dual objective D(α), computing w̄ = Aᵀα from scratch.
    pub fn dual_objective(&self, alpha: &[f32]) -> f64 {
        let w_bar = self.csr.matvec_t(alpha).expect("alpha length must be N");
        self.dual_objective_given_shared(alpha, &w_bar)
    }

    /// D(α) when the shared vector w̄ = Aᵀα is already available.
    pub fn dual_objective_given_shared(&self, alpha: &[f32], w_bar: &[f32]) -> f64 {
        let n = self.n() as f64;
        -n / 2.0 * dense::squared_norm(alpha) - dense::squared_norm(w_bar) / (2.0 * self.lambda)
            + dense::dot(alpha, &self.y)
    }

    /// The dual point induced by a primal iterate (Eq. 6): α = (y − Aβ)/N.
    pub fn induced_dual(&self, beta: &[f32]) -> Vec<f32> {
        let w = self.csc.matvec(beta).expect("beta length must be M");
        let n = self.n() as f32;
        self.y
            .iter()
            .zip(&w)
            .map(|(&yi, &wi)| (yi - wi) / n)
            .collect()
    }

    /// The primal point induced by a dual iterate (Eq. 5): β = Aᵀα/λ.
    pub fn induced_primal(&self, alpha: &[f32]) -> Vec<f32> {
        let mut w_bar = self.csr.matvec_t(alpha).expect("alpha length must be N");
        dense::scale((1.0 / self.lambda) as f32, &mut w_bar);
        w_bar
    }

    /// GP(β) = |P(β) − D((y − Aβ)/N)| — the primal algorithms' convergence
    /// metric.
    pub fn primal_duality_gap(&self, beta: &[f32]) -> f64 {
        let alpha = self.induced_dual(beta);
        (self.primal_objective(beta) - self.dual_objective(&alpha)).abs()
    }

    /// GD(α) = |P(Aᵀα/λ) − D(α)| — the dual algorithms' convergence metric.
    pub fn dual_duality_gap(&self, alpha: &[f32]) -> f64 {
        let beta = self.induced_primal(alpha);
        (self.primal_objective(&beta) - self.dual_objective(alpha)).abs()
    }

    /// Duality gap for weights of either form.
    pub fn duality_gap(&self, form: Form, weights: &[f32]) -> f64 {
        match form {
            Form::Primal => self.primal_duality_gap(weights),
            Form::Dual => self.dual_duality_gap(weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sparse::CooMatrix;

    /// 1×1 problem with a=2, y=3, λ=0.5 — fully solvable by hand.
    fn tiny() -> RidgeProblem {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0).unwrap();
        RidgeProblem::new(coo.to_csr(), vec![3.0], 0.5).unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        let csr = coo.to_csr();
        assert!(matches!(
            RidgeProblem::new(csr.clone(), vec![1.0], 0.1),
            Err(ProblemError::LabelMismatch { rows: 2, labels: 1 })
        ));
        assert!(matches!(
            RidgeProblem::new(csr.clone(), vec![1.0, 2.0], 0.0),
            Err(ProblemError::NonPositiveLambda(_))
        ));
        assert!(matches!(
            RidgeProblem::new(csr.clone(), vec![1.0, 2.0], -1.0),
            Err(ProblemError::NonPositiveLambda(_))
        ));
        assert!(RidgeProblem::new(csr, vec![1.0, 2.0], 0.1).is_ok());
    }

    #[test]
    fn tiny_problem_closed_form() {
        // β* = a y / (a² + λN) with N=1: 6/4.5 = 4/3.
        let p = tiny();
        let beta_star = [(2.0f32 * 3.0) / (4.0 + 0.5)];
        // P(β*) = λy²/(2(a²+λ)) = 0.5·9/(2·4.5) = 0.5
        assert!((p.primal_objective(&beta_star) - 0.5).abs() < 1e-6);
        // α* = λy/(a²+λ) = 1.5/4.5 = 1/3; D(α*) = P(β*).
        let alpha_star = [1.0f32 / 3.0];
        assert!((p.dual_objective(&alpha_star) - 0.5).abs() < 1e-6);
        // Gaps vanish at the optimum.
        assert!(p.primal_duality_gap(&beta_star) < 1e-6);
        assert!(p.dual_duality_gap(&alpha_star) < 1e-6);
    }

    #[test]
    fn optimality_mappings_are_mutually_consistent() {
        let p = tiny();
        let beta_star = vec![4.0f32 / 3.0];
        let alpha = p.induced_dual(&beta_star);
        assert!((alpha[0] - 1.0 / 3.0).abs() < 1e-6);
        let beta_back = p.induced_primal(&alpha);
        assert!((beta_back[0] - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn gap_positive_away_from_optimum() {
        let p = tiny();
        assert!(p.primal_duality_gap(&[0.0]) > 0.1);
        assert!(p.dual_duality_gap(&[0.0]) > 0.1);
    }

    #[test]
    fn weak_duality_holds() {
        // P(β) ≥ D(α) for arbitrary iterates.
        let p = tiny();
        for (b, a) in [(0.0f32, 0.0f32), (1.0, 0.2), (2.0, -0.5), (-1.0, 1.0)] {
            assert!(p.primal_objective(&[b]) >= p.dual_objective(&[a]) - 1e-9);
        }
    }

    #[test]
    fn objective_given_shared_matches_fresh() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 0, -1.0).unwrap();
        let p = RidgeProblem::new(coo.to_csr(), vec![1.0, -1.0, 0.5], 0.01).unwrap();
        let beta = [0.3f32, -0.7];
        let w = p.csc().matvec(&beta).unwrap();
        assert!(
            (p.primal_objective(&beta) - p.primal_objective_given_shared(&beta, &w)).abs()
                < 1e-12
        );
        let alpha = [0.1f32, 0.2, -0.3];
        let wb = p.csr().matvec_t(&alpha).unwrap();
        assert!(
            (p.dual_objective(&alpha) - p.dual_objective_given_shared(&alpha, &wb)).abs() < 1e-12
        );
    }

    #[test]
    fn coords_and_shared_len_by_form() {
        let mut coo = CooMatrix::new(3, 5);
        coo.push(2, 4, 1.0).unwrap();
        let p = RidgeProblem::new(coo.to_csr(), vec![0.0; 3], 1.0).unwrap();
        assert_eq!(p.coords(Form::Primal), 5);
        assert_eq!(p.coords(Form::Dual), 3);
        assert_eq!(p.shared_len(Form::Primal), 3);
        assert_eq!(p.shared_len(Form::Dual), 5);
        assert_eq!(Form::Primal.label(), "primal");
        assert_eq!(Form::Dual.label(), "dual");
    }

    #[test]
    fn empty_problem_rejected() {
        let coo = CooMatrix::new(0, 0);
        assert!(matches!(
            RidgeProblem::new(coo.to_csr(), vec![], 1.0),
            Err(ProblemError::EmptyProblem)
        ));
    }
}

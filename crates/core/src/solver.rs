//! The common solver interface shared by every SCD engine.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use scd_perf_model::Seconds;

/// Simulated time spent in one epoch, broken down by where it went —
/// exactly the categories of the paper's Fig. 9 ("Comp. Time (GPU)",
/// "Comp. Time (Host)", "Comm. Time (PCIe)", "Comm. Time (Network)").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Kernel execution on the device.
    pub gpu: Seconds,
    /// Computation on the host CPU.
    pub host: Seconds,
    /// Host ↔ device transfers.
    pub pcie: Seconds,
    /// Worker ↔ master network traffic.
    pub network: Seconds,
}

impl TimeBreakdown {
    /// Total simulated seconds.
    #[inline]
    pub fn total(&self) -> Seconds {
        self.gpu + self.host + self.pcie + self.network
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &TimeBreakdown) {
        self.gpu += other.gpu;
        self.host += other.host;
        self.pcie += other.pcie;
        self.network += other.network;
    }

    /// Element-wise maximum — used when parallel workers overlap: the
    /// synchronous round costs the *slowest* worker in each category.
    pub fn max(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            gpu: self.gpu.max(other.gpu),
            host: self.host.max(other.host),
            pcie: self.pcie.max(other.pcie),
            network: self.network.max(other.network),
        }
    }
}

/// Result of running one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Coordinate updates performed.
    pub updates: usize,
    /// Simulated time of the epoch by category.
    pub breakdown: TimeBreakdown,
}

impl EpochStats {
    /// Total simulated seconds of the epoch.
    #[inline]
    pub fn seconds(&self) -> Seconds {
        self.breakdown.total()
    }
}

/// A stochastic coordinate descent engine.
///
/// One `epoch()` call performs one permuted pass over all coordinates of
/// the solver's [`Form`] (Algorithm 1's inner loop; Algorithm 2's grid
/// launch). Implementations keep the model weights and shared vector as
/// state and report per-epoch simulated cost. The scalar update rule and
/// the gap oracle come from the engine's [`ObjectiveKind`]; the default
/// (ridge) reproduces the paper's Eqs. 2/4 bit-identically.
pub trait Solver {
    /// Which formulation this engine optimizes.
    fn form(&self) -> Form;

    /// The objective this engine's coordinate updates minimize. Defaults
    /// to ridge — the paper's objective and every engine's historical
    /// behaviour.
    fn objective(&self) -> ObjectiveKind {
        ObjectiveKind::Ridge
    }

    /// Human-readable engine name (figure legends).
    fn name(&self) -> String;

    /// Run one epoch against the problem this solver was built for.
    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats;

    /// Current model weights: β (length M) for the primal, α (length N)
    /// for the dual.
    fn weights(&self) -> Vec<f32>;

    /// Current shared vector as maintained incrementally by the engine:
    /// w = Aβ for the primal, w̄ = Aᵀα for the dual. May have drifted from
    /// the weights under the *wild* engines — that drift is the paper's
    /// Fig. 1/2 plateau.
    fn shared_vector(&self) -> Vec<f32>;

    /// [`Self::weights`] into a reusable buffer (cleared and refilled).
    /// Engines whose weights live in host memory override this to skip
    /// the intermediate clone, making steady-state reads allocation-free.
    fn weights_into(&self, out: &mut Vec<f32>) {
        let w = self.weights();
        out.clear();
        out.extend_from_slice(&w);
    }

    /// [`Self::shared_vector`] into a reusable buffer (cleared and
    /// refilled); see [`Self::weights_into`].
    fn shared_vector_into(&self, out: &mut Vec<f32>) {
        let s = self.shared_vector();
        out.clear();
        out.extend_from_slice(&s);
    }

    /// The duality gap of the current iterate, recomputed honestly from the
    /// weights alone (never from the possibly-inconsistent shared vector).
    /// Routed through the engine's objective; for ridge this is exactly
    /// [`RidgeProblem::duality_gap`], bit-identical to the pre-trait code.
    fn duality_gap(&self, problem: &RidgeProblem) -> f64 {
        self.objective()
            .duality_gap(problem, self.form(), &self.weights())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_accumulate() {
        let mut a = TimeBreakdown {
            gpu: 1.0,
            host: 0.5,
            pcie: 0.25,
            network: 0.125,
        };
        assert_eq!(a.total(), 1.875);
        a.accumulate(&TimeBreakdown {
            gpu: 1.0,
            host: 1.0,
            pcie: 1.0,
            network: 1.0,
        });
        assert_eq!(a.total(), 5.875);
    }

    #[test]
    fn breakdown_max_is_elementwise() {
        let a = TimeBreakdown {
            gpu: 2.0,
            host: 0.1,
            pcie: 0.0,
            network: 0.5,
        };
        let b = TimeBreakdown {
            gpu: 1.0,
            host: 0.2,
            pcie: 0.3,
            network: 0.4,
        };
        let m = a.max(&b);
        assert_eq!(
            m,
            TimeBreakdown {
                gpu: 2.0,
                host: 0.2,
                pcie: 0.3,
                network: 0.5
            }
        );
    }

    #[test]
    fn epoch_stats_seconds() {
        let s = EpochStats {
            updates: 10,
            breakdown: TimeBreakdown {
                gpu: 0.0,
                host: 2.0,
                pcie: 0.0,
                network: 1.0,
            },
        };
        assert_eq!(s.seconds(), 3.0);
    }
}

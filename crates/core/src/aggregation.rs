//! Adaptive aggregation (§IV-B): the closed-form optimal aggregation
//! parameter γ*ₜ for combining the K workers' updates.
//!
//! After each distributed epoch the master owns the aggregated update
//! direction (Δw for the primal, Δw̄ and the Δα-scalars for the dual) and
//! chooses γ to optimize the global objective along that direction:
//!
//! * primal: γ* = argmin_γ P(β + γΔβ) with w + γΔw tracking Aβ, giving
//!   γ* = (⟨y − w, Δw⟩ − Nλ⟨β, Δβ⟩) / (‖Δw‖² + Nλ‖Δβ‖²);
//! * dual: γ̄* = argmax_γ D(α + γΔα) with w̄ + γΔw̄ tracking Aᵀα, giving
//!   γ̄* = (⟨Δα, y⟩ − N⟨α, Δα⟩ − (1/λ)⟨w̄, Δw̄⟩) / (N‖Δα‖² + (1/λ)‖Δw̄‖²).
//!
//! **Paper erratum (documented in DESIGN.md):** Eq. (7) of the paper prints
//! the primal numerator as −(⟨w,Δw⟩ + Nλ⟨β,Δβ⟩), dropping the ⟨y,Δw⟩ term
//! that the derivative of the data-fit term produces, and the printed dual
//! denominator carries N‖α‖² where the derivation yields N‖Δα‖². Both
//! closed forms below are verified against numerical line search in the
//! tests. The distributed computability the paper emphasizes is preserved:
//! workers own disjoint coordinates, so ⟨β,Δβ⟩ = Σₖ⟨β⁽ᵏ⁾,Δβ⁽ᵏ⁾⟩ and
//! ‖Δβ‖² = Σₖ‖Δβ⁽ᵏ⁾‖², each a single scalar per worker per epoch.

use scd_sparse::dense;

/// Scalar statistics a worker ships to the master for adaptive aggregation
/// (a few scalars per epoch, as the paper stresses).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerScalars {
    /// ⟨x⁽ᵏ⁾, Δx⁽ᵏ⁾⟩ over the worker's own coordinates (β for the primal,
    /// α for the dual).
    pub x_dot_dx: f64,
    /// ‖Δx⁽ᵏ⁾‖² over the worker's own coordinates.
    pub dx_sq: f64,
    /// ⟨Δα⁽ᵏ⁾, y⁽ᵏ⁾⟩ over the worker's own examples (dual only; zero for
    /// the primal).
    pub dx_dot_y: f64,
}

impl WorkerScalars {
    /// Master-side reduction: scalar sums across workers.
    pub fn reduce(items: impl IntoIterator<Item = WorkerScalars>) -> WorkerScalars {
        let mut total = WorkerScalars::default();
        for s in items {
            total.x_dot_dx += s.x_dot_dx;
            total.dx_sq += s.dx_sq;
            total.dx_dot_y += s.dx_dot_y;
        }
        total
    }
}

/// Optimal primal aggregation parameter.
///
/// `y`, `w`, `dw` live on the master (length N); `beta_dot_dbeta` and
/// `dbeta_sq` are the reduced worker scalars. Returns 1 when the update
/// direction is null (nothing to scale).
pub fn optimal_gamma_primal(
    y: &[f32],
    w: &[f32],
    dw: &[f32],
    beta_dot_dbeta: f64,
    dbeta_sq: f64,
    n_lambda: f64,
) -> f64 {
    let num = dense::dot(y, dw) - dense::dot(w, dw) - n_lambda * beta_dot_dbeta;
    let den = dense::squared_norm(dw) + n_lambda * dbeta_sq;
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Optimal dual aggregation parameter.
///
/// `w_bar`, `dw_bar` live on the master (length M); `dalpha_dot_y`,
/// `alpha_dot_dalpha` and `dalpha_sq` are the reduced worker scalars.
pub fn optimal_gamma_dual(
    w_bar: &[f32],
    dw_bar: &[f32],
    dalpha_dot_y: f64,
    alpha_dot_dalpha: f64,
    dalpha_sq: f64,
    n: usize,
    lambda: f64,
) -> f64 {
    let n = n as f64;
    let num = dalpha_dot_y - n * alpha_dot_dalpha - dense::dot(w_bar, dw_bar) / lambda;
    let den = n * dalpha_sq + dense::squared_norm(dw_bar) / lambda;
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::RidgeProblem;
    use scd_datasets::dense_gaussian;
    use scd_sparse::dense as dv;

    /// Golden-section search for the minimizer of a unimodal function.
    fn golden_min(mut f: impl FnMut(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        for _ in 0..200 {
            let a = hi - phi * (hi - lo);
            let b = lo + phi * (hi - lo);
            if f(a) < f(b) {
                hi = b;
            } else {
                lo = a;
            }
        }
        (lo + hi) / 2.0
    }

    fn setup() -> (RidgeProblem, Vec<f32>, Vec<f32>) {
        let p = RidgeProblem::from_labelled(&dense_gaussian(20, 8, 5), 0.05).unwrap();
        // An arbitrary iterate and update direction.
        let beta: Vec<f32> = (0..8).map(|i| 0.1 * (i as f32) - 0.3).collect();
        let dbeta: Vec<f32> = (0..8).map(|i| 0.05 * ((i * 3 % 7) as f32) - 0.1).collect();
        (p, beta, dbeta)
    }

    #[test]
    fn primal_gamma_matches_line_search() {
        let (p, beta, dbeta) = setup();
        let w = p.csc().matvec(&beta).unwrap();
        let dw = p.csc().matvec(&dbeta).unwrap();
        let gamma = optimal_gamma_primal(
            p.labels(),
            &w,
            &dw,
            dv::dot(&beta, &dbeta),
            dv::squared_norm(&dbeta),
            p.n_lambda(),
        );
        let objective = |g: f64| {
            let cand: Vec<f32> = beta
                .iter()
                .zip(&dbeta)
                .map(|(&b, &d)| b + g as f32 * d)
                .collect();
            p.primal_objective(&cand)
        };
        let numeric = golden_min(objective, -10.0, 10.0);
        // f32 matrix-vector products put a ~1e-3 floor on the agreement.
        assert!(
            (gamma - numeric).abs() < 2e-3 * gamma.abs().max(1.0),
            "closed form {gamma} vs line search {numeric}"
        );
    }

    #[test]
    fn dual_gamma_matches_line_search() {
        let p = RidgeProblem::from_labelled(&dense_gaussian(12, 6, 8), 0.05).unwrap();
        let alpha: Vec<f32> = (0..12).map(|i| 0.02 * (i as f32) - 0.1).collect();
        let dalpha: Vec<f32> = (0..12).map(|i| 0.03 * ((i * 5 % 11) as f32) - 0.15).collect();
        let w_bar = p.csr().matvec_t(&alpha).unwrap();
        let dw_bar = p.csr().matvec_t(&dalpha).unwrap();
        let gamma = optimal_gamma_dual(
            &w_bar,
            &dw_bar,
            dv::dot(&dalpha, p.labels()),
            dv::dot(&alpha, &dalpha),
            dv::squared_norm(&dalpha),
            p.n(),
            p.lambda(),
        );
        // Maximize D == minimize -D.
        let objective = |g: f64| {
            let cand: Vec<f32> = alpha
                .iter()
                .zip(&dalpha)
                .map(|(&a, &d)| a + g as f32 * d)
                .collect();
            -p.dual_objective(&cand)
        };
        let numeric = golden_min(objective, -10.0, 10.0);
        // f32 matrix-vector products put a ~1e-3 floor on the agreement.
        assert!(
            (gamma - numeric).abs() < 2e-3 * gamma.abs().max(1.0),
            "closed form {gamma} vs line search {numeric}"
        );
    }

    #[test]
    fn gamma_one_when_direction_null() {
        let y = [1.0f32, 2.0];
        let w = [0.0f32, 0.0];
        let dw = [0.0f32, 0.0];
        assert_eq!(optimal_gamma_primal(&y, &w, &dw, 0.0, 0.0, 1.0), 1.0);
        assert_eq!(optimal_gamma_dual(&w, &dw, 0.0, 0.0, 0.0, 2, 1.0), 1.0);
    }

    #[test]
    fn applying_gamma_improves_objective_over_averaging() {
        let (p, beta, dbeta) = setup();
        let w = p.csc().matvec(&beta).unwrap();
        let dw = p.csc().matvec(&dbeta).unwrap();
        let gamma = optimal_gamma_primal(
            p.labels(),
            &w,
            &dw,
            dv::dot(&beta, &dbeta),
            dv::squared_norm(&dbeta),
            p.n_lambda(),
        );
        let apply = |g: f64| -> f64 {
            let cand: Vec<f32> = beta
                .iter()
                .zip(&dbeta)
                .map(|(&b, &d)| b + g as f32 * d)
                .collect();
            p.primal_objective(&cand)
        };
        // γ* is optimal on the line: no worse than averaging (γ=1/K) for any K.
        for k in [1usize, 2, 4, 8] {
            assert!(apply(gamma) <= apply(1.0 / k as f64) + 1e-12);
        }
    }

    #[test]
    fn worker_scalars_reduce_sums() {
        let total = WorkerScalars::reduce([
            WorkerScalars {
                x_dot_dx: 1.0,
                dx_sq: 2.0,
                dx_dot_y: 3.0,
            },
            WorkerScalars {
                x_dot_dx: 0.5,
                dx_sq: 0.25,
                dx_dot_y: -1.0,
            },
        ]);
        assert_eq!(total.x_dot_dx, 1.5);
        assert_eq!(total.dx_sq, 2.25);
        assert_eq!(total.dx_dot_y, 2.0);
    }

    #[test]
    fn distributed_scalar_decomposition_is_exact() {
        // Workers own disjoint coordinate sets: the global scalars equal the
        // sums of per-worker scalars.
        let beta = [1.0f32, -2.0, 0.5, 3.0, -1.5, 0.25];
        let dbeta = [0.1f32, 0.2, -0.3, 0.4, 0.5, -0.6];
        let global_dot = dv::dot(&beta, &dbeta);
        let global_sq = dv::squared_norm(&dbeta);
        // Partition {0,1}, {2,3,4}, {5}.
        let parts: [&[usize]; 3] = [&[0, 1], &[2, 3, 4], &[5]];
        let per_worker: Vec<WorkerScalars> = parts
            .iter()
            .map(|idx| WorkerScalars {
                x_dot_dx: idx
                    .iter()
                    .map(|&i| beta[i] as f64 * dbeta[i] as f64)
                    .sum(),
                dx_sq: idx.iter().map(|&i| (dbeta[i] as f64).powi(2)).sum(),
                dx_dot_y: 0.0,
            })
            .collect();
        let reduced = WorkerScalars::reduce(per_worker);
        assert!((reduced.x_dot_dx - global_dot).abs() < 1e-12);
        assert!((reduced.dx_sq - global_sq).abs() < 1e-12);
    }
}

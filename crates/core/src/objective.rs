//! The pluggable objective layer: every solver in the repo runs the same
//! data flow — sparse dot → scalar coordinate update → axpy into the
//! shared vector — so the *objective* is exactly the scalar step plus the
//! value/gap oracles. This module factors those behind the [`Objective`]
//! trait with four implementations:
//!
//! * **Ridge** (Eqs. 1–7 of the paper): the existing closed forms from
//!   [`crate::updates`], delegated verbatim so every ridge path stays
//!   bit-identical to the pre-trait code.
//! * **Logistic** (dual, PASSCoDe / SDCA): no closed form; the coordinate
//!   subproblem is solved by 40-iteration bisection on the optimality
//!   condition `ln((1−a)/a) = margin + (a − a_old)·‖ā‖²/λN`.
//! * **Hinge/SVM** (dual, PASSCoDe / SDCA): box-clipped closed form
//!   `a ← clip(a + (1 − margin)·λN/‖ā‖², 0, 1)`.
//! * **Lasso** (primal): soft-threshold closed form, the ρ = 1 corner of
//!   the elastic net.
//!
//! **Signed-α convention.** The ridge dual engines store α and maintain
//! w̄ = Aᵀα. The SDCA classification duals use a box variable
//! aₙ ∈ [0, 1] with β(α) = (1/λN)Σ aₙyₙāₙ. To flow through the existing
//! engines unchanged, SVM/logistic store the *signed* variable
//! αₙ = yₙ·aₙ, so the engine-maintained shared vector is still w̄ = Aᵀα
//! and the induced primal iterate is β = w̄/λN (ridge's is w̄/λ — the
//! objective owns that scaling via [`Objective::induced_primal`]).
//!
//! Engines hold a [`ObjectiveKind`] (a `Copy` enum defaulting to ridge)
//! and dispatch through its inherent methods, so no `Arc<dyn …>` plumbing
//! reaches the hot loops or the GPU kernel structs.

use crate::extensions::elastic_net::soft_threshold;
use crate::problem::{Form, RidgeProblem};
use crate::updates;
use scd_sparse::dense;

/// Bisection iterations for the logistic coordinate subproblem (2⁻⁴⁰
/// interval width — below f32 weight resolution).
const LOGISTIC_BISECTION_ITERS: usize = 40;

/// Errors from validating an objective against a problem/form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectiveError {
    /// The objective has no coordinate update for this form (e.g. lasso
    /// has no dual, SVM no primal).
    UnsupportedForm {
        /// The objective's label.
        objective: &'static str,
        /// The rejected form.
        form: Form,
    },
    /// Classification objectives need ±1 labels.
    NonBinaryLabels {
        /// The objective's label.
        objective: &'static str,
    },
}

impl std::fmt::Display for ObjectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectiveError::UnsupportedForm { objective, form } => write!(
                f,
                "objective {objective} does not support the {} form",
                form.label()
            ),
            ObjectiveError::NonBinaryLabels { objective } => {
                write!(f, "objective {objective} requires ±1 labels")
            }
        }
    }
}

impl std::error::Error for ObjectiveError {}

/// A per-coordinate objective: the scalar update rules (closed-form prox
/// or 1-d Newton/bisection), the primal/dual value oracles, the
/// optimality mapping from a dual iterate, and the duality gap.
///
/// Contract notes shared by all methods:
/// * `dot_y_minus_w_a` is ⟨y − w, a_m⟩ with w the primal shared vector;
///   `dot_wbar_a` is ⟨w̄, ā_n⟩ with w̄ = Aᵀα the dual shared vector.
/// * `*_sq_norm` is the coordinate's squared norm, **already multiplied
///   by σ′** when the caller runs a CoCoA+-safe local solve — objectives
///   must use it wherever the curvature appears so σ′ damping flows
///   through naturally.
/// * `n_lambda` is the problem's `N·λ` (global N on partitions) passed
///   through unchanged so ridge stays bit-identical.
pub trait Objective {
    /// Short lowercase name (CLI value, figure legends).
    fn label(&self) -> &'static str;

    /// Whether this objective has a coordinate update for `form`.
    fn supports(&self, form: Form) -> bool;

    /// Whether labels must be ±1 (classification objectives).
    fn requires_binary_labels(&self) -> bool {
        false
    }

    /// Primal coordinate update Δβ_m given ⟨y − w, a_m⟩, the current
    /// weight, ‖a_m‖² (σ′-scaled by the caller if applicable), N, λ and Nλ.
    fn primal_delta(
        &self,
        dot_y_minus_w_a: f64,
        beta_m: f64,
        col_sq_norm: f64,
        n: usize,
        lambda: f64,
        n_lambda: f64,
    ) -> f64;

    /// Dual coordinate update Δα_n given ⟨w̄, ā_n⟩, the label, the current
    /// (signed) weight, ‖ā_n‖² (σ′-scaled if applicable), λ and Nλ.
    fn dual_delta(
        &self,
        dot_wbar_a: f64,
        y_n: f64,
        alpha_n: f64,
        row_sq_norm: f64,
        lambda: f64,
        n_lambda: f64,
    ) -> f64;

    /// The primal objective value P(β), recomputing Aβ from scratch.
    fn primal_value(&self, problem: &RidgeProblem, beta: &[f32]) -> f64;

    /// The dual objective value D(α) for objectives with a dual form.
    ///
    /// # Panics
    /// Panics for primal-only objectives (lasso).
    fn dual_value(&self, problem: &RidgeProblem, alpha: &[f32]) -> f64;

    /// The primal iterate induced by a dual iterate (the optimality
    /// mapping): β = w̄/λ for ridge, β = w̄/λN for the SDCA duals.
    ///
    /// # Panics
    /// Panics for primal-only objectives (lasso).
    fn induced_primal(&self, problem: &RidgeProblem, alpha: &[f32]) -> Vec<f32>;

    /// Per-example loss ℓ(margin) with margin = yₙ⟨āₙ, β⟩ — the value
    /// oracle the distributed line-search fallback evaluates. Only the
    /// classification duals provide it.
    ///
    /// # Panics
    /// Panics for objectives whose loss is not a margin function.
    fn margin_loss(&self, margin: f64) -> f64 {
        let _ = margin;
        panic!("{} has no margin-loss oracle", self.label())
    }

    /// Duality gap of the iterate, recomputed honestly from the weights
    /// alone (never from a possibly-inconsistent shared vector).
    /// Non-negative by weak duality for the non-ridge objectives; ridge
    /// keeps its historical |P − D| definition bit-identical.
    fn duality_gap(&self, problem: &RidgeProblem, form: Form, weights: &[f32]) -> f64;
}

/// Ridge regression — the paper's objective, delegating to the Eq. 2/4
/// closed forms in [`crate::updates`] and the gap in
/// [`RidgeProblem::duality_gap`], so it is bit-identical to the
/// pre-trait code paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct RidgeObjective;

impl Objective for RidgeObjective {
    fn label(&self) -> &'static str {
        "ridge"
    }

    fn supports(&self, _form: Form) -> bool {
        true
    }

    #[inline]
    fn primal_delta(
        &self,
        dot_y_minus_w_a: f64,
        beta_m: f64,
        col_sq_norm: f64,
        _n: usize,
        _lambda: f64,
        n_lambda: f64,
    ) -> f64 {
        updates::primal_delta(dot_y_minus_w_a, beta_m, col_sq_norm, n_lambda)
    }

    #[inline]
    fn dual_delta(
        &self,
        dot_wbar_a: f64,
        y_n: f64,
        alpha_n: f64,
        row_sq_norm: f64,
        lambda: f64,
        n_lambda: f64,
    ) -> f64 {
        updates::dual_delta(dot_wbar_a, y_n, alpha_n, row_sq_norm, lambda, n_lambda)
    }

    fn primal_value(&self, problem: &RidgeProblem, beta: &[f32]) -> f64 {
        problem.primal_objective(beta)
    }

    fn dual_value(&self, problem: &RidgeProblem, alpha: &[f32]) -> f64 {
        problem.dual_objective(alpha)
    }

    fn induced_primal(&self, problem: &RidgeProblem, alpha: &[f32]) -> Vec<f32> {
        problem.induced_primal(alpha)
    }

    fn duality_gap(&self, problem: &RidgeProblem, form: Form, weights: &[f32]) -> f64 {
        problem.duality_gap(form, weights)
    }
}

/// x·log(x) with the 0·log 0 = 0 convention (entropy terms).
#[inline]
fn xlogx(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// ln(1 + e^{−m}) computed stably for either sign of m.
#[inline]
fn log1p_exp_neg(margin: f64) -> f64 {
    if margin > 0.0 {
        (-margin).exp().ln_1p()
    } else {
        -margin + margin.exp().ln_1p()
    }
}

/// Shared helpers for the SDCA classification duals (signed-α storage).
fn sdca_induced_primal(problem: &RidgeProblem, alpha: &[f32]) -> Vec<f32> {
    let mut w_bar = problem
        .csr()
        .matvec_t(alpha)
        .expect("alpha length must be N");
    dense::scale((1.0 / problem.n_lambda()) as f32, &mut w_bar);
    w_bar
}

/// L2-regularized logistic regression, trained on the dual via SDCA with
/// per-coordinate bisection (no closed form exists).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogisticObjective;

impl Objective for LogisticObjective {
    fn label(&self) -> &'static str {
        "logistic"
    }

    fn supports(&self, form: Form) -> bool {
        form == Form::Dual
    }

    fn requires_binary_labels(&self) -> bool {
        true
    }

    fn primal_delta(&self, _d: f64, _b: f64, _s: f64, _n: usize, _l: f64, _nl: f64) -> f64 {
        panic!("logistic regression has no primal coordinate form")
    }

    fn dual_delta(
        &self,
        dot_wbar_a: f64,
        y_n: f64,
        alpha_n: f64,
        row_sq_norm: f64,
        _lambda: f64,
        n_lambda: f64,
    ) -> f64 {
        if row_sq_norm == 0.0 {
            return 0.0;
        }
        let a_old = y_n * alpha_n;
        let margin = y_n * dot_wbar_a / n_lambda;
        let coupling = row_sq_norm / n_lambda;
        // Root of f(a) = ln((1−a)/a) − margin − (a − a_old)·coupling,
        // strictly decreasing from +∞ (a→0) to −∞ (a→1): unique in (0, 1).
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..LOGISTIC_BISECTION_ITERS {
            let mid = (lo + hi) / 2.0;
            let f = ((1.0 - mid) / mid).ln() - margin - (mid - a_old) * coupling;
            if f > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        y_n * ((lo + hi) / 2.0 - a_old)
    }

    fn primal_value(&self, problem: &RidgeProblem, beta: &[f32]) -> f64 {
        let mut loss = 0.0f64;
        for (i, row) in problem.csr().iter_rows().enumerate() {
            loss += self.margin_loss(problem.labels()[i] as f64 * row.dot_dense(beta));
        }
        let reg: f64 = beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        loss / problem.n() as f64 + problem.lambda() / 2.0 * reg
    }

    fn dual_value(&self, problem: &RidgeProblem, alpha: &[f32]) -> f64 {
        let entropy: f64 = alpha
            .iter()
            .zip(problem.labels())
            .map(|(&al, &y)| {
                let a = (y * al) as f64;
                -xlogx(a) - xlogx(1.0 - a)
            })
            .sum();
        let beta = self.induced_primal(problem, alpha);
        let reg: f64 = beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        entropy / problem.n() as f64 - problem.lambda() / 2.0 * reg
    }

    fn induced_primal(&self, problem: &RidgeProblem, alpha: &[f32]) -> Vec<f32> {
        sdca_induced_primal(problem, alpha)
    }

    fn margin_loss(&self, margin: f64) -> f64 {
        log1p_exp_neg(margin)
    }

    fn duality_gap(&self, problem: &RidgeProblem, _form: Form, weights: &[f32]) -> f64 {
        let beta = self.induced_primal(problem, weights);
        (self.primal_value(problem, &beta) - self.dual_value(problem, weights)).max(0.0)
    }
}

/// Hinge-loss SVM, trained on the dual via the SDCA box-clipped closed
/// form (PASSCoDe's update).
#[derive(Debug, Clone, Copy, Default)]
pub struct SvmObjective;

impl Objective for SvmObjective {
    fn label(&self) -> &'static str {
        "svm"
    }

    fn supports(&self, form: Form) -> bool {
        form == Form::Dual
    }

    fn requires_binary_labels(&self) -> bool {
        true
    }

    fn primal_delta(&self, _d: f64, _b: f64, _s: f64, _n: usize, _l: f64, _nl: f64) -> f64 {
        panic!("the hinge-loss SVM has no primal coordinate form")
    }

    #[inline]
    fn dual_delta(
        &self,
        dot_wbar_a: f64,
        y_n: f64,
        alpha_n: f64,
        row_sq_norm: f64,
        _lambda: f64,
        n_lambda: f64,
    ) -> f64 {
        if row_sq_norm == 0.0 {
            return 0.0;
        }
        let a_old = y_n * alpha_n;
        let margin = y_n * dot_wbar_a / n_lambda;
        let new = (a_old + (1.0 - margin) * n_lambda / row_sq_norm).clamp(0.0, 1.0);
        y_n * (new - a_old)
    }

    fn primal_value(&self, problem: &RidgeProblem, beta: &[f32]) -> f64 {
        let mut hinge = 0.0f64;
        for (i, row) in problem.csr().iter_rows().enumerate() {
            hinge += self.margin_loss(problem.labels()[i] as f64 * row.dot_dense(beta));
        }
        let reg: f64 = beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        hinge / problem.n() as f64 + problem.lambda() / 2.0 * reg
    }

    fn dual_value(&self, problem: &RidgeProblem, alpha: &[f32]) -> f64 {
        let sum_a: f64 = alpha
            .iter()
            .zip(problem.labels())
            .map(|(&al, &y)| (y * al) as f64)
            .sum();
        let beta = self.induced_primal(problem, alpha);
        let reg: f64 = beta.iter().map(|&b| (b as f64) * (b as f64)).sum();
        sum_a / problem.n() as f64 - problem.lambda() / 2.0 * reg
    }

    fn induced_primal(&self, problem: &RidgeProblem, alpha: &[f32]) -> Vec<f32> {
        sdca_induced_primal(problem, alpha)
    }

    fn margin_loss(&self, margin: f64) -> f64 {
        (1.0 - margin).max(0.0)
    }

    fn duality_gap(&self, problem: &RidgeProblem, _form: Form, weights: &[f32]) -> f64 {
        let beta = self.induced_primal(problem, weights);
        (self.primal_value(problem, &beta) - self.dual_value(problem, weights)).max(0.0)
    }
}

/// Lasso — pure-ℓ1 least squares, trained on the primal with the
/// soft-threshold closed form (the ρ = 1 corner of the elastic net).
#[derive(Debug, Clone, Copy, Default)]
pub struct LassoObjective;

impl Objective for LassoObjective {
    fn label(&self) -> &'static str {
        "lasso"
    }

    fn supports(&self, form: Form) -> bool {
        form == Form::Primal
    }

    #[inline]
    fn primal_delta(
        &self,
        dot_y_minus_w_a: f64,
        beta_m: f64,
        col_sq_norm: f64,
        n: usize,
        lambda: f64,
        _n_lambda: f64,
    ) -> f64 {
        let n = n as f64;
        let denom = col_sq_norm / n;
        if denom == 0.0 {
            // Empty column: the ℓ1 term alone fixes the weight at 0.
            return -beta_m;
        }
        let rho_dot = dot_y_minus_w_a / n + denom * beta_m;
        soft_threshold(rho_dot, lambda) / denom - beta_m
    }

    fn dual_delta(&self, _d: f64, _y: f64, _a: f64, _s: f64, _l: f64, _nl: f64) -> f64 {
        panic!("lasso has no dual coordinate form")
    }

    fn primal_value(&self, problem: &RidgeProblem, beta: &[f32]) -> f64 {
        let w = problem.csc().matvec(beta).expect("beta length must be M");
        let fit = dense::squared_distance(&w, problem.labels());
        let l1: f64 = beta.iter().map(|&b| (b as f64).abs()).sum();
        fit / (2.0 * problem.n() as f64) + problem.lambda() * l1
    }

    fn dual_value(&self, _problem: &RidgeProblem, _alpha: &[f32]) -> f64 {
        panic!("lasso maintains no dual iterate")
    }

    fn induced_primal(&self, _problem: &RidgeProblem, _alpha: &[f32]) -> Vec<f32> {
        panic!("lasso maintains no dual iterate")
    }

    fn duality_gap(&self, problem: &RidgeProblem, _form: Form, weights: &[f32]) -> f64 {
        // Dual of min (1/2N)‖Aβ − y‖² + λ‖β‖₁ over the scaled residual
        // θ = (y − Aβ)/N: D(θ) = ⟨θ, y⟩ − (N/2)‖θ‖², feasible iff
        // ‖Aᵀθ‖∞ ≤ λ. Scale the residual point into the feasible set
        // (s = min(1, λ/‖Aᵀθ‖∞)) so weak duality makes the gap ≥ 0.
        let n = problem.n() as f64;
        let w = problem.csc().matvec(weights).expect("beta length must be M");
        let theta: Vec<f32> = problem
            .labels()
            .iter()
            .zip(&w)
            .map(|(&y, &wi)| ((y as f64 - wi as f64) / n) as f32)
            .collect();
        let corr = problem.csr().matvec_t(&theta).expect("theta length is N");
        let inf_norm = corr
            .iter()
            .fold(0.0f64, |acc, &v| acc.max((v as f64).abs()));
        let s = if inf_norm > problem.lambda() {
            problem.lambda() / inf_norm
        } else {
            1.0
        };
        let dot_y = dense::dot(&theta, problem.labels());
        let sq = dense::squared_norm(&theta);
        let dual = s * dot_y - s * s * n / 2.0 * sq;
        (self.primal_value(problem, weights) - dual).max(0.0)
    }
}

/// The objective registry: a `Copy` tag engines store and dispatch on.
/// Defaults to [`ObjectiveKind::Ridge`], so every existing constructor
/// keeps its exact pre-trait behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObjectiveKind {
    /// Ridge regression (the paper's objective; primal and dual forms).
    #[default]
    Ridge,
    /// L2-regularized logistic regression (dual form).
    Logistic,
    /// Hinge-loss SVM (dual form).
    Svm,
    /// Lasso (primal form).
    Lasso,
}

impl ObjectiveKind {
    /// Every registered objective, in CLI listing order.
    pub const ALL: [ObjectiveKind; 4] = [
        ObjectiveKind::Ridge,
        ObjectiveKind::Logistic,
        ObjectiveKind::Svm,
        ObjectiveKind::Lasso,
    ];

    /// Parse a CLI value.
    pub fn parse(s: &str) -> Result<ObjectiveKind, String> {
        match s {
            "ridge" => Ok(ObjectiveKind::Ridge),
            "logistic" => Ok(ObjectiveKind::Logistic),
            "svm" => Ok(ObjectiveKind::Svm),
            "lasso" => Ok(ObjectiveKind::Lasso),
            other => Err(format!(
                "unknown objective {other:?} (ridge|logistic|svm|lasso)"
            )),
        }
    }

    /// The trait object behind this tag.
    pub fn as_objective(self) -> &'static dyn Objective {
        match self {
            ObjectiveKind::Ridge => &RidgeObjective,
            ObjectiveKind::Logistic => &LogisticObjective,
            ObjectiveKind::Svm => &SvmObjective,
            ObjectiveKind::Lasso => &LassoObjective,
        }
    }

    /// Short lowercase name.
    pub fn label(self) -> &'static str {
        self.as_objective().label()
    }

    /// Whether this objective has a coordinate update for `form`.
    pub fn supports(self, form: Form) -> bool {
        self.as_objective().supports(form)
    }

    /// The form a solver should default to for this objective.
    pub fn default_form(self) -> Form {
        match self {
            ObjectiveKind::Ridge | ObjectiveKind::Lasso => Form::Primal,
            ObjectiveKind::Logistic | ObjectiveKind::Svm => Form::Dual,
        }
    }

    /// Check the objective against a problem and form: form support plus
    /// the ±1-label requirement of the classification duals.
    pub fn validate(self, problem: &RidgeProblem, form: Form) -> Result<(), ObjectiveError> {
        let obj = self.as_objective();
        if !obj.supports(form) {
            return Err(ObjectiveError::UnsupportedForm {
                objective: obj.label(),
                form,
            });
        }
        if obj.requires_binary_labels()
            && !problem.labels().iter().all(|&y| y == 1.0 || y == -1.0)
        {
            return Err(ObjectiveError::NonBinaryLabels {
                objective: obj.label(),
            });
        }
        Ok(())
    }

    /// Statically-dispatched [`Objective::primal_delta`] (the hot path).
    #[inline]
    pub fn primal_delta(
        self,
        dot_y_minus_w_a: f64,
        beta_m: f64,
        col_sq_norm: f64,
        n: usize,
        lambda: f64,
        n_lambda: f64,
    ) -> f64 {
        match self {
            ObjectiveKind::Ridge => RidgeObjective.primal_delta(
                dot_y_minus_w_a,
                beta_m,
                col_sq_norm,
                n,
                lambda,
                n_lambda,
            ),
            ObjectiveKind::Lasso => LassoObjective.primal_delta(
                dot_y_minus_w_a,
                beta_m,
                col_sq_norm,
                n,
                lambda,
                n_lambda,
            ),
            other => other.as_objective().primal_delta(
                dot_y_minus_w_a,
                beta_m,
                col_sq_norm,
                n,
                lambda,
                n_lambda,
            ),
        }
    }

    /// Statically-dispatched [`Objective::dual_delta`] (the hot path).
    #[inline]
    pub fn dual_delta(
        self,
        dot_wbar_a: f64,
        y_n: f64,
        alpha_n: f64,
        row_sq_norm: f64,
        lambda: f64,
        n_lambda: f64,
    ) -> f64 {
        match self {
            ObjectiveKind::Ridge => {
                RidgeObjective.dual_delta(dot_wbar_a, y_n, alpha_n, row_sq_norm, lambda, n_lambda)
            }
            ObjectiveKind::Svm => {
                SvmObjective.dual_delta(dot_wbar_a, y_n, alpha_n, row_sq_norm, lambda, n_lambda)
            }
            other => other
                .as_objective()
                .dual_delta(dot_wbar_a, y_n, alpha_n, row_sq_norm, lambda, n_lambda),
        }
    }

    /// [`Objective::primal_value`].
    pub fn primal_value(self, problem: &RidgeProblem, beta: &[f32]) -> f64 {
        self.as_objective().primal_value(problem, beta)
    }

    /// [`Objective::dual_value`].
    pub fn dual_value(self, problem: &RidgeProblem, alpha: &[f32]) -> f64 {
        self.as_objective().dual_value(problem, alpha)
    }

    /// [`Objective::induced_primal`].
    pub fn induced_primal(self, problem: &RidgeProblem, alpha: &[f32]) -> Vec<f32> {
        self.as_objective().induced_primal(problem, alpha)
    }

    /// [`Objective::margin_loss`].
    pub fn margin_loss(self, margin: f64) -> f64 {
        self.as_objective().margin_loss(margin)
    }

    /// [`Objective::duality_gap`].
    pub fn duality_gap(self, problem: &RidgeProblem, form: Form, weights: &[f32]) -> f64 {
        self.as_objective().duality_gap(problem, form, weights)
    }
}

impl std::fmt::Display for ObjectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updates;
    use scd_datasets::webspam_like;

    #[test]
    fn parse_label_roundtrip() {
        for kind in ObjectiveKind::ALL {
            assert_eq!(ObjectiveKind::parse(kind.label()), Ok(kind));
        }
        assert!(ObjectiveKind::parse("huber").unwrap_err().contains("lasso"));
        assert_eq!(ObjectiveKind::default(), ObjectiveKind::Ridge);
        assert_eq!(format!("{}", ObjectiveKind::Svm), "svm");
    }

    #[test]
    fn form_support_matrix() {
        use Form::*;
        assert!(ObjectiveKind::Ridge.supports(Primal) && ObjectiveKind::Ridge.supports(Dual));
        assert!(!ObjectiveKind::Logistic.supports(Primal) && ObjectiveKind::Logistic.supports(Dual));
        assert!(!ObjectiveKind::Svm.supports(Primal) && ObjectiveKind::Svm.supports(Dual));
        assert!(ObjectiveKind::Lasso.supports(Primal) && !ObjectiveKind::Lasso.supports(Dual));
        assert_eq!(ObjectiveKind::Ridge.default_form(), Primal);
        assert_eq!(ObjectiveKind::Svm.default_form(), Dual);
        assert_eq!(ObjectiveKind::Logistic.default_form(), Dual);
        assert_eq!(ObjectiveKind::Lasso.default_form(), Primal);
    }

    #[test]
    fn ridge_deltas_are_bitwise_the_legacy_closed_forms() {
        let cases = [
            (6.0, 0.0, 4.0, 0.5),
            (2.0 / 3.0, 4.0 / 3.0, 4.0, 0.5),
            (1e30, -1e20, 1e-30, 1e-6),
            (-3.75, 0.125, 17.0, 3e-4),
        ];
        for (dot, b, sq, nl) in cases {
            assert_eq!(
                ObjectiveKind::Ridge
                    .primal_delta(dot, b, sq, 123, nl / 123.0, nl)
                    .to_bits(),
                updates::primal_delta(dot, b, sq, nl).to_bits()
            );
            assert_eq!(
                ObjectiveKind::Ridge
                    .dual_delta(dot, 1.0, b, sq, 1e-3, nl)
                    .to_bits(),
                updates::dual_delta(dot, 1.0, b, sq, 1e-3, nl).to_bits()
            );
        }
    }

    #[test]
    fn validation_catches_bad_pairings() {
        let p = RidgeProblem::from_labelled(&webspam_like(30, 20, 4, 1), 1e-2).unwrap();
        assert!(ObjectiveKind::Svm.validate(&p, Form::Dual).is_ok());
        assert!(matches!(
            ObjectiveKind::Svm.validate(&p, Form::Primal),
            Err(ObjectiveError::UnsupportedForm { .. })
        ));
        assert!(matches!(
            ObjectiveKind::Lasso.validate(&p, Form::Dual),
            Err(ObjectiveError::UnsupportedForm { .. })
        ));
        let reg =
            RidgeProblem::from_labelled(&scd_datasets::dense_gaussian(10, 4, 1), 0.1).unwrap();
        assert!(matches!(
            ObjectiveKind::Logistic.validate(&reg, Form::Dual),
            Err(ObjectiveError::NonBinaryLabels { .. })
        ));
        assert!(ObjectiveKind::Lasso.validate(&reg, Form::Primal).is_ok());
        let err = ObjectiveKind::Svm.validate(&reg, Form::Dual).unwrap_err();
        assert!(err.to_string().contains("±1"));
    }

    #[test]
    fn svm_update_is_boxed_and_stationary_at_optimum() {
        // From a=0 with margin < 1 the update moves in; re-applying at the
        // unconstrained optimum is a fixed point.
        let (y, sq, nl) = (1.0, 4.0, 0.5);
        let d = ObjectiveKind::Svm.dual_delta(0.0, y, 0.0, sq, 1e-3, nl);
        assert!(d > 0.0 && d <= 1.0);
        // margin = 1 exactly: no movement.
        let d = ObjectiveKind::Svm.dual_delta(nl, y, 0.5, sq, 1e-3, nl);
        assert!(d.abs() < 1e-15);
        // Huge positive margin: clamps to the 0 box edge from a = 0.3.
        let d = ObjectiveKind::Svm.dual_delta(100.0 * nl, y, 0.3, sq, 1e-3, nl);
        assert!((d + 0.3).abs() < 1e-12);
        // Empty row is skipped.
        assert_eq!(ObjectiveKind::Svm.dual_delta(1.0, y, 0.3, 0.0, 1e-3, nl), 0.0);
    }

    #[test]
    fn logistic_update_satisfies_the_optimality_condition() {
        let (y, sq, nl) = (-1.0f64, 2.5, 0.8);
        let alpha = -0.25; // a_old = y·α = 0.25
        let dot = 0.6;
        let d = ObjectiveKind::Logistic.dual_delta(dot, y, alpha, sq, 1e-3, nl);
        let a_new = y * (alpha + d);
        assert!(a_new > 0.0 && a_new < 1.0, "interior iterate");
        let margin = y * dot / nl;
        let f = ((1.0 - a_new) / a_new).ln() - margin - (a_new - 0.25) * sq / nl;
        assert!(f.abs() < 1e-9, "optimality residual {f}");
    }

    #[test]
    fn lasso_update_soft_thresholds() {
        // Strong correlation: moves toward the thresholded target.
        let d = ObjectiveKind::Lasso.primal_delta(6.0, 0.0, 4.0, 1, 0.5, 0.5);
        // rho_dot = 6, S(6, 0.5)/4 = 5.5/4.
        assert!((d - 5.5 / 4.0).abs() < 1e-12);
        // Weak correlation below the threshold: zeroes the weight.
        let d = ObjectiveKind::Lasso.primal_delta(0.3, 0.2, 1.0, 1, 0.6, 0.6);
        assert!((d + 0.2).abs() < 1e-12, "rho_dot 0.5 < λ ⇒ β → 0, got {d}");
        // Empty column zeroes in one step.
        assert_eq!(ObjectiveKind::Lasso.primal_delta(0.0, 5.0, 0.0, 7, 0.1, 0.7), -5.0);
    }

    #[test]
    fn lasso_gap_zero_at_zero_iterate_when_lambda_dominates() {
        // λ ≥ ‖Aᵀy‖∞/N makes β = 0 optimal: the gap must be exactly 0.
        let p = RidgeProblem::from_labelled(&webspam_like(25, 15, 4, 3), 1e6).unwrap();
        let gap = ObjectiveKind::Lasso.duality_gap(&p, Form::Primal, &vec![0.0; p.m()]);
        assert!(gap.abs() < 1e-9, "gap {gap}");
        // Small λ: zero is suboptimal, the gap is strictly positive.
        let p = RidgeProblem::from_labelled(&webspam_like(25, 15, 4, 3), 1e-3).unwrap();
        let gap = ObjectiveKind::Lasso.duality_gap(&p, Form::Primal, &vec![0.0; p.m()]);
        assert!(gap > 1e-6, "gap {gap}");
    }

    #[test]
    fn margin_losses() {
        assert_eq!(ObjectiveKind::Svm.margin_loss(2.0), 0.0);
        assert_eq!(ObjectiveKind::Svm.margin_loss(-1.0), 2.0);
        let l = ObjectiveKind::Logistic.margin_loss(0.0);
        assert!((l - 2f64.ln()).abs() < 1e-15);
        // Stable for large |margin|.
        assert!(ObjectiveKind::Logistic.margin_loss(800.0).abs() < 1e-12);
        assert!((ObjectiveKind::Logistic.margin_loss(-800.0) - 800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no dual coordinate form")]
    fn lasso_dual_delta_panics() {
        let _ = ObjectiveKind::Lasso.dual_delta(0.0, 1.0, 0.0, 1.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "no primal coordinate form")]
    fn svm_primal_delta_panics() {
        let _ = ObjectiveKind::Svm.primal_delta(0.0, 0.0, 1.0, 1, 0.1, 0.1);
    }
}

//! Algorithm 1: sequential stochastic coordinate descent.
//!
//! The baseline every speed-up in the paper is measured against. One epoch
//! draws a fresh random permutation of the coordinates and, for each
//! coordinate in turn, solves the one-dimensional subproblem exactly
//! (Eq. 2 primal / Eq. 4 dual) and applies the rank-one shared-vector
//! update. The implementation mirrors the paper's C++ reference: 32-bit
//! model and shared-vector state, sparse columns/rows streamed once per
//! inner product and once per write-back.

use crate::objective::ObjectiveKind;
use crate::problem::{Form, RidgeProblem};
use crate::solver::{EpochStats, Solver, TimeBreakdown};
use scd_perf_model::CpuProfile;
use scd_sparse::kernels;
use scd_sparse::perm::Permutation;

/// Sequential SCD (single CPU thread).
#[derive(Debug, Clone)]
pub struct SequentialScd {
    form: Form,
    /// β (len M) or α (len N).
    weights: Vec<f32>,
    /// w = Aβ (len N) or w̄ = Aᵀα (len M).
    shared: Vec<f32>,
    /// σ′ multiplier on the coordinate's quadratic term (CoCoA+ [24] safe
    /// local subproblem; 1.0 = the paper's Algorithm 1/3 behaviour).
    quadratic_scale: f64,
    /// Cap on coordinate updates per `epoch()` call (None = full pass).
    /// Models the communication-frequency knob of §IV-A: a distributed
    /// worker that talks to the master after H < coords updates.
    max_updates_per_call: Option<usize>,
    /// Streaming position within the current permutation (for capped calls).
    cursor: usize,
    /// The permutation currently being consumed (capped calls span several
    /// `epoch()` invocations).
    current_perm: Option<Permutation>,
    /// Scalar update rule + gap oracle (ridge by default).
    objective: ObjectiveKind,
    cpu: CpuProfile,
    seed: u64,
    epoch_index: u64,
}

impl SequentialScd {
    /// A primal solver (coordinates = features, CSC access) with zero
    /// initial weights.
    pub fn primal(problem: &RidgeProblem, seed: u64) -> Self {
        Self::new(problem, Form::Primal, seed)
    }

    /// A dual solver (coordinates = examples, CSR access) with zero initial
    /// weights.
    pub fn dual(problem: &RidgeProblem, seed: u64) -> Self {
        Self::new(problem, Form::Dual, seed)
    }

    fn new(problem: &RidgeProblem, form: Form, seed: u64) -> Self {
        SequentialScd {
            form,
            weights: vec![0.0; problem.coords(form)],
            shared: vec![0.0; problem.shared_len(form)],
            quadratic_scale: 1.0,
            max_updates_per_call: None,
            cursor: 0,
            current_perm: None,
            objective: ObjectiveKind::Ridge,
            cpu: CpuProfile::xeon_e5_2640(),
            seed,
            epoch_index: 0,
        }
    }

    /// Cap the coordinate updates performed per `epoch()` call. The
    /// permutation streams across calls, so k capped calls of size
    /// coords/k visit exactly the coordinates one full epoch would.
    /// Models communicating "more frequently ... and thus perform[ing]
    /// fewer coordinate updates on the workers between communication
    /// stages" (§IV-A).
    pub fn with_updates_per_call(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "need at least one update per call");
        self.max_updates_per_call = Some(cap);
        self
    }

    /// Scale the quadratic term of every coordinate subproblem by σ′ ≥ 1 —
    /// the CoCoA+ safe local subproblem [24]. With σ′ = K a distributed
    /// driver may *add* (γ = 1) the workers' updates without divergence.
    pub fn with_quadratic_scale(mut self, sigma_prime: f64) -> Self {
        assert!(sigma_prime >= 1.0, "sigma' must be >= 1 for safety");
        self.quadratic_scale = sigma_prime;
        self
    }

    /// Override the CPU profile used for simulated timing.
    pub fn with_cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Swap the scalar update rule (and gap oracle) for a non-ridge
    /// objective. The default, [`ObjectiveKind::Ridge`], is bit-identical
    /// to the pre-trait engine.
    ///
    /// # Panics
    /// Panics if the objective has no coordinate update for this solver's
    /// form (e.g. lasso on a dual solver).
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        assert!(
            objective.supports(self.form),
            "objective {} does not support the {} form",
            objective.label(),
            self.form.label()
        );
        self.objective = objective;
        self
    }

    /// Warm-start from explicit state (used by the distributed driver when
    /// a worker resumes from the aggregated model).
    pub fn set_state(&mut self, weights: Vec<f32>, shared: Vec<f32>) {
        assert_eq!(weights.len(), self.weights.len(), "weights length mismatch");
        assert_eq!(shared.len(), self.shared.len(), "shared length mismatch");
        self.weights = weights;
        self.shared = shared;
    }

    /// Overwrite only the shared vector (the broadcast step of Algorithm 3).
    pub fn set_shared(&mut self, shared: &[f32]) {
        assert_eq!(shared.len(), self.shared.len(), "shared length mismatch");
        self.shared.copy_from_slice(shared);
    }

    /// Overwrite only the model weights (the consistency rescale of
    /// Algorithms 3/4).
    pub fn set_weights(&mut self, weights: &[f32]) {
        assert_eq!(weights.len(), self.weights.len(), "weights length mismatch");
        self.weights.copy_from_slice(weights);
    }

    /// Mutable access to the weights (the local-model rescaling step of
    /// Algorithms 3/4).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Run one epoch (or one capped slice of an epoch) over an arbitrary
    /// (sub)problem. The distributed driver calls this with each worker's
    /// local partition.
    fn run_epoch(&mut self, problem: &RidgeProblem) -> (usize, usize) {
        let coords = problem.coords(self.form);
        // Fetch (or continue) the permutation being consumed. Exhausted
        // permutations are re-shuffled in place (bit-identical to a fresh
        // `Permutation::random`), so steady-state epochs never allocate.
        if self.current_perm.is_none() || self.cursor >= coords {
            let seed = self.seed ^ (self.epoch_index.wrapping_mul(0x9E37));
            match self.current_perm.as_mut() {
                Some(p) => p.refill_random(coords, seed),
                None => self.current_perm = Some(Permutation::random(coords, seed)),
            }
            self.cursor = 0;
            self.epoch_index += 1;
        }
        // Move the permutation out for the loop (the borrow checker won't
        // allow `&self.current_perm` alongside `&mut self` field access)
        // and restore it afterwards — no clone, no allocation.
        let perm = self.current_perm.take().expect("just ensured");
        let start = self.cursor;
        let end = match self.max_updates_per_call {
            Some(cap) => (start + cap).min(coords),
            None => coords,
        };
        self.cursor = end;
        let n_lambda = problem.n_lambda();
        let mut nnz_touched = 0usize;
        match self.form {
            Form::Primal => {
                let y = problem.labels();
                for j in start..end {
                    let m = perm.apply(j);
                    let col = problem.csc().col(m);
                    nnz_touched += col.nnz();
                    // ⟨y − w, a_m⟩ through the unrolled lanes — the same
                    // kernel every CPU backend (syscd included) runs, so
                    // their trajectories can be compared bit for bit.
                    let dot = kernels::dot_residual(col.indices, col.values, y, &self.shared);
                    let delta = self.objective.primal_delta(
                        dot,
                        self.weights[m] as f64,
                        self.quadratic_scale * problem.col_sq_norms()[m],
                        problem.n(),
                        problem.lambda(),
                        n_lambda,
                    ) as f32;
                    self.weights[m] += delta;
                    col.axpy_into(delta, &mut self.shared);
                }
            }
            Form::Dual => {
                let lambda = problem.lambda();
                for j in start..end {
                    let n = perm.apply(j);
                    let row = problem.csr().row(n);
                    nnz_touched += row.nnz();
                    let dot = kernels::dot_dense(row.indices, row.values, &self.shared);
                    let delta = self.objective.dual_delta(
                        dot,
                        problem.labels()[n] as f64,
                        self.weights[n] as f64,
                        self.quadratic_scale * problem.row_sq_norms()[n],
                        lambda,
                        n_lambda,
                    ) as f32;
                    self.weights[n] += delta;
                    row.axpy_into(delta, &mut self.shared);
                }
            }
        }
        self.current_perm = Some(perm);
        (end - start, nnz_touched)
    }
}

impl Solver for SequentialScd {
    fn form(&self) -> Form {
        self.form
    }

    fn objective(&self) -> ObjectiveKind {
        self.objective
    }

    fn name(&self) -> String {
        match self.objective {
            ObjectiveKind::Ridge => "SCD (1 thread)".to_string(),
            other => format!("SCD (1 thread, {})", other.label()),
        }
    }

    fn epoch(&mut self, problem: &RidgeProblem) -> EpochStats {
        let (coords, nnz) = self.run_epoch(problem);
        EpochStats {
            updates: coords,
            breakdown: TimeBreakdown {
                host: self.cpu.sequential_epoch_seconds(nnz, coords),
                ..TimeBreakdown::default()
            },
        }
    }

    fn weights(&self) -> Vec<f32> {
        self.weights.clone()
    }

    fn shared_vector(&self) -> Vec<f32> {
        self.shared.clone()
    }

    fn weights_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.weights);
    }

    fn shared_vector_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_datasets::{dense_gaussian, webspam_like};
    use scd_sparse::dense;

    fn small_problem() -> RidgeProblem {
        RidgeProblem::from_labelled(&dense_gaussian(30, 10, 3), 0.1).unwrap()
    }

    #[test]
    fn primal_gap_decreases_monotonically_to_zero() {
        let p = small_problem();
        let mut s = SequentialScd::primal(&p, 1);
        let mut prev = f64::INFINITY;
        let mut last = f64::INFINITY;
        for _ in 0..60 {
            s.epoch(&p);
            let gap = s.duality_gap(&p);
            // Above the f32 noise floor the descent is essentially monotone;
            // below ~1e-7 the gap jitters with rounding.
            if prev > 1e-7 {
                assert!(gap <= prev * 1.5 + 1e-12, "gap should trend down");
            }
            prev = gap;
            last = gap;
        }
        assert!(last < 1e-6, "final gap {last}");
    }

    #[test]
    fn dual_gap_decreases_to_zero() {
        let p = small_problem();
        let mut s = SequentialScd::dual(&p, 1);
        for _ in 0..60 {
            s.epoch(&p);
        }
        assert!(s.duality_gap(&p) < 1e-6);
    }

    #[test]
    fn primal_and_dual_agree_on_the_solution() {
        let p = small_problem();
        let mut sp = SequentialScd::primal(&p, 2);
        let mut sd = SequentialScd::dual(&p, 2);
        for _ in 0..100 {
            sp.epoch(&p);
            sd.epoch(&p);
        }
        let beta_from_dual = p.induced_primal(&sd.weights());
        assert!(
            dense::max_abs_diff(&sp.weights(), &beta_from_dual) < 1e-3,
            "primal and dual solutions should match through Eq. 5"
        );
    }

    #[test]
    fn shared_vector_stays_consistent_with_weights() {
        let p = small_problem();
        let mut s = SequentialScd::primal(&p, 7);
        for _ in 0..5 {
            s.epoch(&p);
        }
        let w_true = p.csc().matvec(&s.weights()).unwrap();
        assert!(
            dense::max_abs_diff(&s.shared_vector(), &w_true) < 1e-3,
            "sequential SCD never lets w drift from Aβ"
        );
    }

    #[test]
    fn sparse_webspam_like_converges() {
        let d = webspam_like(150, 300, 10, 5);
        let p = RidgeProblem::from_labelled(&d, 1e-3).unwrap();
        let mut s = SequentialScd::primal(&p, 3);
        let g0 = s.duality_gap(&p);
        for _ in 0..50 {
            s.epoch(&p);
        }
        let g = s.duality_gap(&p);
        assert!(g < g0 * 1e-2, "gap {g0} -> {g}");
    }

    #[test]
    fn epoch_stats_report_positive_time() {
        let p = small_problem();
        let mut s = SequentialScd::primal(&p, 1);
        let stats = s.epoch(&p);
        assert_eq!(stats.updates, p.m());
        assert!(stats.breakdown.host > 0.0);
        assert_eq!(stats.breakdown.gpu, 0.0);
        assert_eq!(stats.breakdown.network, 0.0);
    }

    #[test]
    fn different_seeds_still_converge_to_same_optimum() {
        let p = small_problem();
        let mut a = SequentialScd::primal(&p, 1);
        let mut b = SequentialScd::primal(&p, 99);
        for _ in 0..80 {
            a.epoch(&p);
            b.epoch(&p);
        }
        assert!(dense::max_abs_diff(&a.weights(), &b.weights()) < 1e-3);
    }

    #[test]
    fn set_state_roundtrip() {
        let p = small_problem();
        let mut s = SequentialScd::primal(&p, 1);
        s.epoch(&p);
        let (w, sh) = (s.weights(), s.shared_vector());
        let mut fresh = SequentialScd::primal(&p, 1);
        fresh.set_state(w.clone(), sh.clone());
        assert_eq!(fresh.weights(), w);
        assert_eq!(fresh.shared_vector(), sh);
    }

    #[test]
    fn capped_calls_stream_one_permutation() {
        // Four quarter-epochs must visit exactly the coordinates of one
        // full epoch, in the same order — bit-identical end state.
        let p = small_problem();
        let mut full = SequentialScd::primal(&p, 21);
        let quarter = (p.m() / 4).max(1);
        let mut capped = SequentialScd::primal(&p, 21).with_updates_per_call(quarter);
        let full_stats = full.epoch(&p);
        let mut capped_updates = 0;
        while capped_updates < p.m() {
            capped_updates += capped.epoch(&p).updates;
        }
        assert_eq!(capped_updates, full_stats.updates);
        assert_eq!(full.weights(), capped.weights());
        assert_eq!(full.shared_vector(), capped.shared_vector());
    }

    #[test]
    fn capped_call_reports_partial_updates_and_time() {
        let p = small_problem();
        let mut s = SequentialScd::primal(&p, 3).with_updates_per_call(3);
        let stats = s.epoch(&p);
        assert_eq!(stats.updates, 3);
        let mut full = SequentialScd::primal(&p, 3);
        assert!(stats.seconds() < full.epoch(&p).seconds());
    }

    #[test]
    fn name_matches_paper_legend() {
        let p = small_problem();
        assert_eq!(SequentialScd::primal(&p, 0).name(), "SCD (1 thread)");
    }
}

//! Property tests for the codec roundtrip invariants the distributed
//! layer relies on:
//!
//! * RawF32 is bit-identical (the `--wire raw` == pre-codec guarantee);
//! * Fp16 honours the half-ULP (2⁻¹¹ relative) RNE bound on the binary16
//!   normal range, with a 2⁻²⁴ absolute floor through the subnormals;
//! * TopK emits exactly min(k, len) pairs, in strictly increasing index
//!   order, deterministically, and never keeps a smaller magnitude while
//!   dropping a larger one;
//! * TopKEf conserves mass exactly: decoded + new residual == delta +
//!   old residual, entry for entry, in f32.

use proptest::prelude::*;
use scd_wire::{
    DeltaCodec, Fp16, RawF32, TopK, TopKEf, WirePayload, SPARSE_ENTRY_BYTES,
    SPARSE_HEADER_BYTES,
};

/// Deltas with a mix of magnitudes, signs, and exact zeros.
fn delta_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (0u32..10, -1.0f64..1.0).prop_map(|(kind, u)| match kind {
            0 => 0.0f32,                      // exact zeros are common in deltas
            1 => (u * 1e-6) as f32,           // subnormal-half territory
            2 => (u * 6e4) as f32,            // near the top of the half range
            _ => (u * 8.0) as f32,            // typical coordinate-delta scale
        }),
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn raw_f32_roundtrip_is_bit_identical(delta in delta_strategy()) {
        let mut codec = RawF32;
        let payload = codec.encode(0, &delta);
        let back = codec.decode(&payload);
        prop_assert_eq!(delta.len(), back.len());
        for (a, b) in delta.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(payload.encoded_bytes(), 4 * delta.len());
    }

    #[test]
    fn fp16_roundtrip_respects_the_ulp_bound(delta in delta_strategy()) {
        let mut codec = Fp16;
        let payload = codec.encode(0, &delta);
        let back = codec.decode(&payload);
        prop_assert_eq!(payload.encoded_bytes(), 2 * delta.len());
        for (&x, &y) in delta.iter().zip(&back) {
            // RNE: relative error <= 2^-11 on normals, absolute <= 2^-25
            // through the subnormal band (half the subnormal spacing).
            let bound = f64::max(x.abs() as f64 / 2048.0, 2f64.powi(-25));
            prop_assert!(
                ((y - x) as f64).abs() <= bound + 1e-12,
                "{} -> {} exceeds fp16 bound {}", x, y, bound
            );
        }
    }

    #[test]
    fn topk_keeps_exactly_k_in_index_order(delta in delta_strategy(), k in 1usize..20) {
        let mut codec = TopK::new(k);
        let payload = codec.encode(0, &delta);
        let (len, idx, val) = match &payload {
            WirePayload::Sparse { len, idx, val } => (*len, idx.clone(), val.clone()),
            other => return Err(TestCaseError::Fail(format!("not sparse: {other:?}"))),
        };
        prop_assert_eq!(len, delta.len());
        prop_assert_eq!(idx.len(), k.min(delta.len()));
        prop_assert_eq!(val.len(), idx.len());
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "indices strictly increasing");
        // Values ride the wire in full f32.
        for (&i, &v) in idx.iter().zip(&val) {
            prop_assert_eq!(v.to_bits(), delta[i as usize].to_bits());
        }
        // No dropped entry outranks a kept one.
        let kept_min = val.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for (i, &d) in delta.iter().enumerate() {
            if !idx.contains(&(i as u32)) {
                prop_assert!(
                    d.abs() <= kept_min,
                    "dropped |{}| at {} outranks kept minimum {}", d, i, kept_min
                );
            }
        }
        prop_assert_eq!(
            payload.encoded_bytes(),
            SPARSE_HEADER_BYTES + SPARSE_ENTRY_BYTES * idx.len()
        );
    }

    #[test]
    fn topk_encoding_is_deterministic(delta in delta_strategy(), k in 1usize..20) {
        let mut a = TopK::new(k);
        let mut b = TopK::new(k);
        prop_assert_eq!(a.encode(0, &delta), b.encode(7, &delta));
    }

    #[test]
    fn topk_ef_conserves_mass_exactly(
        rounds in proptest::collection::vec(delta_strategy(), 1..5),
        k in 1usize..12,
    ) {
        // All rounds must share one length for a single worker's stream.
        let len = rounds.iter().map(Vec::len).min().unwrap_or(1);
        let mut codec = TopKEf::new(k);
        let mut prev_resid = vec![0.0f32; len];
        for round in &rounds {
            let delta = &round[..len];
            let payload = codec.encode(0, delta);
            let decoded = codec.decode(&payload);
            let resid = codec.residual(0).expect("residual exists after encode");
            for i in 0..len {
                // decoded + e_{t+1} == Δ_t + e_t, bit for bit: top-k ships
                // exact f32 values, so nothing is lost, only deferred.
                let sent_plus_kept = decoded[i] + resid[i];
                let compensated = delta[i] + prev_resid[i];
                prop_assert_eq!(sent_plus_kept.to_bits(), compensated.to_bits());
                // And each entry lands wholly on one side of the split.
                prop_assert!(decoded[i] == 0.0 || resid[i] == 0.0);
            }
            prev_resid = resid.to_vec();
        }
    }
}

//! IEEE 754 binary16 conversion with round-to-nearest-even.
//!
//! The workspace targets stable Rust with no external crates, so the
//! half-precision conversions are implemented directly on the bit
//! patterns. Guarantees:
//!
//! * `f32 -> f16` rounds to nearest, ties to even — the rounding mode of
//!   every GPU's `__float2half_rn`, so a relative error of at most one
//!   half-ULP (2⁻¹¹) on values in the binary16 normal range;
//! * values whose magnitude exceeds the largest finite half (65504 plus
//!   half an ULP) become ±∞, values below the smallest subnormal half
//!   (2⁻²⁵) become ±0, and the subnormal band [2⁻²⁵, 2⁻¹⁴) rounds with
//!   the same nearest-even rule at absolute granularity 2⁻²⁴;
//! * `f16 -> f32` is exact (every binary16 value is representable in f32).

/// Shift `v` right by `shift` bits, rounding to nearest, ties to even.
#[inline]
fn shr_round_nearest_even(v: u32, shift: u32) -> u32 {
    if shift == 0 {
        return v;
    }
    if shift >= 32 {
        return 0;
    }
    let kept = v >> shift;
    let rem = v & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    if rem > half || (rem == half && kept & 1 == 1) {
        kept + 1
    } else {
        kept
    }
}

/// Convert one f32 to binary16 bits, rounding to nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let abs = b & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // Inf stays Inf; NaN becomes a quiet NaN with a nonzero mantissa.
        let nan = if abs > 0x7F80_0000 { 0x0200 } else { 0 };
        return sign | 0x7C00 | nan;
    }
    let exp32 = (abs >> 23) as i32; // biased f32 exponent
    if exp32 >= 143 {
        // |x| >= 2^16: beyond the half range even before rounding.
        return sign | 0x7C00;
    }
    // 24-bit significand with the implicit leading one. f32 subnormal
    // inputs (exp32 == 0, |x| < 2^-126) lack the implicit bit, but they
    // sit far below half's 2^-25 rounding threshold and shift to zero.
    let mant = (abs & 0x7F_FFFF) | if exp32 == 0 { 0 } else { 0x80_0000 };
    if exp32 >= 113 {
        // Normal half range [2^-14, 2^16): drop 13 mantissa bits with RNE.
        // A mantissa carry propagates into the exponent field by plain
        // addition, including the 65504 -> Inf overflow case.
        let h = shr_round_nearest_even(mant, 13);
        let bits = (((exp32 - 112) as u32) << 10) + h - 0x400;
        return sign | bits as u16;
    }
    // Subnormal half: value = mant * 2^(exp32-150); the half subnormal
    // unit is 2^-24, so the stored 10-bit field is mant * 2^(exp32-126)
    // rounded. A carry to 0x400 lands exactly on the smallest normal.
    let h = shr_round_nearest_even(mant, (126 - exp32) as u32);
    sign | h as u16
}

/// Convert binary16 bits back to f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign // ±0
            } else {
                // Subnormal: normalize into an f32 exponent.
                let mut e = 113u32;
                let mut m = mant;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | (e << 23) | ((m & 0x3FF) << 13)
            }
        }
        31 => sign | 0x7F80_0000 | (mant << 13), // Inf / NaN
        _ => sign | ((exp + 112) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Round one f32 through binary16 and back.
#[inline]
pub fn round_through_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_representable_values_roundtrip_bitwise() {
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -65504.0, 0.25, 1.5, 3.140625,
        ] {
            let y = round_through_f16(x);
            assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {y}");
        }
    }

    #[test]
    fn normal_range_error_is_half_ulp() {
        // 2^-11 relative error on normals — the RNE guarantee.
        let mut x = 6.1035e-5f32; // just above 2^-14
        while x < 6.0e4 {
            let y = round_through_f16(x);
            let rel = ((y - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-9, "x {x} y {y} rel {rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f32_to_f16_bits(1.0e5), 0x7C00);
        assert_eq!(f32_to_f16_bits(-1.0e5), 0xFC00);
        assert_eq!(f32_to_f16_bits(65520.0), 0x7C00, "ties to even at the top");
        assert!(round_through_f16(1.0e5).is_infinite());
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
    }

    #[test]
    fn tiny_values_flush_through_subnormals_to_zero() {
        // Below 2^-25: rounds to zero.
        assert_eq!(round_through_f16(1.0e-9), 0.0);
        // Subnormal band keeps absolute granularity 2^-24.
        let x = 3.0e-6f32;
        let y = round_through_f16(x);
        assert!((y - x).abs() <= 2.0f32.powi(-25) + 1e-12, "x {x} y {y}");
        // Smallest half subnormal survives.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(round_through_f16(tiny), tiny);
    }

    #[test]
    fn nan_stays_nan_and_sign_is_preserved() {
        assert!(round_through_f16(f32::NAN).is_nan());
        assert_eq!(round_through_f16(-2.5), -2.5);
        assert!(round_through_f16(-1.0e-9).to_bits() == (-0.0f32).to_bits());
    }

    #[test]
    fn rne_ties_go_to_even_mantissa() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10 in half
        // precision; nearest-even keeps the even mantissa (1.0).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_through_f16(tie), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even wins.
        let tie2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(round_through_f16(tie2), 1.0 + 2.0 * 2.0f32.powi(-10));
    }
}

//! Deterministic top-k magnitude selection.
//!
//! The sparsified payload keeps the k entries of largest magnitude.
//! Selection must be *deterministic* — the same delta always yields the
//! same payload, on any host — so ties in magnitude are broken toward the
//! lower index, and the emitted pairs are sorted by index ascending (a
//! canonical order that also makes the payload streamable).

/// Indices of the `k` largest-magnitude entries of `values`, sorted
/// ascending. Ties in magnitude go to the lower index. Returns all
/// indices when `k >= values.len()`.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut order = Vec::new();
    top_k_indices_into(values, k, &mut order);
    order
}

/// [`top_k_indices`] into a reusable scratch vector: same selection, but
/// the index buffer's capacity is recycled across calls, so steady-state
/// encodes never allocate.
pub fn top_k_indices_into(values: &[f32], k: usize, order: &mut Vec<usize>) {
    let n = values.len();
    let k = k.min(n);
    order.clear();
    if k == 0 {
        return;
    }
    order.extend(0..n);
    // Total order: |v| descending, then index ascending. `total_cmp` on
    // the absolute value is deterministic even for NaN/-0 corner cases.
    let rank = |i: usize, j: usize| {
        values[j]
            .abs()
            .total_cmp(&values[i].abs())
            .then(i.cmp(&j))
    };
    if k < n {
        order.select_nth_unstable_by(k - 1, |&i, &j| rank(i, j));
        order.truncate(k);
    }
    order.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_magnitudes_sorted_by_index() {
        let v = [0.1f32, -5.0, 2.0, -0.5, 4.0];
        assert_eq!(top_k_indices(&v, 2), vec![1, 4]);
        assert_eq!(top_k_indices(&v, 3), vec![1, 2, 4]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&v, 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let v = [1.0f32, -1.0, 1.0, -1.0];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
        assert_eq!(top_k_indices(&v, 3), vec![0, 1, 2]);
    }

    #[test]
    fn zeros_count_as_smallest() {
        let v = [0.0f32, 0.0, 0.5, 0.0];
        assert_eq!(top_k_indices(&v, 1), vec![2]);
        // Exact-k even when fewer nonzeros exist: zero entries pad.
        assert_eq!(top_k_indices(&v, 2), vec![0, 2]);
    }
}
